#!/usr/bin/env bash
# Tier-1 CI: build, lint, and test the whole workspace.
#
# The parallel executor sizes its pool from the host; QCF_WORKERS=4 forces
# the multi-threaded code paths even on small machines, so the second test
# pass exercises genuine block-parallel execution and the determinism
# guarantees (parallel == serial, bit for bit).
set -euo pipefail
cd "$(dirname "$0")"

echo "== fmt =="
cargo fmt --check

echo "== build (release) =="
cargo build --release --workspace

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== test (default workers) =="
cargo test -q --workspace

echo "== test (QCF_WORKERS=4) =="
QCF_WORKERS=4 cargo test -q --workspace

# The chunk cache must be a pure performance layer: lossless runs agree
# bit for bit at any capacity, including under threaded block execution.
echo "== cache equivalence (QCF_WORKERS=4, release) =="
QCF_WORKERS=4 cargo test --release -q -p qtensor --test cache_proptests

# Steady-state apply loop must stay at zero heap allocations per gate
# (counting global allocator; release mode so dead allocs can't hide).
echo "== allocation regression (release) =="
cargo test --release -q -p qcf-bench --test alloc_regression
cargo test --release -q -p qcf-bench --test alloc_arena
cargo test --release -q -p qcf-bench --test alloc_cusz_table

# One pass over every bench workload with assertions instead of timing:
# the vectorized codec kernels must stay bit-identical to their scalar
# references, and parallel streams identical to serial ones.
echo "== parallel bench smoke (kernel bit-identity) =="
cargo bench -q -p qcf-bench --bench parallel -- --smoke

# Chaos gate. First the decode fuzzers: no panic and no unbounded
# allocation on arbitrary/mutated/truncated bytes through every decoder.
# Then a seeded fault storm through a full QAOA compressed-state run:
# `verify --state` exits nonzero unless the run completes (degraded is
# fine, dead is not), every injected storage corruption surfaces as a
# detected decode failure, the scrub settles clean, and no measured error
# breaches its ledger bound. The rates below reliably quarantine chunks,
# so the gate also proves nonzero-quarantine accounting end to end.
echo "== chaos gate (decode fuzzers + seeded fault storm) =="
cargo test --release -q -p compressors --test fuzz_decoders
chaos_out=$(QCF_FAULTS="seed=42,state.chunk.bitflip%0.02,codec.decode%0.01" \
    cargo run --release -q -p qcf-bench --bin qcfz -- verify --state \
    --nodes 10 --seed 21 --compressor LZ4 --abs 0 --cache 2)
echo "$chaos_out"
if echo "$chaos_out" | grep -q " 0 quarantines"; then
    echo "chaos gate FAILED: the storm must actually quarantine chunks" >&2
    exit 1
fi

# Out-of-core gate. A budgeted run must actually exceed its budget and
# spill (nonzero writes), the gate-schedule prefetcher must cover at
# least half the fetches, and frame placement must be pure: the energy
# line of the budgeted run matches the unbudgeted one character for
# character. Then a QCF_MEM_BUDGET-armed `verify --state` proves the
# scrub walks the disk tier clean (exit code is the contract).
echo "== out-of-core gate (spill tier + prefetch) =="
oo_flags=(state --nodes 12 --seed 21 --compressor LZ4 --abs 0 --cache 2)
base_out=$(cargo run --release -q -p qcf-bench --bin qcfz -- "${oo_flags[@]}")
spill_out=$(cargo run --release -q -p qcf-bench --bin qcfz -- "${oo_flags[@]}" --mem-budget 4k)
echo "$spill_out" | sed -n '2,3p'
e_base=$(echo "$base_out" | sed -n '1s/.*energy \([^,]*\),.*/\1/p')
e_spill=$(echo "$spill_out" | sed -n '1s/.*energy \([^,]*\),.*/\1/p')
if [ -z "$e_base" ] || [ "$e_base" != "$e_spill" ]; then
    echo "out-of-core gate FAILED: energy '$e_spill' != in-RAM '$e_base'" >&2
    exit 1
fi
spill_writes=$(echo "$spill_out" | awk '/^spill:/ {print $2}')
if [ -z "$spill_writes" ] || [ "$spill_writes" -eq 0 ]; then
    echo "out-of-core gate FAILED: budgeted run never spilled" >&2
    exit 1
fi
hit_rate=$(echo "$spill_out" | sed -n '/^spill:/s/.*(\([0-9]*\)% hit rate.*/\1/p')
if [ -z "$hit_rate" ] || [ "$hit_rate" -lt 50 ]; then
    echo "out-of-core gate FAILED: prefetch hit rate ${hit_rate:-?}% below 50%" >&2
    exit 1
fi
oo_verify=$(QCF_MEM_BUDGET=4k cargo run --release -q -p qcf-bench --bin qcfz -- \
    verify --state --nodes 10 --seed 21 --compressor LZ4 --abs 0 --cache 2)
echo "$oo_verify" | grep "disk tier:"
if ! echo "$oo_verify" | grep -q "disk tier: [1-9]"; then
    echo "out-of-core gate FAILED: verify --state never touched the disk tier" >&2
    exit 1
fi

# Live-observability gate: one sampled run through `qcfz top --once`.
# The command arms the time-series sampler and the per-chunk journal,
# drives a real QAOA compressed-state workload, renders the dashboard,
# and exits nonzero unless its own Prometheus exposition of the final
# snapshot passes the hand-rolled format validator. The grep is belt and
# braces on top of the exit code.
echo "== live telemetry gate (qcfz top --once) =="
top_out=$(cargo run --release -q -p qcf-bench --bin qcfz -- top --once \
    --nodes 10 --seed 21 --interval 10)
echo "$top_out" | tail -n 3
if ! echo "$top_out" | grep -q "prometheus exposition valid"; then
    echo "telemetry gate FAILED: exposition did not validate" >&2
    exit 1
fi

# SLO gate. Clean drill: a fault-free sampled run must end with zero
# firing alerts (`qcfz slo` exits nonzero otherwise) and print the
# exact burn-rate accounting line — ticks/breaches/transitions
# reconciled against the replayed ring before anything renders. Fault
# drill: simulated spill-device latency plus a seeded fault storm must
# actually ring the alarms — `--expect-firing` inverts the exit
# contract, demanding that the latency and fidelity objectives fired
# during the run (still firing, or fired and resolved when the fault
# stopped burning).
echo "== slo gate (clean drill + seeded fault drill) =="
slo_out=$(cargo run --release -q -p qcf-bench --bin qcfz -- slo \
    --nodes 10 --seed 21 --interval 2)
echo "$slo_out" | grep -E "^(spec|slo)"
if ! echo "$slo_out" | grep -q "slo accounting: exact"; then
    echo "slo gate FAILED: accounting line missing from clean drill" >&2
    exit 1
fi
drill_out=$(QCF_SPILL_LATENCY_US=5000 \
    QCF_FAULTS="seed=42,state.chunk.bitflip%0.02,codec.decode%0.01" \
    cargo run --release -q -p qcf-bench --bin qcfz -- slo \
    --nodes 10 --seed 21 --compressor LZ4 --abs 0 --cache 2 \
    --mem-budget 64 --interval 2 \
    --expect-firing latency.stall,fidelity.quarantine)
echo "$drill_out" | grep -E "^(spec|slo)"
if ! echo "$drill_out" | grep -q "slo accounting: exact"; then
    echo "slo gate FAILED: accounting line missing from fault drill" >&2
    exit 1
fi

# Checkpoint crash drill. A snapshot commit must be all-or-nothing at
# every kill point of its temp → fsync → rename protocol: golden
# snapshots are taken at gates 8 and 16, then the gate-16 commit is
# killed at each of the five boundaries (the process must die with exit
# 3, the simulated-crash code). Resuming the survivor and finishing the
# run must reproduce the golden completion character for character —
# kill points 1-4 leave the old gate-8 snapshot, kill point 5 lands
# after the rename and commits gate 16. A torn write that "succeeds"
# must then be rejected by the footer checksum on resume, and a
# malformed QCF_FAULTS spec must be refused up front with exit 2.
echo "== checkpoint crash drill (kill-point matrix + torn write) =="
ck_dir=$(mktemp -d /tmp/qcf-crash-drill.XXXXXX)
trap 'rm -rf "$ck_dir"' EXIT
qcfz=(cargo run --release -q -p qcf-bench --bin qcfz --)
ck_flags=(--nodes 10 --seed 21 --compressor LZ4 --abs 0)
"${qcfz[@]}" checkpoint --out "$ck_dir/g8.qcfs" --gates 8 "${ck_flags[@]}" >/dev/null
"${qcfz[@]}" checkpoint --out "$ck_dir/g16.qcfs" --from "$ck_dir/g8.qcfs" \
    --gates 16 >/dev/null
gold8=$("${qcfz[@]}" resume "$ck_dir/g8.qcfs" --verify | grep '^finished:')
gold16=$("${qcfz[@]}" resume "$ck_dir/g16.qcfs" --verify | grep '^finished:')
for n in 1 2 3 4 5; do
    cp "$ck_dir/g8.qcfs" "$ck_dir/d.qcfs"
    rc=0
    QCF_FAULTS="seed=3,ckpt.kill_point@$n" "${qcfz[@]}" checkpoint \
        --out "$ck_dir/d.qcfs" --from "$ck_dir/d.qcfs" --gates 16 \
        >/dev/null 2>&1 || rc=$?
    if [ "$rc" -ne 3 ]; then
        echo "crash drill FAILED: kill point $n exited $rc, want 3" >&2
        exit 1
    fi
    got=$("${qcfz[@]}" resume "$ck_dir/d.qcfs" --verify | grep '^finished:')
    want=$gold8
    [ "$n" -eq 5 ] && want=$gold16
    if [ "$got" != "$want" ]; then
        echo "crash drill FAILED at kill point $n:" >&2
        echo "  resumed: $got" >&2
        echo "  golden:  $want" >&2
        exit 1
    fi
    echo "kill point $n: resumed clean ($([ "$n" -eq 5 ] && echo 'new snapshot committed' || echo 'old snapshot intact'))"
done
cp "$ck_dir/g8.qcfs" "$ck_dir/torn.qcfs"
QCF_FAULTS="seed=11,ckpt.torn_write@1" "${qcfz[@]}" checkpoint \
    --out "$ck_dir/torn.qcfs" --from "$ck_dir/torn.qcfs" --gates 16 >/dev/null
rc=0
"${qcfz[@]}" resume "$ck_dir/torn.qcfs" >/dev/null 2>&1 || rc=$?
if [ "$rc" -eq 0 ]; then
    echo "crash drill FAILED: torn snapshot resumed instead of being rejected" >&2
    exit 1
fi
echo "torn write: rejected by footer checksum on resume (exit $rc)"
rc=0
QCF_FAULTS="state.chunk.bitflip%banana" "${qcfz[@]}" state --nodes 6 \
    >/dev/null 2>&1 || rc=$?
if [ "$rc" -ne 2 ]; then
    echo "crash drill FAILED: malformed QCF_FAULTS exited $rc, want 2" >&2
    exit 1
fi
echo "malformed QCF_FAULTS: refused up front (exit 2)"

# Spill-log compaction drill: a churned, budgeted run must compact its
# append-only spill log (reclaiming dead superseded records) while the
# scrub still walks the swapped file fully clean.
echo "== spill compaction drill (verify --state on a churned log) =="
comp_out=$("${qcfz[@]}" verify --state --nodes 10 --seed 21 \
    --compressor LZ4 --abs 0 --cache 2 --mem-budget 4k)
echo "$comp_out" | grep -E "spill log:|verify:"
if ! echo "$comp_out" | grep -Eq "spill log: [1-9][0-9]* compaction"; then
    echo "compaction drill FAILED: churned spill log never compacted" >&2
    exit 1
fi
if ! echo "$comp_out" | grep -q "verify: OK"; then
    echo "compaction drill FAILED: scrub not clean after compaction" >&2
    exit 1
fi

# Run-to-run regression gate with attribution: `--diff` is `--baseline
# --check` plus the ranked movement attribution (which keys moved most
# and which SLO dimension each endangers). CR, ledger invariants and
# energy are hard failures everywhere; throughput only fails on >=4-core
# hosts (wall clock on a loaded 1-core runner is noise). Any end-of-run
# SLO violation in the current report is an absolute failure — a
# violating committed baseline cannot grandfather it. Refresh with:
#   qcfz report --json BENCH_report.json
echo "== report regression check (with SLO verdict + diff attribution) =="
cargo run --release -q -p qcf-bench --bin qcfz -- report \
    --out /tmp/qcf-ci-report.md --diff BENCH_report.json

echo "CI OK"
