//! End-to-end integration: statevector oracle ↔ tensor network ↔ compressed
//! contraction, across instances and both framework modes (claim C3).

use qcf::prelude::*;

fn exact_and_check_oracle(graph: &Graph, params: &QaoaParams) -> f64 {
    let sim = Simulator::default();
    let e = sim
        .energy(graph, params)
        .expect("tensor network run")
        .energy;
    if graph.n() <= 18 {
        let sv = StateVector::run(&qcircuit::qaoa_circuit(graph, params));
        let truth = sv.maxcut_energy(graph);
        assert!(
            (e - truth).abs() < 1e-8,
            "tensor network {e} disagrees with statevector {truth}"
        );
    }
    e
}

#[test]
fn energy_within_five_percent_at_modest_bounds() {
    // The abstract's C3: decompressed tensors yield energies within 1-5 %.
    for (n, seed) in [(12usize, 5u64), (16, 6), (18, 7)] {
        let graph = Graph::random_regular(n, 3, seed);
        let params = QaoaParams::fixed_angles_3reg_p2();
        let exact = exact_and_check_oracle(&graph, &params);
        for mode in [QcfCompressor::ratio(), QcfCompressor::speed()] {
            let mut hook = CompressingHook::new(&mode, ErrorBound::Abs(1e-3), 2);
            let e = Simulator::default()
                .energy_with_hook(&graph, &params, &mut hook)
                .expect("compressed run")
                .energy;
            let rel = (e - exact).abs() / exact;
            assert!(
                rel < 0.05,
                "{} on N={n}: {:.2}% energy error at eb=1e-3",
                mode.name(),
                rel * 100.0
            );
            assert!(hook.stats.tensors_compressed > 0, "nothing was compressed");
        }
    }
}

#[test]
fn tighter_bounds_converge_to_exact() {
    let graph = Graph::random_regular(14, 3, 8);
    let params = QaoaParams::fixed_angles_3reg_p2();
    let exact = exact_and_check_oracle(&graph, &params);
    let framework = QcfCompressor::ratio();
    let mut last_err = f64::INFINITY;
    for eb in [1e-2, 1e-4, 1e-6, 1e-8] {
        let mut hook = CompressingHook::new(&framework, ErrorBound::Abs(eb), 2);
        let e = Simulator::default()
            .energy_with_hook(&graph, &params, &mut hook)
            .expect("compressed run")
            .energy;
        let err = (e - exact).abs();
        assert!(
            err <= last_err * 4.0 + 1e-12,
            "error should broadly shrink with the bound: {err} after {last_err}"
        );
        last_err = err;
    }
    assert!(
        last_err < 1e-5,
        "at eb=1e-8 the energy should be essentially exact"
    );
}

#[test]
fn compression_shrinks_intermediate_footprint() {
    let graph = Graph::random_regular(22, 3, 13);
    let params = QaoaParams::fixed_angles_3reg_p2();
    let framework = QcfCompressor::ratio();
    let mut hook = CompressingHook::new(&framework, ErrorBound::Abs(1e-4), 64);
    Simulator::default()
        .energy_with_hook(&graph, &params, &mut hook)
        .expect("run");
    assert!(
        hook.stats.ratio() > 3.0,
        "intermediates should compress well, got {:.2}x",
        hook.stats.ratio()
    );
    assert!(hook.stats.compressed_bytes < hook.stats.uncompressed_bytes);
}

#[test]
fn per_edge_terms_stay_physical_under_compression() {
    // ⟨Z_a Z_b⟩ must stay in [-1, 1] (up to bound-sized slack) even with
    // lossy tensors.
    let graph = Graph::cycle(12);
    let params = QaoaParams::new(vec![0.7, 0.4], vec![0.2, 0.6]);
    let framework = QcfCompressor::speed();
    let mut hook = CompressingHook::new(&framework, ErrorBound::Abs(1e-3), 2);
    let report = Simulator::default()
        .energy_with_hook(&graph, &params, &mut hook)
        .expect("compressed run");
    for (i, &zz) in report.zz_terms.iter().enumerate() {
        assert!(
            zz.abs() < 1.05,
            "edge {i}: ⟨ZZ⟩ = {zz} left the physical range"
        );
    }
}

#[test]
fn erdos_renyi_and_complete_graphs_work_too() {
    let params = QaoaParams::new(vec![0.5], vec![0.3]);
    for graph in [Graph::erdos_renyi(12, 0.3, 17), Graph::complete(8)] {
        let exact = exact_and_check_oracle(&graph, &params);
        let framework = QcfCompressor::ratio();
        let mut hook = CompressingHook::new(&framework, ErrorBound::Abs(1e-4), 2);
        let e = Simulator::default()
            .energy_with_hook(&graph, &params, &mut hook)
            .expect("compressed run")
            .energy;
        assert!((e - exact).abs() / exact.abs().max(1e-9) < 0.02);
    }
}
