//! Workspace-level property tests: the invariants that must hold for *any*
//! input, not just the evaluation corpus.

use proptest::prelude::*;
use qcf::prelude::*;
use qcf::tensornet::{contract, contract_serial, multiply_keep, multiply_keep_serial};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A tensor with the given labels, label-dims drawn from `dim_of`, and
/// seeded random complex data.
fn random_tensor(labels: &[u32], dim_of: &[usize], seed: u64) -> Tensor {
    let dims: Vec<usize> = labels.iter().map(|&l| dim_of[l as usize]).collect();
    let total: usize = dims.iter().product();
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let data: Vec<Complex64> = (0..total)
        .map(|_| Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
        .collect();
    Tensor::new(labels.to_vec(), dims, data).unwrap()
}

fn assert_tensors_bit_identical(par: &Tensor, ser: &Tensor, what: &str) {
    assert_eq!(par.indices(), ser.indices(), "{what}: labels differ");
    assert_eq!(par.dims(), ser.dims(), "{what}: dims differ");
    for (i, (x, y)) in par.data().iter().zip(ser.data()).enumerate() {
        assert_eq!(x.re.to_bits(), y.re.to_bits(), "{what}: re differs at {i}");
        assert_eq!(x.im.to_bits(), y.im.to_bits(), "{what}: im differs at {i}");
    }
}

/// Forces the block-parallel GEMM, permute and broadcast kernels (well past
/// `PAR_MIN_ELEMS`) and checks them bit-for-bit against the serial walk.
#[test]
fn large_contract_and_multiply_bit_identical_to_serial() {
    let dim_of = [32usize, 16, 16, 32, 2, 2];
    let a = random_tensor(&[0, 1, 2], &dim_of, 11); // 8192 elements
    let b = random_tensor(&[2, 3], &dim_of, 12); // 512 elements, shares label 2
    assert_tensors_bit_identical(
        &contract(&a, &b).unwrap(),
        &contract_serial(&a, &b).unwrap(),
        "contract",
    );
    // Union output: 32·16·16·32 = 262144 elements — dozens of blocks.
    assert_tensors_bit_identical(
        &multiply_keep(&a, &b).unwrap(),
        &multiply_keep_serial(&a, &b).unwrap(),
        "multiply_keep",
    );
    // Permuted operands (no identity fast path on either side).
    let ap = a.permuted(&[2, 0, 1]).unwrap();
    let bp = b.permuted(&[3, 2]).unwrap();
    assert_tensors_bit_identical(
        &contract(&ap, &bp).unwrap(),
        &contract_serial(&ap, &bp).unwrap(),
        "contract permuted",
    );
}

fn any_f64_buffer() -> impl Strategy<Value = Vec<f64>> {
    // Finite values across magnitudes, plus heavy repetition and zeros —
    // the regimes the compressors branch on.
    let val = prop_oneof![
        4 => -1.0f64..1.0,
        2 => Just(0.0f64),
        1 => -1e-9f64..1e-9,
        1 => -1e6f64..1e6,
        1 => 0.24f64..0.26,
    ];
    prop::collection::vec(val, 0..700)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn parallel_tensor_ops_bit_identical_to_serial(
        dim_picks in prop::collection::vec(2usize..5, 6..7),
        a_mask in 1u8..64,
        b_mask in 1u8..64,
        seed in 0u64..1_000_000,
    ) {
        // Random label subsets of a 6-label universe (dims 2..=4 each), with
        // b's axis order shuffled so permutation paths are exercised. Output
        // sizes stay ≤ 4096, bracketing the parallel cutover threshold.
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let labels_a: Vec<u32> = (0..6).filter(|i| a_mask & (1 << i) != 0).collect();
        let mut labels_b: Vec<u32> = (0..6).filter(|i| b_mask & (1 << i) != 0).collect();
        labels_b.shuffle(&mut rng);
        let a = random_tensor(&labels_a, &dim_picks, seed.wrapping_mul(2) + 1);
        let b = random_tensor(&labels_b, &dim_picks, seed.wrapping_mul(2) + 2);

        let par = contract(&a, &b).unwrap();
        let ser = contract_serial(&a, &b).unwrap();
        assert_tensors_bit_identical(&par, &ser, "contract");

        let par = multiply_keep(&a, &b).unwrap();
        let ser = multiply_keep_serial(&a, &b).unwrap();
        assert_tensors_bit_identical(&par, &ser, "multiply_keep");
    }

    #[test]
    fn error_bounded_compressors_respect_any_abs_bound(
        data in any_f64_buffer(),
        eb_exp in -8i32..-1,
    ) {
        let eb = 10f64.powi(eb_exp);
        let bound = ErrorBound::Abs(eb);
        let mut comps: Vec<Box<dyn Compressor>> = vec![
            by_name("cuSZ").unwrap(),
            by_name("cuSZx").unwrap(),
            by_name("cuZFP").unwrap(),
            Box::new(QcfCompressor::ratio()),
            Box::new(QcfCompressor::speed()),
        ];
        comps.push(Box::new(QcfCompressor::with_stages(
            qcf_core::Mode::Ratio,
            qcf_core::StageToggles::none(),
        )));
        for comp in &comps {
            let r = round_trip(comp.as_ref(), &data, bound).expect("round trip");
            prop_assert_eq!(r.reconstructed.len(), data.len());
            // eb plus buffer-magnitude ULP slack (fp rounding of the
            // reconstruction arithmetic; see metrics::assert_bound).
            let max_abs = data
                .iter()
                .chain(&r.reconstructed)
                .fold(0.0f64, |m, &v| m.max(v.abs()));
            let tol = eb * (1.0 + 1e-9) + max_abs * 16.0 * f64::EPSILON;
            for (i, (a, b)) in data.iter().zip(&r.reconstructed).enumerate() {
                prop_assert!(
                    (a - b).abs() <= tol,
                    "{} at {}: |{} - {}| > {}", comp.name(), i, a, b, eb
                );
            }
        }
    }

    #[test]
    fn lossless_compressors_are_bit_exact_on_anything(data in any_f64_buffer()) {
        for name in ["LZ4", "Snappy", "GDeflate", "Cascaded", "Bitcomp", "memcpy"] {
            let comp = by_name(name).unwrap();
            let r = round_trip(comp.as_ref(), &data, ErrorBound::Abs(1e-3)).expect("round trip");
            for (a, b) in data.iter().zip(&r.reconstructed) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "{} altered bits", name);
            }
        }
    }

    #[test]
    fn truncated_streams_never_panic(
        data in prop::collection::vec(-1.0f64..1.0, 1..200),
        cut_frac in 0.0f64..1.0,
    ) {
        let stream = Stream::new(DeviceSpec::a100());
        let mut comps = all_compressors();
        comps.push(Box::new(QcfCompressor::ratio()));
        comps.push(Box::new(QcfCompressor::speed()));
        for comp in &comps {
            let bytes = comp.compress(&data, ErrorBound::Abs(1e-3), &stream).unwrap();
            let cut = ((bytes.len() as f64) * cut_frac) as usize;
            // Must return an error or wrong-length data — never panic.
            let _ = comp.decompress(&bytes[..cut.min(bytes.len().saturating_sub(1))], &stream);
        }
    }

    #[test]
    fn random_circuit_energy_matches_statevector(
        seed in 0u64..500,
        n in 4usize..9,
    ) {
        let graph = Graph::erdos_renyi(n, 0.5, seed);
        if graph.m() == 0 {
            return Ok(());
        }
        let params = QaoaParams::new(vec![0.3 + (seed % 7) as f64 * 0.1], vec![0.2]);
        let circuit = qcircuit::qaoa_circuit(&graph, &params);
        let sv = StateVector::run(&circuit);
        let tn = Simulator::default().energy(&graph, &params).unwrap().energy;
        prop_assert!((sv.maxcut_energy(&graph) - tn).abs() < 1e-8);
    }

    #[test]
    fn compressed_energy_error_bounded_by_loose_envelope(
        seed in 0u64..100,
    ) {
        let graph = Graph::random_regular(8, 3, seed);
        let params = QaoaParams::fixed_angles_3reg_p1();
        let sim = Simulator::default();
        let exact = sim.energy(&graph, &params).unwrap().energy;
        let framework = QcfCompressor::speed();
        let mut hook = CompressingHook::new(&framework, ErrorBound::Abs(1e-5), 2);
        let e = sim.energy_with_hook(&graph, &params, &mut hook).unwrap().energy;
        // Loose envelope: 1e-5 pointwise noise cannot move a p=1 energy of a
        // dozen edges by a percent.
        prop_assert!((e - exact).abs() / exact < 0.01);
    }
}
