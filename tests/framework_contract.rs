//! Contract tests for the whole compressor suite on *real* simulation
//! tensors: error bounds honoured, lossless codecs bit-exact, and the
//! framework's ratio dominance (claims C1/C2 at test scale).

use qcf::prelude::*;
use tensornet::planes::as_interleaved;

/// Real intermediate tensors from a QAOA contraction — the *largest* ones,
/// which are what the system compresses (small tensors sit under the
/// compression threshold in practice, exactly as `CompressingHook`'s
/// `min_elems` models).
fn real_tensors() -> Vec<Vec<f64>> {
    let graph = Graph::random_regular(38, 3, 2);
    let params = QaoaParams::fixed_angles_3reg_p2();
    let mut trace = TraceHook::new(2048, 0);
    Simulator::default()
        .energy_with_hook(&graph, &params, &mut trace)
        .expect("trace run");
    let mut captured = trace.into_captured();
    captured.sort_by_key(|t| std::cmp::Reverse(t.len()));
    captured.truncate(8);
    let tensors: Vec<Vec<f64>> = captured
        .iter()
        .map(|t| as_interleaved(t.data()).to_vec())
        .collect();
    assert!(!tensors.is_empty(), "trace produced no tensors");
    tensors
}

#[test]
fn every_compressor_honours_its_contract_on_real_tensors() {
    let tensors = real_tensors();
    let eb = 1e-4;
    let mut comps = all_compressors();
    comps.push(Box::new(QcfCompressor::ratio()));
    comps.push(Box::new(QcfCompressor::speed()));
    for comp in &comps {
        for t in &tensors {
            let r = round_trip(comp.as_ref(), t, ErrorBound::Abs(eb)).expect("round trip");
            match comp.kind() {
                CompressorKind::Lossless => {
                    for (a, b) in t.iter().zip(&r.reconstructed) {
                        assert_eq!(
                            a.to_bits(),
                            b.to_bits(),
                            "{} claimed lossless but altered bits",
                            comp.name()
                        );
                    }
                }
                CompressorKind::ErrorBounded => {
                    assert!(
                        r.quality.max_abs_error <= eb * (1.0 + 1e-9),
                        "{} exceeded bound: {:.3e} > {eb:.3e}",
                        comp.name(),
                        r.quality.max_abs_error
                    );
                }
            }
        }
    }
}

#[test]
fn framework_ratio_mode_has_best_aggregate_ratio() {
    let tensors = real_tensors();
    let bound = ErrorBound::Abs(1e-4);
    let total: usize = tensors.iter().map(|t| t.len() * 8).sum();

    let aggregate = |comp: &dyn Compressor| -> f64 {
        let bytes: usize = tensors
            .iter()
            .map(|t| {
                round_trip(comp, t, bound)
                    .expect("round trip")
                    .compressed_bytes
            })
            .sum();
        total as f64 / bytes as f64
    };

    let qcf_ratio = aggregate(&QcfCompressor::ratio());
    for comp in all_compressors() {
        let cr = aggregate(comp.as_ref());
        assert!(
            qcf_ratio >= cr,
            "QCF-ratio ({qcf_ratio:.2}x) lost to {} ({cr:.2}x)",
            comp.name()
        );
    }
    // Claim C1 direction: a large multiple over plain cuSZ.
    let cusz = aggregate(by_name("cuSZ").unwrap().as_ref());
    assert!(
        qcf_ratio > 2.0 * cusz,
        "expected a clear win over plain cuSZ: {qcf_ratio:.2}x vs {cusz:.2}x"
    );
}

#[test]
fn speed_mode_beats_cuszx_ratio_at_comparable_time() {
    let tensors = real_tensors();
    let bound = ErrorBound::Abs(1e-4);
    let (mut qcf_bytes, mut szx_bytes) = (0usize, 0usize);
    let (mut qcf_time, mut szx_time) = (0.0f64, 0.0f64);
    let qcf = QcfCompressor::speed();
    let szx = by_name("cuSZx").unwrap();
    for t in &tensors {
        let r1 = round_trip(&qcf, t, bound).unwrap();
        let r2 = round_trip(szx.as_ref(), t, bound).unwrap();
        qcf_bytes += r1.compressed_bytes;
        szx_bytes += r2.compressed_bytes;
        qcf_time += (t.len() * 8) as f64 / r1.gpu_compress_bps;
        szx_time += (t.len() * 8) as f64 / r2.gpu_compress_bps;
    }
    let ratio_gain = szx_bytes as f64 / qcf_bytes as f64;
    let slowdown = qcf_time / szx_time;
    assert!(
        ratio_gain > 1.3,
        "speed mode ratio gain only {ratio_gain:.2}x over cuSZx"
    );
    assert!(
        slowdown < 3.0,
        "speed mode {slowdown:.2}x slower than cuSZx"
    );
}

#[test]
fn cross_compressor_decode_dispatch() {
    // decompress_any must route any registry stream; framework streams are
    // decoded by their own type.
    let tensors = real_tensors();
    let t = &tensors[0];
    let stream = Stream::new(DeviceSpec::a100());
    for comp in all_compressors() {
        let bytes = comp.compress(t, ErrorBound::Abs(1e-3), &stream).unwrap();
        let rec = compressors::decompress_any(&bytes, &stream).unwrap();
        assert_eq!(rec.len(), t.len(), "{}", comp.name());
    }
}

#[test]
fn framework_streams_reject_cross_mode_decode() {
    let t = &real_tensors()[0];
    let stream = Stream::new(DeviceSpec::a100());
    let bytes = QcfCompressor::ratio()
        .compress(t, ErrorBound::Abs(1e-3), &stream)
        .unwrap();
    assert!(
        QcfCompressor::speed().decompress(&bytes, &stream).is_err(),
        "speed-mode decoder must reject a ratio-mode stream"
    );
}
