//! Ratio mode vs speed mode: the framework's configurability (claim C2).
//!
//! Sweeps buffer sizes and shows that speed mode compresses at
//! cuSZx-comparable simulated throughput while achieving several times the
//! ratio, whereas ratio mode trades throughput for maximum compression.
//!
//! Run with: `cargo run --release --example throughput_modes`

use qcf::prelude::*;
use rand::{Rng, SeedableRng};

/// Synthetic QTensor-like buffer: small value alphabet + scattered
/// near-zeros, interleaved complex (matches the E1 characterization).
fn tensor_like(n_complex: usize, seed: u64) -> Vec<f64> {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let alphabet: Vec<(f64, f64)> = (0..96)
        .map(|k| ((k as f64 * 0.41).cos() * 0.5, (k as f64 * 0.41).sin() * 0.5))
        .collect();
    let mut out = Vec::with_capacity(n_complex * 2);
    for _ in 0..n_complex {
        if rng.gen::<f64>() < 0.55 {
            out.push(rng.gen_range(-1e-8..1e-8));
            out.push(rng.gen_range(-1e-8..1e-8));
        } else {
            let (re, im) = alphabet[rng.gen_range(0..alphabet.len())];
            out.push(re);
            out.push(im);
        }
    }
    out
}

fn main() {
    let bound = ErrorBound::Abs(1e-4);
    println!(
        "{:>12} | {:<10} {:>8} {:>13} | {:<10} {:>8} {:>13}",
        "elements", "mode", "CR", "comp GB/s", "baseline", "CR", "comp GB/s"
    );
    for exp in [16u32, 18, 20, 22] {
        let data = tensor_like(1usize << (exp - 1), exp as u64);
        let pairs: [(Box<dyn Compressor>, Box<dyn Compressor>); 2] = [
            (Box::new(QcfCompressor::speed()), by_name("cuSZx").unwrap()),
            (Box::new(QcfCompressor::ratio()), by_name("cuSZ").unwrap()),
        ];
        for (ours, baseline) in pairs {
            let r1 = round_trip(ours.as_ref(), &data, bound).unwrap();
            let r2 = round_trip(baseline.as_ref(), &data, bound).unwrap();
            println!(
                "{:>12} | {:<10} {:>7.1}x {:>13.1} | {:<10} {:>7.1}x {:>13.1}",
                1usize << exp,
                r1.name,
                r1.quality.compression_ratio,
                r1.gpu_compress_bps / 1e9,
                r2.name,
                r2.quality.compression_ratio,
                r2.gpu_compress_bps / 1e9,
            );
        }
    }
    println!("\nspeed mode should sit near cuSZx's throughput column with a multiple of its CR;");
    println!("ratio mode should dominate every CR column at lower (cuSZ-class) throughput.");
}
