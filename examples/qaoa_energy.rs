//! End-to-end fidelity: QAOA energies with compressed intermediate tensors.
//!
//! Reproduces the abstract's claim C3 in miniature: "decompressed tensors
//! can be used in QTensor circuit simulation to yield a final energy result
//! within 1-5% of the true energy value."
//!
//! Run with: `cargo run --release --example qaoa_energy`

use qcf::prelude::*;

fn main() {
    let bounds = [1e-2, 1e-3, 1e-4];
    println!(
        "{:<26} {:>10} | {}",
        "instance",
        "E_exact",
        bounds.map(|b| format!("rel.err @ eb={b:.0e}")).join("  ")
    );

    for (n, seed) in [(16usize, 1u64), (20, 2), (24, 3)] {
        let graph = Graph::random_regular(n, 3, seed);
        let params = QaoaParams::fixed_angles_3reg_p2();
        let sim = Simulator::default();
        let exact = sim
            .energy(&graph, &params)
            .expect("exact run failed")
            .energy;

        // Cross-check the tensor-network result against brute force where
        // a statevector fits.
        if n <= 20 {
            let sv = StateVector::run(&qcircuit::qaoa_circuit(&graph, &params));
            assert!((sv.maxcut_energy(&graph) - exact).abs() < 1e-8);
        }

        let mut cells = Vec::new();
        for eb in bounds {
            let framework = QcfCompressor::ratio();
            let mut hook = CompressingHook::new(&framework, ErrorBound::Abs(eb), 2);
            let e = sim
                .energy_with_hook(&graph, &params, &mut hook)
                .expect("compressed run failed")
                .energy;
            cells.push(format!(
                "{:>8.4}% (CR {:>5.1}x)",
                (e - exact).abs() / exact * 100.0,
                hook.stats.ratio()
            ));
        }
        println!(
            "{:<26} {:>10.5} | {}",
            format!("N={n} 3-regular p=2"),
            exact,
            cells.join("  ")
        );
    }

    println!("\nAdaptive bound selection (target: ≤1% energy error):");
    let graph = Graph::random_regular(14, 3, 9);
    let params = QaoaParams::fixed_angles_3reg_p2();
    let framework = QcfCompressor::ratio();
    let result = qcf_core::search_bound(&framework, &graph, &params, 0.01, 1e-1, 4.0, 10)
        .expect("no bound met the target");
    println!(
        "  chose eb = {:.2e} -> {:.3}% energy error at {:.1}x tensor compression",
        result.bound,
        result.rel_energy_error * 100.0,
        result.compression_ratio
    );
}
