//! The nine-compressor comparison on real QTensor tensors (E2 in miniature).
//!
//! Run with: `cargo run --release --example compressor_comparison`

use qcf::prelude::*;
use tensornet::planes::as_interleaved;
use tensornet::stats::{distinct_values, ValueStats};

fn main() {
    // Capture a pool of real intermediates from a mid-size instance.
    let graph = Graph::random_regular(30, 3, 11);
    let params = QaoaParams::fixed_angles_3reg_p2();
    let mut trace = TraceHook::new(1024, 6);
    Simulator::default()
        .energy_with_hook(&graph, &params, &mut trace)
        .unwrap();

    // Each tensor is compressed individually (as in the real system, where
    // intermediates are compressed as they are produced); the table reports
    // aggregates over the tensor set.
    let tensors: Vec<Vec<f64>> = trace
        .captured()
        .iter()
        .map(|t| as_interleaved(t.data()).to_vec())
        .collect();
    let total: usize = tensors.iter().map(|t| t.len()).sum();
    for (i, t) in tensors.iter().enumerate() {
        let stats = ValueStats::of(t, 1e-7);
        println!(
            "tensor {i}: {:>6} doubles | range [{:>6.3}, {:>6.3}] | near-zero {:>5.1}% | {:>4} distinct",
            t.len(),
            stats.min,
            stats.max,
            stats.near_zero_frac * 100.0,
            distinct_values(t),
        );
    }
    println!();

    let bound = ErrorBound::Rel(1e-4);
    println!(
        "{:<10} {:>10} {:>12} {:>14} {:>14}",
        "compressor", "CR", "max err", "comp (GB/s)", "decomp (GB/s)"
    );
    let mut comps = all_compressors();
    comps.push(Box::new(QcfCompressor::ratio()));
    comps.push(Box::new(QcfCompressor::speed()));
    for comp in &comps {
        let mut compressed = 0usize;
        let mut max_err = 0.0f64;
        let (mut t_comp, mut t_decomp) = (0.0f64, 0.0f64);
        for t in &tensors {
            let r = round_trip(comp.as_ref(), t, bound).expect("round trip failed");
            compressed += r.compressed_bytes;
            max_err = max_err.max(r.quality.max_abs_error);
            t_comp += (t.len() * 8) as f64 / r.gpu_compress_bps;
            t_decomp += (t.len() * 8) as f64 / r.gpu_decompress_bps;
        }
        println!(
            "{:<10} {:>9.2}x {:>12.2e} {:>14.1} {:>14.1}",
            comp.name(),
            (total * 8) as f64 / compressed as f64,
            max_err,
            (total * 8) as f64 / t_comp / 1e9,
            (total * 8) as f64 / t_decomp / 1e9,
        );
    }
    println!("\n(throughputs are simulated-A100 numbers from the gpu-model cost model)");
}
