//! Chunk-compressed full-statevector simulation — the memory-wall use-case
//! that motivates compression for quantum circuit simulation.
//!
//! Run with: `cargo run --release --example statevector_compression`

use qcf::prelude::*;
use qtensor::CompressedState;

fn main() {
    let n = 18;
    let graph = Graph::random_regular(n, 3, 13);
    let params = QaoaParams::fixed_angles_3reg_p1();
    let circuit = qcircuit::qaoa_circuit(&graph, &params);

    let dense = StateVector::run(&circuit);
    let true_energy = dense.maxcut_energy(&graph);
    println!(
        "N={n} QAOA p=1: dense statevector needs {} MiB; true energy {true_energy:.6}\n",
        (16usize << n) >> 20
    );

    println!(
        "{:<10} {:>9} {:>14} {:>12} {:>12}",
        "compressor", "eb", "resident KiB", "fidelity", "energy err"
    );
    for (name, comp) in [
        ("cuSZx", by_name("cuSZx").unwrap()),
        ("cuSZ", by_name("cuSZ").unwrap()),
        (
            "QCF-ratio",
            Box::new(QcfCompressor::ratio()) as Box<dyn Compressor>,
        ),
    ] {
        for eb in [1e-6, 1e-9] {
            let state = CompressedState::run(&circuit, 12, comp.as_ref(), ErrorBound::Abs(eb))
                .expect("compressed run failed");
            let fidelity = state.to_statevector().unwrap().fidelity(&dense);
            let energy = state.maxcut_energy(&graph).unwrap();
            println!(
                "{:<10} {:>9.0e} {:>14} {:>12.6} {:>11.4}%",
                name,
                eb,
                state.stats.peak_resident_bytes / 1024,
                fidelity,
                (energy - true_energy).abs() / true_energy * 100.0,
            );
        }
    }
    println!(
        "\n(chunks of 2^12 amplitudes; every gate decompresses, updates and \
         recompresses the chunks it touches)"
    );
}
