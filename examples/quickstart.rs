//! Quickstart: compress one real simulation tensor and check the contract.
//!
//! Run with: `cargo run --release --example quickstart`

use qcf::prelude::*;
use tensornet::planes::as_interleaved;

fn main() {
    // 1. Build a QAOA MaxCut workload and capture a real intermediate
    //    tensor from the tensor-network contraction.
    let graph = Graph::random_regular(26, 3, 42);
    let params = QaoaParams::fixed_angles_3reg_p2();
    let mut trace = TraceHook::new(512, 1);
    Simulator::default()
        .energy_with_hook(&graph, &params, &mut trace)
        .expect("simulation failed");
    let tensor = trace
        .captured()
        .first()
        .expect("no intermediate captured")
        .clone();
    let flat = as_interleaved(tensor.data());
    println!(
        "captured intermediate tensor: {} complex elements ({} KiB)",
        tensor.len(),
        tensor.nbytes() / 1024
    );

    // 2. Compress it with the framework's two modes and a plain cuSZ
    //    baseline, under a 1e-4 absolute error bound.
    let bound = ErrorBound::Abs(1e-4);
    for comp in [
        Box::new(QcfCompressor::ratio()) as Box<dyn Compressor>,
        Box::new(QcfCompressor::speed()),
        by_name("cuSZ").unwrap(),
        by_name("cuSZx").unwrap(),
    ] {
        let report = round_trip(comp.as_ref(), flat, bound).expect("round trip failed");
        println!(
            "  {:10}  ratio {:7.1}x   max err {:.2e}   simulated compress {:6.1} GB/s",
            report.name,
            report.quality.compression_ratio,
            report.quality.max_abs_error,
            report.gpu_compress_bps / 1e9,
        );
        assert!(
            report.quality.max_abs_error <= 1e-4 * (1.0 + 1e-9),
            "bound violated!"
        );
    }

    // 3. Use compression inside the simulation itself: every intermediate
    //    round-trips through the framework; the energy barely moves.
    let exact = Simulator::default().energy(&graph, &params).unwrap().energy;
    let framework = QcfCompressor::ratio();
    let mut hook = CompressingHook::new(&framework, bound, 2);
    let compressed = Simulator::default()
        .energy_with_hook(&graph, &params, &mut hook)
        .unwrap()
        .energy;
    println!(
        "\nQAOA energy: exact {exact:.6}, with compressed tensors {compressed:.6} \
         ({:.3}% apart), aggregate tensor CR {:.1}x",
        (exact - compressed).abs() / exact * 100.0,
        hook.stats.ratio(),
    );
}
