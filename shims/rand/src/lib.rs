//! Offline stand-in for the `rand` crate.
//!
//! This build environment has no network access, so the workspace vendors a
//! minimal implementation of exactly the `rand` API surface it consumes:
//! [`RngCore`] / [`SeedableRng`], the [`Rng`] extension trait with `gen`,
//! `gen_range` and `gen_bool`, and [`seq::SliceRandom::shuffle`]. Semantics
//! match upstream closely enough for this workspace (uniform distributions,
//! deterministic seeding); bit-streams are *not* guaranteed to match the
//! upstream crates, which is acceptable because every consumer treats seeds
//! as opaque reproducibility handles, not as cross-crate fixtures.

use std::ops::{Range, RangeInclusive};

/// Core uniform bit source.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (high half of [`next_u64`]).
    ///
    /// [`next_u64`]: RngCore::next_u64
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from the generator's full bit stream
/// (the upstream `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with uniform range sampling (the upstream `SampleUniform`).
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)` (`hi` included when `inclusive`).
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as i128 - lo as i128 + inclusive as i128) as u128;
                assert!(span > 0, "cannot sample an empty range");
                // Modulo bias is < 2^-64 per draw for every span this
                // workspace uses; acceptable for test-data generation.
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                _inclusive: bool,
            ) -> Self {
                assert!(lo <= hi, "cannot sample an empty range");
                let f = <$t as Standard>::sample(rng);
                lo + f * (hi - lo)
            }
        }
    )*};
}
uniform_float!(f32, f64);

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, *self.start(), *self.end(), true)
    }
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw of `T` from its `Standard` distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform draw from a range (`a..b` or `a..=b`).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    //! Slice sampling helpers (the upstream `rand::seq` module).

    use super::{Rng, RngCore};

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// A uniformly random element (`None` when empty).
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Small deterministic generator used by the shim's own tests and as a
/// seed expander (SplitMix64, Steele et al.).
#[derive(Debug, Clone)]
pub struct SplitMix64(pub u64);

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for SplitMix64 {
    fn seed_from_u64(state: u64) -> Self {
        SplitMix64(state)
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SplitMix64::seed_from_u64(1);
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SplitMix64::seed_from_u64(2);
        for _ in 0..1000 {
            let a = rng.gen_range(-5i64..7);
            assert!((-5..7).contains(&a));
            let b = rng.gen_range(0u32..=57);
            assert!(b <= 57);
            let c = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&c));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SplitMix64::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the identity order");
    }

    #[test]
    fn gen_bool_probability_sane() {
        let mut rng = SplitMix64::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = (0..10)
            .map(|_| SplitMix64::seed_from_u64(9).next_u64())
            .collect();
        assert!(a.iter().all(|&v| v == a[0]));
    }
}
