//! Offline stand-in for the `rand_chacha` crate.
//!
//! Implements a genuine ChaCha8 keystream (Bernstein's ChaCha with 8
//! rounds) behind the local `rand` shim traits. Seeding expands the 64-bit
//! seed through SplitMix64 into the 256-bit key, so distinct seeds give
//! independent streams. The bit stream does not match upstream
//! `rand_chacha` (which this workspace never relies on); statistical
//! quality does.

use rand::{RngCore, SeedableRng, SplitMix64};

/// ChaCha8 pseudo-random generator.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// ChaCha state: 4 constant words, 8 key words, 2 counter, 2 nonce.
    state: [u32; 16],
    /// Current keystream block.
    block: [u32; 16],
    /// Next unread word of `block` (16 ⇒ exhausted).
    word: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646E, 0x7962_2D32, 0x6B20_6574];
const ROUNDS: usize = 8;

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..ROUNDS / 2 {
            // column round
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // diagonal round
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self.block.iter_mut().zip(working.iter().zip(&self.state)) {
            *out = w.wrapping_add(s);
        }
        self.word = 0;
        // 64-bit block counter in words 12..14.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        self.state[13] = self.state[13].wrapping_add(carry as u32);
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.word >= 16 {
            self.refill();
        }
        let v = self.block[self.word];
        self.word += 1;
        v
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(state: u64) -> Self {
        let mut expander = SplitMix64(state);
        let mut st = [0u32; 16];
        st[..4].copy_from_slice(&CHACHA_CONSTANTS);
        for k in 0..4 {
            let v = expander.next_u64();
            st[4 + 2 * k] = v as u32;
            st[5 + 2 * k] = (v >> 32) as u32;
        }
        // counter = 0, nonce = 0
        ChaCha8Rng {
            state: st,
            block: [0; 16],
            word: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = ChaCha8Rng::seed_from_u64(7);
            (0..32).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = ChaCha8Rng::seed_from_u64(7);
            (0..32).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = ChaCha8Rng::seed_from_u64(8);
            (0..32).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn uniformity_rough() {
        let mut r = ChaCha8Rng::seed_from_u64(42);
        let n = 20_000;
        let mean = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        let ones: u32 = (0..1000).map(|_| r.next_u64().count_ones()).sum();
        let frac = ones as f64 / 64_000.0;
        assert!((frac - 0.5).abs() < 0.02, "bit balance {frac}");
    }

    #[test]
    fn blocks_differ() {
        let mut r = ChaCha8Rng::seed_from_u64(1);
        let first: Vec<u32> = (0..16).map(|_| r.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| r.next_u32()).collect();
        assert_ne!(first, second);
    }
}
