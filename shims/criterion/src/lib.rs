//! Offline stand-in for the `criterion` crate.
//!
//! Implements the benchmark-group API surface this workspace's benches
//! use (`benchmark_group`, `throughput`, `sample_size`, `warm_up_time`,
//! `measurement_time`, `bench_function`, `bench_with_input`, `Bencher::iter`)
//! with a plain wall-clock harness: warm up for the configured duration,
//! then time batches for the measurement window and report the median
//! per-iteration time plus derived throughput. No statistical outlier
//! analysis, plots, or HTML reports — results print to stdout, one line
//! per benchmark.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export so benches can defeat constant folding.
pub use std::hint::black_box;

/// Work metadata for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: `group/function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("function", parameter)`.
    pub fn new(function: &str, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// Id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Runs the closure under timing.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    /// Median per-iteration time of the last `iter` call.
    last_median: Duration,
    iters_run: u64,
}

impl Bencher {
    /// Times `routine` repeatedly; the return value is passed through
    /// [`black_box`] so the work is not optimized away.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm-up: run until the warm-up window has elapsed at least once.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            black_box(routine());
            warm_iters += 1;
        }
        // Scale batch size so one sample is roughly measurement/sample_size.
        let per_iter = if warm_iters > 0 {
            warm_start.elapsed() / warm_iters as u32
        } else {
            Duration::from_millis(1)
        };
        let target = self.measurement / self.sample_size.max(1) as u32;
        let batch = (target.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 20) as u64;

        let mut samples = Vec::with_capacity(self.sample_size);
        let measure_start = Instant::now();
        let mut total_iters: u64 = 0;
        while samples.len() < self.sample_size && measure_start.elapsed() < self.measurement * 2 {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            samples.push(t0.elapsed() / batch as u32);
            total_iters += batch;
        }
        samples.sort_unstable();
        self.last_median = samples.get(samples.len() / 2).copied().unwrap_or(per_iter);
        self.iters_run = total_iters;
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            sample_size: self.sample_size,
            last_median: Duration::ZERO,
            iters_run: 0,
        };
        f(&mut b);
        self.report(&id.label, b.last_median);
        self
    }

    /// Runs one benchmark parameterized by a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    fn report(&mut self, label: &str, median: Duration) {
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) => {
                let gbps = n as f64 / median.as_secs_f64() / 1e9;
                format!("  thrpt: {gbps:.3} GB/s")
            }
            Some(Throughput::Elements(n)) => {
                let meps = n as f64 / median.as_secs_f64() / 1e6;
                format!("  thrpt: {meps:.3} Melem/s")
            }
            None => String::new(),
        };
        let line = format!("{}/{label}  time: {median:?}{rate}", self.name);
        println!("{line}");
        self.criterion.results.push(BenchResult {
            id: format!("{}/{label}", self.name),
            median,
            throughput: self.throughput,
        });
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// One completed measurement, queryable after the group runs.
#[derive(Debug, Clone)]
pub struct BenchResult {
    pub id: String,
    pub median: Duration,
    pub throughput: Option<Throughput>,
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    /// Results accumulated across all groups, in run order.
    pub results: Vec<BenchResult>,
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: 100,
            warm_up: Duration::from_secs(3),
            measurement: Duration::from_secs(5),
        }
    }
}

/// Declares a bench-group runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` that invokes each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("unit");
            g.sample_size(5)
                .warm_up_time(Duration::from_millis(5))
                .measurement_time(Duration::from_millis(20));
            g.bench_function("spin", |b| {
                b.iter(|| (0..100u64).map(black_box).sum::<u64>())
            });
            g.finish();
        }
        assert_eq!(c.results.len(), 1);
        assert!(c.results[0].median > Duration::ZERO);
        assert_eq!(c.results[0].id, "unit/spin");
    }

    #[test]
    fn ids_format_like_upstream() {
        assert_eq!(BenchmarkId::new("f", 32).label, "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").label, "x");
    }
}
