//! Offline stand-in for the `proptest` crate.
//!
//! Provides the strategy combinators and macros this workspace's property
//! tests use — `Strategy` / `Just` / ranges / tuples / `prop_oneof!` /
//! `prop::collection::vec` / `any::<T>()` / `.prop_map` — driven by a
//! deterministic per-test PRNG. Differences from upstream, deliberately
//! accepted for an offline build:
//!
//! * no shrinking — a failing case reports its seed and values instead;
//! * cases are seeded from a hash of the test name, so runs are fully
//!   reproducible without a persistence file (`.proptest-regressions`
//!   files are ignored);
//! * value distributions are uniform rather than upstream's
//!   edge-case-biased ones, with explicit edge-case injection for the
//!   first cases of each test (zero/min/max for integer-like values come
//!   from the strategies the tests themselves compose).

use std::fmt;

pub use rand::{RngCore, SeedableRng};

/// PRNG driving every strategy draw (SplitMix64 behind the rand shim).
pub type TestRng = rand::SplitMix64;

/// Failure raised by `prop_assert!` and friends inside a test body.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<String> for TestCaseError {
    fn from(s: String) -> Self {
        TestCaseError(s)
    }
}

impl From<&str> for TestCaseError {
    fn from(s: &str) -> Self {
        TestCaseError(s.to_owned())
    }
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
    /// Accepted for upstream API compatibility; the shim does not shrink,
    /// so this is never consulted.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

/// FNV-1a of the test name: the per-test base seed.
pub fn seed_for(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Post-processes generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        (**self).gen_value(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn gen_value(&self, rng: &mut TestRng) -> S::Value {
        (**self).gen_value(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `a..b` and `a..=b` sample uniformly.
impl<T: rand::SampleUniform + 'static> Strategy for std::ops::Range<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: rand::SampleUniform + 'static> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::sample_range(rng, *self.start(), *self.end(), true)
    }
}

/// The `.prop_map` combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn gen_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// Weighted choice between strategies of one value type (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.iter().map(|&(w, _)| w as u64).sum();
        assert!(total > 0, "prop_oneof! weights sum to zero");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.next_u64() % self.total;
        for (w, strat) in &self.arms {
            if pick < *w as u64 {
                return strat.gen_value(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weighted pick out of range")
    }
}

macro_rules! tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        }
    };
}
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl<T: rand::Standard> Arbitrary for T {
    fn arbitrary(rng: &mut TestRng) -> T {
        T::sample(rng)
    }
}

/// The `any::<T>()` strategy.
pub struct Any<T>(std::marker::PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Uniform draw over `T`'s whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Vector of `element` draws with length in `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.start + 1 >= self.size.end {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

pub mod prelude {
    //! One-stop imports mirroring `proptest::prelude`.

    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Weighted (or unweighted) choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", args…)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)+)));
        }
    };
}

/// `prop_assert_eq!(a, b)` with optional trailing format arguments.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), lhs, rhs
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), lhs, rhs
            )));
        }
    }};
}

/// `prop_assert_ne!(a, b)` with optional trailing format arguments.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs == rhs {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($a), stringify!($b), lhs
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs == rhs {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "{}\n  both: {:?}",
                format!($($fmt)+), lhs
            )));
        }
    }};
}

/// The `proptest! { … }` test-block macro.
///
/// Each `#[test] fn name(pat in strategy, …) { body }` becomes a plain
/// test that runs `cases` deterministic random cases; the body may use
/// `prop_assert!`-family macros and `return Ok(())` for early exit.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::proptest!(@run $cfg, $name, ($($arg in $strat),+), $body);
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
    (@run $cfg:expr, $name:ident, ($($arg:pat in $strat:expr),+), $body:block) => {{
        let config: $crate::ProptestConfig = $cfg;
        let base = $crate::seed_for(stringify!($name));
        for case in 0..config.cases as u64 {
            let seed = base ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let mut rng = <$crate::TestRng as $crate::SeedableRng>::seed_from_u64(seed);
            #[allow(unused_parens)]
            let ($($arg),+) =
                ($($crate::Strategy::gen_value(&$strat, &mut rng)),+);
            let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
            if let ::std::result::Result::Err(e) = outcome {
                panic!(
                    "proptest {} failed at case {}/{} (seed {:#x}):\n{}",
                    stringify!($name), case, config.cases, seed, e
                );
            }
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_vec() -> impl Strategy<Value = Vec<f64>> {
        let val = prop_oneof![
            3 => -1.0f64..1.0,
            1 => Just(0.0f64),
        ];
        prop::collection::vec(val, 0..50)
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn vec_lengths_in_range(v in small_vec()) {
            prop_assert!(v.len() < 50);
            for &x in &v {
                prop_assert!((-1.0..1.0).contains(&x) || x == 0.0, "value {}", x);
            }
        }

        #[test]
        fn tuples_and_maps_compose(
            (a, b) in (0u32..10, 0u32..10),
            c in (0u8..5).prop_map(|k| k as usize * 2),
        ) {
            prop_assert!(a < 10 && b < 10);
            prop_assert_eq!(c % 2, 0);
            if a == b {
                return Ok(());
            }
            prop_assert_ne!(a, b);
        }

        #[test]
        fn any_draws_full_domain(x in any::<u64>(), flag in any::<bool>()) {
            let _ = flag;
            prop_assert_eq!(x, x);
        }
    }

    #[test]
    fn seeds_are_deterministic_per_name() {
        assert_eq!(seed_for_test("abc"), seed_for_test("abc"));
        assert_ne!(seed_for_test("abc"), seed_for_test("abd"));
    }

    fn seed_for_test(name: &str) -> u64 {
        crate::seed_for(name)
    }
}
