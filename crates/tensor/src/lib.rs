//! # tensornet — dense complex tensors with named indices
//!
//! Substrate crate for the QCF reproduction: the tensor algebra that the
//! QTensor-style simulator (crate `qtensor`) contracts and that the
//! compression framework (crate `qcf-core`) compresses.
//!
//! * [`Complex64`] — `#[repr(C)]` complex doubles, reinterpretable as
//!   interleaved `f64` (the on-the-wire layout compressors see).
//! * [`Tensor`] — row-major dense tensor whose axes carry integer labels.
//! * [`einsum`] — pairwise contraction (GEMM-backed) and broadcast multiply.
//! * [`planes`] — interleaved ↔ split real/imag plane conversions.
//! * [`stats`] — value-distribution characterization (experiment E1).

pub mod complex;
pub mod einsum;
pub mod planes;
pub mod stats;
pub mod tensor;

pub use complex::Complex64;
pub use einsum::{contract, contract_serial, multiply_keep, multiply_keep_serial, shared_indices};
pub use tensor::{Ix, Tensor, TensorError};
