//! Pairwise tensor contraction and broadcast multiplication.
//!
//! Two primitives cover everything the simulator needs:
//!
//! * [`contract`] — einsum-style contraction of two tensors over all their
//!   shared labels (`ab,bc -> ac`), implemented as permute + GEMM so the hot
//!   loop is a cache-friendly matrix multiply.
//! * [`multiply_keep`] — elementwise product over shared labels *without*
//!   summation (`ab,cb -> acb`). Bucket elimination needs this because a
//!   variable may appear in more than two tensors (diagonal gates create
//!   hyperedges); the sum happens once per bucket via [`Tensor::sum_over`].

use crate::complex::Complex64;
use crate::tensor::{strides_of, Ix, Tensor, TensorError};

/// Labels present in both tensors, in `a`'s storage order.
pub fn shared_indices(a: &Tensor, b: &Tensor) -> Vec<Ix> {
    a.indices().iter().copied().filter(|ix| b.position(*ix).is_some()).collect()
}

/// Validates that shared labels agree on dimension.
fn check_shared_dims(a: &Tensor, b: &Tensor, shared: &[Ix]) -> Result<(), TensorError> {
    for &ix in shared {
        let da = a.dim_of(ix).expect("shared index on a");
        let db = b.dim_of(ix).expect("shared index on b");
        if da != db {
            return Err(TensorError::DimConflict { index: ix, a: da, b: db });
        }
    }
    Ok(())
}

/// Contracts `a` and `b` over every shared label.
///
/// Output labels are `a`'s free labels followed by `b`'s free labels, so the
/// result is deterministic. Rank-0 results hold the full inner product.
pub fn contract(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    let shared = shared_indices(a, b);
    check_shared_dims(a, b, &shared)?;

    let free_a: Vec<Ix> =
        a.indices().iter().copied().filter(|ix| !shared.contains(ix)).collect();
    let free_b: Vec<Ix> =
        b.indices().iter().copied().filter(|ix| !shared.contains(ix)).collect();

    // Permute a -> (free_a, shared), b -> (shared, free_b); then it's GEMM.
    let mut order_a = free_a.clone();
    order_a.extend_from_slice(&shared);
    let mut order_b = shared.clone();
    order_b.extend_from_slice(&free_b);
    let pa = a.permuted(&order_a)?;
    let pb = b.permuted(&order_b)?;

    let k: usize = shared.iter().map(|&ix| a.dim_of(ix).unwrap()).product();
    let m: usize = pa.len() / k.max(1);
    let n: usize = pb.len() / k.max(1);

    let da = pa.data();
    let db = pb.data();
    let mut out = vec![Complex64::ZERO; m * n];
    // i-k-j loop order: the inner loop streams both `db` and `out` rows.
    for i in 0..m {
        let arow = &da[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (kk, &av) in arow.iter().enumerate() {
            if av == Complex64::ZERO {
                continue;
            }
            let brow = &db[kk * n..(kk + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o = o.mul_add(av, bv);
            }
        }
    }

    let mut out_ix = free_a;
    out_ix.extend_from_slice(&free_b);
    let mut out_dims = Vec::with_capacity(out_ix.len());
    for &ix in &out_ix {
        out_dims.push(a.dim_of(ix).or_else(|| b.dim_of(ix)).unwrap());
    }
    Tensor::new(out_ix, out_dims, out)
}

/// Elementwise product over shared labels, keeping them in the output.
///
/// Output labels are `a`'s labels followed by `b`'s non-shared labels
/// (einsum `ab,cb -> abc` style, generalized to any ranks).
pub fn multiply_keep(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    let shared = shared_indices(a, b);
    check_shared_dims(a, b, &shared)?;

    let mut out_ix: Vec<Ix> = a.indices().to_vec();
    for &ix in b.indices() {
        if !out_ix.contains(&ix) {
            out_ix.push(ix);
        }
    }
    let mut out_dims = Vec::with_capacity(out_ix.len());
    for &ix in &out_ix {
        out_dims.push(a.dim_of(ix).or_else(|| b.dim_of(ix)).unwrap());
    }
    let total: usize = out_dims.iter().product();

    // Per output axis, the linear-stride contribution into each input
    // (0 when the input lacks that label) — a broadcast walk.
    let sa = strides_of(a.dims());
    let sb = strides_of(b.dims());
    let contrib_a: Vec<usize> =
        out_ix.iter().map(|&ix| a.position(ix).map_or(0, |p| sa[p])).collect();
    let contrib_b: Vec<usize> =
        out_ix.iter().map(|&ix| b.position(ix).map_or(0, |p| sb[p])).collect();

    let rank = out_dims.len();
    let mut counters = vec![0usize; rank];
    let (mut off_a, mut off_b) = (0usize, 0usize);
    let da = a.data();
    let db = b.data();
    let mut out = Vec::with_capacity(total);
    for _ in 0..total {
        out.push(da[off_a] * db[off_b]);
        for axis in (0..rank).rev() {
            counters[axis] += 1;
            off_a += contrib_a[axis];
            off_b += contrib_b[axis];
            if counters[axis] < out_dims[axis] {
                break;
            }
            off_a -= contrib_a[axis] * out_dims[axis];
            off_b -= contrib_b[axis] * out_dims[axis];
            counters[axis] = 0;
        }
    }
    Tensor::new(out_ix, out_dims, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(re: f64) -> Complex64 {
        Complex64::real(re)
    }

    fn t(ix: Vec<Ix>, dims: Vec<usize>, vals: Vec<f64>) -> Tensor {
        Tensor::new(ix, dims, vals.into_iter().map(c).collect()).unwrap()
    }

    #[test]
    fn matrix_product() {
        // [[1,2],[3,4]] @ [[5,6],[7,8]] = [[19,22],[43,50]]
        let a = t(vec![0, 1], vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let b = t(vec![1, 2], vec![2, 2], vec![5.0, 6.0, 7.0, 8.0]);
        let r = contract(&a, &b).unwrap();
        assert_eq!(r.indices(), &[0, 2]);
        let want = [19.0, 22.0, 43.0, 50.0];
        for (got, want) in r.data().iter().zip(want) {
            assert!(got.approx_eq(c(want), 1e-12));
        }
    }

    #[test]
    fn inner_product_is_scalar() {
        let a = t(vec![0], vec![3], vec![1.0, 2.0, 3.0]);
        let b = t(vec![0], vec![3], vec![4.0, 5.0, 6.0]);
        let r = contract(&a, &b).unwrap();
        assert_eq!(r.rank(), 0);
        assert!(r.get(&[]).approx_eq(c(32.0), 1e-12));
    }

    #[test]
    fn outer_product_when_disjoint() {
        let a = t(vec![0], vec![2], vec![1.0, 2.0]);
        let b = t(vec![1], vec![3], vec![3.0, 4.0, 5.0]);
        let r = contract(&a, &b).unwrap();
        assert_eq!(r.dims(), &[2, 3]);
        assert!(r.get(&[1, 2]).approx_eq(c(10.0), 1e-12));
    }

    #[test]
    fn contraction_order_of_shared_axes_irrelevant() {
        // a(i,j,k) with b(k,j) contracts j and k regardless of their order.
        let a = t(vec![0, 1, 2], vec![2, 2, 2], (0..8).map(|x| x as f64).collect());
        let b = t(vec![2, 1], vec![2, 2], vec![1.0, -1.0, 2.0, 0.5]);
        let r = contract(&a, &b).unwrap();
        // brute force
        for i in 0..2 {
            let mut want = 0.0;
            for j in 0..2 {
                for k in 0..2 {
                    want += a.get(&[i, j, k]).re * b.get(&[k, j]).re;
                }
            }
            assert!(r.get(&[i]).approx_eq(c(want), 1e-12), "i={i}");
        }
    }

    #[test]
    fn dim_conflict_detected() {
        let a = t(vec![0], vec![2], vec![1.0, 2.0]);
        let b = t(vec![0], vec![3], vec![1.0, 2.0, 3.0]);
        assert!(matches!(
            contract(&a, &b),
            Err(TensorError::DimConflict { index: 0, a: 2, b: 3 })
        ));
    }

    #[test]
    fn multiply_keep_matches_einsum() {
        // ab,cb -> a b c (our label ordering: a's labels then b's new ones)
        let a = t(vec![0, 1], vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let b = t(vec![2, 1], vec![2, 2], vec![5.0, 6.0, 7.0, 8.0]);
        let r = multiply_keep(&a, &b).unwrap();
        assert_eq!(r.indices(), &[0, 1, 2]);
        for i in 0..2 {
            for j in 0..2 {
                for k in 0..2 {
                    let want = a.get(&[i, j]).re * b.get(&[k, j]).re;
                    assert!(r.get(&[i, j, k]).approx_eq(c(want), 1e-12));
                }
            }
        }
    }

    #[test]
    fn multiply_keep_then_sum_equals_contract() {
        let a = t(vec![0, 1], vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let b = t(vec![1, 2], vec![2, 2], vec![5.0, 6.0, 7.0, 8.0]);
        let direct = contract(&a, &b).unwrap();
        let kept = multiply_keep(&a, &b).unwrap().sum_over(1).unwrap();
        let kept = kept.permuted(direct.indices()).unwrap();
        for (x, y) in kept.data().iter().zip(direct.data()) {
            assert!(x.approx_eq(*y, 1e-12));
        }
    }

    #[test]
    fn multiply_keep_with_scalar() {
        let a = Tensor::scalar(c(3.0));
        let b = t(vec![0], vec![2], vec![1.0, 2.0]);
        let r = multiply_keep(&a, &b).unwrap();
        assert_eq!(r.indices(), &[0]);
        assert!(r.get(&[1]).approx_eq(c(6.0), 1e-12));
    }

    #[test]
    fn complex_contraction_conjugation_free() {
        // contraction must not implicitly conjugate: <i|M|j> style checks live
        // in the simulator; here (1+i)*(1+i) = 2i.
        let z = Complex64::new(1.0, 1.0);
        let a = Tensor::new(vec![0], vec![1], vec![z]).unwrap();
        let b = Tensor::new(vec![0], vec![1], vec![z]).unwrap();
        let r = contract(&a, &b).unwrap();
        assert!(r.get(&[]).approx_eq(Complex64::new(0.0, 2.0), 1e-12));
    }
}
