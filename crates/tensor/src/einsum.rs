//! Pairwise tensor contraction and broadcast multiplication.
//!
//! Two primitives cover everything the simulator needs:
//!
//! * [`contract`] — einsum-style contraction of two tensors over all their
//!   shared labels (`ab,bc -> ac`), implemented as permute + GEMM so the hot
//!   loop is a cache-friendly matrix multiply.
//! * [`multiply_keep`] — elementwise product over shared labels *without*
//!   summation (`ab,cb -> acb`). Bucket elimination needs this because a
//!   variable may appear in more than two tensors (diagonal gates create
//!   hyperedges); the sum happens once per bucket via [`Tensor::sum_over`].

use crate::complex::Complex64;
use crate::tensor::{
    permute_kernel, strides_of, Ix, Tensor, TensorError, PAR_BLOCK, PAR_MIN_ELEMS,
};
use gpu_model::exec::{par_chunks_mut, par_fill_blocks};
use gpu_model::ScratchPool;
use std::sync::OnceLock;

/// Shared scratch arena for the contraction loop's permute intermediates:
/// the `(free, shared)`-ordered copies of the operands live only for the
/// duration of one GEMM, so their buffers are checked back in instead of
/// reallocated per contraction.
pub fn scratch() -> &'static ScratchPool<Complex64> {
    static POOL: OnceLock<ScratchPool<Complex64>> = OnceLock::new();
    POOL.get_or_init(|| ScratchPool::with_metrics("tensor.scratch"))
}

/// A permuted operand: either the tensor's own storage (identity order) or
/// a pooled scratch buffer holding the gathered copy.
enum Operand<'a> {
    Borrowed(&'a [Complex64]),
    Pooled(Vec<Complex64>),
}

impl Operand<'_> {
    fn as_slice(&self) -> &[Complex64] {
        match self {
            Operand::Borrowed(s) => s,
            Operand::Pooled(v) => v,
        }
    }

    /// Returns a pooled buffer to the arena (no-op for borrowed storage).
    fn release(self, pool: &ScratchPool<Complex64>) {
        if let Operand::Pooled(v) = self {
            pool.put(v);
        }
    }
}

/// Permutes `t` into `order` without building a `Tensor`: identity orders
/// borrow the original storage, others gather into a pooled buffer.
fn permuted_operand<'a>(
    t: &'a Tensor,
    order: &[Ix],
    pool: &ScratchPool<Complex64>,
) -> Result<Operand<'a>, TensorError> {
    match t.permute_plan(order)? {
        None => Ok(Operand::Borrowed(t.data())),
        Some((new_dims, contrib)) => {
            let _span = qcf_telemetry::span!("tensor.permute");
            let mut buf = pool.take(t.len());
            permute_kernel(t.data(), &new_dims, &contrib, &mut buf);
            Ok(Operand::Pooled(buf))
        }
    }
}

/// Labels present in both tensors, in `a`'s storage order.
pub fn shared_indices(a: &Tensor, b: &Tensor) -> Vec<Ix> {
    a.indices()
        .iter()
        .copied()
        .filter(|ix| b.position(*ix).is_some())
        .collect()
}

/// Validates that shared labels agree on dimension.
fn check_shared_dims(a: &Tensor, b: &Tensor, shared: &[Ix]) -> Result<(), TensorError> {
    for &ix in shared {
        let da = a.dim_of(ix).expect("shared index on a");
        let db = b.dim_of(ix).expect("shared index on b");
        if da != db {
            return Err(TensorError::DimConflict {
                index: ix,
                a: da,
                b: db,
            });
        }
    }
    Ok(())
}

/// The label/shape bookkeeping shared by [`contract`] and
/// [`contract_serial`].
struct GemmPlan {
    order_a: Vec<Ix>,
    order_b: Vec<Ix>,
    out_ix: Vec<Ix>,
    out_dims: Vec<usize>,
    m: usize,
    n: usize,
    k: usize,
}

fn gemm_plan(a: &Tensor, b: &Tensor) -> Result<GemmPlan, TensorError> {
    let shared = shared_indices(a, b);
    check_shared_dims(a, b, &shared)?;

    let free_a: Vec<Ix> = a
        .indices()
        .iter()
        .copied()
        .filter(|ix| !shared.contains(ix))
        .collect();
    let free_b: Vec<Ix> = b
        .indices()
        .iter()
        .copied()
        .filter(|ix| !shared.contains(ix))
        .collect();

    // Permute a -> (free_a, shared), b -> (shared, free_b); then it's GEMM.
    let mut order_a = free_a.clone();
    order_a.extend_from_slice(&shared);
    let mut order_b = shared.clone();
    order_b.extend_from_slice(&free_b);

    let k: usize = shared.iter().map(|&ix| a.dim_of(ix).unwrap()).product();
    let m: usize = a.len() / k.max(1);
    let n: usize = b.len() / k.max(1);

    let mut out_ix = free_a;
    out_ix.extend_from_slice(&free_b);
    let mut out_dims = Vec::with_capacity(out_ix.len());
    for &ix in &out_ix {
        out_dims.push(a.dim_of(ix).or_else(|| b.dim_of(ix)).unwrap());
    }
    Ok(GemmPlan {
        order_a,
        order_b,
        out_ix,
        out_dims,
        m,
        n,
        k,
    })
}

/// Computes rows `first_row..first_row + rows.len()/n` of the GEMM
/// `out[i][j] = Σ_k a[i][k]·b[k][j]` into `rows` (a chunk of whole output
/// rows). The i-k-j loop order streams both `db` and the output row; the
/// per-element accumulation order is ascending `k` whatever the row split,
/// which is what keeps the parallel output bit-identical to serial.
fn gemm_rows(
    da: &[Complex64],
    db: &[Complex64],
    rows: &mut [Complex64],
    first_row: usize,
    n: usize,
    k: usize,
) {
    for (r, orow) in rows.chunks_mut(n).enumerate() {
        let i = first_row + r;
        let arow = &da[i * k..(i + 1) * k];
        for (kk, &av) in arow.iter().enumerate() {
            if av == Complex64::ZERO {
                continue;
            }
            let brow = &db[kk * n..(kk + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o = o.mul_add(av, bv);
            }
        }
    }
}

/// Contracts `a` and `b` over every shared label.
///
/// Output labels are `a`'s free labels followed by `b`'s free labels, so the
/// result is deterministic. Rank-0 results hold the full inner product.
///
/// The permute and GEMM kernels run block-parallel for large operands, with
/// per-row work assignment and a fixed ascending-`k` accumulation order —
/// output bytes are identical to [`contract_serial`] for every input.
/// Permute intermediates come from the [`scratch`] arena instead of fresh
/// allocations.
pub fn contract(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    let plan = gemm_plan(a, b)?;
    let (m, n, k) = (plan.m, plan.n, plan.k);

    let pool = scratch();
    let pa = permuted_operand(a, &plan.order_a, pool)?;
    let pb = permuted_operand(b, &plan.order_b, pool)?;

    let mut out = vec![Complex64::ZERO; m * n];
    let (da, db) = (pa.as_slice(), pb.as_slice());
    {
        let _span = qcf_telemetry::span!("tensor.gemm");
        if m * n * k.max(1) >= PAR_MIN_ELEMS && n > 0 && m > 1 {
            par_chunks_mut(&mut out, n, |row, orow| gemm_rows(da, db, orow, row, n, k));
        } else if !out.is_empty() {
            gemm_rows(da, db, &mut out, 0, n, k);
        }
    }
    pa.release(pool);
    pb.release(pool);

    Tensor::new(plan.out_ix, plan.out_dims, out)
}

/// Single-threaded reference implementation of [`contract`]: the same
/// algebra with every kernel invoked over the full index range on the
/// calling thread. Exists so tests can assert the parallel path is
/// bit-identical; not intended for production use.
pub fn contract_serial(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    let plan = gemm_plan(a, b)?;
    let (n, k) = (plan.n, plan.k);

    let permute_serial = |t: &Tensor, order: &[Ix]| -> Result<Vec<Complex64>, TensorError> {
        match t.permute_plan(order)? {
            None => Ok(t.data().to_vec()),
            Some((new_dims, contrib)) => {
                let mut buf = vec![Complex64::ZERO; t.len()];
                crate::tensor::permute_range_serial(t.data(), &new_dims, &contrib, &mut buf);
                Ok(buf)
            }
        }
    };
    let da = permute_serial(a, &plan.order_a)?;
    let db = permute_serial(b, &plan.order_b)?;

    let mut out = vec![Complex64::ZERO; plan.m * n];
    if !out.is_empty() {
        gemm_rows(&da, &db, &mut out, 0, n, k);
    }
    Tensor::new(plan.out_ix, plan.out_dims, out)
}

/// The label/stride bookkeeping shared by [`multiply_keep`] and
/// [`multiply_keep_serial`].
struct BroadcastPlan {
    out_ix: Vec<Ix>,
    out_dims: Vec<usize>,
    contrib_a: Vec<usize>,
    contrib_b: Vec<usize>,
    total: usize,
}

fn broadcast_plan(a: &Tensor, b: &Tensor) -> Result<BroadcastPlan, TensorError> {
    let shared = shared_indices(a, b);
    check_shared_dims(a, b, &shared)?;

    let mut out_ix: Vec<Ix> = a.indices().to_vec();
    for &ix in b.indices() {
        if !out_ix.contains(&ix) {
            out_ix.push(ix);
        }
    }
    let mut out_dims = Vec::with_capacity(out_ix.len());
    for &ix in &out_ix {
        out_dims.push(a.dim_of(ix).or_else(|| b.dim_of(ix)).unwrap());
    }
    let total: usize = out_dims.iter().product();

    // Per output axis, the linear-stride contribution into each input
    // (0 when the input lacks that label) — a broadcast walk.
    let sa = strides_of(a.dims());
    let sb = strides_of(b.dims());
    let contrib_a: Vec<usize> = out_ix
        .iter()
        .map(|&ix| a.position(ix).map_or(0, |p| sa[p]))
        .collect();
    let contrib_b: Vec<usize> = out_ix
        .iter()
        .map(|&ix| b.position(ix).map_or(0, |p| sb[p]))
        .collect();
    Ok(BroadcastPlan {
        out_ix,
        out_dims,
        contrib_a,
        contrib_b,
        total,
    })
}

/// Fills `chunk` with the broadcast products for output offsets
/// `start..start + chunk.len()`: the odometer walk of the serial
/// implementation, made restartable by decomposing `start` once. Every
/// element is an independent product of the same two operands, so any
/// block split produces identical bytes.
fn broadcast_range(
    da: &[Complex64],
    db: &[Complex64],
    plan: &BroadcastPlan,
    start: usize,
    chunk: &mut [Complex64],
) {
    let rank = plan.out_dims.len();
    let mut counters = vec![0usize; rank];
    let (mut off_a, mut off_b) = (0usize, 0usize);
    let mut rem = start;
    for axis in (0..rank).rev() {
        let digit = rem % plan.out_dims[axis];
        rem /= plan.out_dims[axis];
        counters[axis] = digit;
        off_a += digit * plan.contrib_a[axis];
        off_b += digit * plan.contrib_b[axis];
    }
    for slot in chunk.iter_mut() {
        *slot = da[off_a] * db[off_b];
        for axis in (0..rank).rev() {
            counters[axis] += 1;
            off_a += plan.contrib_a[axis];
            off_b += plan.contrib_b[axis];
            if counters[axis] < plan.out_dims[axis] {
                break;
            }
            off_a -= plan.contrib_a[axis] * plan.out_dims[axis];
            off_b -= plan.contrib_b[axis] * plan.out_dims[axis];
            counters[axis] = 0;
        }
    }
}

/// Elementwise product over shared labels, keeping them in the output.
///
/// Output labels are `a`'s labels followed by `b`'s non-shared labels
/// (einsum `ab,cb -> abc` style, generalized to any ranks). Large outputs
/// split the broadcast walk over executor blocks; bytes are identical to
/// [`multiply_keep_serial`] for every input.
pub fn multiply_keep(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    let plan = broadcast_plan(a, b)?;
    let mut out = vec![Complex64::ZERO; plan.total];
    let (da, db) = (a.data(), b.data());
    if plan.total >= PAR_MIN_ELEMS {
        par_fill_blocks(&mut out, PAR_BLOCK, |_, range, chunk| {
            broadcast_range(da, db, &plan, range.start, chunk);
        });
    } else if !out.is_empty() {
        broadcast_range(da, db, &plan, 0, &mut out);
    }
    Tensor::new(plan.out_ix, plan.out_dims, out)
}

/// Single-threaded reference implementation of [`multiply_keep`] (one walk
/// over the full output range). Exists so tests can assert the parallel
/// path is bit-identical; not intended for production use.
pub fn multiply_keep_serial(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    let plan = broadcast_plan(a, b)?;
    let mut out = vec![Complex64::ZERO; plan.total];
    if !out.is_empty() {
        broadcast_range(a.data(), b.data(), &plan, 0, &mut out);
    }
    Tensor::new(plan.out_ix, plan.out_dims, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(re: f64) -> Complex64 {
        Complex64::real(re)
    }

    fn t(ix: Vec<Ix>, dims: Vec<usize>, vals: Vec<f64>) -> Tensor {
        Tensor::new(ix, dims, vals.into_iter().map(c).collect()).unwrap()
    }

    #[test]
    fn matrix_product() {
        // [[1,2],[3,4]] @ [[5,6],[7,8]] = [[19,22],[43,50]]
        let a = t(vec![0, 1], vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let b = t(vec![1, 2], vec![2, 2], vec![5.0, 6.0, 7.0, 8.0]);
        let r = contract(&a, &b).unwrap();
        assert_eq!(r.indices(), &[0, 2]);
        let want = [19.0, 22.0, 43.0, 50.0];
        for (got, want) in r.data().iter().zip(want) {
            assert!(got.approx_eq(c(want), 1e-12));
        }
    }

    #[test]
    fn inner_product_is_scalar() {
        let a = t(vec![0], vec![3], vec![1.0, 2.0, 3.0]);
        let b = t(vec![0], vec![3], vec![4.0, 5.0, 6.0]);
        let r = contract(&a, &b).unwrap();
        assert_eq!(r.rank(), 0);
        assert!(r.get(&[]).approx_eq(c(32.0), 1e-12));
    }

    #[test]
    fn outer_product_when_disjoint() {
        let a = t(vec![0], vec![2], vec![1.0, 2.0]);
        let b = t(vec![1], vec![3], vec![3.0, 4.0, 5.0]);
        let r = contract(&a, &b).unwrap();
        assert_eq!(r.dims(), &[2, 3]);
        assert!(r.get(&[1, 2]).approx_eq(c(10.0), 1e-12));
    }

    #[test]
    fn contraction_order_of_shared_axes_irrelevant() {
        // a(i,j,k) with b(k,j) contracts j and k regardless of their order.
        let a = t(
            vec![0, 1, 2],
            vec![2, 2, 2],
            (0..8).map(|x| x as f64).collect(),
        );
        let b = t(vec![2, 1], vec![2, 2], vec![1.0, -1.0, 2.0, 0.5]);
        let r = contract(&a, &b).unwrap();
        // brute force
        for i in 0..2 {
            let mut want = 0.0;
            for j in 0..2 {
                for k in 0..2 {
                    want += a.get(&[i, j, k]).re * b.get(&[k, j]).re;
                }
            }
            assert!(r.get(&[i]).approx_eq(c(want), 1e-12), "i={i}");
        }
    }

    #[test]
    fn dim_conflict_detected() {
        let a = t(vec![0], vec![2], vec![1.0, 2.0]);
        let b = t(vec![0], vec![3], vec![1.0, 2.0, 3.0]);
        assert!(matches!(
            contract(&a, &b),
            Err(TensorError::DimConflict {
                index: 0,
                a: 2,
                b: 3
            })
        ));
    }

    #[test]
    fn multiply_keep_matches_einsum() {
        // ab,cb -> a b c (our label ordering: a's labels then b's new ones)
        let a = t(vec![0, 1], vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let b = t(vec![2, 1], vec![2, 2], vec![5.0, 6.0, 7.0, 8.0]);
        let r = multiply_keep(&a, &b).unwrap();
        assert_eq!(r.indices(), &[0, 1, 2]);
        for i in 0..2 {
            for j in 0..2 {
                for k in 0..2 {
                    let want = a.get(&[i, j]).re * b.get(&[k, j]).re;
                    assert!(r.get(&[i, j, k]).approx_eq(c(want), 1e-12));
                }
            }
        }
    }

    #[test]
    fn multiply_keep_then_sum_equals_contract() {
        let a = t(vec![0, 1], vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let b = t(vec![1, 2], vec![2, 2], vec![5.0, 6.0, 7.0, 8.0]);
        let direct = contract(&a, &b).unwrap();
        let kept = multiply_keep(&a, &b).unwrap().sum_over(1).unwrap();
        let kept = kept.permuted(direct.indices()).unwrap();
        for (x, y) in kept.data().iter().zip(direct.data()) {
            assert!(x.approx_eq(*y, 1e-12));
        }
    }

    #[test]
    fn multiply_keep_with_scalar() {
        let a = Tensor::scalar(c(3.0));
        let b = t(vec![0], vec![2], vec![1.0, 2.0]);
        let r = multiply_keep(&a, &b).unwrap();
        assert_eq!(r.indices(), &[0]);
        assert!(r.get(&[1]).approx_eq(c(6.0), 1e-12));
    }

    #[test]
    fn complex_contraction_conjugation_free() {
        // contraction must not implicitly conjugate: <i|M|j> style checks live
        // in the simulator; here (1+i)*(1+i) = 2i.
        let z = Complex64::new(1.0, 1.0);
        let a = Tensor::new(vec![0], vec![1], vec![z]).unwrap();
        let b = Tensor::new(vec![0], vec![1], vec![z]).unwrap();
        let r = contract(&a, &b).unwrap();
        assert!(r.get(&[]).approx_eq(Complex64::new(0.0, 2.0), 1e-12));
    }
}
