//! Minimal double-precision complex arithmetic.
//!
//! The simulator only needs a small, predictable subset of complex math, so
//! rather than pulling in an external crate we define it here. The layout is
//! `#[repr(C)]` with `re` first so a `&[Complex64]` can be reinterpreted as an
//! interleaved `&[f64]` of twice the length — the compression framework's
//! de-interleaving pre-processing step relies on that layout.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` real and imaginary parts.
#[derive(Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from Cartesian parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        Complex64 { re, im: 0.0 }
    }

    /// Returns `e^(i * theta)` — a unit phasor.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Complex64 {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Creates a complex number from polar coordinates.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex64 {
            re: r * theta.cos(),
            im: r * theta.sin(),
        }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex64 {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude `re² + im²`; cheaper than [`Complex64::abs`].
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude (Euclidean norm).
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Argument (phase angle) in radians.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Complex64 {
            re: self.re * s,
            im: self.im * s,
        }
    }

    /// Multiplicative inverse. Returns non-finite parts when `self` is zero,
    /// matching IEEE division semantics.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sq();
        Complex64 {
            re: self.re / d,
            im: -self.im / d,
        }
    }

    /// Fused multiply-add: `self + a * b`. The compiler can keep this in
    /// registers inside contraction inner loops.
    #[inline(always)]
    pub fn mul_add(self, a: Complex64, b: Complex64) -> Self {
        Complex64 {
            re: self.re + a.re * b.re - a.im * b.im,
            im: self.im + a.re * b.im + a.im * b.re,
        }
    }

    /// Returns true when both parts are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Approximate equality with absolute tolerance `tol` on each part.
    #[inline]
    pub fn approx_eq(self, other: Complex64, tol: f64) -> bool {
        (self.re - other.re).abs() <= tol && (self.im - other.im).abs() <= tol
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn add(self, rhs: Complex64) -> Complex64 {
        Complex64 {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl AddAssign for Complex64 {
    #[inline(always)]
    fn add_assign(&mut self, rhs: Complex64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn sub(self, rhs: Complex64) -> Complex64 {
        Complex64 {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl SubAssign for Complex64 {
    #[inline(always)]
    fn sub_assign(&mut self, rhs: Complex64) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn mul(self, rhs: Complex64) -> Complex64 {
        Complex64 {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl MulAssign for Complex64 {
    #[inline(always)]
    fn mul_assign(&mut self, rhs: Complex64) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn mul(self, rhs: f64) -> Complex64 {
        self.scale(rhs)
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z/w = z * w^-1 by definition
    fn div(self, rhs: Complex64) -> Complex64 {
        self * rhs.inv()
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn neg(self) -> Complex64 {
        Complex64 {
            re: -self.re,
            im: -self.im,
        }
    }
}

impl From<f64> for Complex64 {
    #[inline]
    fn from(re: f64) -> Self {
        Complex64::real(re)
    }
}

impl fmt::Debug for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}i",
            self.re,
            if self.im < 0.0 { "-" } else { "+" },
            self.im.abs()
        )
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl std::iter::Sum for Complex64 {
    fn sum<I: Iterator<Item = Complex64>>(iter: I) -> Self {
        iter.fold(Complex64::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-12;

    #[test]
    fn add_sub_roundtrip() {
        let a = Complex64::new(1.5, -2.5);
        let b = Complex64::new(-0.25, 4.0);
        assert!((a + b - b).approx_eq(a, TOL));
    }

    #[test]
    fn mul_matches_expansion() {
        let a = Complex64::new(2.0, 3.0);
        let b = Complex64::new(-1.0, 0.5);
        let c = a * b;
        assert!((c.re - (-2.0 - 3.0 * 0.5)).abs() < TOL);
        assert!((c.im - (2.0 * 0.5 + -3.0)).abs() < TOL);
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert!((Complex64::I * Complex64::I).approx_eq(-Complex64::ONE, TOL));
    }

    #[test]
    fn conj_mul_is_norm_sq() {
        let a = Complex64::new(3.0, -4.0);
        let p = a * a.conj();
        assert!((p.re - 25.0).abs() < TOL);
        assert!(p.im.abs() < TOL);
        assert!((a.abs() - 5.0).abs() < TOL);
    }

    #[test]
    fn cis_is_unit() {
        for k in 0..16 {
            let z = Complex64::cis(k as f64 * 0.4);
            assert!((z.abs() - 1.0).abs() < TOL);
        }
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(3.0, -0.5);
        assert!(((a * b) / b).approx_eq(a, 1e-10));
    }

    #[test]
    fn mul_add_matches_separate_ops() {
        let acc = Complex64::new(0.5, 0.25);
        let a = Complex64::new(1.0, -1.0);
        let b = Complex64::new(2.0, 3.0);
        assert!(acc.mul_add(a, b).approx_eq(acc + a * b, TOL));
    }

    #[test]
    fn from_polar_matches_cartesian() {
        let z = Complex64::from_polar(2.0, std::f64::consts::FRAC_PI_2);
        assert!(z.approx_eq(Complex64::new(0.0, 2.0), TOL));
        assert!((z.arg() - std::f64::consts::FRAC_PI_2).abs() < TOL);
    }

    #[test]
    fn sum_folds_zero() {
        let v = vec![Complex64::ONE, Complex64::I, Complex64::new(1.0, 1.0)];
        let s: Complex64 = v.into_iter().sum();
        assert!(s.approx_eq(Complex64::new(2.0, 2.0), TOL));
    }

    #[test]
    fn layout_allows_interleaved_view() {
        // The compression pipeline reinterprets &[Complex64] as &[f64].
        assert_eq!(std::mem::size_of::<Complex64>(), 16);
        assert_eq!(std::mem::align_of::<Complex64>(), 8);
        let v = [Complex64::new(1.0, 2.0), Complex64::new(3.0, 4.0)];
        let flat = crate::planes::as_interleaved(&v);
        assert_eq!(flat, &[1.0, 2.0, 3.0, 4.0]);
    }
}
