//! Dense tensors with named (labelled) indices.
//!
//! A [`Tensor`] is a row-major dense array whose axes carry integer labels.
//! Labels are how tensor-network contraction knows which axes to sum over:
//! two tensors sharing label `k` contract over `k`. Labels within one tensor
//! are unique; dimensions are arbitrary (qubit networks use 2 everywhere).

use crate::complex::Complex64;
use gpu_model::exec::par_fill_blocks;
use std::fmt;

/// Element count below which the data-parallel executor is skipped: the
/// kernels are bit-identical either way (see `gpu_model::exec`), so the
/// threshold is purely a latency knob.
pub(crate) const PAR_MIN_ELEMS: usize = 1 << 12;

/// Output elements per parallel block for the element-wise kernels.
pub(crate) const PAR_BLOCK: usize = 1 << 13;

/// `(new_dims, contrib)` of a non-identity permutation: the permuted shape
/// and, per output axis, its source linear-stride contribution.
pub(crate) type PermutePlan = (Vec<usize>, Vec<usize>);

/// An index label. Labels are allocated by the network builder and are unique
/// per logical variable (wire segment) in the tensor network.
pub type Ix = u32;

/// Errors produced by tensor algebra.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The data length does not match the product of the dimensions.
    ShapeMismatch { expected: usize, got: usize },
    /// An index label appears more than once in a single tensor.
    DuplicateIndex(Ix),
    /// A requested label is not present on the tensor.
    MissingIndex(Ix),
    /// Two tensors disagree on the dimension of a shared label.
    DimConflict { index: Ix, a: usize, b: usize },
    /// A permutation did not name every axis exactly once.
    BadPermutation,
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { expected, got } => {
                write!(
                    f,
                    "data length {got} does not match shape product {expected}"
                )
            }
            TensorError::DuplicateIndex(ix) => write!(f, "duplicate index label {ix}"),
            TensorError::MissingIndex(ix) => write!(f, "index label {ix} not present"),
            TensorError::DimConflict { index, a, b } => {
                write!(f, "index {index} has conflicting dimensions {a} and {b}")
            }
            TensorError::BadPermutation => write!(f, "permutation must name every axis once"),
        }
    }
}

impl std::error::Error for TensorError {}

/// A dense, row-major tensor with labelled axes.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    indices: Vec<Ix>,
    dims: Vec<usize>,
    data: Vec<Complex64>,
}

impl Tensor {
    /// Builds a tensor from labels, per-axis dimensions and row-major data.
    pub fn new(
        indices: Vec<Ix>,
        dims: Vec<usize>,
        data: Vec<Complex64>,
    ) -> Result<Self, TensorError> {
        assert_eq!(indices.len(), dims.len(), "one dimension per index label");
        let expected: usize = dims.iter().product();
        if data.len() != expected {
            return Err(TensorError::ShapeMismatch {
                expected,
                got: data.len(),
            });
        }
        for (i, ix) in indices.iter().enumerate() {
            if indices[..i].contains(ix) {
                return Err(TensorError::DuplicateIndex(*ix));
            }
        }
        Ok(Tensor {
            indices,
            dims,
            data,
        })
    }

    /// A rank-0 tensor holding one value.
    pub fn scalar(value: Complex64) -> Self {
        Tensor {
            indices: Vec::new(),
            dims: Vec::new(),
            data: vec![value],
        }
    }

    /// A tensor of all-qubit axes (dimension 2 each), convenient for gates.
    pub fn qubit(indices: Vec<Ix>, data: Vec<Complex64>) -> Result<Self, TensorError> {
        let dims = vec![2; indices.len()];
        Tensor::new(indices, dims, data)
    }

    /// Number of axes.
    #[inline]
    pub fn rank(&self) -> usize {
        self.indices.len()
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor has no elements (possible only with a zero dim).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Axis labels in storage order.
    #[inline]
    pub fn indices(&self) -> &[Ix] {
        &self.indices
    }

    /// Axis dimensions in storage order.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Raw row-major data.
    #[inline]
    pub fn data(&self) -> &[Complex64] {
        &self.data
    }

    /// Mutable raw data (used by compression round-trips).
    #[inline]
    pub fn data_mut(&mut self) -> &mut [Complex64] {
        &mut self.data
    }

    /// Consumes the tensor, returning its parts.
    pub fn into_parts(self) -> (Vec<Ix>, Vec<usize>, Vec<Complex64>) {
        (self.indices, self.dims, self.data)
    }

    /// The dimension of the axis labelled `ix`.
    pub fn dim_of(&self, ix: Ix) -> Option<usize> {
        self.position(ix).map(|p| self.dims[p])
    }

    /// Storage position of label `ix`.
    #[inline]
    pub fn position(&self, ix: Ix) -> Option<usize> {
        self.indices.iter().position(|&i| i == ix)
    }

    /// In-memory bytes of the payload (16 bytes per element).
    #[inline]
    pub fn nbytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<Complex64>()
    }

    /// Row-major strides for the current dims.
    pub fn strides(&self) -> Vec<usize> {
        strides_of(&self.dims)
    }

    /// Element access by multi-index (debug/test oriented; O(rank)).
    pub fn get(&self, idx: &[usize]) -> Complex64 {
        debug_assert_eq!(idx.len(), self.rank());
        let mut lin = 0usize;
        for (axis, &i) in idx.iter().enumerate() {
            debug_assert!(i < self.dims[axis]);
            lin = lin * self.dims[axis] + i;
        }
        self.data[lin]
    }

    /// Element assignment by multi-index.
    pub fn set(&mut self, idx: &[usize], value: Complex64) {
        debug_assert_eq!(idx.len(), self.rank());
        let mut lin = 0usize;
        for (axis, &i) in idx.iter().enumerate() {
            debug_assert!(i < self.dims[axis]);
            lin = lin * self.dims[axis] + i;
        }
        self.data[lin] = value;
    }

    /// Computes the permutation plan for `order`: `None` when `order` is the
    /// identity, otherwise `(new_dims, contrib)` where `contrib[new_axis]`
    /// is the source linear-stride contribution of that output axis.
    pub(crate) fn permute_plan(&self, order: &[Ix]) -> Result<Option<PermutePlan>, TensorError> {
        if order.len() != self.rank() {
            return Err(TensorError::BadPermutation);
        }
        // perm[new_axis] = old_axis
        let mut perm = Vec::with_capacity(order.len());
        for &ix in order {
            match self.position(ix) {
                Some(p) if !perm.contains(&p) => perm.push(p),
                _ => return Err(TensorError::BadPermutation),
            }
        }
        if perm.iter().enumerate().all(|(new, &old)| new == old) {
            return Ok(None);
        }
        let new_dims: Vec<usize> = perm.iter().map(|&p| self.dims[p]).collect();
        let old_strides = self.strides();
        let contrib: Vec<usize> = perm.iter().map(|&p| old_strides[p]).collect();
        Ok(Some((new_dims, contrib)))
    }

    /// Returns a tensor with axes re-ordered so labels appear as in `order`.
    ///
    /// `order` must contain exactly the tensor's labels. Large tensors run
    /// the gather block-parallel; the output is bit-identical to the serial
    /// walk because every element is an independent copy.
    pub fn permuted(&self, order: &[Ix]) -> Result<Tensor, TensorError> {
        let Some((new_dims, contrib)) = self.permute_plan(order)? else {
            return Ok(self.clone());
        };
        let mut out = vec![Complex64::ZERO; self.data.len()];
        permute_kernel(&self.data, &new_dims, &contrib, &mut out);
        Ok(Tensor {
            indices: order.to_vec(),
            dims: new_dims,
            data: out,
        })
    }

    /// Sums the tensor over axis `ix`, removing it.
    ///
    /// Parallel over output elements; each output element accumulates its
    /// `d` addends in ascending-axis order on one worker, so the reduction
    /// order — and therefore every output bit — matches the serial loop.
    pub fn sum_over(&self, ix: Ix) -> Result<Tensor, TensorError> {
        let _span = qcf_telemetry::span!("tensor.sum_over");
        let pos = self.position(ix).ok_or(TensorError::MissingIndex(ix))?;
        let d = self.dims[pos];
        let outer: usize = self.dims[..pos].iter().product();
        let inner: usize = self.dims[pos + 1..].iter().product();
        let mut data = vec![Complex64::ZERO; outer * inner];
        if outer * inner * d >= PAR_MIN_ELEMS && inner > 0 {
            par_fill_blocks(&mut data, PAR_BLOCK, |_, range, chunk| {
                sum_axis_range(&self.data, d, inner, range.start, chunk);
            });
        } else if !data.is_empty() {
            sum_axis_range(&self.data, d, inner, 0, &mut data);
        }
        let mut indices = self.indices.clone();
        let mut dims = self.dims.clone();
        indices.remove(pos);
        dims.remove(pos);
        Ok(Tensor {
            indices,
            dims,
            data,
        })
    }

    /// Fixes axis `ix` at position `value`, removing it (a slice).
    pub fn fix_index(&self, ix: Ix, value: usize) -> Result<Tensor, TensorError> {
        let pos = self.position(ix).ok_or(TensorError::MissingIndex(ix))?;
        let d = self.dims[pos];
        assert!(value < d, "slice position out of range");
        let outer: usize = self.dims[..pos].iter().product();
        let inner: usize = self.dims[pos + 1..].iter().product();
        let mut data = Vec::with_capacity(outer * inner);
        for o in 0..outer {
            let base = (o * d + value) * inner;
            data.extend_from_slice(&self.data[base..base + inner]);
        }
        let mut indices = self.indices.clone();
        let mut dims = self.dims.clone();
        indices.remove(pos);
        dims.remove(pos);
        Ok(Tensor {
            indices,
            dims,
            data,
        })
    }

    /// Frobenius norm of the tensor.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v.norm_sq()).sum::<f64>().sqrt()
    }

    /// Largest magnitude among elements (0 for empty tensors).
    pub fn max_abs(&self) -> f64 {
        self.data
            .iter()
            .map(|v| v.re.abs().max(v.im.abs()))
            .fold(0.0, f64::max)
    }

    /// Multiplies every element by a scalar in place.
    pub fn scale_in_place(&mut self, s: Complex64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Renames an index label (used when stitching networks together).
    pub fn rename_index(&mut self, from: Ix, to: Ix) -> Result<(), TensorError> {
        if from == to {
            return Ok(());
        }
        if self.indices.contains(&to) {
            return Err(TensorError::DuplicateIndex(to));
        }
        let pos = self.position(from).ok_or(TensorError::MissingIndex(from))?;
        self.indices[pos] = to;
        Ok(())
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Tensor(ix={:?}, dims={:?}, {} elems)",
            self.indices,
            self.dims,
            self.len()
        )
    }
}

/// Gathers the permuted layout into `out`: output element `j` (row-major
/// in `new_dims`) reads `src[Σ digit_k(j)·contrib[k]]`. Block-parallel for
/// large tensors, serial below [`PAR_MIN_ELEMS`]; identical output either
/// way since every element is an independent gather.
pub(crate) fn permute_kernel(
    src: &[Complex64],
    new_dims: &[usize],
    contrib: &[usize],
    out: &mut [Complex64],
) {
    if out.len() >= PAR_MIN_ELEMS {
        par_fill_blocks(out, PAR_BLOCK, |_, range, chunk| {
            permute_range(src, new_dims, contrib, range.start, chunk);
        });
    } else if !out.is_empty() {
        permute_range(src, new_dims, contrib, 0, out);
    }
}

/// Single-threaded full-range gather: the reference against which the
/// block-parallel [`permute_kernel`] is asserted bit-identical.
pub(crate) fn permute_range_serial(
    src: &[Complex64],
    new_dims: &[usize],
    contrib: &[usize],
    out: &mut [Complex64],
) {
    if !out.is_empty() {
        permute_range(src, new_dims, contrib, 0, out);
    }
}

/// Serial gather of `chunk.len()` permuted elements starting at output
/// offset `start`: the odometer walk of `Tensor::permuted`, made
/// restartable by decomposing `start` into per-axis counters once.
fn permute_range(
    src: &[Complex64],
    new_dims: &[usize],
    contrib: &[usize],
    start: usize,
    chunk: &mut [Complex64],
) {
    let rank = new_dims.len();
    let mut counters = vec![0usize; rank];
    let mut src_off = 0usize;
    let mut rem = start;
    for axis in (0..rank).rev() {
        let digit = rem % new_dims[axis];
        rem /= new_dims[axis];
        counters[axis] = digit;
        src_off += digit * contrib[axis];
    }
    for slot in chunk.iter_mut() {
        *slot = src[src_off];
        // increment odometer from the last axis
        for axis in (0..rank).rev() {
            counters[axis] += 1;
            src_off += contrib[axis];
            if counters[axis] < new_dims[axis] {
                break;
            }
            src_off -= contrib[axis] * new_dims[axis];
            counters[axis] = 0;
        }
    }
}

/// Fills `chunk` with axis sums: output element `j = start + t` is
/// `Σ_{k<d} src[(o·d + k)·inner + i]` for `o = j / inner`, `i = j % inner`,
/// accumulated in ascending `k` — the same per-element reduction order as
/// the serial triple loop, so parallel blocks are bit-identical.
fn sum_axis_range(
    src: &[Complex64],
    d: usize,
    inner: usize,
    start: usize,
    chunk: &mut [Complex64],
) {
    let mut o = start / inner;
    let mut i = start % inner;
    for slot in chunk.iter_mut() {
        let mut acc = Complex64::ZERO;
        let base = o * d;
        for k in 0..d {
            acc += src[(base + k) * inner + i];
        }
        *slot = acc;
        i += 1;
        if i == inner {
            i = 0;
            o += 1;
        }
    }
}

/// Row-major strides for a shape.
pub fn strides_of(dims: &[usize]) -> Vec<usize> {
    let mut strides = vec![1usize; dims.len()];
    for axis in (0..dims.len().saturating_sub(1)).rev() {
        strides[axis] = strides[axis + 1] * dims[axis + 1];
    }
    strides
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(re: f64) -> Complex64 {
        Complex64::real(re)
    }

    fn iota(n: usize) -> Vec<Complex64> {
        (0..n).map(|i| c(i as f64)).collect()
    }

    #[test]
    fn new_validates_shape() {
        assert!(Tensor::new(vec![0, 1], vec![2, 3], iota(6)).is_ok());
        assert_eq!(
            Tensor::new(vec![0, 1], vec![2, 3], iota(5)).unwrap_err(),
            TensorError::ShapeMismatch {
                expected: 6,
                got: 5
            }
        );
        assert_eq!(
            Tensor::new(vec![7, 7], vec![2, 2], iota(4)).unwrap_err(),
            TensorError::DuplicateIndex(7)
        );
    }

    #[test]
    fn strides_are_row_major() {
        assert_eq!(strides_of(&[2, 3, 4]), vec![12, 4, 1]);
        assert_eq!(strides_of(&[]), Vec::<usize>::new());
        assert_eq!(strides_of(&[5]), vec![1]);
    }

    #[test]
    fn get_set_roundtrip() {
        let mut t = Tensor::new(vec![0, 1], vec![2, 3], iota(6)).unwrap();
        assert_eq!(t.get(&[1, 2]), c(5.0));
        t.set(&[1, 2], c(-1.0));
        assert_eq!(t.get(&[1, 2]), c(-1.0));
    }

    #[test]
    fn permute_transposes_matrix() {
        let t = Tensor::new(vec![0, 1], vec![2, 3], iota(6)).unwrap();
        let p = t.permuted(&[1, 0]).unwrap();
        assert_eq!(p.dims(), &[3, 2]);
        for i in 0..2 {
            for j in 0..3 {
                assert_eq!(p.get(&[j, i]), t.get(&[i, j]));
            }
        }
    }

    #[test]
    fn permute_identity_is_clone() {
        let t = Tensor::new(vec![3, 5], vec![2, 2], iota(4)).unwrap();
        assert_eq!(t.permuted(&[3, 5]).unwrap(), t);
    }

    #[test]
    fn permute_rank3_matches_manual() {
        let t = Tensor::new(vec![0, 1, 2], vec![2, 3, 2], iota(12)).unwrap();
        let p = t.permuted(&[2, 0, 1]).unwrap();
        for a in 0..2 {
            for b in 0..3 {
                for d in 0..2 {
                    assert_eq!(p.get(&[d, a, b]), t.get(&[a, b, d]));
                }
            }
        }
    }

    #[test]
    fn permute_rejects_bad_orders() {
        let t = Tensor::new(vec![0, 1], vec![2, 2], iota(4)).unwrap();
        assert!(t.permuted(&[0]).is_err());
        assert!(t.permuted(&[0, 0]).is_err());
        assert!(t.permuted(&[0, 9]).is_err());
    }

    #[test]
    fn sum_over_collapses_axis() {
        let t = Tensor::new(vec![0, 1], vec![2, 3], iota(6)).unwrap();
        let s = t.sum_over(0).unwrap();
        assert_eq!(s.indices(), &[1]);
        assert_eq!(s.data(), &[c(3.0), c(5.0), c(7.0)]);
        let s2 = t.sum_over(1).unwrap();
        assert_eq!(s2.data(), &[c(3.0), c(12.0)]);
        assert!(t.sum_over(42).is_err());
    }

    #[test]
    fn fix_index_slices() {
        let t = Tensor::new(vec![0, 1], vec![2, 3], iota(6)).unwrap();
        let row1 = t.fix_index(0, 1).unwrap();
        assert_eq!(row1.data(), &[c(3.0), c(4.0), c(5.0)]);
        let col2 = t.fix_index(1, 2).unwrap();
        assert_eq!(col2.data(), &[c(2.0), c(5.0)]);
    }

    #[test]
    fn scalar_tensor() {
        let t = Tensor::scalar(Complex64::new(2.0, 1.0));
        assert_eq!(t.rank(), 0);
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&[]), Complex64::new(2.0, 1.0));
    }

    #[test]
    fn rename_index_checks_collisions() {
        let mut t = Tensor::new(vec![0, 1], vec![2, 2], iota(4)).unwrap();
        t.rename_index(0, 9).unwrap();
        assert_eq!(t.indices(), &[9, 1]);
        assert!(t.rename_index(9, 1).is_err());
        assert!(t.rename_index(123, 4).is_err());
        t.rename_index(1, 1).unwrap(); // no-op
    }

    #[test]
    fn norms() {
        let t = Tensor::new(vec![0], vec![2], vec![c(3.0), c(4.0)]).unwrap();
        assert!((t.frobenius_norm() - 5.0).abs() < 1e-12);
        assert!((t.max_abs() - 4.0).abs() < 1e-12);
    }
}
