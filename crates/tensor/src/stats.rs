//! Value-distribution statistics over tensors.
//!
//! The paper's evaluation begins by characterizing QTensor-generated tensors
//! (experiment E1): value ranges, the heavy mass of near-zero entries, and the
//! large fraction of duplicated fixed-size blocks. Those three properties are
//! exactly what the framework's pre-processing stages exploit, so the same
//! statistics drive both the dataset table and the pipeline's heuristics.

use crate::complex::Complex64;
use crate::planes::as_interleaved;
use crate::tensor::Tensor;
use std::collections::HashSet;

/// Summary statistics of a flat `f64` buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct ValueStats {
    /// Number of values inspected.
    pub count: usize,
    /// Smallest value.
    pub min: f64,
    /// Largest value.
    pub max: f64,
    /// `max - min`; the SZ relative error bound is defined against this.
    pub range: f64,
    /// Mean value.
    pub mean: f64,
    /// Standard deviation (population).
    pub std_dev: f64,
    /// Fraction of values with magnitude ≤ `near_zero_threshold`.
    pub near_zero_frac: f64,
    /// Threshold used for `near_zero_frac`.
    pub near_zero_threshold: f64,
}

impl ValueStats {
    /// Computes statistics over `values` with the given near-zero threshold.
    ///
    /// Empty input yields a zeroed record (range 0).
    pub fn of(values: &[f64], near_zero_threshold: f64) -> Self {
        if values.is_empty() {
            return ValueStats {
                count: 0,
                min: 0.0,
                max: 0.0,
                range: 0.0,
                mean: 0.0,
                std_dev: 0.0,
                near_zero_frac: 0.0,
                near_zero_threshold,
            };
        }
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        let mut near_zero = 0usize;
        for &v in values {
            min = min.min(v);
            max = max.max(v);
            sum += v;
            if v.abs() <= near_zero_threshold {
                near_zero += 1;
            }
        }
        let n = values.len() as f64;
        let mean = sum / n;
        let var = values.iter().map(|&v| (v - mean) * (v - mean)).sum::<f64>() / n;
        ValueStats {
            count: values.len(),
            min,
            max,
            range: max - min,
            mean,
            std_dev: var.sqrt(),
            near_zero_frac: near_zero as f64 / n,
            near_zero_threshold,
        }
    }

    /// Statistics over the interleaved real/imag stream of a complex tensor.
    pub fn of_tensor(t: &Tensor, near_zero_threshold: f64) -> Self {
        ValueStats::of(as_interleaved(t.data()), near_zero_threshold)
    }
}

/// Fraction of fixed-size blocks that are exact duplicates of an earlier
/// block. Gate-structured tensors repeat whole slices, which the dedup
/// pre-processing stage (P3) exploits.
///
/// A trailing partial block is ignored. Returns 0 when there are fewer than
/// two whole blocks.
pub fn duplicated_block_frac(values: &[f64], block: usize) -> f64 {
    assert!(block > 0, "block size must be positive");
    let nblocks = values.len() / block;
    if nblocks < 2 {
        return 0.0;
    }
    let mut seen: HashSet<Vec<u64>> = HashSet::with_capacity(nblocks);
    let mut dup = 0usize;
    for b in 0..nblocks {
        let key: Vec<u64> = values[b * block..(b + 1) * block]
            .iter()
            .map(|v| v.to_bits())
            .collect();
        if !seen.insert(key) {
            dup += 1;
        }
    }
    dup as f64 / nblocks as f64
}

/// Complex-tensor wrapper around [`duplicated_block_frac`]; `block` counts
/// complex elements (so `2 * block` doubles).
pub fn duplicated_block_frac_tensor(t: &Tensor, block: usize) -> f64 {
    duplicated_block_frac(as_interleaved(t.data()), block * 2)
}

/// Number of distinct bit patterns among the doubles of a buffer. QTensor
/// tensors built from a handful of gate entries often contain very few unique
/// values, which bounds the entropy the compressor can exploit.
pub fn distinct_values(values: &[f64]) -> usize {
    let mut seen: HashSet<u64> = HashSet::new();
    for &v in values {
        seen.insert(v.to_bits());
    }
    seen.len()
}

/// Maximum pointwise complex distance between equally-shaped buffers.
///
/// # Panics
/// Panics when lengths differ.
pub fn max_pointwise_error(a: &[Complex64], b: &[Complex64]) -> f64 {
    assert_eq!(a.len(), b.len(), "buffers must have equal length");
    a.iter()
        .zip(b)
        .map(|(x, y)| (*x - *y).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;

    #[test]
    fn stats_on_known_data() {
        let s = ValueStats::of(&[0.0, 1.0, -1.0, 0.0001], 0.001);
        assert_eq!(s.count, 4);
        assert_eq!(s.min, -1.0);
        assert_eq!(s.max, 1.0);
        assert_eq!(s.range, 2.0);
        assert!((s.near_zero_frac - 0.5).abs() < 1e-12);
    }

    #[test]
    fn stats_empty_is_zeroed() {
        let s = ValueStats::of(&[], 0.1);
        assert_eq!(s.count, 0);
        assert_eq!(s.range, 0.0);
    }

    #[test]
    fn stats_constant_has_zero_std() {
        let s = ValueStats::of(&[2.5; 100], 1e-9);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!(s.std_dev.abs() < 1e-12);
        assert_eq!(s.near_zero_frac, 0.0);
    }

    #[test]
    fn duplicate_blocks_counted() {
        // blocks of 2: [1,2] [3,4] [1,2] [1,2] -> 2 of 4 duplicated
        let v = [1.0, 2.0, 3.0, 4.0, 1.0, 2.0, 1.0, 2.0];
        assert!((duplicated_block_frac(&v, 2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn duplicate_blocks_all_unique() {
        let v: Vec<f64> = (0..16).map(|i| i as f64).collect();
        assert_eq!(duplicated_block_frac(&v, 4), 0.0);
    }

    #[test]
    fn duplicate_blocks_short_input() {
        assert_eq!(duplicated_block_frac(&[1.0, 2.0], 4), 0.0);
    }

    #[test]
    fn negative_zero_distinct_from_zero() {
        // bit-exact semantics: -0.0 and 0.0 are different patterns, which is
        // what a lossless compressor sees.
        assert_eq!(distinct_values(&[0.0, -0.0]), 2);
        assert_eq!(distinct_values(&[1.0, 1.0, 2.0]), 2);
    }

    #[test]
    fn tensor_stats_cover_both_planes() {
        let t = Tensor::qubit(
            vec![0],
            vec![Complex64::new(0.0, 5.0), Complex64::new(-5.0, 0.0)],
        )
        .unwrap();
        let s = ValueStats::of_tensor(&t, 1e-9);
        assert_eq!(s.count, 4);
        assert_eq!(s.min, -5.0);
        assert_eq!(s.max, 5.0);
        assert!((s.near_zero_frac - 0.5).abs() < 1e-12);
    }

    #[test]
    fn pointwise_error() {
        let a = vec![Complex64::new(1.0, 0.0), Complex64::new(0.0, 1.0)];
        let b = vec![Complex64::new(1.0, 0.0), Complex64::new(0.0, 0.0)];
        assert!((max_pointwise_error(&a, &b) - 1.0).abs() < 1e-12);
    }
}
