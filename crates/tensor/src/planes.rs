//! Conversions between complex tensors and flat `f64` representations.
//!
//! QTensor stores tensors as interleaved complex values (`re, im, re, im, …`).
//! The paper's first pre-processing step (P1) de-interleaves them into two
//! contiguous *planes* — a real plane and an imaginary plane — because the
//! Lorenzo predictor in SZ-family compressors predicts much better when
//! consecutive values come from the same component. This module provides both
//! views plus zero-copy reinterpretation helpers.

use crate::complex::Complex64;

/// Reinterprets a complex slice as interleaved `f64` pairs without copying.
///
/// Safe because [`Complex64`] is `#[repr(C)]` with two `f64` fields.
#[inline]
pub fn as_interleaved(values: &[Complex64]) -> &[f64] {
    // SAFETY: Complex64 is #[repr(C)] { re: f64, im: f64 } — size 16, align 8 —
    // so N complex values are exactly 2N contiguous f64 with the same alignment.
    unsafe { std::slice::from_raw_parts(values.as_ptr() as *const f64, values.len() * 2) }
}

/// Mutable version of [`as_interleaved`].
#[inline]
pub fn as_interleaved_mut(values: &mut [Complex64]) -> &mut [f64] {
    // SAFETY: see `as_interleaved`.
    unsafe { std::slice::from_raw_parts_mut(values.as_mut_ptr() as *mut f64, values.len() * 2) }
}

/// De-interleaves complex values into `(real_plane, imag_plane)`.
pub fn split_planes(values: &[Complex64]) -> (Vec<f64>, Vec<f64>) {
    let mut re = Vec::with_capacity(values.len());
    let mut im = Vec::with_capacity(values.len());
    for v in values {
        re.push(v.re);
        im.push(v.im);
    }
    (re, im)
}

/// Re-interleaves planes produced by [`split_planes`].
///
/// # Panics
/// Panics when the plane lengths differ.
pub fn merge_planes(re: &[f64], im: &[f64]) -> Vec<Complex64> {
    assert_eq!(
        re.len(),
        im.len(),
        "real/imag planes must have equal length"
    );
    re.iter()
        .zip(im)
        .map(|(&re, &im)| Complex64 { re, im })
        .collect()
}

/// Copies an interleaved `f64` buffer into complex values.
///
/// # Panics
/// Panics when `flat.len()` is odd.
pub fn from_interleaved(flat: &[f64]) -> Vec<Complex64> {
    assert!(
        flat.len().is_multiple_of(2),
        "interleaved buffer must have even length"
    );
    flat.chunks_exact(2)
        .map(|p| Complex64 { re: p[0], im: p[1] })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|i| Complex64::new(i as f64 * 0.5, -(i as f64)))
            .collect()
    }

    #[test]
    fn split_merge_roundtrip() {
        let v = sample(17);
        let (re, im) = split_planes(&v);
        assert_eq!(merge_planes(&re, &im), v);
    }

    #[test]
    fn interleaved_roundtrip() {
        let v = sample(9);
        let flat = as_interleaved(&v).to_vec();
        assert_eq!(from_interleaved(&flat), v);
    }

    #[test]
    fn interleaved_mut_writes_through() {
        let mut v = sample(4);
        as_interleaved_mut(&mut v)[1] = 42.0;
        assert_eq!(v[0].im, 42.0);
    }

    #[test]
    fn empty_slices_are_fine() {
        let v: Vec<Complex64> = Vec::new();
        assert!(as_interleaved(&v).is_empty());
        let (re, im) = split_planes(&v);
        assert!(merge_planes(&re, &im).is_empty());
    }

    #[test]
    #[should_panic(expected = "even length")]
    fn odd_interleaved_panics() {
        from_interleaved(&[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_planes_panic() {
        merge_planes(&[1.0], &[]);
    }
}
