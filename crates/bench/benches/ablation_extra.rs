//! Design-choice ablations beyond the paper (DESIGN.md §4 calls these
//! out): backend block sizes, cuSZ quant radius, and the codec primitives
//! every compressor sits on.

use codec_kit::bitio::BitWriter;
use codec_kit::huffman::{histogram, HuffmanEncoder};
use codec_kit::lz77::{find_matches, LzConfig};
use compressors::cusz::CuSz;
use compressors::cuszx::CuSzx;
use compressors::{Compressor, ErrorBound};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gpu_model::{DeviceSpec, Stream};
use qcf_bench::corpus::synthetic_tensor;

fn bench_szx_block_size(c: &mut Criterion) {
    let data = synthetic_tensor(1 << 14, 0.5, 51).data;
    let stream = Stream::new(DeviceSpec::a100());
    let mut group = c.benchmark_group("szx_block_size");
    group.throughput(Throughput::Bytes((data.len() * 8) as u64));
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for bs in [32usize, 128, 512] {
        let comp = CuSzx::with_block_size(bs);
        group.bench_with_input(BenchmarkId::from_parameter(bs), &data, |b, data| {
            b.iter(|| comp.compress(data, ErrorBound::Rel(1e-3), &stream).unwrap())
        });
    }
    group.finish();
}

fn bench_cusz_radius(c: &mut Criterion) {
    let data = synthetic_tensor(1 << 14, 0.5, 52).data;
    let stream = Stream::new(DeviceSpec::a100());
    let mut group = c.benchmark_group("cusz_radius");
    group.throughput(Throughput::Bytes((data.len() * 8) as u64));
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for radius in [128i64, 512, 2048] {
        let comp = CuSz::with_radius(radius);
        group.bench_with_input(BenchmarkId::from_parameter(radius), &data, |b, data| {
            b.iter(|| comp.compress(data, ErrorBound::Rel(1e-3), &stream).unwrap())
        });
    }
    group.finish();
}

fn bench_codec_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec_primitives");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));

    let symbols: Vec<u32> = (0..65_536u32).map(|i| (i * i) % 997 % 256).collect();
    group.throughput(Throughput::Elements(symbols.len() as u64));
    group.bench_function("huffman_encode_64k", |b| {
        let freqs = histogram(&symbols, 256);
        let enc = HuffmanEncoder::from_freqs(&freqs);
        b.iter(|| {
            let mut w = BitWriter::with_capacity(symbols.len() / 2);
            enc.encode_all(&mut w, &symbols);
            w.finish()
        })
    });

    let bytes: Vec<u8> = (0..65_536usize).map(|i| ((i / 7) % 251) as u8).collect();
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_function("lz77_parse_64k", |b| {
        b.iter(|| find_matches(&bytes, &LzConfig::default()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_szx_block_size,
    bench_cusz_radius,
    bench_codec_primitives
);
criterion_main!(benches);
