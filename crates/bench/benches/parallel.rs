//! Serial vs parallel hot paths: the data-parallel executor's effect on
//! contraction and QCF compression throughput.
//!
//! The parallel entry points degrade to the serial walk when
//! `worker_count() == 1`, so on a single-core host the two sides should be
//! within noise of each other; set `QCF_WORKERS=<n>` to force the threaded
//! paths. Results feed `BENCH_parallel.json` at the repo root.

use compressors::{Compressor, ErrorBound};
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use gpu_model::{DeviceSpec, Stream};
use qcf_core::QcfCompressor;
use rand::{Rng, SeedableRng};
use tensornet::{
    contract, contract_serial, multiply_keep, multiply_keep_serial, Complex64, Tensor,
};

fn random_tensor(labels: &[u32], dims: &[usize], seed: u64) -> Tensor {
    let total: usize = dims.iter().product();
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let data: Vec<Complex64> = (0..total)
        .map(|_| Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
        .collect();
    Tensor::new(labels.to_vec(), dims.to_vec(), data).unwrap()
}

fn bench_contract(c: &mut Criterion) {
    // m = 2048, n = 64, k = 32: well past the parallel cutover.
    let a = random_tensor(&[0, 1, 2], &[64, 32, 32], 41);
    let b = random_tensor(&[2, 3], &[32, 64], 42);
    let mut group = c.benchmark_group("parallel/contract");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.throughput(Throughput::Elements((2048 * 64 * 32) as u64));
    group.bench_function("serial", |bch| {
        bch.iter(|| contract_serial(black_box(&a), black_box(&b)).unwrap())
    });
    group.bench_function("parallel", |bch| {
        bch.iter(|| contract(black_box(&a), black_box(&b)).unwrap())
    });
    group.finish();
}

fn bench_multiply_keep(c: &mut Criterion) {
    // Union output 32·16·16·32 = 262144 elements.
    let a = random_tensor(&[0, 1, 2], &[32, 16, 16], 43);
    let b = random_tensor(&[2, 3], &[16, 32], 44);
    let mut group = c.benchmark_group("parallel/multiply_keep");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.throughput(Throughput::Elements(262_144));
    group.bench_function("serial", |bch| {
        bch.iter(|| multiply_keep_serial(black_box(&a), black_box(&b)).unwrap())
    });
    group.bench_function("parallel", |bch| {
        bch.iter(|| multiply_keep(black_box(&a), black_box(&b)).unwrap())
    });
    group.finish();
}

fn bench_qcf_compress(c: &mut Criterion) {
    let n = 1usize << 18;
    let data: Vec<f64> = (0..n).map(|i| (i as f64 * 0.013).sin() * 0.4).collect();
    let mut group = c.benchmark_group("parallel/qcf_compress");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.throughput(Throughput::Bytes((n * 8) as u64));
    for (name, comp) in [
        ("ratio", QcfCompressor::ratio()),
        ("speed", QcfCompressor::speed()),
    ] {
        group.bench_function(name, |bch| {
            let stream = Stream::new(DeviceSpec::a100());
            bch.iter(|| {
                comp.compress(black_box(&data), ErrorBound::Abs(1e-4), &stream)
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn report_workers(c: &mut Criterion) {
    // One line of context so recorded numbers are interpretable.
    eprintln!(
        "parallel bench context: worker_count={} (QCF_WORKERS={:?})",
        gpu_model::exec::worker_count(),
        std::env::var("QCF_WORKERS").ok()
    );
    let _ = c;
}

criterion_group!(
    benches,
    report_workers,
    bench_contract,
    bench_multiply_keep,
    bench_qcf_compress
);
criterion_main!(benches);
