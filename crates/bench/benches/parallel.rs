//! Serial vs parallel hot paths, plus the vectorized codec kernels
//! against their scalar references.
//!
//! The parallel entry points degrade to the serial walk when
//! `worker_count() == 1`, so on a single-core host the two sides should be
//! within noise of each other; set `QCF_WORKERS=<n>` to force the threaded
//! paths. The `speedup/*` group pins the worker pool to 1 with
//! `with_serial_workers` for its serial side, so its parallel/serial ratio
//! is the honest multi-core speedup: ~1x on a 1-core host by construction,
//! and the >=2x cuSZ/cuSZx acceptance target only applies on >=4-core
//! hosts (`qcfz report --check` enforces the same rule). Results feed
//! `BENCH_parallel.json` at the repo root.
//!
//! `--smoke` (CI) skips the timing windows and runs every workload once,
//! asserting the vectorized kernels agree with their scalar references.

use codec_kit::bitio::{BitReader, BitWriter};
use codec_kit::huffman::histogram;
use codec_kit::{HuffmanDecoder, HuffmanEncoder};
use compressors::cusz::{dual_quant_into, dual_quant_scalar};
use compressors::cuszx::{decode_block, decode_block_scalar, encode_block, encode_block_scalar};
use compressors::{Compressor, ErrorBound};
use criterion::{black_box, Criterion, Throughput};
use gpu_model::exec::{with_serial_workers, worker_count};
use gpu_model::{DeviceSpec, Stream};
use qcf_core::QcfCompressor;
use rand::{Rng, SeedableRng};
use tensornet::{
    contract, contract_serial, multiply_keep, multiply_keep_serial, Complex64, Tensor,
};

fn random_tensor(labels: &[u32], dims: &[usize], seed: u64) -> Tensor {
    let total: usize = dims.iter().product();
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let data: Vec<Complex64> = (0..total)
        .map(|_| Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
        .collect();
    Tensor::new(labels.to_vec(), dims.to_vec(), data).unwrap()
}

/// Amplitude-like f64 payload shared by the kernel workloads.
fn amplitudes(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            if rng.gen::<f64>() < 0.6 {
                rng.gen_range(-1e-7..1e-7)
            } else {
                (i as f64 * 0.3).sin() * 0.5
            }
        })
        .collect()
}

/// Symbol stream the Huffman stage actually sees: dual-quant codes of an
/// amplitude payload (heavily skewed toward the zero-delta symbol, which
/// is what the multi-symbol prefix LUT is built for), plus its canonical
/// codec. On near-uniform symbols the LUT degrades toward one symbol per
/// probe and the one-at-a-time walk is as fast or faster — that is the
/// expected trade and the smoke mode still checks bit-identity on it.
fn huffman_workload(n: usize) -> (Vec<u32>, Vec<u8>, HuffmanDecoder) {
    let data = amplitudes(n, 7);
    let mut symbols = vec![0u32; n];
    dual_quant_into(&data, 2e-4, 512, &mut symbols);
    let enc = HuffmanEncoder::from_freqs(&histogram(&symbols, 1024));
    let mut w = BitWriter::with_capacity(n / 2);
    enc.encode_all(&mut w, &symbols);
    let dec = HuffmanDecoder::from_lengths(enc.lengths()).unwrap();
    (symbols, w.finish(), dec)
}

fn bench_contract(c: &mut Criterion) {
    // m = 2048, n = 64, k = 32: well past the parallel cutover.
    let a = random_tensor(&[0, 1, 2], &[64, 32, 32], 41);
    let b = random_tensor(&[2, 3], &[32, 64], 42);
    let mut group = c.benchmark_group("parallel/contract");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.throughput(Throughput::Elements((2048 * 64 * 32) as u64));
    group.bench_function("serial", |bch| {
        bch.iter(|| contract_serial(black_box(&a), black_box(&b)).unwrap())
    });
    group.bench_function("parallel", |bch| {
        bch.iter(|| contract(black_box(&a), black_box(&b)).unwrap())
    });
    group.finish();
}

fn bench_multiply_keep(c: &mut Criterion) {
    // Union output 32·16·16·32 = 262144 elements.
    let a = random_tensor(&[0, 1, 2], &[32, 16, 16], 43);
    let b = random_tensor(&[2, 3], &[16, 32], 44);
    let mut group = c.benchmark_group("parallel/multiply_keep");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.throughput(Throughput::Elements(262_144));
    group.bench_function("serial", |bch| {
        bch.iter(|| multiply_keep_serial(black_box(&a), black_box(&b)).unwrap())
    });
    group.bench_function("parallel", |bch| {
        bch.iter(|| multiply_keep(black_box(&a), black_box(&b)).unwrap())
    });
    group.finish();
}

fn bench_qcf_compress(c: &mut Criterion) {
    let n = 1usize << 18;
    let data: Vec<f64> = (0..n).map(|i| (i as f64 * 0.013).sin() * 0.4).collect();
    let mut group = c.benchmark_group("parallel/qcf_compress");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.throughput(Throughput::Bytes((n * 8) as u64));
    for (name, comp) in [
        ("ratio", QcfCompressor::ratio()),
        ("speed", QcfCompressor::speed()),
    ] {
        group.bench_function(name, |bch| {
            let stream = Stream::new(DeviceSpec::a100());
            bch.iter(|| {
                comp.compress(black_box(&data), ErrorBound::Abs(1e-4), &stream)
                    .unwrap()
            })
        });
    }
    group.finish();
}

/// Width-8 kernels vs their scalar bit-identity references.
fn bench_kernels(c: &mut Criterion) {
    let n = 1usize << 16;
    let data = amplitudes(n, 9);
    let twoeb = 2e-4;

    let mut group = c.benchmark_group("kernels/dual_quant");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.throughput(Throughput::Bytes((n * 8) as u64));
    group.bench_function("scalar", |bch| {
        bch.iter(|| dual_quant_scalar(black_box(&data), twoeb, 512))
    });
    let mut syms = vec![0u32; n];
    group.bench_function("vector", |bch| {
        bch.iter(|| dual_quant_into(black_box(&data), twoeb, 512, &mut syms))
    });
    group.finish();

    let mut group = c.benchmark_group("kernels/szx_encode");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.throughput(Throughput::Bytes((n * 8) as u64));
    let eb = twoeb / 2.0;
    group.bench_function("scalar", |bch| {
        bch.iter(|| {
            let mut w = BitWriter::with_capacity(n);
            for block in data.chunks(128) {
                encode_block_scalar(black_box(block), eb, twoeb, &mut w);
            }
            w.finish()
        })
    });
    let mut scratch = vec![0u64; 128];
    group.bench_function("vector", |bch| {
        bch.iter(|| {
            let mut w = BitWriter::with_capacity(n);
            for block in data.chunks(128) {
                encode_block(black_box(block), eb, twoeb, &mut scratch, &mut w);
            }
            w.finish()
        })
    });
    group.finish();

    let (symbols, stream_bytes, dec) = huffman_workload(n);
    let mut group = c.benchmark_group("kernels/huffman_decode");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("symbol", |bch| {
        let mut out = vec![0u32; n];
        bch.iter(|| {
            let mut r = BitReader::new(black_box(&stream_bytes));
            for slot in out.iter_mut() {
                *slot = dec.decode_symbol(&mut r).unwrap();
            }
            out[n - 1]
        })
    });
    group.bench_function("lut", |bch| {
        let mut out = vec![0u32; n];
        bch.iter(|| {
            let mut r = BitReader::new(black_box(&stream_bytes));
            dec.decode_into(&mut r, &mut out).unwrap();
            out[n - 1]
        })
    });
    group.finish();
    let _ = symbols;
}

/// Honest multi-core speedup: the same compress with the worker pool
/// pinned to 1 vs the host's pool. The two streams are bit-identical
/// (the block decomposition is worker-count independent), so this times
/// scheduling alone.
fn bench_compress_speedup(c: &mut Criterion) {
    let n = 1usize << 18;
    let data = amplitudes(n, 11);
    let stream = Stream::new(DeviceSpec::a100());
    for (name, comp) in [
        (
            "cusz",
            Box::new(compressors::cusz::CuSz::default()) as Box<dyn Compressor>,
        ),
        ("cuszx", Box::new(compressors::cuszx::CuSzx::default())),
    ] {
        let mut group = c.benchmark_group(format!("speedup/{name}"));
        group.sample_size(10);
        group.warm_up_time(std::time::Duration::from_millis(300));
        group.measurement_time(std::time::Duration::from_secs(2));
        group.throughput(Throughput::Bytes((n * 8) as u64));
        group.bench_function("serial_1w", |bch| {
            bch.iter(|| {
                with_serial_workers(|| {
                    comp.compress(black_box(&data), ErrorBound::Abs(1e-4), &stream)
                        .unwrap()
                })
            })
        });
        group.bench_function("parallel", |bch| {
            bch.iter(|| {
                comp.compress(black_box(&data), ErrorBound::Abs(1e-4), &stream)
                    .unwrap()
            })
        });
        group.finish();
    }
}

/// Prints the host context and, after the `speedup/*` group ran, the
/// per-core + multi-core record lines for `BENCH_parallel.json`.
fn report_speedups(c: &Criterion) {
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let bps = |id: &str| {
        c.results
            .iter()
            .find(|r| r.id == id)
            .map(|r| match r.throughput {
                Some(Throughput::Bytes(b)) => b as f64 / r.median.as_secs_f64(),
                _ => 0.0,
            })
    };
    for name in ["cusz", "cuszx"] {
        let (Some(serial), Some(par)) = (
            bps(&format!("speedup/{name}/serial_1w")),
            bps(&format!("speedup/{name}/parallel")),
        ) else {
            continue;
        };
        let speedup = par / serial.max(f64::MIN_POSITIVE);
        println!(
            "speedup/{name}: per-core {:.3} GB/s, multi-core {:.3} GB/s, ~{speedup:.1}x \
             ({cores}-core host, {} workers){}",
            serial / 1e9,
            par / 1e9,
            worker_count(),
            if cores < 4 {
                " — >=2x gate applies on >=4-core hosts only"
            } else {
                ""
            }
        );
    }
}

/// One pass over every workload with assertions instead of timing — the
/// CI smoke gate (`cargo bench --bench parallel -- --smoke`).
fn smoke() {
    let n = 1usize << 12;
    let data = amplitudes(n, 9);
    let twoeb = 2e-4;

    let (ref_syms, ref_outliers) = dual_quant_scalar(&data, twoeb, 512);
    let mut syms = vec![0u32; n];
    let outliers = dual_quant_into(&data, twoeb, 512, &mut syms);
    assert_eq!(syms, ref_syms, "dual_quant vector != scalar");
    assert_eq!(outliers, ref_outliers, "dual_quant outliers diverged");

    let eb = twoeb / 2.0;
    let mut wr = BitWriter::with_capacity(n);
    let mut wv = BitWriter::with_capacity(n);
    let mut scratch = vec![0u64; 128];
    for block in data.chunks(128) {
        encode_block_scalar(block, eb, twoeb, &mut wr);
        encode_block(block, eb, twoeb, &mut scratch, &mut wv);
    }
    let (sref, svec) = (wr.finish(), wv.finish());
    assert_eq!(svec, sref, "szx_encode vector != scalar");
    let mut r = BitReader::new(&sref);
    let mut rv = BitReader::new(&svec);
    let (mut dref, mut dvec) = (Vec::new(), Vec::new());
    for block in data.chunks(128) {
        decode_block_scalar(&mut r, block.len(), twoeb, &mut dref).unwrap();
        decode_block(&mut rv, block.len(), twoeb, &mut dvec).unwrap();
    }
    assert_eq!(
        dvec.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        dref.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        "szx_decode vector != scalar"
    );

    let (symbols, stream_bytes, dec) = huffman_workload(n);
    let mut out = vec![0u32; n];
    let mut r = BitReader::new(&stream_bytes);
    dec.decode_into(&mut r, &mut out).unwrap();
    assert_eq!(out, symbols, "huffman LUT decode diverged");

    let stream = Stream::new(DeviceSpec::a100());
    for comp in [
        Box::new(compressors::cusz::CuSz::default()) as Box<dyn Compressor>,
        Box::new(compressors::cuszx::CuSzx::default()),
    ] {
        let par = comp
            .compress(&data, ErrorBound::Abs(1e-4), &stream)
            .unwrap();
        let ser = with_serial_workers(|| {
            comp.compress(&data, ErrorBound::Abs(1e-4), &stream)
                .unwrap()
        });
        assert_eq!(
            par,
            ser,
            "{}: parallel stream != serial stream",
            comp.name()
        );
    }

    let a = random_tensor(&[0, 1, 2], &[8, 8, 8], 41);
    let b = random_tensor(&[2, 3], &[8, 8], 42);
    assert_eq!(
        contract(&a, &b).unwrap().data(),
        contract_serial(&a, &b).unwrap().data()
    );
    assert_eq!(
        multiply_keep(&a, &b).unwrap().data(),
        multiply_keep_serial(&a, &b).unwrap().data()
    );

    println!(
        "parallel bench smoke OK (worker_count={}, kernels bit-identical to scalar references)",
        worker_count()
    );
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    eprintln!(
        "parallel bench context: worker_count={} (QCF_WORKERS={:?})",
        worker_count(),
        std::env::var("QCF_WORKERS").ok()
    );
    let mut criterion = Criterion::default();
    bench_contract(&mut criterion);
    bench_multiply_keep(&mut criterion);
    bench_qcf_compress(&mut criterion);
    bench_kernels(&mut criterion);
    bench_compress_speedup(&mut criterion);
    report_speedups(&criterion);
}
