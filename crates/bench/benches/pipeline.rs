//! Framework-pipeline benchmarks: the E4 ablation ladder's *cost* side
//! (each stage's wall-time overhead) and the E5/E6 sweeps' hot paths.

use compressors::{Compressor, ErrorBound};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gpu_model::{DeviceSpec, Stream};
use qcf_bench::corpus::synthetic_tensor;
use qcf_bench::experiments::e4_ablation::ladder;
use qcf_core::{Mode, QcfCompressor};

fn bench_ablation_ladder(c: &mut Criterion) {
    let data = synthetic_tensor(1 << 14, 0.5, 31).data;
    let bytes = (data.len() * 8) as u64;
    let stream = Stream::new(DeviceSpec::a100());
    let mut group = c.benchmark_group("ablation_ladder");
    group.throughput(Throughput::Bytes(bytes));
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for (label, toggles) in ladder() {
        let comp = QcfCompressor::with_stages(Mode::Ratio, toggles);
        group.bench_with_input(BenchmarkId::from_parameter(label), &data, |b, data| {
            b.iter(|| comp.compress(data, ErrorBound::Rel(1e-3), &stream).unwrap())
        });
    }
    group.finish();
}

fn bench_bound_sweep(c: &mut Criterion) {
    let data = synthetic_tensor(1 << 14, 0.5, 32).data;
    let bytes = (data.len() * 8) as u64;
    let stream = Stream::new(DeviceSpec::a100());
    let mut group = c.benchmark_group("rate_distortion");
    group.throughput(Throughput::Bytes(bytes));
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for eb in [1e-2f64, 1e-3, 1e-4] {
        let comp = QcfCompressor::ratio();
        group.bench_with_input(
            BenchmarkId::new("qcf_ratio", format!("{eb:.0e}")),
            &data,
            |b, data| b.iter(|| comp.compress(data, ErrorBound::Rel(eb), &stream).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_ablation_ladder, bench_bound_sweep);
criterion_main!(benches);
