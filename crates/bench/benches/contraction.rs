//! Simulator benchmarks: exact vs compressed contraction (E7/E9's cost
//! side) and the ordering-heuristic ablation DESIGN.md calls out.

use compressors::ErrorBound;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qcf_core::QcfCompressor;
use qcircuit::{Graph, QaoaParams};
use qtensor::compressed::CompressingHook;
use qtensor::{OrderingHeuristic, Simulator};

fn bench_energy(c: &mut Criterion) {
    let graph = Graph::random_regular(16, 3, 77);
    let params = QaoaParams::fixed_angles_3reg_p2();
    let mut group = c.benchmark_group("energy");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));

    group.bench_function("exact", |b| {
        let sim = Simulator::default();
        b.iter(|| sim.energy(&graph, &params).unwrap().energy)
    });
    group.bench_function("compressed_ratio_mode", |b| {
        let sim = Simulator::default();
        let comp = QcfCompressor::ratio();
        b.iter(|| {
            let mut hook = CompressingHook::new(&comp, ErrorBound::Abs(1e-4), 2);
            sim.energy_with_hook(&graph, &params, &mut hook)
                .unwrap()
                .energy
        })
    });
    group.bench_function("compressed_speed_mode", |b| {
        let sim = Simulator::default();
        let comp = QcfCompressor::speed();
        b.iter(|| {
            let mut hook = CompressingHook::new(&comp, ErrorBound::Abs(1e-4), 2);
            sim.energy_with_hook(&graph, &params, &mut hook)
                .unwrap()
                .energy
        })
    });
    group.finish();
}

fn bench_ordering_heuristics(c: &mut Criterion) {
    let graph = Graph::random_regular(18, 3, 5);
    let params = QaoaParams::fixed_angles_3reg_p2();
    let mut group = c.benchmark_group("ordering");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for (name, h) in [
        ("min_fill", OrderingHeuristic::MinFill),
        ("min_degree", OrderingHeuristic::MinDegree),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &h, |b, &h| {
            let sim = Simulator::new(h, true);
            b.iter(|| sim.energy(&graph, &params).unwrap().energy)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_energy, bench_ordering_heuristics);
criterion_main!(benches);
