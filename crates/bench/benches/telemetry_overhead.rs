//! Telemetry overhead: the same contraction + compression hot path with
//! `QCF_TELEMETRY` disabled vs enabled.
//!
//! The disabled path must stay under 5% overhead — every span and metric
//! mutation is gated on a single relaxed atomic load, so "off" should be
//! indistinguishable from never instrumenting at all. The enabled cost is
//! recorded for honesty but is not bounded: it buys the trace. Results
//! feed `BENCH_telemetry.json` at the repo root.

use compressors::{Compressor, ErrorBound};
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use qcf_core::QcfCompressor;
use qcircuit::{Graph, QaoaParams};
use qtensor::Simulator;

/// Drains the bounded span buffer so the enabled side never measures the
/// buffer-full early-out instead of the real recording cost.
fn drain_spans() {
    qcf_telemetry::span::reset();
}

fn bench_contraction(c: &mut Criterion) {
    let g = Graph::random_regular(12, 3, 7);
    let params = QaoaParams::fixed_angles_3reg_p1();
    let sim = Simulator::default();
    let mut group = c.benchmark_group("telemetry/contraction");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(3));
    for (label, on) in [("disabled", false), ("enabled", true)] {
        group.bench_function(label, |bch| {
            qcf_telemetry::set_enabled(on);
            bch.iter(|| {
                drain_spans();
                sim.energy(black_box(&g), black_box(&params))
                    .unwrap()
                    .energy
            })
        });
    }
    group.finish();
    qcf_telemetry::set_enabled(false);
}

fn bench_compress(c: &mut Criterion) {
    // Same workload as parallel.rs's qcf_compress/ratio so the disabled
    // side is directly comparable to the pre-telemetry BENCH_parallel.json.
    let n = 1usize << 18;
    let data: Vec<f64> = (0..n).map(|i| (i as f64 * 0.013).sin() * 0.4).collect();
    let comp = QcfCompressor::ratio();
    let mut group = c.benchmark_group("telemetry/qcf_compress");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(3));
    group.throughput(Throughput::Bytes((n * 8) as u64));
    for (label, on) in [("disabled", false), ("enabled", true)] {
        group.bench_function(label, |bch| {
            qcf_telemetry::set_enabled(on);
            let stream = gpu_model::Stream::new(gpu_model::DeviceSpec::a100());
            bch.iter(|| {
                drain_spans();
                comp.compress(black_box(&data), ErrorBound::Abs(1e-4), &stream)
                    .unwrap()
            })
        });
    }
    group.finish();
    qcf_telemetry::set_enabled(false);
}

fn bench_state_apply(c: &mut Criterion) {
    // The compressed-state warm path (cache hits, no codec work) now also
    // carries the error-budget ledger. With telemetry disabled the ledger
    // must stay local bookkeeping only — this group pins that: disabled vs
    // enabled apply the same gates through a fully resident cache, where
    // any ledger/registry cost would be the entire difference.
    use compressors::cuszx::CuSzx;
    use qcircuit::Gate;
    use qtensor::CompressedState;

    let comp = CuSzx::default();
    let gates: Vec<Gate> = (0..6)
        .flat_map(|q| [Gate::H(q), Gate::Rx(q, 0.31), Gate::T(q)])
        .collect();
    let mut group = c.benchmark_group("telemetry/state_apply");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(3));
    for (label, on) in [("disabled", false), ("enabled", true)] {
        group.bench_function(label, |bch| {
            qcf_telemetry::set_enabled(on);
            let mut cs = CompressedState::zero(10, 6, &comp, ErrorBound::Abs(1e-7)).unwrap();
            cs.set_cache_capacity(16).unwrap(); // all 16 chunks resident
            bch.iter(|| {
                drain_spans();
                for g in &gates {
                    cs.apply(black_box(g)).unwrap();
                }
                cs.stats.cache_hits
            })
        });
    }
    group.finish();
    qcf_telemetry::set_enabled(false);
}

fn bench_state_apply_armed(c: &mut Criterion) {
    // The continuous-telemetry extras on top of "enabled": the per-chunk
    // causal journal (one bounded ring push per lifecycle event, hot path
    // is cache hits) and the time-series sampler (its own thread snapshots
    // the registry; the workload thread pays nothing beyond registry
    // contention). Same workload as telemetry/state_apply so the three
    // figures are directly comparable to its "enabled" side.
    use compressors::cuszx::CuSzx;
    use qcircuit::Gate;
    use qtensor::CompressedState;

    let comp = CuSzx::default();
    let gates: Vec<Gate> = (0..6)
        .flat_map(|q| [Gate::H(q), Gate::Rx(q, 0.31), Gate::T(q)])
        .collect();
    let mut group = c.benchmark_group("telemetry/state_apply_armed");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(3));
    for (label, journal_on, sample_ms) in [
        ("journal", true, None),
        ("sampler", false, Some(5u64)),
        ("journal+sampler", true, Some(5)),
    ] {
        group.bench_function(label, |bch| {
            qcf_telemetry::set_enabled(true);
            qcf_telemetry::journal::reset();
            qcf_telemetry::journal::set_enabled(journal_on);
            qcf_telemetry::timeseries::stop();
            qcf_telemetry::timeseries::reset();
            if let Some(ms) = sample_ms {
                qcf_telemetry::timeseries::start(ms);
            }
            let mut cs = CompressedState::zero(10, 6, &comp, ErrorBound::Abs(1e-7)).unwrap();
            cs.set_cache_capacity(16).unwrap(); // all 16 chunks resident
            bch.iter(|| {
                drain_spans();
                for g in &gates {
                    cs.apply(black_box(g)).unwrap();
                }
                cs.stats.cache_hits
            });
            qcf_telemetry::timeseries::stop();
            qcf_telemetry::journal::set_enabled(false);
        });
    }
    group.finish();
    qcf_telemetry::set_enabled(false);
}

fn bench_slo_tick(c: &mut Criterion) {
    // The SLO engine's promise: disarmed, `tick` is a single relaxed
    // atomic load; armed, a tick evaluates every default objective over
    // the fast/slow windows of a fully populated sampler ring. Both are
    // off the workload's hot path (the sampler thread calls `tick`), but
    // the armed figure is what bounds the sampler thread's duty cycle.
    use qcf_telemetry::slo;
    use qcf_telemetry::timeseries;

    let mut group = c.benchmark_group("telemetry/slo_tick");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(3));

    group.bench_function("disarmed", |bch| {
        slo::disarm();
        bch.iter(slo::tick)
    });

    group.bench_function("armed", |bch| {
        // Populate the ring with realistic registry snapshots so window
        // evaluation walks real key sets, then arm the default spec.
        qcf_telemetry::set_enabled(true);
        timeseries::stop();
        timeseries::reset();
        use compressors::cuszx::CuSzx;
        use qcircuit::Gate;
        use qtensor::CompressedState;
        let comp = CuSzx::default();
        let mut cs = CompressedState::zero(10, 6, &comp, ErrorBound::Abs(1e-7)).unwrap();
        cs.set_cache_capacity(4).unwrap();
        for q in 0..6u32 {
            for g in [
                Gate::H(q as usize),
                Gate::Rx(q as usize, 0.31),
                Gate::T(q as usize),
            ] {
                cs.apply(&g).unwrap();
            }
            timeseries::offer(timeseries::Sample {
                t_us: (u64::from(q) + 1) * 1000,
                metrics: qcf_telemetry::metrics::registry().snapshot(),
            });
        }
        slo::arm(qcf_telemetry::slo::SloSpec::defaults());
        bch.iter(|| {
            slo::tick();
            black_box(slo::ticks())
        });
        slo::disarm();
        timeseries::reset();
        qcf_telemetry::set_enabled(false);
    });

    group.finish();
}

criterion_group!(
    benches,
    bench_contraction,
    bench_compress,
    bench_state_apply,
    bench_state_apply_armed,
    bench_slo_tick
);
criterion_main!(benches);
