//! Allocation-free pipeline benches: write-back chunk cache vs classic
//! decompress/apply/recompress, and `*_into` buffer-reusing round trips vs
//! the allocating `compress`/`decompress` entry points.
//!
//! A counting global allocator reports allocation *events* (alloc /
//! alloc_zeroed / realloc; frees excluded) per measured configuration, so
//! the numbers recorded in `BENCH_alloc.json` carry both wall time and
//! heap traffic.

use compressors::{Compressor, ErrorBound};
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use gpu_model::{DeviceSpec, Stream};
use qcf_core::QcfCompressor;
use qcircuit::{qaoa_circuit, Graph, QaoaParams};
use qtensor::CompressedState;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOC_EVENTS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Runs `f` once and reports its allocation-event count under `label`.
fn count_allocs<R>(label: &str, mut f: impl FnMut() -> R) -> R {
    let before = ALLOC_EVENTS.load(Ordering::SeqCst);
    let r = f();
    let delta = ALLOC_EVENTS.load(Ordering::SeqCst) - before;
    eprintln!("alloc-count {label}: {delta} allocation events");
    r
}

fn qaoa_gates(nodes: usize, seed: u64) -> (Graph, Vec<qcircuit::Gate>) {
    let g = Graph::random_regular(nodes, 3, seed);
    let c = qaoa_circuit(&g, &QaoaParams::fixed_angles_3reg_p1());
    let gates = c.gates().to_vec();
    (g, gates)
}

/// Full QAOA sweep over a compressed state at the given cache capacity.
fn apply_sweep(cs: &mut CompressedState, gates: &[qcircuit::Gate]) {
    for g in gates {
        cs.apply(g).unwrap();
    }
}

fn bench_apply_loop(c: &mut Criterion) {
    let nodes = 12;
    let (_g, gates) = qaoa_gates(nodes, 7);
    let comp = QcfCompressor::speed();
    let bound = ErrorBound::Abs(1e-8);
    // 2^9-amplitude chunks -> 8 chunks; the warm cache holds all of them.
    let chunk = nodes - 3;

    let mut group = c.benchmark_group("alloc/apply_loop");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.throughput(Throughput::Elements(gates.len() as u64));

    group.bench_function("uncached", |bch| {
        let mut cs = CompressedState::zero(nodes, chunk, &comp, bound).unwrap();
        cs.set_cache_capacity(0).unwrap();
        apply_sweep(&mut cs, &gates); // warm scratch buffers
        bch.iter(|| apply_sweep(black_box(&mut cs), &gates));
    });
    group.bench_function("warm_cache", |bch| {
        let mut cs = CompressedState::zero(nodes, chunk, &comp, bound).unwrap();
        apply_sweep(&mut cs, &gates); // fault every chunk in
        bch.iter(|| apply_sweep(black_box(&mut cs), &gates));
    });
    group.finish();

    // One instrumented sweep per configuration for the recorded counts.
    let mut cs = CompressedState::zero(nodes, chunk, &comp, bound).unwrap();
    cs.set_cache_capacity(0).unwrap();
    apply_sweep(&mut cs, &gates);
    count_allocs("apply_loop/uncached (1 sweep)", || {
        apply_sweep(&mut cs, &gates)
    });
    let mut cs = CompressedState::zero(nodes, chunk, &comp, bound).unwrap();
    apply_sweep(&mut cs, &gates);
    count_allocs("apply_loop/warm_cache (1 sweep)", || {
        apply_sweep(&mut cs, &gates)
    });
}

fn bench_round_trip(c: &mut Criterion) {
    let n = 1usize << 16;
    let data: Vec<f64> = (0..n).map(|i| (i as f64 * 0.013).sin() * 0.4).collect();
    let bound = ErrorBound::Abs(1e-4);
    let comp = QcfCompressor::speed();
    let stream = Stream::new(DeviceSpec::a100());

    let mut group = c.benchmark_group("alloc/round_trip");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.throughput(Throughput::Bytes((n * 8) as u64));

    group.bench_function("allocating", |bch| {
        bch.iter(|| {
            let bytes = comp.compress(black_box(&data), bound, &stream).unwrap();
            comp.decompress(&bytes, &stream).unwrap()
        })
    });
    group.bench_function("into_reused", |bch| {
        let mut bytes = Vec::new();
        let mut out = Vec::new();
        // Grow both buffers to steady-state capacity before measuring.
        comp.compress_into(&data, bound, &stream, &mut bytes)
            .unwrap();
        comp.decompress_into(&bytes, &stream, &mut out).unwrap();
        bch.iter(|| {
            comp.compress_into(black_box(&data), bound, &stream, &mut bytes)
                .unwrap();
            comp.decompress_into(&bytes, &stream, &mut out).unwrap();
            out.len()
        })
    });
    group.finish();

    count_allocs("round_trip/allocating (1 trip)", || {
        let bytes = comp.compress(&data, bound, &stream).unwrap();
        comp.decompress(&bytes, &stream).unwrap()
    });
    let mut bytes = Vec::new();
    let mut out = Vec::new();
    comp.compress_into(&data, bound, &stream, &mut bytes)
        .unwrap();
    comp.decompress_into(&bytes, &stream, &mut out).unwrap();
    count_allocs("round_trip/into_reused (1 trip)", || {
        comp.compress_into(&data, bound, &stream, &mut bytes)
            .unwrap();
        comp.decompress_into(&bytes, &stream, &mut out).unwrap();
    });
}

fn report_context(c: &mut Criterion) {
    eprintln!(
        "alloc bench context: worker_count={} (QCF_WORKERS={:?}), \
         chunk cache default={:?}",
        gpu_model::exec::worker_count(),
        std::env::var("QCF_WORKERS").ok(),
        std::env::var("QCF_CHUNK_CACHE").ok(),
    );
    let _ = c;
}

criterion_group!(benches, report_context, bench_apply_loop, bench_round_trip);
criterion_main!(benches);
