//! Host-side (wall-clock) compress/decompress benchmarks for all nine
//! compressors plus the framework modes — the Criterion counterpart of
//! experiment E3 (whose headline numbers are simulated-A100 figures).

use compressors::{all_compressors, Compressor, ErrorBound};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gpu_model::{DeviceSpec, Stream};
use qcf_bench::corpus::synthetic_tensor;
use qcf_core::QcfCompressor;

fn lineup() -> Vec<Box<dyn Compressor>> {
    let mut comps = all_compressors();
    comps.push(Box::new(QcfCompressor::ratio()));
    comps.push(Box::new(QcfCompressor::speed()));
    comps
}

fn bench_compress(c: &mut Criterion) {
    let data = synthetic_tensor(1 << 15, 0.5, 21).data;
    let bytes = (data.len() * 8) as u64;
    let stream = Stream::new(DeviceSpec::a100());
    let mut group = c.benchmark_group("compress");
    group.throughput(Throughput::Bytes(bytes));
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for comp in lineup() {
        group.bench_with_input(
            BenchmarkId::from_parameter(comp.name()),
            &data,
            |b, data| b.iter(|| comp.compress(data, ErrorBound::Rel(1e-3), &stream).unwrap()),
        );
    }
    group.finish();
}

fn bench_decompress(c: &mut Criterion) {
    let data = synthetic_tensor(1 << 15, 0.5, 22).data;
    let bytes = (data.len() * 8) as u64;
    let stream = Stream::new(DeviceSpec::a100());
    let mut group = c.benchmark_group("decompress");
    group.throughput(Throughput::Bytes(bytes));
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for comp in lineup() {
        let compressed = comp
            .compress(&data, ErrorBound::Rel(1e-3), &stream)
            .unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(comp.name()),
            &compressed,
            |b, compressed| b.iter(|| comp.decompress(compressed, &stream).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_compress, bench_decompress);
criterion_main!(benches);
