//! `qcfz slo` — evaluate the service-level objectives against a real run.
//!
//! The command drives one chunk-compressed state workload (the same
//! instance `qcfz state` runs) with the background sampler, the live SLO
//! engine and the causal journal armed, then replays the captured sample
//! ring through the pure evaluator ([`qcf_telemetry::slo::evaluate_ring`])
//! — the deterministic verdict path — and prints the alert table, the
//! lifecycle transition log and an exact-accounting self check.
//!
//! Modes:
//!
//! * default: run, evaluate, exit 0 iff **no** alert ends firing;
//! * `--expect-firing a,b`: exit 0 iff **every** listed alert fired
//!   during the run — still firing at the end, or fired and resolved
//!   (the fault-drill contract — CI seeds faults and demands the alarm
//!   rang, not that the fault conveniently lasted until the final tick);
//! * `--explain <alert>`: additionally dissect one alert — its objective,
//!   every transition with both window values, the contributing ring
//!   samples around each transition, and the journal's causal chain for
//!   the alert (the live engine journals each transition under
//!   [`qcf_telemetry::slo::JOURNAL_BASE`]` + objective index`);
//! * `--print`: print the active spec (`QCF_SLO` or built-in defaults)
//!   and exit — the round-trippable rules text, ready to edit.

use crate::cli::{self, CliError, StateRunCfg};
use compressors::ErrorBound;
use qcf_telemetry::journal;
use qcf_telemetry::slo::{self, AlertState, Expr, SloReport, SloSpec, JOURNAL_BASE};
use qcf_telemetry::timeseries::{self, Sample};
use std::fmt::Write as _;

/// Configuration for one `qcfz slo` invocation.
#[derive(Debug, Clone)]
pub struct SloConfig {
    /// QAOA graph nodes (= qubits) for the workload run.
    pub nodes: usize,
    /// Graph seed.
    pub seed: u64,
    /// Compressor display name (`qcfz list`).
    pub compressor: String,
    /// Error bound for the chunk codec.
    pub bound: ErrorBound,
    /// Qubits per chunk.
    pub chunk_qubits: usize,
    /// Write-back cache capacity override (chunks).
    pub cache: Option<usize>,
    /// Compressed-resident byte budget (arms the spill tier).
    pub mem_budget: Option<usize>,
    /// Sampler interval in milliseconds — small, so even a short run
    /// leaves enough ring samples for the burn-rate windows.
    pub interval_ms: u64,
    /// Print the active spec and exit without running anything.
    pub print_spec: bool,
    /// Alert to dissect after the run.
    pub explain: Option<String>,
    /// Alerts that MUST end the run firing (empty = none may).
    pub expect_firing: Vec<String>,
}

impl SloConfig {
    /// Defaults matching `qcfz state`: 10-node QAOA, QCF-speed.
    pub fn new(nodes: usize, seed: u64, compressor: &str, bound: ErrorBound) -> Self {
        SloConfig {
            nodes,
            seed,
            compressor: compressor.to_string(),
            bound,
            chunk_qubits: nodes.saturating_sub(3),
            cache: None,
            mem_budget: None,
            interval_ms: 2,
            print_spec: false,
            explain: None,
            expect_firing: Vec::new(),
        }
    }
}

/// What one evaluation produced: the printable text and the exit verdict.
#[derive(Debug, Clone)]
pub struct SloOutcome {
    /// Full rendered output (already printed by [`run`]'s caller).
    pub text: String,
    /// Names of alerts that ended the run firing, spec order.
    pub firing: Vec<String>,
    /// Exit-0 verdict (see [`verdict`]).
    pub ok: bool,
}

/// The `qcfz slo` body: run the workload under the armed engine, replay
/// the ring, render, and judge.
pub fn run(cfg: &SloConfig) -> Result<SloOutcome, CliError> {
    let spec = SloSpec::active();
    if cfg.print_spec {
        return Ok(SloOutcome {
            text: spec.to_text(),
            firing: Vec::new(),
            ok: true,
        });
    }
    run_with_spec(cfg, spec)
}

/// [`run`] with an explicit spec (tests inject tight objectives here;
/// the CLI path resolves `QCF_SLO`/defaults via [`SloSpec::active`]).
pub fn run_with_spec(cfg: &SloConfig, spec: SloSpec) -> Result<SloOutcome, CliError> {
    // Arm the whole continuous-telemetry stack: live engine (so the
    // journal carries the causal chain `--explain` prints), sampler (the
    // ring the verdict replays), journal.
    qcf_telemetry::set_enabled(true);
    journal::set_enabled(true);
    slo::arm(spec.clone());
    timeseries::stop();
    timeseries::reset();
    timeseries::start(cfg.interval_ms.max(1));

    let mut run_cfg = StateRunCfg::new(
        cfg.nodes,
        cfg.seed,
        cfg.chunk_qubits.min(cfg.nodes),
        &cfg.compressor,
    );
    run_cfg.bound = cfg.bound;
    run_cfg.cache = cfg.cache;
    run_cfg.mem_budget = cfg.mem_budget;
    let summary = cli::state_demo(&run_cfg);

    // Freeze the series before judging — and before surfacing a workload
    // error, so a crashed run still leaves the ring inspectable.
    timeseries::capture();
    timeseries::stop();
    journal::set_enabled(false);
    let summary = summary?;

    let samples = timeseries::samples();
    let report = slo::evaluate_ring(&spec, &samples);
    report
        .check_accounting()
        .map_err(|e| CliError(format!("slo accounting inconsistent: {e}")))?;

    let mut text = render(cfg, &report, summary.energy);
    if let Some(name) = &cfg.explain {
        text.push_str(&explain(name, &report, &samples)?);
    }
    let firing: Vec<String> = report
        .in_state(AlertState::Firing)
        .iter()
        .map(|a| a.objective.name.clone())
        .collect();
    // "Fired during the run": ended Firing, or ended Resolved — Resolved
    // is only reachable from Firing, so it proves the alarm rang even
    // when the fault cleared before the run finished.
    let mut fired = firing.clone();
    fired.extend(
        report
            .in_state(AlertState::Resolved)
            .iter()
            .map(|a| a.objective.name.clone()),
    );
    let (ok, line) = verdict(&firing, &fired, &cfg.expect_firing);
    let _ = writeln!(text, "{line}");
    Ok(SloOutcome { text, firing, ok })
}

/// The exit contract: with no expectations, a clean run (nothing firing
/// at the end) passes; with `--expect-firing`, every listed alert must
/// have fired during the run — still firing, or fired and since resolved
/// (a burn-rate alert legitimately resolves when the fault stops burning
/// before the run ends). Extra firing alerts are reported but tolerated:
/// a fault drill often trips neighbours. Returns the verdict plus its
/// printable line.
pub fn verdict(firing: &[String], fired: &[String], expected: &[String]) -> (bool, String) {
    if expected.is_empty() {
        return if firing.is_empty() {
            (true, "slo verdict: PASS — no firing alerts".into())
        } else {
            (
                false,
                format!("slo verdict: FAIL — firing: {}", firing.join(", ")),
            )
        };
    }
    let missing: Vec<&String> = expected.iter().filter(|e| !fired.contains(e)).collect();
    if missing.is_empty() {
        (
            true,
            format!(
                "slo verdict: PASS — expected alerts fired: {}",
                expected.join(", ")
            ),
        )
    } else {
        (
            false,
            format!(
                "slo verdict: FAIL — expected to fire but never did: {} (fired: {})",
                missing
                    .iter()
                    .map(|s| s.as_str())
                    .collect::<Vec<_>>()
                    .join(", "),
                if fired.is_empty() {
                    "none".into()
                } else {
                    fired.join(", ")
                }
            ),
        )
    }
}

/// Renders the alert table, transition log and accounting line.
fn render(cfg: &SloConfig, report: &SloReport, energy: f64) -> String {
    let mut out = String::with_capacity(1024);
    let _ = writeln!(
        out,
        "qcfz slo — {} on {}-node QAOA (seed {}, chunk 2^{}), energy {:.6}",
        cfg.compressor, cfg.nodes, cfg.seed, cfg.chunk_qubits, energy
    );
    let _ = writeln!(
        out,
        "spec: windows {}/{} samples, pending {}, resolve {} — {} objectives",
        report.spec.fast,
        report.spec.slow,
        report.spec.pending_for,
        report.spec.resolve_after,
        report.spec.objectives.len()
    );
    // The exact-accounting line CI greps for (already reconciled by
    // `check_accounting` before rendering).
    let _ = writeln!(
        out,
        "slo accounting: exact — {} ticks, {} breaches, {} transitions",
        report.ticks,
        report.breaches,
        report.transitions.len()
    );
    let _ = writeln!(
        out,
        "{:<24} {:<9} {:>12} {:>12} {:>8}  objective",
        "alert", "state", "fast", "slow", "breaches"
    );
    for a in &report.alerts {
        let _ = writeln!(
            out,
            "{:<24} {:<9} {:>12} {:>12} {:>8}  {} {} {}",
            a.objective.name,
            a.state.label(),
            fmt_sig(a.fast),
            fmt_sig(a.slow),
            a.breach_ticks,
            a.objective.expr.to_text(),
            a.objective.op.label(),
            fmt_sig(a.objective.threshold)
        );
    }
    if !report.transitions.is_empty() {
        let _ = writeln!(out, "transitions:");
        for t in &report.transitions {
            let _ = writeln!(
                out,
                "  tick {:>4} t+{}µs  {} {} -> {} (fast {}, slow {})",
                t.tick,
                t.t_us,
                t.name,
                t.from.label(),
                t.to.label(),
                fmt_sig(t.fast),
                fmt_sig(t.slow)
            );
        }
    }
    out
}

/// Compact signal formatting: integers as-is, everything else in short
/// scientific form, NaN (no signal yet) as `-`.
fn fmt_sig(v: f64) -> String {
    if v.is_nan() {
        "-".into()
    } else if v == v.trunc() && v.abs() < 1e7 {
        format!("{}", v as i64)
    } else {
        format!("{v:.2e}")
    }
}

/// The per-sample value a window evaluation saw at ring index `i`: point
/// reading for levels, the adjacent-pair delta for rates/hit-rates and
/// quantiles (which are window-delta signals and carry nothing on a
/// single sample).
fn point_value(expr: &Expr, samples: &[Sample], i: usize) -> f64 {
    let window = &samples[i.saturating_sub(1)..=i];
    slo::eval_window(expr, window).unwrap_or(f64::NAN)
}

/// `--explain <alert>`: one alert's objective, transitions, the ring
/// samples inside the fast window at each transition, and the journal's
/// causal chain for the alert.
fn explain(name: &str, report: &SloReport, samples: &[Sample]) -> Result<String, CliError> {
    let idx = report
        .spec
        .objectives
        .iter()
        .position(|o| o.name == name)
        .ok_or_else(|| {
            CliError(format!(
                "unknown alert '{name}' (spec has: {})",
                report
                    .spec
                    .objectives
                    .iter()
                    .map(|o| o.name.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            ))
        })?;
    let alert = &report.alerts[idx];
    let mut out = String::new();
    let _ = writeln!(out, "\nexplain {name}:");
    let _ = writeln!(
        out,
        "  objective: {}  — final state {}, {} of {} ticks breached",
        alert.objective.to_text(),
        alert.state.label(),
        alert.breach_ticks,
        report.ticks
    );
    let trans: Vec<_> = report
        .transitions
        .iter()
        .filter(|t| t.name == name)
        .collect();
    if trans.is_empty() {
        let _ = writeln!(out, "  no lifecycle transitions — the alert never left ok");
    }
    for t in &trans {
        let _ = writeln!(
            out,
            "  {} -> {} at tick {} (t+{}µs): fast {} / slow {} vs target {} {}",
            t.from.label(),
            t.to.label(),
            t.tick,
            t.t_us,
            fmt_sig(t.fast),
            fmt_sig(t.slow),
            alert.objective.op.label(),
            fmt_sig(alert.objective.threshold)
        );
        // The fast window that tipped the machine, sample by sample.
        let end = (t.tick as usize + 1).min(samples.len());
        let start = end.saturating_sub(report.spec.fast);
        for i in start..end {
            let _ = writeln!(
                out,
                "    sample {:>4} t+{}µs  {} = {}",
                i,
                samples[i].t_us,
                alert.objective.expr.to_text(),
                fmt_sig(point_value(&alert.objective.expr, samples, i))
            );
        }
    }
    // Journal causal chain: the live engine records every transition it
    // took under a synthetic per-objective chunk id. The live machine can
    // legitimately disagree with the replay after a ring fold (it ticked
    // on samples the fold later discarded), so this is evidence of what
    // the process experienced, labelled as such — not the verdict.
    let events = journal::events(JOURNAL_BASE + idx as u64);
    if !events.is_empty() {
        let _ = writeln!(
            out,
            "  journal chain (live engine, {} events; detail = new state code):",
            events.len()
        );
        for e in &events {
            let to = match e.detail as i64 {
                0 => "ok",
                1 => "pending",
                2 => "firing",
                3 => "resolved",
                _ => "?",
            };
            let _ = writeln!(
                out,
                "    seq {:>6} t+{}µs  {} -> {}",
                e.seq,
                e.t_us,
                e.kind.label(),
                to
            );
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_cfg() -> SloConfig {
        let mut cfg = SloConfig::new(8, 5, "QCF-speed", ErrorBound::Rel(1e-3));
        cfg.chunk_qubits = 4;
        cfg
    }

    #[test]
    fn verdict_table() {
        let f = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert!(verdict(&[], &[], &[]).0);
        assert!(!verdict(&f(&["a"]), &f(&["a"]), &[]).0);
        assert!(
            verdict(&f(&["a", "b"]), &f(&["a", "b"]), &f(&["a"])).0,
            "subset semantics"
        );
        assert!(!verdict(&f(&["b"]), &f(&["b"]), &f(&["a", "b"])).0);
        // A fired-then-resolved alert satisfies the expectation even
        // though nothing is firing at the end.
        assert!(verdict(&[], &f(&["a"]), &f(&["a"])).0);
        let (ok, line) = verdict(&[], &[], &f(&["latency.stall"]));
        assert!(!ok);
        assert!(line.contains("latency.stall"), "{line}");
        assert!(line.contains("none"), "{line}");
    }

    #[test]
    fn clean_run_passes_with_exact_accounting() {
        let _g = crate::telemetry_test_lock();
        // A forgiving objective a fault-free run can never breach.
        let spec = SloSpec::parse(
            "windows=2/4; pending=2; resolve=2; \
             fidelity.quarantine: state.ledger.quarantines <= 0",
        )
        .unwrap();
        let out = run_with_spec(&base_cfg(), spec).unwrap();
        assert!(out.ok, "{}", out.text);
        assert!(out.firing.is_empty());
        assert!(out.text.contains("slo accounting: exact"), "{}", out.text);
        assert!(out.text.contains("slo verdict: PASS"), "{}", out.text);
        slo::disarm();
        timeseries::reset();
    }

    #[test]
    fn impossible_objective_fires_and_expectation_flips_the_verdict() {
        let _g = crate::telemetry_test_lock();
        // The apply histogram's count is monotone: once the first gate
        // lands the objective breaches and can never resolve, so the
        // alert is still firing at end of run — deterministically — on
        // any host. (A gauge like resident_bytes would drop back to zero
        // when the run frees its chunks and the alert would resolve.)
        let spec = SloSpec::parse(
            "windows=1/2; pending=1; resolve=3; \
             capacity.resident: state.apply_us <= 0",
        )
        .unwrap();
        let mut cfg = base_cfg();
        let out = run_with_spec(&cfg, spec.clone()).unwrap();
        assert!(!out.ok, "{}", out.text);
        assert_eq!(out.firing, vec!["capacity.resident".to_string()]);
        assert!(out.text.contains("slo verdict: FAIL"), "{}", out.text);

        // The same run under --expect-firing passes, and --explain renders
        // the transition with its contributing samples.
        cfg.expect_firing = vec!["capacity.resident".into()];
        cfg.explain = Some("capacity.resident".into());
        let out = run_with_spec(&cfg, spec).unwrap();
        assert!(out.ok, "{}", out.text);
        assert!(
            out.text.contains("explain capacity.resident"),
            "{}",
            out.text
        );
        assert!(out.text.contains("ok -> firing"), "{}", out.text);
        assert!(out.text.contains("sample"), "{}", out.text);
        slo::disarm();
        timeseries::reset();
    }

    #[test]
    fn explain_refuses_unknown_alerts() {
        let spec = SloSpec::parse("hot: state.cache.hit >= 0").unwrap();
        let report = slo::evaluate_ring(&spec, &[]);
        let err = explain("no.such.alert", &report, &[]).unwrap_err();
        assert!(err.0.contains("unknown alert"), "{err}");
        assert!(err.0.contains("hot"), "lists the spec's alerts: {err}");
    }
}
