//! The evaluation corpus: QTensor-generated tensors of varying sizes.
//!
//! Two sources, mirroring the paper's methodology:
//!
//! * **Real intermediates** — traced out of actual QAOA MaxCut contractions
//!   on seeded random regular graphs (the paper's own workload). These top
//!   out at the sizes single-process bucket elimination reaches quickly.
//! * **Scaled ensembles** — synthetic tensors whose value structure is
//!   calibrated to the measured E1 statistics of the real ones (small
//!   distinct-value alphabet growing ~√n, variable near-zero mass,
//!   interleaved complex layout). These extend every sweep to the multi-MiB
//!   sizes the paper's A100 runs used; DESIGN.md §2 records the
//!   substitution.

use qcircuit::{Graph, QaoaParams};
use qtensor::{Simulator, TraceHook};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use tensornet::planes::as_interleaved;
use tensornet::stats::{distinct_values, ValueStats};

/// One corpus entry: a flat interleaved-complex buffer plus provenance.
#[derive(Debug, Clone)]
pub struct CorpusTensor {
    /// Interleaved `re, im, …` doubles.
    pub data: Vec<f64>,
    /// Where it came from (instance or ensemble id).
    pub origin: String,
    /// True for traced intermediates, false for scaled ensembles.
    pub real: bool,
}

impl CorpusTensor {
    /// Bytes of the uncompressed buffer.
    pub fn nbytes(&self) -> usize {
        self.data.len() * 8
    }
}

/// E1 characterization record for one tensor.
#[derive(Debug, Clone)]
pub struct Characterization {
    /// Provenance label.
    pub origin: String,
    /// Double count (2× complex elements).
    pub doubles: usize,
    /// Smallest value.
    pub min: f64,
    /// Largest value.
    pub max: f64,
    /// Fraction with |v| ≤ 1e-7.
    pub near_zero_frac: f64,
    /// Number of distinct bit patterns.
    pub distinct: usize,
    /// distinct / doubles.
    pub distinct_frac: f64,
}

/// Characterizes one buffer (the E1 row).
pub fn characterize(t: &CorpusTensor) -> Characterization {
    let s = ValueStats::of(&t.data, 1e-7);
    let distinct = distinct_values(&t.data);
    Characterization {
        origin: t.origin.clone(),
        doubles: t.data.len(),
        min: s.min,
        max: s.max,
        near_zero_frac: s.near_zero_frac,
        distinct,
        distinct_frac: distinct as f64 / t.data.len().max(1) as f64,
    }
}

/// Traces the `keep_largest` biggest intermediates (≥ `min_complex`
/// elements) from one QAOA instance.
pub fn trace_instance(
    n: usize,
    seed: u64,
    min_complex: usize,
    keep_largest: usize,
) -> Vec<CorpusTensor> {
    let graph = Graph::random_regular(n, 3, seed);
    let params = QaoaParams::fixed_angles_3reg_p2();
    let mut trace = TraceHook::new(min_complex, 0);
    Simulator::default()
        .energy_with_hook(&graph, &params, &mut trace)
        .expect("corpus trace run failed");
    let mut captured = trace.into_captured();
    captured.sort_by_key(|t| std::cmp::Reverse(t.len()));
    captured.truncate(keep_largest);
    captured
        .into_iter()
        .enumerate()
        .map(|(i, t)| CorpusTensor {
            data: as_interleaved(t.data()).to_vec(),
            origin: format!("qaoa-n{n}-s{seed}-t{i}"),
            real: true,
        })
        .collect()
}

/// The standard real corpus: largest intermediates from three instances.
pub fn real_corpus(quick: bool) -> Vec<CorpusTensor> {
    let specs: &[(usize, u64)] = if quick {
        &[(30, 5), (34, 1)]
    } else {
        &[(30, 5), (34, 1), (38, 2), (44, 3)]
    };
    let mut out = Vec::new();
    for &(n, seed) in specs {
        out.extend(trace_instance(n, seed, 2048, 6));
    }
    out
}

/// A scaled ensemble tensor of `n_complex` elements calibrated to the E1
/// statistics: alphabet ≈ `4√n` distinct complex values (phase products on
/// the scale of gate entries), `zero_frac` near-zero mass, and the
/// segment/motif positional structure contraction imprints (tensor slices
/// tile short index patterns; near-zero regions cluster with scattered
/// exceptions).
pub fn synthetic_tensor(n_complex: usize, zero_frac: f64, seed: u64) -> CorpusTensor {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let d = ((4.0 * (n_complex as f64).sqrt()) as usize).clamp(16, 2000);
    let alphabet: Vec<(f64, f64)> = (0..d)
        .map(|_| {
            let mag: f64 = rng.gen_range(0.01..0.6);
            let phase: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
            (mag * phase.cos(), mag * phase.sin())
        })
        .collect();
    // Near-zero mass repeats a small set of tiny values, exactly as traced
    // tensors do (their tiny amplitudes are products of the same few gate
    // entries, not fresh noise).
    let tiny_alphabet: Vec<f64> = (0..24).map(|_| rng.gen_range(-5e-9..5e-9)).collect();

    let mut data = Vec::with_capacity(n_complex * 2);
    while data.len() < n_complex * 2 {
        let seg = rng.gen_range(64..1024usize).min(n_complex - data.len() / 2);
        if rng.gen::<f64>() < zero_frac {
            // Near-zero segment with occasional scattered survivors.
            for _ in 0..seg {
                if rng.gen::<f64>() < 0.04 {
                    let (re, im) = alphabet[rng.gen_range(0..d)];
                    data.push(re);
                    data.push(im);
                } else {
                    let tiny = tiny_alphabet[rng.gen_range(0..tiny_alphabet.len())];
                    data.push(tiny);
                    data.push(-tiny * 0.5);
                }
            }
        } else {
            // Motif segment: a short pattern over a small sub-alphabet,
            // tiled with sparse substitutions.
            let plen = [4usize, 8, 16][rng.gen_range(0..3)];
            let motif: Vec<usize> = (0..plen).map(|_| rng.gen_range(0..d)).collect();
            for k in 0..seg {
                let idx = if rng.gen::<f64>() < 0.05 {
                    rng.gen_range(0..d)
                } else {
                    motif[k % plen]
                };
                let (re, im) = alphabet[idx];
                data.push(re);
                data.push(im);
            }
        }
    }
    CorpusTensor {
        data,
        origin: format!("ensemble-n{n_complex}-z{:02}", (zero_frac * 100.0) as u32),
        real: false,
    }
}

/// Size sweep used by the ratio/throughput experiments: powers of two with
/// three zero-mass profiles each (matching the observed spread).
pub fn scaled_corpus(exponents: &[u32], seed: u64) -> Vec<CorpusTensor> {
    let mut out = Vec::new();
    for (i, &e) in exponents.iter().enumerate() {
        for (j, &z) in [0.0f64, 0.5, 0.8].iter().enumerate() {
            out.push(synthetic_tensor(1usize << e, z, seed + (i * 3 + j) as u64));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_corpus_is_nonempty_and_sorted_by_instance() {
        let c = real_corpus(true);
        assert!(c.len() >= 8, "got only {} tensors", c.len());
        assert!(c.iter().all(|t| t.real && t.data.len() >= 4096));
    }

    #[test]
    fn synthetic_matches_requested_profile() {
        let t = synthetic_tensor(1 << 14, 0.75, 9);
        assert_eq!(t.data.len(), 1 << 15);
        let ch = characterize(&t);
        // segment sampling makes the realized fraction approximate
        assert!(
            (ch.near_zero_frac - 0.75).abs() < 0.2,
            "zero fraction {:.2} far from 0.75",
            ch.near_zero_frac
        );
        // alphabet small relative to n, as in E1
        assert!(
            ch.distinct_frac < 0.2,
            "distinct fraction {:.3}",
            ch.distinct_frac
        );
    }

    #[test]
    fn synthetic_is_deterministic() {
        let a = synthetic_tensor(1024, 0.5, 3);
        let b = synthetic_tensor(1024, 0.5, 3);
        assert_eq!(a.data, b.data);
        let c = synthetic_tensor(1024, 0.5, 4);
        assert_ne!(a.data, c.data);
    }

    #[test]
    fn scaled_corpus_covers_profiles() {
        let c = scaled_corpus(&[10, 12], 1);
        assert_eq!(c.len(), 6);
        assert!(c.iter().any(|t| t.origin.ends_with("z00")));
        assert!(c.iter().any(|t| t.origin.ends_with("z80")));
    }

    #[test]
    fn characterization_fields_consistent() {
        let t = synthetic_tensor(512, 0.0, 2);
        let ch = characterize(&t);
        assert_eq!(ch.doubles, 1024);
        assert!(ch.min <= ch.max);
        assert!(ch.distinct <= ch.doubles);
    }
}
