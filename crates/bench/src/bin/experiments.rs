//! Experiment harness CLI.
//!
//! ```text
//! experiments [e1|e2|...|e9|all] [--quick] [--out DIR]
//! ```
//!
//! Prints each regenerated table and writes JSON records (default `results/`).

use qcf_bench::experiments::run_by_id;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_dir = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "results".to_string());
    let ids: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--") && Some(a.as_str()) != args.iter().position(|x| x == "--out").and_then(|i| args.get(i + 1)).map(|s| s.as_str()))
        .cloned()
        .collect();
    let ids = if ids.is_empty() { vec!["all".to_string()] } else { ids };

    for id in &ids {
        let started = std::time::Instant::now();
        match run_by_id(id, quick) {
            Some(tables) => {
                for (k, table) in tables.iter().enumerate() {
                    table.print();
                    // Tables carry unique experiment ids; suffix only when
                    // one experiment emits several tables under one id.
                    let dup = tables.iter().filter(|t| t.id == table.id).count() > 1;
                    let suffix = if dup { Some(k) } else { None };
                    if let Err(e) = table.save_json(std::path::Path::new(&out_dir), suffix) {
                        eprintln!("warning: could not save {}: {e}", table.id);
                    }
                }
                eprintln!("[{id} done in {:.1}s]", started.elapsed().as_secs_f64());
            }
            None => {
                eprintln!("unknown experiment '{id}' (expected e1..e9 or all)");
                std::process::exit(2);
            }
        }
    }
}
