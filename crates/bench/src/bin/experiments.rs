//! Experiment harness CLI.
//!
//! ```text
//! experiments [e1|e2|...|e9|all] [--quick] [--out DIR]
//!             [--trace FILE] [--metrics FILE] [--phases]
//! ```
//!
//! Prints each regenerated table and writes JSON records (default
//! `results/`). `--trace` writes a Chrome-trace JSON of all spans recorded
//! across the run, `--metrics` dumps the telemetry registry (TSV, or JSON
//! with a `.json` extension), and `--phases` prints the per-phase time
//! breakdown table after the experiments finish.

use qcf_bench::experiments::run_by_id;
use qcf_bench::{cli, report};
use std::path::Path;

fn flag<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let phases = args.iter().any(|a| a == "--phases");
    let trace_path = flag(&args, "--trace").map(str::to_string);
    let metrics_path = flag(&args, "--metrics").map(str::to_string);
    if trace_path.is_some() || metrics_path.is_some() || phases {
        // Explicit telemetry request overrides QCF_TELEMETRY=0.
        qcf_telemetry::set_enabled(true);
    }
    let out_dir = flag(&args, "--out").unwrap_or("results").to_string();
    // Positional ids: anything that is neither a flag nor a flag's value.
    let value_positions: Vec<usize> = ["--out", "--trace", "--metrics"]
        .iter()
        .filter_map(|f| args.iter().position(|a| a == f).map(|i| i + 1))
        .collect();
    let ids: Vec<String> = args
        .iter()
        .enumerate()
        .filter(|(i, a)| !a.starts_with("--") && !value_positions.contains(i))
        .map(|(_, a)| a.clone())
        .collect();
    let ids = if ids.is_empty() {
        vec!["all".to_string()]
    } else {
        ids
    };

    for id in &ids {
        let started = std::time::Instant::now();
        match run_by_id(id, quick) {
            Some(tables) => {
                for (k, table) in tables.iter().enumerate() {
                    table.print();
                    // Tables carry unique experiment ids; suffix only when
                    // one experiment emits several tables under one id.
                    let dup = tables.iter().filter(|t| t.id == table.id).count() > 1;
                    let suffix = if dup { Some(k) } else { None };
                    if let Err(e) = table.save_json(std::path::Path::new(&out_dir), suffix) {
                        eprintln!("warning: could not save {}: {e}", table.id);
                    }
                }
                eprintln!("[{id} done in {:.1}s]", started.elapsed().as_secs_f64());
            }
            None => {
                eprintln!("unknown experiment '{id}' (expected e1..e9 or all)");
                std::process::exit(2);
            }
        }
    }

    if phases {
        report::phase_table(&qcf_telemetry::span::snapshot()).print();
        report::metrics_table().print();
    }
    if let Some(path) = &trace_path {
        // Experiments run everything host-side; only span lanes here.
        match cli::write_trace(Path::new(path), &[]) {
            Ok(()) => eprintln!("trace written to {path}"),
            Err(e) => eprintln!("warning: could not write trace: {e}"),
        }
    }
    if let Some(path) = &metrics_path {
        match cli::write_metrics(Path::new(path)) {
            Ok(()) => eprintln!("metrics written to {path}"),
            Err(e) => eprintln!("warning: could not write metrics: {e}"),
        }
    }
}
