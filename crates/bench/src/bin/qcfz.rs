//! `qcfz` — compress/decompress f64 files with any compressor of the suite.
//!
//! ```text
//! qcfz list
//! qcfz compress <in.f64> <out.qcfz> [--compressor NAME] [--rel X | --abs X]
//! qcfz decompress <in.qcfz> <out.f64>
//! qcfz info <in.qcfz>
//! qcfz qaoa [--nodes N] [--seed S] [--compressor NAME] [--rel X | --abs X]
//! qcfz state [--nodes N] [--seed S] [--chunk-qubits C] [--cache K] [--chunk ID]
//!            [--mem-budget BYTES[k|m|g]] [--no-prefetch]
//! qcfz top [--nodes N] [--seed S] [--mem-budget BYTES] [--interval MS] [--once]
//! qcfz slo [--print] [--nodes N] [--seed S] [--mem-budget BYTES] [--interval MS]
//!          [--explain ALERT] [--expect-firing a,b]
//! qcfz verify <in.qcfz>
//! qcfz verify --state [--nodes N] [--seed S] [--chunk C] [--cache K]
//!             [--compressor NAME] [--rel X | --abs X] [--mem-budget BYTES]
//! qcfz checkpoint [--out state.qcfs] [--from prev.qcfs] [--gates G]
//!                 [--nodes N] [--seed S] [--chunk-qubits C] [--cache K]
//!                 [--compressor NAME] [--rel X | --abs X] [--mem-budget BYTES]
//! qcfz resume <state.qcfs> [--verify] [--mem-budget BYTES] [--no-prefetch]
//! qcfz report [--out report.md] [--json BENCH_report.json]
//!             [--baseline BENCH_report.json --check] [--diff BENCH_report.json]
//! ```
//!
//! `checkpoint` runs a QAOA circuit up to `--gates G` gates (default:
//! all) and commits a durable snapshot — atomically: a crash at any
//! commit boundary leaves the old snapshot or the new one, never a torn
//! file. `--from prev.qcfs` continues a previous snapshot instead of
//! starting fresh (geometry/codec/bound come from the snapshot), so long
//! runs advance checkpoint-to-checkpoint. `resume` restores a snapshot
//! and finishes its run; `--verify` scrubs every restored chunk against
//! its ledger bound first and exits nonzero unless the state settles
//! clean. Under `QCF_FAULTS=ckpt.kill_point@N` the writer "crashes" at
//! commit boundary N and qcfz exits with code 3 (the crash-drill hook).
//!
//! `slo` evaluates the active service-level objectives (`QCF_SLO` rules or
//! the built-in defaults) against a sampled compressed-state run and exits
//! nonzero when the verdict fails — no alert may end firing, unless
//! `--expect-firing` names alerts that MUST fire during the run (still
//! firing or fired-then-resolved — the CI fault drill).
//! `report --diff <baseline.json>` checks against a stored baseline like
//! `--baseline --check` and additionally prints the ranked movement
//! attribution: which keys moved most and which SLO dimension each
//! endangers.
//!
//! `verify <file>` scrubs a compressed stream (frame checksum + full
//! decode); `verify --state` runs a QAOA circuit on the chunk-compressed
//! state and scrubs every chunk against its error-budget ledger bound.
//! With `--mem-budget BYTES` (or `QCF_MEM_BUDGET`) cold sealed frames
//! spill to a per-state disk log and are prefetched back along the gate
//! schedule; the scrub then reads the on-disk frames through the same
//! decode path, so disk corruption falls under the same contract.
//! With `QCF_FAULTS` set (see qcf-telemetry's fault grammar) the state run
//! executes under injected faults and exits nonzero unless every injected
//! storage corruption was detected and healed or quarantined.
//!
//! Every subcommand that does work accepts `--trace out.json` (Chrome-trace
//! JSON: host span lanes plus the simulated stream's kernel lane, loadable
//! in `chrome://tracing` / `ui.perfetto.dev`) and `--metrics out.tsv`
//! (flat registry dump; `.json` extension switches the format).
//!
//! With `QCF_FLIGHT_RECORD` set, every run keeps a bounded ring of
//! telemetry checkpoints; on error the ring is dumped next to the failure
//! (and at normal exit too when the variable names a path).

use gpu_model::{DeviceSpec, Stream};
use qcf_bench::{cli, run_report};
use std::path::Path;

fn flag<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// `--mem-budget SIZE` — bytes with optional k/m/g (binary) suffix. A
/// malformed value is a hard CLI error here (the `QCF_MEM_BUDGET` env var
/// is the warn-and-ignore path; an explicit flag should fail loudly).
fn parse_mem_budget(args: &[String]) -> Result<Option<usize>, cli::CliError> {
    match flag(args, "--mem-budget") {
        None => Ok(None),
        Some(raw) => qtensor::parse_size(raw)
            .map(Some)
            .map_err(|e| cli::CliError(format!("bad --mem-budget value: {e}"))),
    }
}

/// Writes `--trace` / `--metrics` outputs when requested.
fn export_telemetry(
    args: &[String],
    lanes: &[qcf_telemetry::StreamLane],
) -> Result<(), cli::CliError> {
    if let Some(path) = flag(args, "--trace") {
        cli::write_trace(Path::new(path), lanes)?;
        eprintln!("trace written to {path}");
    }
    if let Some(path) = flag(args, "--metrics") {
        cli::write_metrics(Path::new(path))?;
        eprintln!("metrics written to {path}");
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args
        .iter()
        .any(|a| a == "--trace" || a == "--metrics" || a == "report")
    {
        // Explicit export request overrides QCF_TELEMETRY=0 (`report` is
        // an export request by definition).
        qcf_telemetry::set_enabled(true);
    }
    // Scoped registry reset: spans and metric values start from zero for
    // this subcommand, so counters from an earlier run in the same process
    // (tests, `report`'s phases, embedding tools) never bleed into the
    // exports below.
    let _scope = qcf_telemetry::RunScope::enter();
    // A malformed QCF_FAULTS must never silently disarm a chaos drill: a
    // typo'd spec would otherwise run fault-free and pass vacuously. Fail
    // the invocation as a usage error instead (exit 2).
    if std::env::var("QCF_FAULTS").is_ok_and(|v| !v.trim().is_empty()) {
        qcf_telemetry::faults::armed(); // first call arms (or rejects) the env spec
        if let Some(e) = qcf_telemetry::faults::spec_error() {
            eprintln!("error: QCF_FAULTS is malformed: {e}");
            std::process::exit(2);
        }
    }
    let result = match args.first().map(String::as_str) {
        Some("list") => {
            println!("available compressors:\n{}", cli::list());
            Ok(())
        }
        Some("compress") if args.len() >= 3 => {
            let comp = flag(&args, "--compressor").unwrap_or("QCF-ratio");
            cli::parse_bound(flag(&args, "--rel"), flag(&args, "--abs")).and_then(|bound| {
                let stream = Stream::new(DeviceSpec::a100());
                let s = cli::compress_file_on(
                    Path::new(&args[1]),
                    Path::new(&args[2]),
                    comp,
                    bound,
                    &stream,
                )?;
                println!(
                    "{} values -> {} bytes ({:.1}x) in {:.3} simulated ms",
                    s.n_values,
                    s.compressed_bytes,
                    s.ratio,
                    s.simulated_s * 1e3
                );
                export_telemetry(&args, &[stream.telemetry_lane("A100 stream")])
            })
        }
        Some("decompress") if args.len() >= 3 => {
            let stream = Stream::new(DeviceSpec::a100());
            cli::decompress_file_on(Path::new(&args[1]), Path::new(&args[2]), &stream)
                .map(|n| println!("restored {n} values"))
                .and_then(|()| export_telemetry(&args, &[stream.telemetry_lane("A100 stream")]))
        }
        Some("info") if args.len() >= 2 => {
            cli::info(Path::new(&args[1])).map(|line| println!("{line}"))
        }
        Some("qaoa") => {
            let nodes = flag(&args, "--nodes")
                .and_then(|v| v.parse().ok())
                .unwrap_or(10);
            let seed = flag(&args, "--seed")
                .and_then(|v| v.parse().ok())
                .unwrap_or(21);
            let comp = flag(&args, "--compressor").unwrap_or("QCF-ratio");
            cli::parse_bound(flag(&args, "--rel"), flag(&args, "--abs")).and_then(|bound| {
                let s = cli::qaoa_demo(nodes, seed, comp, bound)?;
                println!(
                    "QAOA n={nodes}: energy {:.6}, {} intermediates compressed ({:.1}x), \
                     peak live {} bytes, {:.3} simulated ms on the compressor stream",
                    s.energy,
                    s.tensors_compressed,
                    s.ratio,
                    s.peak_live_bytes,
                    s.simulated_s * 1e3
                );
                export_telemetry(&args, std::slice::from_ref(&s.stream_lane))
            })
        }
        Some("state") => {
            let nodes: usize = flag(&args, "--nodes")
                .and_then(|v| v.parse().ok())
                .unwrap_or(10);
            let seed = flag(&args, "--seed")
                .and_then(|v| v.parse().ok())
                .unwrap_or(21);
            // Default to 8 chunks so the whole register fits the default
            // write-back cache; low-qubit gates then run entirely on hits.
            // (`--chunk-qubits` is the canonical spelling; bare `--chunk`
            // here names a chunk *id* whose causal journal to print.)
            let chunk = flag(&args, "--chunk-qubits")
                .and_then(|v| v.parse().ok())
                .unwrap_or(nodes.saturating_sub(3));
            let chunk_id: Option<u64> = flag(&args, "--chunk").and_then(|v| v.parse().ok());
            let cache = flag(&args, "--cache").and_then(|v| v.parse().ok());
            let comp = flag(&args, "--compressor").unwrap_or("QCF-speed");
            cli::parse_bound(flag(&args, "--rel"), flag(&args, "--abs"))
                .and_then(|bound| {
                    let mut cfg = cli::StateRunCfg::new(nodes, seed, chunk, comp);
                    cfg.bound = bound;
                    cfg.cache = cache;
                    cfg.journal_chunk = chunk_id;
                    cfg.mem_budget = parse_mem_budget(&args)?;
                    cfg.prefetch = !args.iter().any(|a| a == "--no-prefetch");
                    Ok(cfg)
                })
                .and_then(|cfg| {
                    let s = cli::state_demo(&cfg)?;
                    let st = &s.stats;
                    let touched = st.cache_hits + st.cache_misses;
                    println!(
                        "compressed state n={nodes}: energy {:.6}, resident {} bytes (dense {}), \
                     cache cap {} chunks: {} hits / {} misses ({:.0}% hit rate), \
                     {} write-backs, {} decompressions, {} recompressions",
                        s.energy,
                        st.resident_bytes,
                        s.dense_bytes,
                        s.cache_capacity,
                        st.cache_hits,
                        st.cache_misses,
                        if touched == 0 {
                            0.0
                        } else {
                            100.0 * st.cache_hits as f64 / touched as f64
                        },
                        st.writebacks,
                        st.decompressions,
                        st.recompressions
                    );
                    let t = &s.tiers;
                    println!(
                        "tiers: {} bytes cached amps / {} bytes compressed in RAM / \
                     {} bytes spilled across {} chunks (log {} bytes, budget {})",
                        t.cached_amp_bytes,
                        t.ram_compressed_bytes,
                        t.spilled_bytes,
                        t.spilled_chunks,
                        t.spill_file_bytes,
                        s.mem_budget
                            .map(|b| b.to_string())
                            .unwrap_or_else(|| "unbounded".into())
                    );
                    if st.spills > 0 || st.fetches > 0 {
                        let fetched = st.prefetch_hits + st.prefetch_misses;
                        println!(
                            "spill: {} writes / {} fetches, prefetch {} hits / {} misses \
                         ({:.0}% hit rate), stalled {} us",
                            st.spills,
                            st.fetches,
                            st.prefetch_hits,
                            st.prefetch_misses,
                            if fetched == 0 {
                                0.0
                            } else {
                                100.0 * st.prefetch_hits as f64 / fetched as f64
                            },
                            st.prefetch_stall_us
                        );
                    }
                    if st.compactions > 0 {
                        println!(
                            "spill log: {} compaction{} reclaimed {} dead bytes",
                            st.compactions,
                            if st.compactions == 1 { "" } else { "s" },
                            st.spill_reclaimed_bytes
                        );
                    }
                    let l = &s.ledger;
                    println!(
                        "error-budget ledger: {} requants over {} chunks (max {} per chunk), \
                     accumulated bound max {:.3e} / state RSS {:.3e}{}",
                        l.total_requants,
                        l.chunks,
                        l.max_requants,
                        l.max_accumulated_bound,
                        l.accumulated_rss,
                        if l.lossy { "" } else { " (lossless: exact)" }
                    );
                    if let Some(chain) = &s.chain {
                        print_chunk_chain(chain)?;
                    }
                    export_telemetry(&args, &[])
                })
        }
        Some("top") => {
            let nodes: usize = flag(&args, "--nodes")
                .and_then(|v| v.parse().ok())
                .unwrap_or(12);
            let seed = flag(&args, "--seed")
                .and_then(|v| v.parse().ok())
                .unwrap_or(21);
            let comp = flag(&args, "--compressor").unwrap_or("QCF-speed");
            cli::parse_bound(flag(&args, "--rel"), flag(&args, "--abs")).and_then(|bound| {
                let mut cfg = qcf_bench::top::TopConfig::new(nodes, seed, comp, bound);
                if let Some(c) = flag(&args, "--chunk-qubits").and_then(|v| v.parse().ok()) {
                    cfg.chunk_qubits = c;
                }
                cfg.cache = flag(&args, "--cache").and_then(|v| v.parse().ok());
                cfg.mem_budget = parse_mem_budget(&args)?;
                if let Some(ms) = flag(&args, "--interval").and_then(|v| v.parse().ok()) {
                    cfg.interval_ms = ms;
                }
                cfg.once = args.iter().any(|a| a == "--once");
                qcf_bench::top::run(&cfg).map(|_| ())
            })
        }
        Some("slo") => {
            let nodes: usize = flag(&args, "--nodes")
                .and_then(|v| v.parse().ok())
                .unwrap_or(10);
            let seed = flag(&args, "--seed")
                .and_then(|v| v.parse().ok())
                .unwrap_or(21);
            let comp = flag(&args, "--compressor").unwrap_or("QCF-speed");
            cli::parse_bound(flag(&args, "--rel"), flag(&args, "--abs")).and_then(|bound| {
                let mut cfg = qcf_bench::slo_cmd::SloConfig::new(nodes, seed, comp, bound);
                if let Some(c) = flag(&args, "--chunk-qubits").and_then(|v| v.parse().ok()) {
                    cfg.chunk_qubits = c;
                }
                cfg.cache = flag(&args, "--cache").and_then(|v| v.parse().ok());
                cfg.mem_budget = parse_mem_budget(&args)?;
                if let Some(ms) = flag(&args, "--interval").and_then(|v| v.parse().ok()) {
                    cfg.interval_ms = ms;
                }
                cfg.print_spec = args.iter().any(|a| a == "--print");
                cfg.explain = flag(&args, "--explain").map(str::to_string);
                cfg.expect_firing = flag(&args, "--expect-firing")
                    .map(|v| {
                        v.split(',')
                            .map(str::trim)
                            .filter(|s| !s.is_empty())
                            .map(str::to_string)
                            .collect()
                    })
                    .unwrap_or_default();
                let out = qcf_bench::slo_cmd::run(&cfg)?;
                print!("{}", out.text);
                if out.ok {
                    Ok(())
                } else {
                    return_err("slo verdict failed (see above)".to_string())
                }
            })
        }
        Some("verify") if args.len() >= 2 && args[1] != "--state" => {
            cli::verify_file(Path::new(&args[1])).map(|line| println!("{line}"))
        }
        Some("verify") => {
            let nodes: usize = flag(&args, "--nodes")
                .and_then(|v| v.parse().ok())
                .unwrap_or(10);
            let seed = flag(&args, "--seed")
                .and_then(|v| v.parse().ok())
                .unwrap_or(21);
            let chunk = flag(&args, "--chunk")
                .and_then(|v| v.parse().ok())
                .unwrap_or(nodes.saturating_sub(3));
            let cache = flag(&args, "--cache").and_then(|v| v.parse().ok());
            let comp = flag(&args, "--compressor").unwrap_or("QCF-speed");
            cli::parse_bound(flag(&args, "--rel"), flag(&args, "--abs")).and_then(|bound| {
                let budget = parse_mem_budget(&args)?;
                let s = cli::verify_state(nodes, seed, chunk, comp, bound, cache, budget)?;
                let r = &s.report;
                let f = &s.faults;
                println!(
                    "scrub n={nodes}: {} chunks — {} clean, {} healed, {} quarantined, \
                     {} ledger breaches ({} pass{})",
                    r.chunks,
                    r.clean,
                    r.healed,
                    r.quarantined,
                    r.ledger_breaches,
                    s.scrub_passes,
                    if s.scrub_passes == 1 { "" } else { "es" }
                );
                if s.spills > 0 || s.fetches > 0 {
                    println!(
                        "disk tier: {} spills / {} fetches scrubbed through the frame path",
                        s.spills, s.fetches
                    );
                }
                if s.compactions > 0 {
                    println!(
                        "spill log: {} compaction{} reclaimed {} dead bytes",
                        s.compactions,
                        if s.compactions == 1 { "" } else { "s" },
                        s.spill_reclaimed
                    );
                }
                println!(
                    "faults: {} injected ({} bitflips, {} spill bitflips, {} decode errors) — \
                     detected {} decode failures, {} retries healed, {} cache repairs, \
                     {} quarantines, {} worker panics, lost norm² {:.3e}",
                    s.injected_total,
                    s.injected_bitflips,
                    s.injected_spill_bitflips,
                    s.injected_decode_errors,
                    f.decode_errors,
                    f.retries_ok,
                    f.cache_repairs,
                    f.quarantines,
                    f.worker_panics,
                    f.lost_norm_sq
                );
                println!(
                    "energy {:.6} ({})",
                    s.energy,
                    if f.quarantines > 0 {
                        "degraded"
                    } else {
                        "exact-path"
                    }
                );
                export_telemetry(&args, &[])?;
                if s.ok() {
                    println!("verify: OK");
                    Ok(())
                } else {
                    return_err(format!(
                        "verify FAILED — settled={}, ledger breaches={}, \
                         detected {}/{} injected storage corruptions",
                        s.settled, s.report.ledger_breaches, f.decode_errors, s.injected_bitflips
                    ))
                }
            })
        }
        Some("checkpoint") => {
            let nodes: usize = flag(&args, "--nodes")
                .and_then(|v| v.parse().ok())
                .unwrap_or(10);
            let seed = flag(&args, "--seed")
                .and_then(|v| v.parse().ok())
                .unwrap_or(21);
            let chunk = flag(&args, "--chunk-qubits")
                .and_then(|v| v.parse().ok())
                .unwrap_or(nodes.saturating_sub(3));
            let cache = flag(&args, "--cache").and_then(|v| v.parse().ok());
            let comp = flag(&args, "--compressor").unwrap_or("QCF-speed");
            let out = flag(&args, "--out").unwrap_or("state.qcfs");
            let from = flag(&args, "--from");
            let gates: Option<usize> = flag(&args, "--gates").and_then(|v| v.parse().ok());
            cli::parse_bound(flag(&args, "--rel"), flag(&args, "--abs")).and_then(|bound| {
                let mut cfg = cli::StateRunCfg::new(nodes, seed, chunk, comp);
                cfg.bound = bound;
                cfg.cache = cache;
                cfg.mem_budget = parse_mem_budget(&args)?;
                cfg.prefetch = !args.iter().any(|a| a == "--no-prefetch");
                let s = cli::checkpoint_demo(&cfg, Path::new(out), from.map(Path::new), gates)?;
                println!(
                    "checkpoint {out}: {} bytes, gate {}/{}{}",
                    s.snapshot_bytes,
                    s.gates_applied,
                    s.total_gates,
                    s.resumed_from
                        .map(|g| format!(" (continued from gate {g})"))
                        .unwrap_or_default(),
                );
                println!("energy {:.6}", s.energy);
                export_telemetry(&args, &[])
            })
        }
        Some("resume") if args.len() >= 2 && !args[1].starts_with("--") => {
            let scrub = args.iter().any(|a| a == "--verify");
            let prefetch = !args.iter().any(|a| a == "--no-prefetch");
            parse_mem_budget(&args).and_then(|budget| {
                let s = cli::resume_demo(Path::new(&args[1]), scrub, prefetch, budget)?;
                println!(
                    "resume {}: {} snapshot at gate {}/{} ({} qubits, seed {})",
                    args[1],
                    s.meta.compressor,
                    s.meta.gates_applied,
                    s.total_gates,
                    s.meta.nodes,
                    s.meta.seed
                );
                if let Some(r) = &s.scrub {
                    println!(
                        "scrub: {} chunks — {} clean, {} healed, {} quarantined, \
                         {} ledger breaches",
                        r.chunks, r.clean, r.healed, r.quarantined, r.ledger_breaches
                    );
                }
                let l = &s.ledger;
                // The drills char-compare this line between a resumed and
                // an uninterrupted run: energy and ledger, no paths.
                println!(
                    "finished: energy {:.6}, {} requants (max {} per chunk), \
                     accumulated bound max {:.3e} / state RSS {:.3e}, \
                     {} quarantines, lost norm² {:.3e}",
                    s.energy,
                    l.total_requants,
                    l.max_requants,
                    l.max_accumulated_bound,
                    l.accumulated_rss,
                    s.faults.quarantines,
                    s.faults.lost_norm_sq
                );
                export_telemetry(&args, &[])?;
                if s.ok() {
                    Ok(())
                } else {
                    return_err(
                        "resume verify FAILED — restored state did not settle clean".to_string(),
                    )
                }
            })
        }
        Some("report") => {
            let nodes: usize = flag(&args, "--nodes")
                .and_then(|v| v.parse().ok())
                .unwrap_or(10);
            let seed = flag(&args, "--seed")
                .and_then(|v| v.parse().ok())
                .unwrap_or(21);
            let comp = flag(&args, "--compressor").unwrap_or("QCF-ratio");
            let chunk = flag(&args, "--chunk")
                .and_then(|v| v.parse().ok())
                .unwrap_or(nodes.saturating_sub(3));
            let cache = flag(&args, "--cache").and_then(|v| v.parse().ok());
            let out = flag(&args, "--out").unwrap_or("qcf-report.md");
            let json = flag(&args, "--json");
            // `--diff <baseline>` = `--baseline <baseline> --check` plus
            // the ranked movement attribution.
            let diff = flag(&args, "--diff");
            let baseline = diff.or(flag(&args, "--baseline"));
            let check = diff.is_some() || args.iter().any(|a| a == "--check");
            // Wall-clock throughput on a 1-core (likely shared) host is
            // noise; CR and ledger invariants are checked regardless. The
            // same core count drives the speedup-gate decision in `check`.
            let strict = run_report::detected_cores() >= 4;
            cli::parse_bound(flag(&args, "--rel"), flag(&args, "--abs")).and_then(|bound| {
                let config = run_report::ReportConfig {
                    nodes,
                    seed,
                    compressor: comp.to_string(),
                    bound,
                    chunk_qubits: chunk,
                    cache,
                };
                let res = run_report::run(
                    config,
                    Path::new(out),
                    json.map(Path::new),
                    baseline.map(Path::new),
                    strict,
                    diff.is_some(),
                )?;
                println!("report written to {out}");
                if let Some(path) = json {
                    println!("baseline JSON written to {path}");
                }
                if !res.attribution.is_empty() {
                    println!("movement attribution vs baseline (largest first):");
                    for line in &res.attribution {
                        println!("  {line}");
                    }
                } else if diff.is_some() {
                    println!("movement attribution vs baseline: no keys moved");
                }
                for w in &res.warnings {
                    eprintln!("warning: {w}");
                }
                if check && !res.ok() {
                    for r in &res.regressions {
                        eprintln!("REGRESSION: {r}");
                    }
                    return_err(format!(
                        "{} regression(s) vs baseline",
                        res.regressions.len()
                    ))
                } else {
                    if !check && !res.regressions.is_empty() {
                        for r in &res.regressions {
                            eprintln!("note (no --check): {r}");
                        }
                    }
                    Ok(())
                }
            })
        }
        _ => {
            eprintln!(
                "usage: qcfz list | compress <in> <out> [--compressor NAME] [--rel X|--abs X] \
                 | decompress <in> <out> | info <in> \
                 | qaoa [--nodes N] [--seed S] [--compressor NAME] [--rel X|--abs X] \
                 | state [--nodes N] [--seed S] [--chunk-qubits C] [--cache K] \
                 [--compressor NAME] [--rel X|--abs X] [--chunk ID] \
                 [--mem-budget BYTES[k|m|g]] [--no-prefetch] \
                 | top [--nodes N] [--seed S] [--chunk-qubits C] [--cache K] \
                 [--compressor NAME] [--rel X|--abs X] [--mem-budget BYTES] \
                 [--interval MS] [--once] \
                 | slo [--print] [--nodes N] [--seed S] [--chunk-qubits C] [--cache K] \
                 [--compressor NAME] [--rel X|--abs X] [--mem-budget BYTES] \
                 [--interval MS] [--explain ALERT] [--expect-firing a,b] \
                 | verify <in.qcfz> \
                 | verify --state [--nodes N] [--seed S] [--chunk C] [--cache K] \
                 [--compressor NAME] [--rel X|--abs X] [--mem-budget BYTES] \
                 | checkpoint [--out state.qcfs] [--from prev.qcfs] [--gates G] \
                 [--nodes N] [--seed S] [--chunk-qubits C] [--cache K] \
                 [--compressor NAME] [--rel X|--abs X] [--mem-budget BYTES] \
                 | resume <state.qcfs> [--verify] [--mem-budget BYTES] [--no-prefetch] \
                 | report [--nodes N] [--seed S] [--chunk C] [--cache K] [--compressor NAME] \
                 [--rel X|--abs X] [--out report.md|.html] [--json BENCH_report.json] \
                 [--baseline BENCH_report.json] [--check] [--diff BENCH_report.json]\n\
                 any work subcommand also takes [--trace out.json] [--metrics out.tsv]; \
                 set QCF_SLO to declare service-level objectives (see `qcfz slo --print`); \
                 set QCF_FLIGHT_RECORD[=path] to keep a dumpable telemetry flight ring"
            );
            std::process::exit(2);
        }
    };
    match result {
        Err(e) => {
            eprintln!("error: {e}");
            // Post-mortem: dump the flight ring next to the failure (no-op
            // unless QCF_FLIGHT_RECORD armed the recorder).
            match qcf_telemetry::flight::dump(&format!("error: {e}"), None) {
                Ok(Some(path)) => eprintln!("flight record dumped to {}", path.display()),
                Ok(None) => {}
                Err(io) => eprintln!("flight record dump failed: {io}"),
            }
            // A simulated kill-point crash is its own exit code so the
            // crash drills can tell "died at the boundary as planned"
            // from a real failure.
            let code = if e.0.contains("ckpt.kill_point@") {
                3
            } else {
                1
            };
            std::process::exit(code);
        }
        Ok(()) => {
            // On-demand record: when QCF_FLIGHT_RECORD names a path, write
            // the ring at normal exit too.
            if qcf_telemetry::flight::dump_path().is_some() {
                match qcf_telemetry::flight::dump("exit", None) {
                    Ok(Some(path)) => eprintln!("flight record written to {}", path.display()),
                    Ok(None) => {}
                    Err(io) => eprintln!("flight record dump failed: {io}"),
                }
            }
        }
    }
}

/// Tiny helper so the `report` arm can early-return a typed error.
fn return_err(msg: String) -> Result<(), cli::CliError> {
    Err(cli::CliError(msg))
}

/// Prints one chunk's causal journal chain next to its ledger row and
/// enforces the consistency contract (`qcfz state --chunk <id>` exits
/// nonzero when the journal cannot explain the ledger).
fn print_chunk_chain(chain: &cli::ChunkChain) -> Result<(), cli::CliError> {
    use qcf_telemetry::journal::EventKind;
    let r = &chain.record;
    println!(
        "\ncausal chain for chunk {}:\n\
         ledger: {} encodes, {} requants, {} quarantines, accumulated bound {:.3e}",
        chain.id, r.encodes, r.requants, r.quarantines, r.accumulated_bound
    );
    let counts = EventKind::all()
        .iter()
        .map(|k| format!("{} {}", k.label(), chain.kind_counts[k.index()]))
        .collect::<Vec<_>>()
        .join(", ");
    println!("journal: {counts}");
    println!(
        "events (newest {} of {}; {} older dropped from the ring):",
        chain.events.len(),
        chain.events.len() as u64 + chain.dropped,
        chain.dropped
    );
    let (seq, t_us, event) = ("seq", "t_us", "event");
    println!("  {seq:>8} {t_us:>10}  {event:<17} detail");
    for e in &chain.events {
        println!(
            "  {:>8} {:>10}  {:<17} {}",
            e.seq,
            e.t_us,
            e.kind.label(),
            e.detail
        );
    }
    if chain.consistent() {
        println!(
            "consistency: journal requants {} == ledger {}, quarantines {} == {} — OK",
            chain.kind_counts[EventKind::WritebackRequant.index()],
            r.requants,
            chain.kind_counts[EventKind::Quarantine.index()],
            r.quarantines
        );
        Ok(())
    } else {
        return_err(format!(
            "journal/ledger mismatch on chunk {}: journal requants {} vs ledger {}, \
             journal quarantines {} vs ledger {}",
            chain.id,
            chain.kind_counts[EventKind::WritebackRequant.index()],
            r.requants,
            chain.kind_counts[EventKind::Quarantine.index()],
            r.quarantines
        ))
    }
}
