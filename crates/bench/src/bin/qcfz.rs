//! `qcfz` — compress/decompress f64 files with any compressor of the suite.
//!
//! ```text
//! qcfz list
//! qcfz compress <in.f64> <out.qcfz> [--compressor NAME] [--rel X | --abs X]
//! qcfz decompress <in.qcfz> <out.f64>
//! qcfz info <in.qcfz>
//! qcfz qaoa [--nodes N] [--seed S] [--compressor NAME] [--rel X | --abs X]
//! ```
//!
//! Every subcommand that does work accepts `--trace out.json` (Chrome-trace
//! JSON: host span lanes plus the simulated stream's kernel lane, loadable
//! in `chrome://tracing` / `ui.perfetto.dev`) and `--metrics out.tsv`
//! (flat registry dump; `.json` extension switches the format).

use gpu_model::{DeviceSpec, Stream};
use qcf_bench::cli;
use std::path::Path;

fn flag<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// Writes `--trace` / `--metrics` outputs when requested.
fn export_telemetry(
    args: &[String],
    lanes: &[qcf_telemetry::StreamLane],
) -> Result<(), cli::CliError> {
    if let Some(path) = flag(args, "--trace") {
        cli::write_trace(Path::new(path), lanes)?;
        eprintln!("trace written to {path}");
    }
    if let Some(path) = flag(args, "--metrics") {
        cli::write_metrics(Path::new(path))?;
        eprintln!("metrics written to {path}");
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--trace" || a == "--metrics") {
        // Explicit export request overrides QCF_TELEMETRY=0.
        qcf_telemetry::set_enabled(true);
    }
    let result = match args.first().map(String::as_str) {
        Some("list") => {
            println!("available compressors:\n{}", cli::list());
            Ok(())
        }
        Some("compress") if args.len() >= 3 => {
            let comp = flag(&args, "--compressor").unwrap_or("QCF-ratio");
            cli::parse_bound(flag(&args, "--rel"), flag(&args, "--abs")).and_then(|bound| {
                let stream = Stream::new(DeviceSpec::a100());
                let s = cli::compress_file_on(
                    Path::new(&args[1]),
                    Path::new(&args[2]),
                    comp,
                    bound,
                    &stream,
                )?;
                println!(
                    "{} values -> {} bytes ({:.1}x) in {:.3} simulated ms",
                    s.n_values,
                    s.compressed_bytes,
                    s.ratio,
                    s.simulated_s * 1e3
                );
                export_telemetry(&args, &[stream.telemetry_lane("A100 stream")])
            })
        }
        Some("decompress") if args.len() >= 3 => {
            let stream = Stream::new(DeviceSpec::a100());
            cli::decompress_file_on(Path::new(&args[1]), Path::new(&args[2]), &stream)
                .map(|n| println!("restored {n} values"))
                .and_then(|()| export_telemetry(&args, &[stream.telemetry_lane("A100 stream")]))
        }
        Some("info") if args.len() >= 2 => {
            cli::info(Path::new(&args[1])).map(|line| println!("{line}"))
        }
        Some("qaoa") => {
            let nodes = flag(&args, "--nodes")
                .and_then(|v| v.parse().ok())
                .unwrap_or(10);
            let seed = flag(&args, "--seed")
                .and_then(|v| v.parse().ok())
                .unwrap_or(21);
            let comp = flag(&args, "--compressor").unwrap_or("QCF-ratio");
            cli::parse_bound(flag(&args, "--rel"), flag(&args, "--abs")).and_then(|bound| {
                let s = cli::qaoa_demo(nodes, seed, comp, bound)?;
                println!(
                    "QAOA n={nodes}: energy {:.6}, {} intermediates compressed ({:.1}x), \
                     peak live {} bytes, {:.3} simulated ms on the compressor stream",
                    s.energy,
                    s.tensors_compressed,
                    s.ratio,
                    s.peak_live_bytes,
                    s.simulated_s * 1e3
                );
                export_telemetry(&args, std::slice::from_ref(&s.stream_lane))
            })
        }
        Some("state") => {
            let nodes: usize = flag(&args, "--nodes")
                .and_then(|v| v.parse().ok())
                .unwrap_or(10);
            let seed = flag(&args, "--seed")
                .and_then(|v| v.parse().ok())
                .unwrap_or(21);
            // Default to 8 chunks so the whole register fits the default
            // write-back cache; low-qubit gates then run entirely on hits.
            let chunk = flag(&args, "--chunk")
                .and_then(|v| v.parse().ok())
                .unwrap_or(nodes.saturating_sub(3));
            let cache = flag(&args, "--cache").and_then(|v| v.parse().ok());
            let comp = flag(&args, "--compressor").unwrap_or("QCF-speed");
            cli::parse_bound(flag(&args, "--rel"), flag(&args, "--abs")).and_then(|bound| {
                let s = cli::state_demo(nodes, seed, chunk, comp, bound, cache)?;
                let st = &s.stats;
                let touched = st.cache_hits + st.cache_misses;
                println!(
                    "compressed state n={nodes}: energy {:.6}, resident {} bytes (dense {}), \
                     cache cap {} chunks: {} hits / {} misses ({:.0}% hit rate), \
                     {} write-backs, {} decompressions, {} recompressions",
                    s.energy,
                    st.resident_bytes,
                    s.dense_bytes,
                    s.cache_capacity,
                    st.cache_hits,
                    st.cache_misses,
                    if touched == 0 {
                        0.0
                    } else {
                        100.0 * st.cache_hits as f64 / touched as f64
                    },
                    st.writebacks,
                    st.decompressions,
                    st.recompressions
                );
                export_telemetry(&args, &[])
            })
        }
        _ => {
            eprintln!(
                "usage: qcfz list | compress <in> <out> [--compressor NAME] [--rel X|--abs X] \
                 | decompress <in> <out> | info <in> \
                 | qaoa [--nodes N] [--seed S] [--compressor NAME] [--rel X|--abs X] \
                 | state [--nodes N] [--seed S] [--chunk C] [--cache K] [--compressor NAME] \
                 [--rel X|--abs X]\n\
                 any work subcommand also takes [--trace out.json] [--metrics out.tsv]"
            );
            std::process::exit(2);
        }
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
