//! `qcfz` — compress/decompress f64 files with any compressor of the suite.
//!
//! ```text
//! qcfz list
//! qcfz compress <in.f64> <out.qcfz> [--compressor NAME] [--rel X | --abs X]
//! qcfz decompress <in.qcfz> <out.f64>
//! qcfz info <in.qcfz>
//! ```

use qcf_bench::cli;
use std::path::Path;

fn flag<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).map(String::as_str)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("list") => {
            println!("available compressors:\n{}", cli::list());
            Ok(())
        }
        Some("compress") if args.len() >= 3 => {
            let comp = flag(&args, "--compressor").unwrap_or("QCF-ratio");
            cli::parse_bound(flag(&args, "--rel"), flag(&args, "--abs")).and_then(|bound| {
                cli::compress_file(Path::new(&args[1]), Path::new(&args[2]), comp, bound).map(
                    |s| {
                        println!(
                            "{} values -> {} bytes ({:.1}x) in {:.3} simulated ms",
                            s.n_values,
                            s.compressed_bytes,
                            s.ratio,
                            s.simulated_s * 1e3
                        );
                    },
                )
            })
        }
        Some("decompress") if args.len() >= 3 => {
            cli::decompress_file(Path::new(&args[1]), Path::new(&args[2]))
                .map(|n| println!("restored {n} values"))
        }
        Some("info") if args.len() >= 2 => {
            cli::info(Path::new(&args[1])).map(|line| println!("{line}"))
        }
        _ => {
            eprintln!(
                "usage: qcfz list | compress <in> <out> [--compressor NAME] [--rel X|--abs X] \
                 | decompress <in> <out> | info <in>"
            );
            std::process::exit(2);
        }
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
