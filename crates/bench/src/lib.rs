//! # qcf-bench — evaluation corpus and experiment harness
//!
//! Regenerates every table/figure of the paper's evaluation (DESIGN.md §4,
//! experiments E1–E9) from scratch: the `experiments` binary prints each
//! table and saves a JSON record under `results/`. Criterion benches cover
//! the per-compressor kernels, the pipeline ablation and the design-choice
//! ablations DESIGN.md calls out.

pub mod cli;
pub mod corpus;
pub mod experiments;
pub mod report;
pub mod run_report;
pub mod slo_cmd;
pub mod top;

/// Serializes tests that drive the process-global telemetry substrate
/// (registry values, sampler ring, SLO engine, journal) — concurrent
/// tests would reset each other's state mid-run.
#[cfg(test)]
pub(crate) fn telemetry_test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}
