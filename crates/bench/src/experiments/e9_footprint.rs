//! E9 — memory-footprint reduction: bytes of intermediate tensors with and
//! without compression during an end-to-end contraction (the paper's
//! motivation: fitting larger circuits into device memory).

use crate::report::Table;
use compressors::ErrorBound;
use qcf_core::QcfCompressor;
use qcircuit::{Graph, QaoaParams};
use qtensor::compressed::CompressingHook;
use qtensor::Simulator;

/// Runs E9.
pub fn run(quick: bool) -> Vec<Table> {
    let instances: &[(usize, u64)] = if quick {
        &[(22, 13)]
    } else {
        &[(22, 13), (30, 5), (38, 2)]
    };

    let mut table = Table::new(
        "e9",
        "intermediate-tensor footprint with compression (ratio mode, abs eb = 1e-4)",
        &[
            "instance",
            "intermediates (MiB)",
            "compressed (MiB)",
            "reduction",
            "peak live (MiB)",
            "largest tensor (KiB)",
        ],
    );
    let sim = Simulator::default();
    for &(n, seed) in instances {
        let graph = Graph::random_regular(n, 3, seed);
        let params = QaoaParams::fixed_angles_3reg_p2();
        let framework = QcfCompressor::ratio();
        let mut hook = CompressingHook::new(&framework, ErrorBound::Abs(1e-4), 64);
        let report = sim
            .energy_with_hook(&graph, &params, &mut hook)
            .expect("compressed run");
        let mib = |b: u64| b as f64 / (1 << 20) as f64;
        table.row(vec![
            format!("N={n} s={seed} p=2"),
            format!("{:.2}", mib(hook.stats.uncompressed_bytes)),
            format!("{:.2}", mib(hook.stats.compressed_bytes)),
            format!("{:.1}x", hook.stats.ratio()),
            format!("{:.2}", mib(report.stats.peak_live_bytes as u64)),
            format!("{}", hook.stats.largest_tensor_bytes / 1024),
        ]);
    }
    table.note("'reduction' is total intermediate bytes over their compressed size — the factor by which resident tensor storage shrinks when intermediates are kept compressed");
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn footprint_shrinks_severalfold() {
        let tables = run(true);
        for row in &tables[0].rows {
            let reduction: f64 = row[3].trim_end_matches('x').parse().unwrap();
            assert!(reduction > 2.0, "{}: reduction only {reduction}x", row[0]);
        }
    }
}
