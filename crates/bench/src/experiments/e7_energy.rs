//! E7 — end-to-end QAOA energy error with compressed intermediate tensors
//! (claim C3: final energy within 1-5% of the true value).

use crate::report::{pct, sci, Table};
use compressors::{Compressor, ErrorBound};
use qcf_core::QcfCompressor;
use qcircuit::{Graph, QaoaParams};
use qtensor::compressed::CompressingHook;
use qtensor::Simulator;

/// Runs E7.
pub fn run(quick: bool) -> Vec<Table> {
    let instances: &[(usize, u64)] = if quick {
        &[(14, 5), (18, 6)]
    } else {
        &[(14, 5), (18, 6), (22, 7), (26, 8)]
    };
    let bounds = [1e-2, 1e-3, 1e-4];

    let mut table = Table::new(
        "e7",
        "QAOA energy error with compressed tensors (3-regular, p=2, fixed angles)",
        &["instance", "mode", "abs eb", "rel energy err", "tensor CR"],
    );
    let sim = Simulator::default();
    let mut band_13 = Vec::new(); // relative errors at eb = 1e-3
    for &(n, seed) in instances {
        let graph = Graph::random_regular(n, 3, seed);
        let params = QaoaParams::fixed_angles_3reg_p2();
        let exact = sim.energy(&graph, &params).expect("exact").energy;
        for mode in [QcfCompressor::ratio(), QcfCompressor::speed()] {
            for &eb in &bounds {
                let mut hook = CompressingHook::new(&mode, ErrorBound::Abs(eb), 2);
                let e = sim
                    .energy_with_hook(&graph, &params, &mut hook)
                    .expect("compressed")
                    .energy;
                let rel = (e - exact).abs() / exact.abs();
                if (eb - 1e-3).abs() < 1e-12 {
                    band_13.push(rel);
                }
                table.row(vec![
                    format!("N={n} s={seed}"),
                    mode.name().to_string(),
                    sci(eb),
                    pct(rel),
                    format!("{:.1}", hook.stats.ratio()),
                ]);
            }
        }
    }
    let max_13 = band_13.iter().copied().fold(0.0, f64::max);
    table.note(format!(
        "claim C3: at eb = 1e-3 every run stays within {:.2}% of the true energy \
         (paper band: 1-5%)",
        max_13 * 100.0
    ));
    table.note("energy error scales roughly linearly with the tensor-level bound (see E8)");
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_errors_in_paper_band() {
        let tables = run(true);
        let t = &tables[0];
        for row in &t.rows {
            let eb: f64 = row[2].parse().unwrap();
            let rel: f64 = row[3].trim_end_matches('%').parse::<f64>().unwrap() / 100.0;
            if eb <= 1.1e-3 {
                assert!(rel < 0.05, "{} {} at eb={eb}: {rel}", row[0], row[1]);
            }
        }
    }
}
