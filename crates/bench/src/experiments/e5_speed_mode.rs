//! E5 — speed mode vs cuSZx across sizes (claim C2: comparable throughput,
//! 3-4x higher compression ratio).

use crate::corpus::scaled_corpus;
use crate::experiments::measure;
use crate::report::{gbps, Table};
use compressors::cuszx::CuSzx;
use compressors::ErrorBound;
use qcf_core::QcfCompressor;

/// Runs E5.
pub fn run(quick: bool) -> Vec<Table> {
    let exps: &[u32] = if quick {
        &[14, 16]
    } else {
        &[14, 16, 18, 20, 22]
    };
    let bound = ErrorBound::Rel(1e-3);
    let mut table = Table::new(
        "e5",
        "speed mode vs cuSZx across sizes (rel eb = 1e-3)",
        &[
            "elements",
            "cuSZx CR",
            "QCF-speed CR",
            "ratio gain",
            "cuSZx GB/s",
            "QCF-speed GB/s",
            "speed ratio",
        ],
    );
    let (mut worst_gain, mut worst_speed): (f64, f64) = (f64::INFINITY, f64::INFINITY);
    for &e in exps {
        let tensors = scaled_corpus(&[e], 11);
        let szx = measure(&CuSzx::default(), &tensors, bound);
        let qcf = measure(&QcfCompressor::speed(), &tensors, bound);
        let gain = qcf.cr() / szx.cr();
        let speed_ratio = qcf.compress_bps() / szx.compress_bps();
        worst_gain = worst_gain.min(gain);
        worst_speed = worst_speed.min(speed_ratio);
        table.row(vec![
            format!("2^{e}"),
            format!("{:.1}", szx.cr()),
            format!("{:.1}", qcf.cr()),
            format!("{gain:.1}x"),
            gbps(szx.compress_bps()),
            gbps(qcf.compress_bps()),
            format!("{speed_ratio:.2}"),
        ]);
    }
    table.note(format!(
        "claim C2: worst-case ratio gain {worst_gain:.1}x (paper: 3-4x) at ≥{:.0}% of \
         cuSZx throughput (paper: 'comparable speed')",
        worst_speed * 100.0
    ));
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speed_mode_wins_ratio_at_comparable_speed() {
        let tables = run(true);
        for row in &tables[0].rows {
            let gain: f64 = row[3].trim_end_matches('x').parse().unwrap();
            let speed: f64 = row[6].parse().unwrap();
            assert!(gain > 1.5, "{}: gain {gain}", row[0]);
            assert!(speed > 0.3, "{}: speed ratio {speed}", row[0]);
        }
    }
}
