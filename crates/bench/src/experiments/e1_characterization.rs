//! E1 — dataset characterization (the paper's "QTensor-generated tensors"
//! table): sizes, value ranges, near-zero mass, distinct-value counts.

use crate::corpus::{characterize, real_corpus, synthetic_tensor};
use crate::report::{pct, Table};
use qcf_core::dict;

/// Runs E1.
pub fn run(quick: bool) -> Vec<Table> {
    let mut table = Table::new(
        "e1",
        "dataset characterization: QTensor intermediates + scaled ensembles",
        &[
            "tensor",
            "KiB",
            "min",
            "max",
            "near-zero",
            "distinct",
            "distinct/n",
            "dict@1e-3",
        ],
    );
    let mut tensors = real_corpus(quick);
    if !quick {
        for (i, &(e, z)) in [(18u32, 0.0f64), (20, 0.5), (22, 0.8)].iter().enumerate() {
            tensors.push(synthetic_tensor(1usize << e, z, 100 + i as u64));
        }
    }
    let mut max_dict: usize = 0;
    for t in &tensors {
        let c = characterize(t);
        // The load-bearing statistic: distinct values AFTER error-bounded
        // quantization at a typical bound — the dictionary stage's alphabet.
        let eb = 1e-3 * (c.max - c.min).max(f64::MIN_POSITIVE);
        let dict_d = dict::quantize(&t.data, eb)
            .map(|q| q.table.len().to_string())
            .unwrap_or_else(|| ">cap".to_string());
        if let Ok(d) = dict_d.parse::<usize>() {
            max_dict = max_dict.max(d);
        }
        table.row(vec![
            c.origin,
            format!("{}", c.doubles * 8 / 1024),
            format!("{:.3}", c.min),
            format!("{:.3}", c.max),
            pct(c.near_zero_frac),
            format!("{}", c.distinct),
            format!("{:.4}", c.distinct_frac),
            dict_d,
        ]);
    }
    table.note(format!(
        "after quantization at rel 1e-3 the value alphabet collapses to at most \
         {max_dict} entries — the structure the dictionary stage (P3) exploits"
    ));
    table.note("near-zero mass ranges from 0 to ~90% and is scattered, not blocked");
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_produces_rows_and_notes() {
        let tables = run(true);
        assert_eq!(tables.len(), 1);
        assert!(tables[0].rows.len() >= 8);
        assert_eq!(tables[0].columns.len(), 8);
        assert!(!tables[0].notes.is_empty());
    }
}
