//! E10 — kernel-time breakdown of the main compressors (the profiling
//! figure GPU-compression papers include: where does the time go?).

use crate::corpus::synthetic_tensor;
use crate::report::Table;
use compressors::cusz::CuSz;
use compressors::cuszx::CuSzx;
use compressors::{Compressor, ErrorBound};
use gpu_model::{DeviceSpec, Stream};
use qcf_core::QcfCompressor;

/// Runs E10.
pub fn run(quick: bool) -> Vec<Table> {
    let exp = if quick { 14 } else { 18 };
    let data = synthetic_tensor(1usize << exp, 0.5, 77).data;
    let bound = ErrorBound::Rel(1e-3);

    let mut table = Table::new(
        "e10",
        format!("simulated kernel-time breakdown (compression of a 2^{exp}-element tensor)"),
        &["compressor", "kernel", "time (µs)", "share"],
    );
    let comps: Vec<Box<dyn Compressor>> = vec![
        Box::new(CuSz::default()),
        Box::new(CuSzx::default()),
        Box::new(QcfCompressor::ratio()),
        Box::new(QcfCompressor::speed()),
    ];
    for comp in &comps {
        let stream = Stream::new(DeviceSpec::a100());
        comp.compress(&data, bound, &stream).expect("compress");
        for (name, secs, share) in stream.breakdown() {
            table.row(vec![
                comp.name().to_string(),
                name,
                format!("{:.1}", secs * 1e6),
                format!("{:.1}%", share * 100.0),
            ]);
        }
    }
    table.note("cuSZ's bit-serial Huffman emission dominates its time — the bottleneck the paper's speed mode avoids");
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_shapes_match_known_bottlenecks() {
        let tables = run(true);
        let t = &tables[0];
        // cuSZ: huffman_encode must be its largest kernel.
        let cusz_rows: Vec<&Vec<String>> = t.rows.iter().filter(|r| r[0] == "cuSZ").collect();
        assert!(!cusz_rows.is_empty());
        assert!(
            cusz_rows[0][1].contains("huffman_encode"),
            "cuSZ top kernel was {}",
            cusz_rows[0][1]
        );
        // Every compressor's shares sum to ~100%.
        for name in ["cuSZ", "cuSZx", "QCF-ratio", "QCF-speed"] {
            let sum: f64 = t
                .rows
                .iter()
                .filter(|r| r[0] == name)
                .map(|r| r[3].trim_end_matches('%').parse::<f64>().unwrap())
                .sum();
            assert!((sum - 100.0).abs() < 1.0, "{name} shares sum to {sum}");
        }
    }
}
