//! E3 — compression and decompression throughput of every compressor on
//! the simulated A100 (GB/s of uncompressed payload).

use crate::corpus::scaled_corpus;
use crate::experiments::{e2_ratio::lineup, measure};
use crate::report::{gbps, Table};
use compressors::ErrorBound;

/// Runs E3.
pub fn run(quick: bool) -> Vec<Table> {
    let exp = if quick { 16 } else { 21 };
    let tensors = scaled_corpus(&[exp], 7);
    let bound = ErrorBound::Rel(1e-3);

    let mut table = Table::new(
        "e3",
        format!("simulated A100 throughput on 3 x 2^{exp}-element tensors (GB/s of payload)"),
        &["compressor", "compress", "decompress", "CR"],
    );
    let mut szx_c = 0.0f64;
    let mut qcf_speed_c = 0.0f64;
    for comp in lineup() {
        let agg = measure(comp.as_ref(), &tensors, bound);
        if comp.name() == "cuSZx" {
            szx_c = agg.compress_bps();
        }
        if comp.name() == "QCF-speed" {
            qcf_speed_c = agg.compress_bps();
        }
        table.row(vec![
            comp.name().to_string(),
            gbps(agg.compress_bps()),
            gbps(agg.decompress_bps()),
            format!("{:.1}", agg.cr()),
        ]);
    }
    table.note("cuSZx and Bitcomp are single-pass streaming: fastest; DEFLATE-class slowest");
    table.note(format!(
        "claim C2 (speed half): QCF-speed at {:.0}% of cuSZx compression throughput",
        qcf_speed_c / szx_c * 100.0
    ));
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e3_orderings_match_compressor_classes() {
        let tables = run(true);
        let t = &tables[0];
        let col = |name: &str| -> f64 {
            let row = t.rows.iter().find(|r| r[0] == name).unwrap();
            row[1].parse().unwrap()
        };
        // Relative ordering the paper reports: cuSZx fastest of the lossy
        // set, cuSZ slower (entropy stage), GDeflate slowest overall.
        assert!(col("cuSZx") > col("cuSZ"));
        assert!(col("cuSZ") > col("GDeflate"));
        assert!(col("memcpy") >= col("cuSZx"));
        // Speed mode within a small factor of cuSZx.
        assert!(col("QCF-speed") > col("cuSZx") * 0.4);
    }
}
