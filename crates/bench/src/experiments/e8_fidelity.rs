//! E8 — error-impact characterization: measured energy error under
//! injected tensor noise vs the calibrated first-order model.

use crate::report::{sci, Table};
use qcf_core::fidelity::{calibrate, measure_noise_impact, predict_energy_error};
use qcircuit::{Graph, QaoaParams};

/// Runs E8.
pub fn run(quick: bool) -> Vec<Table> {
    let graph = Graph::random_regular(if quick { 12 } else { 16 }, 3, 33);
    let params = QaoaParams::fixed_angles_3reg_p2();
    // Disjoint seed sets: for a fixed seed the injected noise scales exactly
    // linearly with eps, so verifying on the calibration seeds would be
    // circular.
    let cal_seeds: Vec<u64> = if quick {
        vec![101, 102]
    } else {
        vec![101, 102, 103, 104]
    };
    let seeds: Vec<u64> = if quick {
        vec![1, 2]
    } else {
        vec![1, 2, 3, 4, 5]
    };

    // Calibrate once at a mid-range epsilon, then predict the sweep.
    let c = calibrate(&graph, &params, 1e-5, &cal_seeds).expect("calibration");
    let epses: &[f64] = if quick {
        &[1e-6, 1e-5, 1e-4]
    } else {
        &[1e-7, 1e-6, 1e-5, 1e-4, 1e-3]
    };

    let mut table = Table::new(
        "e8",
        "tensor-noise impact on energy: measurement vs first-order model",
        &[
            "eps (tensor bound)",
            "tensors",
            "measured |dE|",
            "model C*eps*sqrt(T)",
            "model/measured",
        ],
    );
    let mut ratios = Vec::new();
    for (k, &eps) in epses.iter().enumerate() {
        // Fresh noise realizations per sweep point (a shared seed would make
        // the sweep exactly linear by construction).
        let seeds: Vec<u64> = seeds.iter().map(|&s| s + 10 * k as u64).collect();
        let p = measure_noise_impact(&graph, &params, eps, &seeds).expect("noise run");
        let predicted = predict_energy_error(c, eps, p.tensors);
        let ratio = predicted / p.abs_energy_error.max(f64::MIN_POSITIVE);
        ratios.push(ratio);
        table.row(vec![
            sci(eps),
            format!("{}", p.tensors),
            sci(p.abs_energy_error),
            sci(predicted),
            format!("{ratio:.2}"),
        ]);
    }
    table.note(format!(
        "calibrated constant C = {c:.3}; model tracks measurement within \
         [{:.2}, {:.2}]x across the sweep",
        ratios.iter().copied().fold(f64::INFINITY, f64::min),
        ratios.iter().copied().fold(0.0, f64::max),
    ));
    table.note("the ~linear growth justifies picking tensor bounds from an energy-error budget");
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_within_an_order_of_magnitude() {
        let tables = run(true);
        for row in &tables[0].rows {
            let ratio: f64 = row[4].parse().unwrap();
            assert!((0.05..=20.0).contains(&ratio), "model off: {ratio}");
        }
    }

    #[test]
    fn measured_error_grows_with_eps() {
        let tables = run(true);
        let errs: Vec<f64> = tables[0]
            .rows
            .iter()
            .map(|r| r[2].parse().unwrap())
            .collect();
        assert!(errs.last().unwrap() > errs.first().unwrap());
    }
}
