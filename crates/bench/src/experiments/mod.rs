//! The reconstructed evaluation matrix E1–E11 (see DESIGN.md §4).
//!
//! Each module regenerates one table/figure of the paper's evaluation
//! section as a [`Table`](crate::report::Table). The `experiments` binary
//! prints them and saves JSON records; EXPERIMENTS.md quotes the outputs.

pub mod e10_breakdown;
pub mod e11_ordering;
pub mod e1_characterization;
pub mod e2_ratio;
pub mod e3_throughput;
pub mod e4_ablation;
pub mod e5_speed_mode;
pub mod e6_rate_distortion;
pub mod e7_energy;
pub mod e8_fidelity;
pub mod e9_footprint;

use crate::corpus::CorpusTensor;
use crate::report::Table;
use compressors::{round_trip, Compressor, ErrorBound};

/// Aggregate round-trip measurement of one compressor over a tensor set.
#[derive(Debug, Clone)]
pub struct Aggregate {
    /// Uncompressed bytes.
    pub raw_bytes: usize,
    /// Compressed bytes.
    pub compressed_bytes: usize,
    /// Simulated compression seconds.
    pub compress_s: f64,
    /// Simulated decompression seconds.
    pub decompress_s: f64,
    /// Worst pointwise error.
    pub max_err: f64,
}

impl Aggregate {
    /// Total compression ratio.
    pub fn cr(&self) -> f64 {
        self.raw_bytes as f64 / self.compressed_bytes.max(1) as f64
    }

    /// Simulated compression throughput (bytes/s of input).
    pub fn compress_bps(&self) -> f64 {
        self.raw_bytes as f64 / self.compress_s
    }

    /// Simulated decompression throughput (bytes/s of output).
    pub fn decompress_bps(&self) -> f64 {
        self.raw_bytes as f64 / self.decompress_s
    }
}

/// Runs `comp` over every tensor and aggregates.
pub fn measure(comp: &dyn Compressor, tensors: &[CorpusTensor], bound: ErrorBound) -> Aggregate {
    let mut agg = Aggregate {
        raw_bytes: 0,
        compressed_bytes: 0,
        compress_s: 0.0,
        decompress_s: 0.0,
        max_err: 0.0,
    };
    for t in tensors {
        let r = round_trip(comp, &t.data, bound)
            .unwrap_or_else(|e| panic!("{} failed on {}: {e}", comp.name(), t.origin));
        agg.raw_bytes += t.nbytes();
        agg.compressed_bytes += r.compressed_bytes;
        agg.compress_s += t.nbytes() as f64 / r.gpu_compress_bps;
        agg.decompress_s += t.nbytes() as f64 / r.gpu_decompress_bps;
        agg.max_err = agg.max_err.max(r.quality.max_abs_error);
    }
    agg
}

/// All experiments in order, each returning its tables.
pub fn run_all(quick: bool) -> Vec<Table> {
    let mut out = Vec::new();
    out.extend(e1_characterization::run(quick));
    out.extend(e2_ratio::run(quick));
    out.extend(e3_throughput::run(quick));
    out.extend(e4_ablation::run(quick));
    out.extend(e5_speed_mode::run(quick));
    out.extend(e6_rate_distortion::run(quick));
    out.extend(e7_energy::run(quick));
    out.extend(e8_fidelity::run(quick));
    out.extend(e9_footprint::run(quick));
    out.extend(e10_breakdown::run(quick));
    out.extend(e11_ordering::run(quick));
    out
}

/// Runs one experiment by id (`"e1"`…`"e11"` or `"all"`).
pub fn run_by_id(id: &str, quick: bool) -> Option<Vec<Table>> {
    Some(match id {
        "e1" => e1_characterization::run(quick),
        "e2" => e2_ratio::run(quick),
        "e3" => e3_throughput::run(quick),
        "e4" => e4_ablation::run(quick),
        "e5" => e5_speed_mode::run(quick),
        "e6" => e6_rate_distortion::run(quick),
        "e7" => e7_energy::run(quick),
        "e8" => e8_fidelity::run(quick),
        "e9" => e9_footprint::run(quick),
        "e10" => e10_breakdown::run(quick),
        "e11" => e11_ordering::run(quick),
        "all" => run_all(quick),
        _ => return None,
    })
}
