//! E4 — pre-processing ablation: cumulative stages over plain cuSZ
//! (claim C1: the full ratio mode reaches ~10x plain cuSZ's ratio).

use crate::corpus::real_corpus;
use crate::experiments::measure;
use crate::report::Table;
use compressors::cusz::CuSz;
use compressors::ErrorBound;
use qcf_core::{Mode, QcfCompressor, StageToggles};

/// The cumulative stage ladder of the ablation.
pub fn ladder() -> Vec<(&'static str, StageToggles)> {
    let off = StageToggles::none();
    vec![
        ("cuSZ (no stages)", off),
        (
            "+P1 de-interleave",
            StageToggles {
                deinterleave: true,
                ..off
            },
        ),
        (
            "+P2 zero collapse",
            StageToggles {
                deinterleave: true,
                zero_collapse: true,
                ..off
            },
        ),
        (
            "+P3 dictionary",
            StageToggles {
                deinterleave: true,
                zero_collapse: true,
                dictionary: true,
                ..off
            },
        ),
        (
            "+P4 block dedup",
            StageToggles {
                deinterleave: true,
                zero_collapse: true,
                dictionary: true,
                dedup: true,
                ..off
            },
        ),
        ("+LZ4 tail (full ratio mode)", StageToggles::all()),
    ]
}

/// Runs E4.
pub fn run(quick: bool) -> Vec<Table> {
    let tensors = real_corpus(quick);
    let bounds: &[f64] = if quick { &[1e-3] } else { &[1e-3, 1e-4, 1e-5] };

    let mut table = Table::new(
        "e4",
        "pre-processing ablation on real intermediates (cuSZ backend)",
        &["configuration", "rel eb", "CR", "gain over plain cuSZ"],
    );

    let mut best_gain: f64 = 0.0;
    let mut final_gain: f64 = 0.0;
    for &eb in bounds {
        let bound = ErrorBound::Rel(eb);
        // Reference row: the actual cuSZ compressor (no framework wrapper).
        let plain = measure(&CuSz::default(), &tensors, bound);
        table.row(vec![
            "cuSZ (reference impl)".into(),
            format!("{eb:.0e}"),
            format!("{:.2}", plain.cr()),
            "1.0x".into(),
        ]);
        for (label, toggles) in ladder() {
            let comp = QcfCompressor::with_stages(Mode::Ratio, toggles);
            let agg = measure(&comp, &tensors, bound);
            let gain = agg.cr() / plain.cr();
            final_gain = gain;
            best_gain = best_gain.max(gain);
            table.row(vec![
                label.to_string(),
                format!("{eb:.0e}"),
                format!("{:.2}", agg.cr()),
                format!("{gain:.1}x"),
            ]);
        }
    }
    table.note(format!(
        "claim C1: full pipeline reaches {final_gain:.1}x plain cuSZ at the tightest \
         bound ({best_gain:.1}x best across bounds; paper: 'nearly 10 times')"
    ));
    table.note(
        "the dictionary stage (P3) contributes the bulk of the gain, as the E1 structure predicts",
    );
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_ladder_is_cumulative_and_final_gain_large() {
        let tables = run(true);
        let t = &tables[0];
        assert_eq!(t.rows.len(), 7);
        let crs: Vec<f64> = t.rows.iter().map(|r| r[2].parse().unwrap()).collect();
        // Full pipeline must be a large multiple of the plain baseline.
        let gain = crs.last().unwrap() / crs[0];
        assert!(gain > 3.0, "full-pipeline gain only {gain:.2}x");
        // The dictionary row must be the big jump.
        let dict_jump = crs[4] / crs[3].max(0.01);
        assert!(
            dict_jump > 1.5,
            "dictionary stage gained only {dict_jump:.2}x"
        );
    }
}
