//! E6 — rate–distortion: compression ratio and PSNR across error bounds
//! for the error-bounded compressors and the framework modes.

use crate::corpus::real_corpus;
use crate::report::{sci, Table};
use compressors::{by_name, quality, Compressor, ErrorBound};
use gpu_model::{DeviceSpec, Stream};
use qcf_core::QcfCompressor;

/// Runs E6.
pub fn run(quick: bool) -> Vec<Table> {
    let tensors = real_corpus(quick);
    let bounds: &[f64] = if quick {
        &[1e-2, 1e-3, 1e-4]
    } else {
        &[1e-1, 1e-2, 1e-3, 1e-4, 1e-5]
    };
    let comps: Vec<Box<dyn Compressor>> = vec![
        by_name("cuSZ").unwrap(),
        by_name("cuSZx").unwrap(),
        by_name("cuZFP").unwrap(),
        Box::new(QcfCompressor::ratio()),
        Box::new(QcfCompressor::speed()),
    ];

    let mut table = Table::new(
        "e6",
        "rate-distortion on real intermediates (value-range-relative bounds)",
        &["compressor", "rel eb", "CR", "max abs err", "PSNR (dB)"],
    );
    let stream = Stream::new(DeviceSpec::a100());
    for comp in &comps {
        let mut last_cr = f64::INFINITY;
        for &eb in bounds {
            let (mut raw, mut compressed) = (0usize, 0usize);
            let mut max_err = 0.0f64;
            let mut worst_psnr = f64::INFINITY;
            for t in &tensors {
                let bytes = comp
                    .compress(&t.data, ErrorBound::Rel(eb), &stream)
                    .expect("compress");
                let rec = comp.decompress(&bytes, &stream).expect("decompress");
                let q = quality(&t.data, &rec, bytes.len());
                raw += t.nbytes();
                compressed += bytes.len();
                max_err = max_err.max(q.max_abs_error);
                worst_psnr = worst_psnr.min(q.psnr_db);
            }
            let cr = raw as f64 / compressed as f64;
            assert!(
                cr <= last_cr * 1.05,
                "{}: CR should not grow as the bound tightens",
                comp.name()
            );
            last_cr = cr;
            table.row(vec![
                comp.name().to_string(),
                sci(eb),
                format!("{cr:.1}"),
                sci(max_err),
                format!("{worst_psnr:.1}"),
            ]);
        }
    }
    table.note("CR decreases and PSNR increases monotonically as the bound tightens");
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_distortion_monotone() {
        let tables = run(true);
        let t = &tables[0];
        // per-compressor monotone PSNR
        let mut by_comp: std::collections::HashMap<&str, Vec<f64>> = Default::default();
        for row in &t.rows {
            by_comp
                .entry(row[0].as_str())
                .or_default()
                .push(row[4].parse().unwrap());
        }
        for (name, psnrs) in by_comp {
            for w in psnrs.windows(2) {
                assert!(w[1] >= w[0] - 1e-9, "{name}: PSNR not monotone: {psnrs:?}");
            }
        }
    }
}
