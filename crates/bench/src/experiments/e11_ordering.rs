//! E11 — contraction-strategy ablation: elimination-order heuristics and
//! pairwise trees, measured by the quantities that set memory footprint
//! (the design choice DESIGN.md's ablation list calls out).

use crate::report::Table;
use qcircuit::{Graph, QaoaParams};
use qtensor::{OrderingHeuristic, Simulator, Strategy};

/// Runs E11.
pub fn run(quick: bool) -> Vec<Table> {
    let instances: &[(usize, u64)] = if quick {
        &[(12, 3), (16, 4)]
    } else {
        &[(16, 3), (22, 4), (30, 5), (38, 2)]
    };

    let mut table = Table::new(
        "e11",
        "contraction strategies: largest intermediate and peak live memory",
        &[
            "instance",
            "strategy",
            "max intermediate (elems)",
            "peak live (KiB)",
            "contractions",
        ],
    );
    let variants: Vec<(&str, Simulator)> = vec![
        (
            "bucket/min-fill",
            Simulator::new(OrderingHeuristic::MinFill, true),
        ),
        (
            "bucket/min-degree",
            Simulator::new(OrderingHeuristic::MinDegree, true),
        ),
        (
            "pairwise/greedy",
            Simulator::default().with_strategy(Strategy::GreedyPairwise),
        ),
    ];
    for &(n, seed) in instances {
        let graph = Graph::random_regular(n, 3, seed);
        let params = QaoaParams::fixed_angles_3reg_p2();
        let mut energies = Vec::new();
        for (label, sim) in &variants {
            let report = sim.energy(&graph, &params).expect("energy run");
            energies.push(report.energy);
            table.row(vec![
                format!("N={n} s={seed}"),
                label.to_string(),
                format!("{}", report.stats.max_intermediate_elems),
                format!("{}", report.stats.peak_live_bytes / 1024),
                format!("{}", report.stats.eliminations),
            ]);
        }
        // All strategies must agree on the physics.
        for w in energies.windows(2) {
            assert!(
                (w[0] - w[1]).abs() < 1e-8,
                "strategies disagree on N={n}: {energies:?}"
            );
        }
    }
    table.note("every strategy computes the same energies (asserted); they differ only in cost");
    table.note("min-fill generally yields the smallest largest-intermediate, the quantity compression multiplies");
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e11_rows_and_strategy_agreement() {
        let tables = run(true);
        let t = &tables[0];
        assert_eq!(t.rows.len(), 6);
        // peak-live column parses and is positive
        for row in &t.rows {
            let kib: u64 = row[3].parse().unwrap();
            assert!(kib > 0 || row[3] == "0");
        }
    }
}
