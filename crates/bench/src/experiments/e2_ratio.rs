//! E2 — compression ratio of all nine compressors (plus the framework's
//! two modes) across tensor sizes, at a fixed relative bound.

use crate::corpus::{real_corpus, scaled_corpus, CorpusTensor};
use crate::experiments::measure;
use crate::report::Table;
use compressors::{all_compressors, Compressor, ErrorBound};
use qcf_core::QcfCompressor;

/// The compressor lineup used by E2/E3/E6 (nine baselines + two modes).
pub fn lineup() -> Vec<Box<dyn Compressor>> {
    let mut comps = all_compressors();
    comps.push(Box::new(QcfCompressor::ratio()));
    comps.push(Box::new(QcfCompressor::speed()));
    comps
}

/// Runs E2.
pub fn run(quick: bool) -> Vec<Table> {
    let bound = ErrorBound::Rel(1e-3);
    let exps: &[u32] = if quick { &[14, 16] } else { &[14, 16, 18, 20] };
    let comps = lineup();

    let mut columns = vec!["tensor set".to_string(), "MiB".to_string()];
    columns.extend(comps.iter().map(|c| c.name().to_string()));
    let mut table = Table::new(
        "e2",
        "compression ratio vs tensor size (value-range-relative eb = 1e-3)",
        &columns.iter().map(String::as_str).collect::<Vec<_>>(),
    );

    let mut groups: Vec<(String, Vec<CorpusTensor>)> =
        vec![("real intermediates".into(), real_corpus(quick))];
    for &e in exps {
        groups.push((format!("ensemble 2^{e}"), scaled_corpus(&[e], 42)));
    }

    let mut cusz_cr = 0.0f64;
    let mut qcf_cr = 0.0f64;
    for (label, tensors) in &groups {
        let mib: usize = tensors.iter().map(|t| t.nbytes()).sum::<usize>() / (1 << 20);
        let mut cells = vec![label.clone(), format!("{mib}")];
        for comp in &comps {
            let agg = measure(comp.as_ref(), tensors, bound);
            if label == "real intermediates" {
                if comp.name() == "cuSZ" {
                    cusz_cr = agg.cr();
                }
                if comp.name() == "QCF-ratio" {
                    qcf_cr = agg.cr();
                }
            }
            cells.push(format!("{:.1}", agg.cr()));
        }
        table.row(cells);
    }
    table.note("lossless compressors (LZ4/Snappy/GDeflate/Cascaded/Bitcomp) stay in the 1-4x band");
    table.note(format!(
        "claim C1 check on real intermediates: QCF-ratio {qcf_cr:.1}x vs plain cuSZ {cusz_cr:.1}x = {:.1}x gain",
        qcf_cr / cusz_cr
    ));
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e2_table_shape_and_claim_direction() {
        let tables = run(true);
        let t = &tables[0];
        assert_eq!(t.columns.len(), 2 + 11);
        assert!(t.rows.len() >= 3);
        // Framework ratio mode must beat plain cuSZ on every row.
        let cusz = t.columns.iter().position(|c| c == "cuSZ").unwrap();
        let qcf = t.columns.iter().position(|c| c == "QCF-ratio").unwrap();
        for row in &t.rows {
            let a: f64 = row[cusz].parse().unwrap();
            let b: f64 = row[qcf].parse().unwrap();
            assert!(b > a, "{}: QCF-ratio {b} <= cuSZ {a}", row[0]);
        }
    }
}
