//! `qcfz top` — an in-terminal dashboard over the live telemetry layer.
//!
//! A QAOA compressed-state run executes on a worker thread while the main
//! thread renders frames from the background time-series sampler
//! ([`qcf_telemetry::timeseries`]): gate throughput, cache hit rate,
//! resident bytes, error-budget burn-down and the p50/p95/p99 of the
//! `state.apply_us` / `state.encode_us` / `state.decode_us` latency
//! histograms.
//!
//! Two modes:
//!
//! * **live** (default): clears the screen and redraws every sampler
//!   interval until the worker finishes — a tiny `top(1)` for the engine;
//! * **`--once`**: runs the workload to completion, then renders exactly
//!   one frame with no ANSI escapes — CI- and pipe-safe.
//!
//! Either way the final registry snapshot is serialized through the
//! Prometheus text exposition and re-validated with the hand-rolled parser
//! ([`qcf_telemetry::export::validate_prometheus`]), so `qcfz top --once`
//! doubles as an end-to-end gate on the export surface.
//!
//! Live mode also arms the SLO engine ([`qcf_telemetry::slo`]) and renders
//! an alerts pane, and handles SIGINT / SIGHUP / SIGPIPE: the sampler is
//! stopped cleanly and one final **ANSI-free** summary frame is printed,
//! so an interrupted session (or a closed terminal) ends with a readable
//! record instead of a half-drawn escape soup.

use crate::cli::{cli_by_name, CliError};
use compressors::ErrorBound;
use qcf_telemetry::metrics::{quantile_from_buckets, HistogramSnapshot, Snapshot};
use qcf_telemetry::slo::{self, AlertSnapshot, AlertState};
use qcf_telemetry::timeseries::{self, Sample};
use qcf_telemetry::{journal, prometheus_text};
use qcircuit::{qaoa_circuit, Graph, QaoaParams};
use qtensor::CompressedState;
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};

/// Configuration for one `qcfz top` invocation.
#[derive(Debug, Clone)]
pub struct TopConfig {
    /// QAOA graph nodes (= qubits) for the workload run.
    pub nodes: usize,
    /// Graph seed.
    pub seed: u64,
    /// Compressor display name (`qcfz list`).
    pub compressor: String,
    /// Error bound for the chunk codec.
    pub bound: ErrorBound,
    /// Qubits per chunk.
    pub chunk_qubits: usize,
    /// Write-back cache capacity override (chunks).
    pub cache: Option<usize>,
    /// Compressed-resident byte budget; `Some` arms the disk spill tier
    /// and the schedule-aware prefetcher for the workload run.
    pub mem_budget: Option<usize>,
    /// Sampler and redraw interval in milliseconds.
    pub interval_ms: u64,
    /// Render a single frame after the run instead of refreshing live.
    pub once: bool,
}

impl TopConfig {
    /// Defaults matching `qcfz state`: 10-node QAOA, QCF-speed.
    pub fn new(nodes: usize, seed: u64, compressor: &str, bound: ErrorBound) -> Self {
        TopConfig {
            nodes,
            seed,
            compressor: compressor.to_string(),
            bound,
            chunk_qubits: nodes.saturating_sub(3),
            cache: None,
            mem_budget: None,
            interval_ms: 50,
            once: false,
        }
    }
}

/// Set by the signal handler (and by [`request_stop`]); the live loop
/// polls it every frame.
static STOP: AtomicBool = AtomicBool::new(false);

/// Asks a running live dashboard to wind down exactly as SIGINT would:
/// stop the sampler, print one final ANSI-free summary frame. Public so
/// tests (and embedders) can drive the shutdown path without a signal.
pub fn request_stop() {
    STOP.store(true, Ordering::SeqCst);
}

/// The handler body: one async-signal-safe atomic store. Rendering and
/// sampler shutdown happen on the main thread when the loop notices.
extern "C" fn on_signal(_sig: i32) {
    STOP.store(true, Ordering::SeqCst);
}

/// Routes SIGINT (ctrl-C), SIGHUP (terminal closed) and SIGPIPE (pager
/// went away) to [`on_signal`]. Catching SIGPIPE also turns writes to a
/// dead pipe into `EPIPE` errors — which is why every print below is a
/// guarded [`emit`], not a panicking `print!`.
#[cfg(unix)]
fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    let handler = on_signal as extern "C" fn(i32) as *const () as usize;
    unsafe {
        signal(2, handler); // SIGINT
        signal(1, handler); // SIGHUP
        signal(13, handler); // SIGPIPE
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

/// Best-effort stdout write: after SIGPIPE the descriptor is dead and
/// every write fails — the dashboard must still shut the sampler down
/// instead of panicking mid-frame.
fn emit(s: &str) {
    let mut out = std::io::stdout();
    let _ = out.write_all(s.as_bytes());
    let _ = out.flush();
}

/// Runs the dashboard: workload on a worker thread, frames on this one.
/// Returns the final rendered frame (also printed) so tests and callers
/// can inspect it.
pub fn run(cfg: &TopConfig) -> Result<String, CliError> {
    // The dashboard *is* a telemetry consumer: force the substrate on and
    // arm the journal so per-chunk counts are live, then start the sampler
    // at the requested cadence (programmatic, so no env var needed). The
    // SLO engine is armed with the active spec (`QCF_SLO` or defaults) so
    // the alerts pane always has objectives to show.
    qcf_telemetry::set_enabled(true);
    journal::set_enabled(true);
    slo::arm_active();
    install_signal_handlers();
    timeseries::stop();
    timeseries::start(cfg.interval_ms.max(1));

    let w = cfg.clone();
    let worker = std::thread::Builder::new()
        .name("qcfz-top-worker".into())
        .spawn(move || -> Result<f64, String> {
            let comp = cli_by_name(&w.compressor)
                .ok_or_else(|| format!("unknown compressor '{}'", w.compressor))?;
            let graph = Graph::random_regular(w.nodes, 3, w.seed);
            let circuit = qaoa_circuit(&graph, &QaoaParams::fixed_angles_3reg_p1());
            let err = |e: qtensor::ContractError| format!("compressed state: {e}");
            let mut cs =
                CompressedState::zero(w.nodes, w.chunk_qubits.min(w.nodes), comp.as_ref(), w.bound)
                    .map_err(err)?;
            if let Some(cap) = w.cache {
                cs.set_cache_capacity(cap).map_err(err)?;
            }
            if w.mem_budget.is_some() {
                cs.set_mem_budget(w.mem_budget);
            }
            cs.run_scheduled(circuit.gates(), true).map_err(err)?;
            let energy = cs.maxcut_energy(&graph).map_err(err)?;
            cs.flush().map_err(err)?;
            Ok(energy)
        })
        .map_err(|e| CliError(format!("worker spawn failed: {e}")))?;

    let interval = std::time::Duration::from_millis(cfg.interval_ms.max(1));
    if !cfg.once {
        while !worker.is_finished() && !STOP.load(Ordering::SeqCst) {
            std::thread::sleep(interval);
            let frame = render(
                &qcf_telemetry::registry().snapshot(),
                &timeseries::samples(),
                &slo::alerts(),
                cfg,
                None,
            );
            // Home + clear-to-end keeps the redraw flicker-free.
            emit(&format!("\x1b[H\x1b[J{frame}"));
        }
    }

    // Interrupted (signal or request_stop): stop the sampler first so no
    // frame races the summary, give the worker a short grace window, then
    // print one final escape-free frame over whatever the run recorded.
    // The worker thread is detached if still busy — the process is exiting
    // and a blocked disk fetch must not hold the terminal hostage.
    if STOP.swap(false, Ordering::SeqCst) && !worker.is_finished() {
        timeseries::stop();
        let deadline = std::time::Instant::now() + std::time::Duration::from_millis(500);
        while !worker.is_finished() && std::time::Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        let energy = if worker.is_finished() {
            worker.join().ok().and_then(Result::ok)
        } else {
            None
        };
        let snap = qcf_telemetry::registry().snapshot();
        let frame = render(&snap, &timeseries::samples(), &slo::alerts(), cfg, energy);
        emit(&format!(
            "\ninterrupted — final summary (partial run):\n{frame}"
        ));
        journal::set_enabled(false);
        return Ok(frame);
    }
    let energy = worker
        .join()
        .map_err(|_| CliError("worker panicked".into()))?
        .map_err(CliError)?;

    // Guarantee at least one sample even when the run finished inside the
    // first sampler interval, then freeze the series for the final frame.
    timeseries::capture();
    timeseries::stop();

    let snap = qcf_telemetry::registry().snapshot();
    let frame = render(
        &snap,
        &timeseries::samples(),
        &slo::alerts(),
        cfg,
        Some(energy),
    );
    if cfg.once {
        emit(&frame);
    } else {
        emit(&format!("\x1b[H\x1b[J{frame}"));
    }

    // Exit contract: the exposition this run would serve must parse.
    let prom = prometheus_text(&snap);
    let stats = qcf_telemetry::export::validate_prometheus(&prom)
        .map_err(|e| CliError(format!("prometheus exposition invalid: {e}")))?;
    emit(&format!(
        "prometheus exposition valid: {} samples, {} histograms\n",
        stats.samples, stats.histograms
    ));
    journal::set_enabled(false);
    Ok(frame)
}

/// A seven-level unicode sparkline over `values` (empty input → empty
/// string; non-finite values render as the lowest bar).
fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values
        .iter()
        .copied()
        .filter(|v| v.is_finite())
        .fold(0.0, f64::max);
    values
        .iter()
        .map(|&v| {
            if !v.is_finite() || max <= 0.0 {
                BARS[0]
            } else {
                BARS[((v / max * 7.0).round() as usize).min(7)]
            }
        })
        .collect()
}

/// `12.3 KiB`-style byte formatting.
fn fmt_bytes(b: f64) -> String {
    if b >= 1024.0 * 1024.0 {
        format!("{:.1} MiB", b / (1024.0 * 1024.0))
    } else if b >= 1024.0 {
        format!("{:.1} KiB", b / 1024.0)
    } else {
        format!("{b:.0} B")
    }
}

/// Formats a microsecond quantile from the sketch: `-` when the histogram
/// is empty, `>10ms`-style when the rank fell in the overflow bucket
/// (`overflow_bound` is the histogram's last *finite* bucket bound; see
/// [`last_finite_bound`]).
pub(crate) fn fmt_us(v: f64, overflow_bound: f64) -> String {
    if v.is_nan() {
        "-".into()
    } else if v.is_infinite() {
        if overflow_bound.is_finite() {
            format!(">{}", fmt_us(overflow_bound, f64::NAN))
        } else {
            ">∞".into()
        }
    } else if v >= 1000.0 {
        format!("{:.1}ms", v / 1000.0)
    } else {
        format!("{v:.0}µs")
    }
}

/// The histogram's last finite bucket bound — snapshot bucket lists end
/// with the implicit `(+inf, overflow)` bucket, so `.last()` is NOT it.
pub(crate) fn last_finite_bound(buckets: &[(f64, u64)]) -> f64 {
    buckets
        .iter()
        .rev()
        .map(|&(b, _)| b)
        .find(|b| b.is_finite())
        .unwrap_or(f64::INFINITY)
}

/// One `p50 / p95 / p99` latency row, or `None` when the histogram has no
/// observations yet.
fn latency_row(label: &str, h: &HistogramSnapshot) -> Option<String> {
    if h.count == 0 {
        return None;
    }
    let top = last_finite_bound(&h.buckets);
    let q = |q: f64| fmt_us(quantile_from_buckets(&h.buckets, h.count, q), top);
    Some(format!(
        "  {label:<10} {:>8} {:>8} {:>8}  ({} obs)",
        q(0.50),
        q(0.95),
        q(0.99),
        h.count
    ))
}

/// Per-sample gate-apply rates (events/s) from the series, for the
/// throughput sparkline. The apply count rides in each sample's
/// `state.apply_us` histogram count.
fn apply_rates(samples: &[Sample]) -> Vec<f64> {
    samples
        .windows(2)
        .map(|w| {
            let c0 = w[0]
                .metrics
                .histograms
                .get("state.apply_us")
                .map_or(0, |h| h.count);
            let c1 = w[1]
                .metrics
                .histograms
                .get("state.apply_us")
                .map_or(0, |h| h.count);
            let dt = (w[1].t_us.saturating_sub(w[0].t_us)) as f64 / 1e6;
            if dt > 0.0 {
                (c1.saturating_sub(c0)) as f64 / dt
            } else {
                0.0
            }
        })
        .collect()
}

/// Accumulated-bound level per sample, for the budget burn-down sparkline.
fn budget_levels(samples: &[Sample]) -> Vec<f64> {
    samples
        .iter()
        .map(|s| {
            s.metrics
                .float_gauges
                .get("state.ledger.accumulated_bound")
                .copied()
                .unwrap_or(0.0)
        })
        .collect()
}

/// One alerts-pane line per non-ok alert (the quiet majority collapses to
/// a count, so a healthy dashboard spends one row on the whole pane).
fn alerts_pane(alerts: &[AlertSnapshot]) -> String {
    if alerts.is_empty() {
        return String::new();
    }
    let ok = alerts.iter().filter(|a| a.state == AlertState::Ok).count();
    let mut out = format!(
        "alerts    {} objectives: {} ok / {} pending / {} firing / {} resolved\n",
        alerts.len(),
        ok,
        alerts
            .iter()
            .filter(|a| a.state == AlertState::Pending)
            .count(),
        alerts
            .iter()
            .filter(|a| a.state == AlertState::Firing)
            .count(),
        alerts
            .iter()
            .filter(|a| a.state == AlertState::Resolved)
            .count(),
    );
    for a in alerts.iter().filter(|a| a.state != AlertState::Ok) {
        let marker = if a.state == AlertState::Firing {
            '!'
        } else {
            '~'
        };
        out.push_str(&format!(
            "  {marker} {:<22} {:<9} {} {} {:.3e} (fast {:.3e} / slow {:.3e})\n",
            a.objective.name,
            a.state.label(),
            a.objective.expr.to_text(),
            a.objective.op.label(),
            a.objective.threshold,
            a.fast,
            a.slow
        ));
    }
    out
}

/// Renders one dashboard frame (pure: registry snapshot + sample ring +
/// alert snapshots in, text out — unit-testable without running anything).
pub fn render(
    snap: &Snapshot,
    samples: &[Sample],
    alerts: &[AlertSnapshot],
    cfg: &TopConfig,
    energy: Option<f64>,
) -> String {
    let mut out = String::with_capacity(1024);
    let applies = snap.histograms.get("state.apply_us").map_or(0, |h| h.count);
    let hits = snap.counters.get("state.cache.hit").copied().unwrap_or(0);
    let misses = snap.counters.get("state.cache.miss").copied().unwrap_or(0);
    let writebacks = snap
        .counters
        .get("state.cache.writeback")
        .copied()
        .unwrap_or(0);
    let touched = hits + misses;
    let (resident, peak) = snap
        .gauges
        .get("state.resident_bytes")
        .copied()
        .unwrap_or((0, 0));
    let requants = snap
        .counters
        .get("state.ledger.requants")
        .copied()
        .unwrap_or(0);
    let acc_bound = snap
        .float_gauges
        .get("state.ledger.accumulated_bound")
        .copied()
        .unwrap_or(0.0);

    let runtime_s = samples.last().map(|s| s.t_us as f64 / 1e6).unwrap_or(0.0);
    out.push_str(&format!(
        "qcfz top — {} on {}-node QAOA (seed {}, chunk 2^{})   [{:.2}s, {} samples @{}ms{}]\n",
        cfg.compressor,
        cfg.nodes,
        cfg.seed,
        cfg.chunk_qubits,
        runtime_s,
        samples.len(),
        cfg.interval_ms,
        match energy {
            Some(_) => ", done",
            None => ", running",
        }
    ));

    let rates = apply_rates(samples);
    let mean_rate = if rates.is_empty() {
        0.0
    } else {
        rates.iter().sum::<f64>() / rates.len() as f64
    };
    out.push_str(&format!(
        "gates     {applies} applied   throughput {} {:.0}/s avg\n",
        sparkline(&rates),
        mean_rate
    ));
    out.push_str(&format!(
        "cache     {:.1}% hit rate ({hits} hits / {misses} misses), {writebacks} writebacks\n",
        if touched == 0 {
            0.0
        } else {
            100.0 * hits as f64 / touched as f64
        }
    ));
    out.push_str(&format!(
        "resident  {} now / {} peak compressed\n",
        fmt_bytes(resident as f64),
        fmt_bytes(peak as f64)
    ));
    out.push_str(&format!(
        "budget    {requants} requants, accumulated bound {acc_bound:.3e}  burn-down {}\n",
        sparkline(&budget_levels(samples))
    ));

    // Disk tier + prefetch pipeline — rendered only once frames actually
    // spilled, so the row never clutters an all-RAM run.
    let spill_writes = snap
        .counters
        .get("state.spill.writes")
        .copied()
        .unwrap_or(0);
    if spill_writes > 0 {
        let spill_reads = snap.counters.get("state.spill.reads").copied().unwrap_or(0);
        let (on_disk, _) = snap
            .gauges
            .get("state.spill.live_bytes")
            .copied()
            .unwrap_or((0, 0));
        let p_hits = snap
            .counters
            .get("state.prefetch.hits")
            .copied()
            .unwrap_or(0);
        let p_misses = snap
            .counters
            .get("state.prefetch.misses")
            .copied()
            .unwrap_or(0);
        let stall_us = snap
            .counters
            .get("state.prefetch.stall_us")
            .copied()
            .unwrap_or(0);
        let fetched = p_hits + p_misses;
        out.push_str(&format!(
            "spill     {spill_writes} writes / {spill_reads} reads, {} on disk   \
             prefetch {:.0}% hit ({p_hits}/{fetched}), stalled {}\n",
            fmt_bytes(on_disk as f64),
            if fetched == 0 {
                0.0
            } else {
                100.0 * p_hits as f64 / fetched as f64
            },
            fmt_us(stall_us as f64, f64::INFINITY)
        ));
    }

    out.push_str("latency        p50      p95      p99\n");
    for (label, name) in [
        ("apply", "state.apply_us"),
        ("encode", "state.encode_us"),
        ("decode", "state.decode_us"),
    ] {
        if let Some(row) = snap
            .histograms
            .get(name)
            .and_then(|h| latency_row(label, h))
        {
            out.push_str(&row);
            out.push('\n');
        }
    }

    out.push_str(&alerts_pane(alerts));

    let chunk_ids = journal::chunk_ids();
    if !chunk_ids.is_empty() {
        out.push_str(&format!(
            "journal   {} chunks, {} events (ring keeps last {} per chunk)\n",
            chunk_ids.len(),
            journal::total_events(),
            journal::RING
        ));
    }
    if let Some(e) = energy {
        out.push_str(&format!("energy    {e:.6}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcf_telemetry::metrics::HistogramSnapshot;

    fn synthetic_snapshot() -> Snapshot {
        let mut snap = Snapshot::default();
        snap.counters.insert("state.cache.hit".into(), 90);
        snap.counters.insert("state.cache.miss".into(), 10);
        snap.counters.insert("state.ledger.requants".into(), 7);
        snap.gauges
            .insert("state.resident_bytes".into(), (2048, 4096));
        snap.float_gauges
            .insert("state.ledger.accumulated_bound".into(), 3.0e-6);
        snap.histograms.insert(
            "state.apply_us".into(),
            HistogramSnapshot {
                count: 100,
                dropped: 0,
                sum: 5000.0,
                mean: 50.0,
                buckets: vec![(10.0, 10), (100.0, 80), (1000.0, 10)],
            },
        );
        snap
    }

    #[test]
    fn render_is_pure_and_complete() {
        let cfg = TopConfig::new(10, 21, "QCF-speed", ErrorBound::Rel(1e-3));
        let frame = render(&synthetic_snapshot(), &[], &[], &cfg, Some(-7.25));
        assert!(frame.contains("90.0% hit rate"), "{frame}");
        assert!(frame.contains("2.0 KiB now / 4.0 KiB peak"), "{frame}");
        assert!(frame.contains("7 requants"), "{frame}");
        assert!(frame.contains("100 applied"), "{frame}");
        assert!(frame.contains("energy    -7.250000"), "{frame}");
        // p50 at rank 50 lands in the (10,100] bucket → 100µs upper bound;
        // p99 at rank 99 lands in (100,1000] → 1ms.
        assert!(frame.contains("100µs"), "{frame}");
        assert!(frame.contains("1.0ms"), "{frame}");
        // No ANSI escapes in the frame itself (the caller adds them).
        assert!(!frame.contains('\x1b'), "frame must be escape-free");
        // No disk-tier activity in the snapshot — no spill row.
        assert!(!frame.contains("spill"), "{frame}");
    }

    #[test]
    fn render_shows_spill_row_when_frames_spilled() {
        let mut snap = synthetic_snapshot();
        snap.counters.insert("state.spill.writes".into(), 40);
        snap.counters.insert("state.spill.reads".into(), 32);
        snap.gauges
            .insert("state.spill.live_bytes".into(), (8192, 8192));
        snap.counters.insert("state.prefetch.hits".into(), 30);
        snap.counters.insert("state.prefetch.misses".into(), 10);
        snap.counters.insert("state.prefetch.stall_us".into(), 1500);
        let cfg = TopConfig::new(10, 21, "QCF-speed", ErrorBound::Rel(1e-3));
        let frame = render(&snap, &[], &[], &cfg, Some(-7.25));
        assert!(frame.contains("40 writes / 32 reads"), "{frame}");
        assert!(frame.contains("8.0 KiB on disk"), "{frame}");
        assert!(frame.contains("75% hit (30/40)"), "{frame}");
        assert!(frame.contains("stalled 1.5ms"), "{frame}");
    }

    #[test]
    fn alerts_pane_collapses_healthy_and_flags_firing() {
        use qcf_telemetry::slo::{Expr, Objective, Op};
        let obj = |name: &str| Objective {
            name: name.into(),
            expr: Expr::Level("state.resident_bytes".into()),
            op: Op::Le,
            threshold: 1024.0,
        };
        let snap = |name: &str, state: AlertState| AlertSnapshot {
            objective: obj(name),
            state,
            fast: 2048.0,
            slow: 1500.0,
            breach_ticks: 3,
            transitions: 1,
        };
        // Disarmed engine hands back no alerts: no pane at all.
        let cfg = TopConfig::new(10, 21, "QCF-speed", ErrorBound::Rel(1e-3));
        let frame = render(&synthetic_snapshot(), &[], &[], &cfg, None);
        assert!(!frame.contains("alerts"), "{frame}");

        let alerts = vec![
            snap("capacity.resident", AlertState::Firing),
            snap("fidelity.bound", AlertState::Ok),
            snap("latency.stall", AlertState::Pending),
        ];
        let frame = render(&synthetic_snapshot(), &[], &alerts, &cfg, None);
        assert!(
            frame.contains("3 objectives: 1 ok / 1 pending / 1 firing / 0 resolved"),
            "{frame}"
        );
        assert!(frame.contains("! capacity.resident"), "{frame}");
        assert!(frame.contains("~ latency.stall"), "{frame}");
        // Healthy objectives stay out of the per-alert rows.
        assert!(!frame.contains("fidelity.bound"), "{frame}");
        assert!(!frame.contains('\x1b'), "frame must be escape-free");
    }

    #[test]
    fn request_stop_ends_live_mode_with_an_ansi_free_summary() {
        // The stop flag is polled before the first redraw, so a pre-set
        // flag exercises exactly the signal path: sampler stopped, worker
        // joined within the grace window (a tiny instance finishes fast),
        // one escape-free summary frame returned.
        let _guard = crate::telemetry_test_lock();
        let mut cfg = TopConfig::new(8, 5, "QCF-speed", ErrorBound::Rel(1e-3));
        cfg.chunk_qubits = 4;
        cfg.interval_ms = 1;
        request_stop();
        let frame = run(&cfg).expect("interrupted run still reports");
        assert!(
            !frame.contains('\x1b'),
            "summary must be ANSI-free: {frame}"
        );
        assert!(frame.contains("qcfz top"), "{frame}");
        assert!(
            !STOP.load(Ordering::SeqCst),
            "stop flag must be consumed for the next run"
        );
    }

    #[test]
    fn sparkline_scales_and_handles_empties() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[0.0, 0.0]), "▁▁");
        let s = sparkline(&[1.0, 4.0, 8.0]);
        assert_eq!(s.chars().count(), 3);
        assert!(s.ends_with('█'));
        assert_eq!(sparkline(&[f64::NAN, 1.0]).chars().next(), Some('▁'));
    }

    #[test]
    fn fmt_helpers() {
        assert_eq!(fmt_bytes(512.0), "512 B");
        assert_eq!(fmt_bytes(2048.0), "2.0 KiB");
        assert_eq!(fmt_bytes(3.0 * 1024.0 * 1024.0), "3.0 MiB");
        assert_eq!(fmt_us(f64::NAN, 1000.0), "-");
        assert_eq!(fmt_us(f64::INFINITY, 10000.0), ">10.0ms");
        assert_eq!(fmt_us(250.0, 1000.0), "250µs");
        assert_eq!(fmt_us(2500.0, 10000.0), "2.5ms");
    }
}
