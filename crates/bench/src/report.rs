//! Result tables: aligned text for the terminal, JSON for regeneration
//! records (EXPERIMENTS.md cites these).

use std::io::Write;

/// One experiment artifact (a table or figure-as-table).
#[derive(Debug, Clone)]
pub struct Table {
    /// Experiment id (`e1`…`e9`).
    pub id: String,
    /// Human title, matching DESIGN.md's per-experiment index.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Row cells (same arity as `columns`).
    pub rows: Vec<Vec<String>>,
    /// Free-form notes (claim checks, caveats).
    pub notes: Vec<String>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(id: &str, title: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            id: id.to_string(),
            title: title.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics when the arity differs from the header.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row arity mismatch in {}",
            self.id
        );
        self.rows.push(cells);
    }

    /// Appends a note line.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Renders the aligned text form.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} — {}\n", self.id.to_uppercase(), self.title));
        let header: Vec<String> = self
            .columns
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect();
        out.push_str(&header.join("  "));
        out.push('\n');
        out.push_str(&"-".repeat(header.join("  ").len()));
        out.push('\n');
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect();
            out.push_str(&line.join("  "));
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str(&format!("  note: {note}\n"));
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
        println!();
    }

    /// Renders the JSON record (pretty-printed, two-space indent).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"id\": {},\n", json_str(&self.id)));
        out.push_str(&format!("  \"title\": {},\n", json_str(&self.title)));
        out.push_str(&format!(
            "  \"columns\": {},\n",
            json_str_array(&self.columns, "  ")
        ));
        out.push_str("  \"rows\": [");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            out.push_str(&json_str_array(row, "    "));
        }
        if self.rows.is_empty() {
            out.push_str("],\n");
        } else {
            out.push_str("\n  ],\n");
        }
        out.push_str(&format!(
            "  \"notes\": {}\n",
            json_str_array(&self.notes, "  ")
        ));
        out.push('}');
        out
    }

    /// Writes the JSON record to `dir/<id>[-<k>].json`.
    pub fn save_json(&self, dir: &std::path::Path, suffix: Option<usize>) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let name = match suffix {
            Some(k) => format!("{}-{k}.json", self.id),
            None => format!("{}.json", self.id),
        };
        let mut f = std::fs::File::create(dir.join(name))?;
        f.write_all(self.to_json().as_bytes())
    }
}

/// Per-phase time breakdown from the telemetry span buffer.
///
/// Aggregates the given span snapshot by span name into a table of call
/// count, total time, and mean time per call (span time is wall-clock on
/// the recording thread; nested spans are counted in their parents too).
pub fn phase_table(events: &[qcf_telemetry::SpanEvent]) -> Table {
    let mut t = Table::new(
        "phases",
        "per-phase time breakdown",
        &["phase", "category", "calls", "total ms", "mean µs"],
    );
    for (name, cat, count, total_us) in qcf_telemetry::span::aggregate(events) {
        t.row(vec![
            name.to_string(),
            cat.to_string(),
            count.to_string(),
            format!("{:.3}", total_us as f64 / 1e3),
            format!("{:.1}", total_us as f64 / count.max(1) as f64),
        ]);
    }
    let dropped = qcf_telemetry::span::dropped();
    if dropped > 0 {
        t.note(format!("{dropped} span events dropped (buffer full)"));
    }
    t
}

/// Key registry metrics as a table: every counter, plus gauge high-water
/// marks — the flat complement of the [`phase_table`] time view.
pub fn metrics_table() -> Table {
    let snap = qcf_telemetry::registry().snapshot();
    let mut t = Table::new(
        "metrics",
        "telemetry registry",
        &["metric", "value", "high water"],
    );
    for (name, value) in &snap.counters {
        t.row(vec![name.clone(), value.to_string(), String::new()]);
    }
    for (name, (value, high)) in &snap.gauges {
        t.row(vec![name.clone(), value.to_string(), high.to_string()]);
    }
    for (name, value) in &snap.float_gauges {
        t.row(vec![name.clone(), format!("{value:.6}"), String::new()]);
    }
    t
}

/// JSON string literal with the escapes the control set requires.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_str_array(items: &[String], _indent: &str) -> String {
    let body: Vec<String> = items.iter().map(|s| json_str(s)).collect();
    format!("[{}]", body.join(", "))
}

/// Formats a ratio like `12.3x`.
pub fn fx(v: f64) -> String {
    format!("{v:.1}x")
}

/// Formats a throughput in GB/s.
pub fn gbps(bytes_per_sec: f64) -> String {
    format!("{:.1}", bytes_per_sec / 1e9)
}

/// Formats a percentage.
pub fn pct(frac: f64) -> String {
    format!("{:.3}%", frac * 100.0)
}

/// Formats in scientific notation.
pub fn sci(v: f64) -> String {
    format!("{v:.1e}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("e0", "demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "2000".into()]);
        t.note("a note");
        let s = t.render();
        assert!(s.contains("E0 — demo"));
        assert!(s.contains("long-name"));
        assert!(s.contains("note: a note"));
        // all data lines have the same length
        let lines: Vec<&str> = s.lines().skip(1).take(4).collect();
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut t = Table::new("e0", "demo", &["a", "b"]);
        t.row(vec!["x".into()]);
    }

    #[test]
    fn json_roundtrip_shape() {
        let mut t = Table::new("e2", "cr", &["c"]);
        t.row(vec!["1.0".into()]);
        let v = t.to_json();
        assert!(v.contains("\"id\": \"e2\""), "{v}");
        assert!(v.contains("[\"1.0\"]"), "{v}");
        assert!(v.contains("\"columns\": [\"c\"]"), "{v}");
    }

    #[test]
    fn json_escapes_special_chars() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn formatters() {
        assert_eq!(fx(12.34), "12.3x");
        assert_eq!(gbps(1.5e9), "1.5");
        assert_eq!(pct(0.0123), "1.230%");
        assert_eq!(sci(0.000123), "1.2e-4");
    }
}
