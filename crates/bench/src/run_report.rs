//! `qcfz report` — one self-contained run report, plus run-to-run
//! regression checking.
//!
//! [`collect`] executes five telemetry-isolated phases (each inside a
//! [`qcf_telemetry::RunScope`], so `state.cache.*` and friends never bleed
//! between phases of the same process):
//!
//! 1. **qaoa** — compressed tensor contraction ([`cli::qaoa_demo`]);
//! 2. **state** — chunk-compressed statevector simulation with the
//!    write-back cache and the error-budget ledger ([`cli::state_demo`]);
//! 3. **oocore** — the same instance under a deliberately tiny memory
//!    budget, so cold frames spill to the disk tier and the gate-schedule
//!    prefetcher fetches them back (async vs sync wall times A/B'd; the
//!    energy is asserted bit-identical to the in-RAM state phase);
//! 4. **ckpt** — durable checkpoint/restore round trip under the same
//!    budget: the circuit is snapshotted at its midpoint
//!    ([`cli::checkpoint_demo`], exercising resume-and-continue over the
//!    same path), then finished twice from that snapshot
//!    ([`cli::resume_demo`]) — once scrubbed, once plain — and the two
//!    completions are asserted bit-identical;
//! 5. **quality** — a round-trip CR/PSNR/throughput sweep over the full
//!    compressor lineup on a synthetic amplitude tensor.
//!
//! [`RunReport::to_markdown`] renders everything — per-phase span tables,
//! registry metrics, the per-compressor quality table, the per-state ledger
//! summary, and any flight-recorder frames — into one document
//! (`to_html` wraps the same content for browsers).
//!
//! [`RunReport::baseline`] flattens the run's stable scalars into
//! `key → number` pairs, and [`check`] diffs a current run against a stored
//! baseline: compression-ratio drops, requant-count increases,
//! accumulated-bound growth and energy drift are **hard** regressions;
//! throughput drops are warnings unless the caller opts into strict mode
//! (CI does on multi-core hosts — wall-clock numbers on a loaded 1-core
//! runner are noise, CR and ledger invariants are not).

use crate::cli::{self, CliError};
use crate::corpus::synthetic_tensor;
use crate::report::{phase_table, Table};
use compressors::{round_trip, ErrorBound};
use qcf_telemetry::metrics::Snapshot;
use qcf_telemetry::slo::SloSpec;
use qcf_telemetry::timeseries::Sample;
use qcf_telemetry::{RunScope, SpanEvent};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

/// What the report runs.
#[derive(Debug, Clone)]
pub struct ReportConfig {
    /// QAOA graph size (nodes = qubits).
    pub nodes: usize,
    /// Graph seed.
    pub seed: u64,
    /// Compressor used for both demo phases.
    pub compressor: String,
    /// Error bound for both demo phases.
    pub bound: ErrorBound,
    /// Chunk qubits for the state phase.
    pub chunk_qubits: usize,
    /// Chunk-cache capacity override for the state phase.
    pub cache: Option<usize>,
}

impl Default for ReportConfig {
    fn default() -> Self {
        ReportConfig {
            nodes: 10,
            seed: 21,
            compressor: "QCF-ratio".into(),
            bound: ErrorBound::Abs(1e-6),
            chunk_qubits: 7,
            cache: None,
        }
    }
}

/// Spans + metrics recorded by one isolated phase.
#[derive(Debug, Clone)]
pub struct PhaseRecord {
    /// Span events of the phase.
    pub spans: Vec<SpanEvent>,
    /// Metric values accumulated by the phase alone.
    pub metrics: Snapshot,
}

/// One compressor's row of the quality sweep.
#[derive(Debug, Clone)]
pub struct QualityRow {
    /// Compressor display name.
    pub name: String,
    /// Compression ratio.
    pub cr: f64,
    /// Measured max-abs-error of the round trip.
    pub max_abs_err: f64,
    /// PSNR in dB (∞ for exact reconstruction).
    pub psnr_db: f64,
    /// Simulated-GPU compression throughput, bytes/s.
    pub gpu_compress_bps: f64,
    /// Simulated-GPU decompression throughput, bytes/s.
    pub gpu_decompress_bps: f64,
    /// Host wall-clock compression throughput, bytes/s.
    pub host_compress_bps: f64,
    /// Host compression throughput with `worker_count()` pinned to 1
    /// (measured only for the paper's cuSZ/cuSZx targets) — the honest
    /// serial baseline `multicore_speedup` divides by.
    pub host_compress_bps_serial: Option<f64>,
}

/// Physical cores the host reports — the figure all per-core throughput
/// normalization uses. Deliberately *not* `worker_count()`: `QCF_WORKERS=4`
/// on a 1-core CI box forces the threaded code paths, but four threads
/// time-slicing one core is still a 1-core host for speedup accounting.
pub fn detected_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Everything one `qcfz report` run measured.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The configuration that produced it.
    pub config: ReportConfig,
    /// Compressed-contraction summary.
    pub qaoa: cli::QaoaSummary,
    /// Telemetry of the qaoa phase.
    pub qaoa_phase: PhaseRecord,
    /// Compressed-state summary (including the error-budget ledger).
    pub state: cli::StateSummary,
    /// Telemetry of the state phase.
    pub state_phase: PhaseRecord,
    /// Out-of-core summary: the state instance re-run under
    /// [`OOCORE_BUDGET`], spilling cold frames to disk with the
    /// schedule-aware prefetcher on.
    pub oocore: cli::StateSummary,
    /// Telemetry of the oocore phase.
    pub oocore_phase: PhaseRecord,
    /// Wall seconds of the async (prefetched) budgeted run.
    pub oocore_async_s: f64,
    /// Wall seconds of the synchronous fetch-on-miss run at the same
    /// budget — the A/B reference the prefetcher must beat.
    pub oocore_sync_s: f64,
    /// Midpoint snapshot commit: bytes, gate progress, energy at the
    /// checkpoint barrier.
    pub ckpt: cli::CkptSummary,
    /// Resume-and-finish from that snapshot (the scrubbed run; asserted
    /// bit-identical to the plain resume in [`collect`]).
    pub resume: cli::ResumeSummary,
    /// Telemetry of the ckpt phase (commit + both resumes).
    pub ckpt_phase: PhaseRecord,
    /// Per-compressor quality sweep.
    pub quality: Vec<QualityRow>,
    /// End-of-run SLO evaluation over the state, out-of-core, and
    /// checkpoint phases.
    pub slo: SloSection,
}

/// One objective's end-of-run reading and verdict.
#[derive(Debug, Clone)]
pub struct SloRow {
    /// Objective name (spec order).
    pub name: String,
    /// Round-trippable objective text (`expr op threshold`).
    pub target: String,
    /// Worst end-of-run reading across the judged phases (`None` = the
    /// signal never appeared — a hold, not a violation).
    pub value: Option<f64>,
    /// True when the reading violates the objective.
    pub violated: bool,
}

/// The report's SLO verdict: every active objective judged against the
/// **final** registry snapshot of each compressed-state phase, as a
/// whole-phase window (an empty origin sample, then the final registry —
/// so levels read end state, quantiles and hit rates read the full
/// phase's mass). Those readings are deterministic functions of the
/// workload, which makes the violation count a baseline quantity —
/// unlike the tick-by-tick burn-rate lifecycle `qcfz slo` replays, which
/// depends on sampler timing. Per-second rates have no end-state meaning
/// and read as "no signal" here.
#[derive(Debug, Clone)]
pub struct SloSection {
    /// The spec judged (`QCF_SLO` or built-in defaults), rules text.
    pub spec_text: String,
    /// Per-objective verdicts, spec order.
    pub rows: Vec<SloRow>,
    /// Objectives violated at end of run.
    pub violations: usize,
}

/// Judges the active spec against phase-final snapshots (worst phase
/// counts per objective).
fn slo_eval(spec: &SloSpec, snapshots: &[&Snapshot]) -> SloSection {
    let mut rows = Vec::new();
    let mut violations = 0usize;
    for obj in &spec.objectives {
        let mut value: Option<f64> = None;
        let mut violated = false;
        for snap in snapshots {
            // Whole-phase window: from nothing-observed to the phase's
            // final registry, so window-delta signals carry the phase's
            // entire mass instead of degenerating to zero.
            let window = [
                Sample {
                    t_us: 0,
                    metrics: Snapshot::default(),
                },
                Sample {
                    t_us: 1,
                    metrics: (*snap).clone(),
                },
            ];
            if let Some(v) = qcf_telemetry::slo::eval_window(&obj.expr, &window) {
                let bad = obj.op.violated(v, obj.threshold);
                // Keep the worst reading: the first violating one, else
                // the first reading at all.
                if value.is_none() || (bad && !violated) {
                    value = Some(v);
                }
                violated |= bad;
            }
        }
        if violated {
            violations += 1;
        }
        rows.push(SloRow {
            name: obj.name.clone(),
            target: obj.to_text(),
            value,
            violated,
        });
    }
    SloSection {
        spec_text: spec.to_text(),
        rows,
        violations,
    }
}

/// Compressed-resident byte budget of the report's out-of-core phase:
/// small enough that the demo instances spill most sealed frames, nonzero
/// so the re-tiering logic (not just the all-spill edge) is exercised.
pub const OOCORE_BUDGET: usize = 1024;

/// Default chunk-cache capacity for both compressed-state phases when
/// the config leaves it unset. Cached chunks hold live amplitudes and
/// are never spillable, so this sits well below the default chunk count
/// — otherwise every chunk is cache-pinned and the out-of-core phase's
/// budget has nothing to evict.
pub const OOCORE_CACHE: usize = 2;

/// Runs all five phases and gathers the report.
pub fn collect(config: ReportConfig) -> Result<RunReport, CliError> {
    qcf_telemetry::flight::record("report.start");

    let scope = RunScope::enter();
    let qaoa = cli::qaoa_demo(config.nodes, config.seed, &config.compressor, config.bound)?;
    let (spans, metrics) = scope.finish();
    let qaoa_phase = PhaseRecord { spans, metrics };
    qcf_telemetry::flight::record("report.qaoa.done");

    let mut state_cfg = cli::StateRunCfg::new(
        config.nodes,
        config.seed,
        config.chunk_qubits.min(config.nodes),
        &config.compressor,
    );
    state_cfg.bound = config.bound;
    // Both compressed-state phases share this capacity. Under a lossy
    // bound the cache changes how many requant round trips each chunk
    // takes, so the oocore bit-equality check below is only meaningful
    // against a state phase with the identical cache — and it defaults
    // small because cached chunks never spill, so a cache covering
    // every chunk would leave the budget with nothing to evict.
    state_cfg.cache = Some(config.cache.unwrap_or(OOCORE_CACHE));

    let scope = RunScope::enter();
    let state = cli::state_demo(&state_cfg)?;
    let (spans, metrics) = scope.finish();
    let state_phase = PhaseRecord { spans, metrics };
    qcf_telemetry::flight::record("report.state.done");

    // Out-of-core phase: identical instance, budgeted. The async run is
    // the recorded phase; the synchronous fetch-on-miss run is the wall
    // clock A/B (its own scope, so its counters never bleed in).
    state_cfg.mem_budget = Some(OOCORE_BUDGET);
    let scope = RunScope::enter();
    let t0 = std::time::Instant::now();
    let oocore = cli::state_demo(&state_cfg)?;
    let oocore_async_s = t0.elapsed().as_secs_f64();
    let (spans, metrics) = scope.finish();
    let oocore_phase = PhaseRecord { spans, metrics };
    let scope = RunScope::enter();
    state_cfg.prefetch = false;
    let t0 = std::time::Instant::now();
    let oocore_sync = cli::state_demo(&state_cfg)?;
    let oocore_sync_s = t0.elapsed().as_secs_f64();
    let _ = scope.finish();
    // The disk tier is placement only: a budget must never move a bit.
    for (label, e) in [("async", oocore.energy), ("sync", oocore_sync.energy)] {
        if e.to_bits() != state.energy.to_bits() {
            return Err(CliError(format!(
                "out-of-core {label} run diverged from the in-RAM state phase: \
                 energy {e:?} vs {:?}",
                state.energy
            )));
        }
    }
    qcf_telemetry::flight::record("report.oocore.done");

    // Checkpoint/restore phase, still under the out-of-core budget so the
    // snapshot serializes spilled frames too (and prefetched again, so
    // the phase registry is judged by the same efficiency SLOs as the
    // oocore phase). A gate-0 snapshot seeds the run, `--from`-continue
    // to the midpoint commits over the same path (atomic replace), then
    // the run is finished twice from that snapshot — once scrubbed, once
    // plain — and both completions must land on the same bits: a
    // checkpoint (and a scrub) is a pause, not a perturbation.
    state_cfg.prefetch = true;
    let snap = std::env::temp_dir().join(format!("qcf-report-{}.qcfs", std::process::id()));
    let scope = RunScope::enter();
    let ckpt = (|| {
        let probe = cli::checkpoint_demo(&state_cfg, &snap, None, Some(0))?;
        cli::checkpoint_demo(&state_cfg, &snap, Some(&snap), Some(probe.total_gates / 2))
    })();
    let ckpt = match ckpt {
        Ok(c) => c,
        Err(e) => {
            let _ = std::fs::remove_file(&snap);
            return Err(e);
        }
    };
    let resume = cli::resume_demo(&snap, true, true, state_cfg.mem_budget);
    let resume_plain = cli::resume_demo(&snap, false, true, state_cfg.mem_budget);
    let _ = std::fs::remove_file(&snap);
    let (resume, resume_plain) = (resume?, resume_plain?);
    let (spans, metrics) = scope.finish();
    let ckpt_phase = PhaseRecord { spans, metrics };
    if !resume.ok() {
        return Err(CliError(
            "resumed snapshot failed its scrub: restored frames or ledger are unclean".into(),
        ));
    }
    if resume.energy.to_bits() != resume_plain.energy.to_bits() {
        return Err(CliError(format!(
            "scrubbed resume diverged from the plain resume: \
             energy {:?} vs {:?} — checkpoint/restore is not bit-transparent",
            resume.energy, resume_plain.energy
        )));
    }
    qcf_telemetry::flight::record("report.ckpt.done");

    let scope = RunScope::enter();
    let tensor = synthetic_tensor(1 << 14, 0.3, config.seed);
    let mut quality = Vec::new();
    for comp in cli::cli_lineup() {
        let r = round_trip(comp.as_ref(), &tensor.data, config.bound)
            .map_err(|e| CliError(format!("{} round trip: {e}", comp.name())))?;
        // Serial re-measurement for the multi-core speedup record: the
        // same round trip with the worker pool pinned to 1. Only the
        // paper's GPU-compressor targets carry the >=2x scaling gate.
        let serial = if matches!(r.name, "cuSZ" | "cuSZx") {
            let s = gpu_model::exec::with_serial_workers(|| {
                round_trip(comp.as_ref(), &tensor.data, config.bound)
            })
            .map_err(|e| CliError(format!("{} serial round trip: {e}", comp.name())))?;
            Some(s.host_compress_bps)
        } else {
            None
        };
        quality.push(QualityRow {
            name: r.name.to_string(),
            cr: r.quality.compression_ratio,
            max_abs_err: r.quality.max_abs_error,
            psnr_db: r.quality.psnr_db,
            gpu_compress_bps: r.gpu_compress_bps,
            gpu_decompress_bps: r.gpu_decompress_bps,
            host_compress_bps: r.host_compress_bps,
            host_compress_bps_serial: serial,
        });
    }
    let _ = scope.finish();
    qcf_telemetry::flight::record("report.quality.done");

    // SLO verdict over the compressed-state phases' final registries
    // (the qaoa and quality phases carry no state.* signals to judge).
    let slo = slo_eval(
        &SloSpec::active(),
        &[
            &state_phase.metrics,
            &oocore_phase.metrics,
            &ckpt_phase.metrics,
        ],
    );
    qcf_telemetry::flight::record("report.slo.done");

    Ok(RunReport {
        config,
        qaoa,
        qaoa_phase,
        state,
        state_phase,
        oocore,
        oocore_phase,
        oocore_async_s,
        oocore_sync_s,
        ckpt,
        resume,
        ckpt_phase,
        quality,
        slo,
    })
}

/// Rows of a metrics snapshot as a renderable table.
fn snapshot_table(title: &str, snap: &Snapshot) -> Table {
    let mut t = Table::new("metrics", title, &["metric", "value", "high water"]);
    for (name, value) in &snap.counters {
        t.row(vec![name.clone(), value.to_string(), String::new()]);
    }
    for (name, (value, high)) in &snap.gauges {
        t.row(vec![name.clone(), value.to_string(), high.to_string()]);
    }
    for (name, value) in &snap.float_gauges {
        t.row(vec![name.clone(), format!("{value:.6e}"), String::new()]);
    }
    for (name, h) in &snap.histograms {
        t.row(vec![
            name.clone(),
            format!("{} obs, mean {:.3e}", h.count, h.mean),
            if h.dropped > 0 {
                format!("{} dropped", h.dropped)
            } else {
                String::new()
            },
        ]);
    }
    t
}

/// p50/p95/p99 rows for every latency histogram (`*_us` metric) a phase
/// recorded, computed with the registry's bucket-bound quantile sketch.
/// `None` when the phase recorded no latency observations. Percentiles are
/// wall-clock noise, so they render here but never enter the baseline
/// [`RunReport::baseline`] diffs against.
fn latency_table(title: &str, snap: &Snapshot) -> Option<Table> {
    let mut t = Table::new("latency", title, &["histogram", "obs", "p50", "p95", "p99"]);
    let mut any = false;
    for (name, h) in &snap.histograms {
        if !name.ends_with("_us") || h.count == 0 {
            continue;
        }
        let top = crate::top::last_finite_bound(&h.buckets);
        let q = |q: f64| {
            crate::top::fmt_us(
                qcf_telemetry::metrics::quantile_from_buckets(&h.buckets, h.count, q),
                top,
            )
        };
        t.row(vec![
            name.clone(),
            h.count.to_string(),
            q(0.50),
            q(0.95),
            q(0.99),
        ]);
        any = true;
    }
    if !any {
        return None;
    }
    t.note("bucket upper bounds: each percentile is exact to within one histogram bucket");
    Some(t)
}

impl RunReport {
    /// Renders the whole run as one markdown document.
    pub fn to_markdown(&self) -> String {
        let c = &self.config;
        let mut out = String::new();
        let _ = writeln!(out, "# qcfz run report\n");
        let _ = writeln!(
            out,
            "- instance: {} nodes, seed {}, compressor {}, bound {:?}",
            c.nodes, c.seed, c.compressor, c.bound
        );
        let _ = writeln!(
            out,
            "- state phase: chunk qubits {}, cache {}\n",
            c.chunk_qubits,
            c.cache.unwrap_or(OOCORE_CACHE),
        );

        let _ = writeln!(out, "## QAOA contraction (compressed intermediates)\n");
        let q = &self.qaoa;
        let _ = writeln!(
            out,
            "energy {:.6} | {} intermediates compressed ({:.1}x) | peak live {} bytes | \
             {} lossy events, accumulated bound {:.3e} | {:.3} simulated ms\n",
            q.energy,
            q.tensors_compressed,
            q.ratio,
            q.peak_live_bytes,
            q.lossy_events,
            q.accumulated_bound,
            q.simulated_s * 1e3
        );
        let _ = writeln!(
            out,
            "```\n{}```\n",
            phase_table(&self.qaoa_phase.spans).render()
        );
        let _ = writeln!(
            out,
            "```\n{}```\n",
            snapshot_table("qaoa-phase registry", &self.qaoa_phase.metrics).render()
        );
        if let Some(t) = latency_table("qaoa-phase latency percentiles", &self.qaoa_phase.metrics) {
            let _ = writeln!(out, "```\n{}```\n", t.render());
        }

        let _ = writeln!(out, "## Compressed state (write-back cache + ledger)\n");
        let s = &self.state;
        let st = &s.stats;
        let touched = st.cache_hits + st.cache_misses;
        let _ = writeln!(
            out,
            "energy {:.6} | resident {} bytes (dense {}) | cache cap {}: {} hits / {} misses \
             ({:.0}% hit rate) | {} write-backs\n",
            s.energy,
            st.resident_bytes,
            s.dense_bytes,
            s.cache_capacity,
            st.cache_hits,
            st.cache_misses,
            if touched == 0 {
                0.0
            } else {
                100.0 * st.cache_hits as f64 / touched as f64
            },
            st.writebacks,
        );
        let l = &s.ledger;
        let mut lt = Table::new("ledger", "error-budget ledger", &["quantity", "value"]);
        lt.row(vec!["chunks".into(), l.chunks.to_string()]);
        lt.row(vec!["total encodes".into(), l.total_encodes.to_string()]);
        lt.row(vec!["total requants".into(), l.total_requants.to_string()]);
        lt.row(vec![
            "max requants / chunk".into(),
            l.max_requants.to_string(),
        ]);
        lt.row(vec![
            "max accumulated bound".into(),
            format!("{:.3e}", l.max_accumulated_bound),
        ]);
        lt.row(vec![
            "mean accumulated bound".into(),
            format!("{:.3e}", l.mean_accumulated_bound),
        ]);
        lt.row(vec![
            "state accumulated RSS".into(),
            format!("{:.3e}", l.accumulated_rss),
        ]);
        if l.max_measured_err > 0.0 {
            lt.row(vec![
                "max measured err".into(),
                format!("{:.3e}", l.max_measured_err),
            ]);
        }
        lt.note(if l.lossy {
            "lossy codec: every write-back is one requantization"
        } else {
            "lossless codec: zero accumulated error by construction"
        });
        let _ = writeln!(out, "```\n{}```\n", lt.render());
        let _ = writeln!(
            out,
            "```\n{}```\n",
            phase_table(&self.state_phase.spans).render()
        );
        let _ = writeln!(
            out,
            "```\n{}```\n",
            snapshot_table("state-phase registry", &self.state_phase.metrics).render()
        );
        if let Some(t) = latency_table("state-phase latency percentiles", &self.state_phase.metrics)
        {
            let _ = writeln!(out, "```\n{}```\n", t.render());
        }

        let _ = writeln!(
            out,
            "## Out-of-core tier (budget {} bytes, async prefetch)\n",
            OOCORE_BUDGET
        );
        let o = &self.oocore;
        let ost = &o.stats;
        let t = &o.tiers;
        let fetched = ost.prefetch_hits + ost.prefetch_misses;
        let _ = writeln!(
            out,
            "energy {:.6} (bit-identical to the in-RAM state phase) | \
             {} spills / {} fetches | {} bytes on disk across {} chunks at exit\n",
            o.energy, ost.spills, ost.fetches, t.spilled_bytes, t.spilled_chunks
        );
        let _ = writeln!(
            out,
            "prefetch: {} hits / {} misses ({:.0}% hit rate), {} µs total fetch stall\n",
            ost.prefetch_hits,
            ost.prefetch_misses,
            if fetched == 0 {
                0.0
            } else {
                100.0 * ost.prefetch_hits as f64 / fetched as f64
            },
            ost.prefetch_stall_us
        );
        let _ = writeln!(
            out,
            "- async (prefetched) wall {:.1} ms vs synchronous fetch-on-miss {:.1} ms \
             at the same budget (wall clock — informational, never gated)\n",
            self.oocore_async_s * 1e3,
            self.oocore_sync_s * 1e3
        );
        let _ = writeln!(
            out,
            "```\n{}```\n",
            snapshot_table("oocore-phase registry", &self.oocore_phase.metrics).render()
        );

        let _ = writeln!(out, "## Checkpoint & resume\n");
        let c = &self.ckpt;
        let r = &self.resume;
        let _ = writeln!(
            out,
            "snapshot committed at gate {}/{}: {} bytes (atomic temp → fsync → \
             rename, footer-checksummed), energy {:.6} at the barrier\n",
            c.gates_applied, c.total_gates, c.snapshot_bytes, c.energy
        );
        let _ = writeln!(
            out,
            "resumed and finished: energy {:.6}, {} requants, accumulated bound \
             max {:.3e} — scrub {}; the scrubbed and plain resumes \
             completed bit-identically\n",
            r.energy,
            r.ledger.total_requants,
            r.ledger.max_accumulated_bound,
            match &r.scrub {
                Some(rep) if rep.all_clean() => "clean".to_string(),
                Some(_) => "UNCLEAN".to_string(),
                None => "skipped".to_string(),
            }
        );
        let _ = writeln!(
            out,
            "```\n{}```\n",
            snapshot_table("ckpt-phase registry", &self.ckpt_phase.metrics).render()
        );

        let _ = writeln!(
            out,
            "## Compressor quality sweep (2^14 complex amplitudes)\n"
        );
        let mut qt = Table::new(
            "quality",
            "per-compressor round trip",
            &[
                "compressor",
                "CR",
                "max abs err",
                "PSNR dB",
                "GPU c GB/s",
                "GPU d GB/s",
            ],
        );
        for r in &self.quality {
            qt.row(vec![
                r.name.clone(),
                format!("{:.1}x", r.cr),
                format!("{:.1e}", r.max_abs_err),
                if r.psnr_db.is_finite() {
                    format!("{:.1}", r.psnr_db)
                } else {
                    "exact".into()
                },
                format!("{:.1}", r.gpu_compress_bps / 1e9),
                format!("{:.1}", r.gpu_decompress_bps / 1e9),
            ]);
        }
        let _ = writeln!(out, "```\n{}```\n", qt.render());

        let cores = detected_cores();
        for r in &self.quality {
            if let Some(serial) = r.host_compress_bps_serial {
                let speedup = r.host_compress_bps / serial.max(f64::MIN_POSITIVE);
                let _ = writeln!(
                    out,
                    "- {} multi-core speedup vs 1-worker serial: ~{speedup:.1}x \
                     ({cores}-core host{})",
                    r.name,
                    if (cores as f64) < 4.0 {
                        "; >=2x gate skipped below 4 cores"
                    } else {
                        ""
                    }
                );
            }
        }
        let _ = writeln!(out);

        let _ = writeln!(out, "## Service-level objectives\n");
        let mut st = Table::new(
            "slo",
            "end-of-run objective verdicts (state + out-of-core + ckpt phases)",
            &["objective", "reading", "target", "verdict"],
        );
        for r in &self.slo.rows {
            st.row(vec![
                r.name.clone(),
                match r.value {
                    Some(v) => format!("{v:.3e}"),
                    None => "no signal".into(),
                },
                r.target.clone(),
                if r.violated { "VIOLATED" } else { "ok" }.into(),
            ]);
        }
        st.note("levels judged on phase-final registries; burn-rate lifecycle lives in `qcfz slo`");
        let _ = writeln!(out, "```\n{}```\n", st.render());
        let _ = writeln!(
            out,
            "SLO verdict: {} — {} of {} objectives violated\n",
            if self.slo.violations == 0 {
                "PASS"
            } else {
                "FAIL"
            },
            self.slo.violations,
            self.slo.rows.len()
        );

        let arena = gpu_model::thread_arena_stats();
        let _ = writeln!(out, "## Workspace arena (reporting thread)\n");
        let _ = writeln!(
            out,
            "- bytes in use {} | high water {} | phase resets {} | chunks {}\n",
            arena.bytes_in_use, arena.high_water, arena.resets, arena.chunks
        );

        let frames = qcf_telemetry::flight::frames();
        if !frames.is_empty() {
            let _ = writeln!(out, "## Flight recorder\n");
            let _ = writeln!(
                out,
                "{} frames retained ({} overwritten):\n",
                frames.len(),
                qcf_telemetry::flight::overwritten()
            );
            for f in &frames {
                let _ = writeln!(out, "- t+{}µs `{}`", f.t_us, f.label);
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Wraps the markdown in one self-contained HTML page.
    pub fn to_html(&self) -> String {
        let md = self.to_markdown();
        let mut body = String::with_capacity(md.len() + 64);
        for ch in md.chars() {
            match ch {
                '&' => body.push_str("&amp;"),
                '<' => body.push_str("&lt;"),
                '>' => body.push_str("&gt;"),
                c => body.push(c),
            }
        }
        format!(
            "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\
             <title>qcfz run report</title>\
             <style>body{{font-family:monospace;max-width:100ch;margin:2em auto;\
             white-space:pre-wrap}}</style></head>\n\
             <body>{body}</body></html>\n"
        )
    }

    /// The run's stable scalars as flat `key → number` pairs — the baseline
    /// format `--baseline`/`--check` diff against. Deterministic quantities
    /// only get hard-checked ([`check`]); `*_bps` throughput keys are
    /// machine-dependent and soft by default, and `host.cores` is recorded
    /// so [`check`] can normalize them per core across hosts.
    pub fn baseline(&self) -> BTreeMap<String, f64> {
        let cores = detected_cores() as f64;
        let mut m = BTreeMap::new();
        m.insert("host.cores".into(), cores);
        m.insert("qaoa.energy".into(), self.qaoa.energy);
        m.insert("qaoa.ratio".into(), self.qaoa.ratio);
        m.insert(
            "qaoa.tensors_compressed".into(),
            self.qaoa.tensors_compressed as f64,
        );
        m.insert("qaoa.accumulated_bound".into(), self.qaoa.accumulated_bound);
        m.insert("state.energy".into(), self.state.energy);
        let l = &self.state.ledger;
        m.insert("state.requants.total".into(), l.total_requants as f64);
        m.insert("state.requants.max".into(), l.max_requants as f64);
        m.insert(
            "state.accumulated_bound.max".into(),
            l.max_accumulated_bound,
        );
        m.insert("state.accumulated_bound.rss".into(), l.accumulated_rss);
        m.insert(
            "state.cache.hits".into(),
            self.state.stats.cache_hits as f64,
        );
        // Out-of-core phase: energy falls under the hard drift rule (and
        // is bit-identical to state.energy by construction); the spill and
        // prefetch counts are deterministic functions of the touch
        // schedule, recorded for run-to-run visibility.
        m.insert("oocore.energy".into(), self.oocore.energy);
        m.insert(
            "oocore.spill.writes".into(),
            self.oocore.stats.spills as f64,
        );
        m.insert(
            "oocore.spill.reads".into(),
            self.oocore.stats.fetches as f64,
        );
        m.insert(
            "oocore.prefetch.hits".into(),
            self.oocore.stats.prefetch_hits as f64,
        );
        m.insert(
            "oocore.prefetch.misses".into(),
            self.oocore.stats.prefetch_misses as f64,
        );
        // Checkpoint/restore phase: the snapshot size and the resumed
        // run's completion are deterministic functions of the workload.
        // `ckpt.resume.energy` falls under the hard energy-drift rule and
        // the accumulated-bound key under the 5% error-growth rule.
        m.insert(
            "ckpt.snapshot_bytes".into(),
            self.ckpt.snapshot_bytes as f64,
        );
        m.insert("ckpt.gate".into(), self.ckpt.gates_applied as f64);
        m.insert("ckpt.resume.energy".into(), self.resume.energy);
        m.insert(
            "ckpt.resume.requants.total".into(),
            self.resume.ledger.total_requants as f64,
        );
        m.insert(
            "ckpt.resume.accumulated_bound.max".into(),
            self.resume.ledger.max_accumulated_bound,
        );
        // SLO verdict keys: a violation count above zero is a hard
        // regression in [`check`] even against baselines predating these
        // keys (the rule is absolute, not a diff).
        m.insert("slo.objectives".into(), self.slo.rows.len() as f64);
        m.insert("slo.violations".into(), self.slo.violations as f64);
        for r in &self.quality {
            m.insert(format!("quality.{}.cr", r.name), r.cr);
            m.insert(format!("quality.{}.max_abs_err", r.name), r.max_abs_err);
            m.insert(
                format!("quality.{}.host_compress_bps", r.name),
                r.host_compress_bps,
            );
            m.insert(
                format!("quality.{}.host_compress_bps_per_core", r.name),
                r.host_compress_bps / cores,
            );
            if let Some(serial) = r.host_compress_bps_serial {
                m.insert(
                    format!("quality.{}.multicore_speedup", r.name),
                    r.host_compress_bps / serial.max(f64::MIN_POSITIVE),
                );
            }
        }
        m
    }
}

/// Renders a flat baseline map as JSON (sorted keys, one pair per line).
pub fn baseline_json(m: &BTreeMap<String, f64>) -> String {
    let mut out = String::from("{\n");
    for (i, (k, v)) in m.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let _ = write!(out, "  {}: {}", crate::report::json_str(k), fmt_num(*v));
    }
    out.push_str("\n}\n");
    out
}

fn fmt_num(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:e}")
    }
}

/// Parses the flat `{"key": number, …}` baseline format back into a map.
/// Deliberately tiny: exactly the shape [`baseline_json`] emits (string
/// keys, numeric values, no nesting).
pub fn parse_baseline(doc: &str) -> Result<BTreeMap<String, f64>, CliError> {
    let bad = |what: &str| CliError(format!("baseline parse error: {what}"));
    let mut m = BTreeMap::new();
    let body = doc.trim();
    let body = body
        .strip_prefix('{')
        .and_then(|b| b.strip_suffix('}'))
        .ok_or_else(|| bad("expected one top-level object"))?;
    // Split on commas; keys are quoted strings without embedded commas or
    // quotes (every key baseline_json writes satisfies this).
    for pair in body.split(',') {
        let pair = pair.trim();
        if pair.is_empty() {
            continue;
        }
        let (k, v) = pair
            .split_once(':')
            .ok_or_else(|| bad("expected \"key\": value"))?;
        let k = k
            .trim()
            .strip_prefix('"')
            .and_then(|k| k.strip_suffix('"'))
            .ok_or_else(|| bad("unquoted key"))?;
        let v: f64 = v
            .trim()
            .parse()
            .map_err(|_| bad(&format!("bad number for {k}")))?;
        m.insert(k.to_string(), v);
    }
    if m.is_empty() {
        return Err(bad("no entries"));
    }
    Ok(m)
}

/// Result of diffing a run against a baseline.
#[derive(Debug, Clone, Default)]
pub struct CheckResult {
    /// Hard regressions — CI fails on any.
    pub regressions: Vec<String>,
    /// Soft findings (throughput on a possibly-loaded host, missing keys).
    pub warnings: Vec<String>,
    /// Ranked movement attribution (`--diff` only): which baseline keys
    /// moved most, and which SLO dimension each endangers.
    pub attribution: Vec<String>,
}

impl CheckResult {
    /// True when no hard regression was found.
    pub fn ok(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Tolerated relative CR loss before a regression is declared.
const CR_TOLERANCE: f64 = 0.05;
/// Tolerated relative accumulated-bound growth.
const BOUND_TOLERANCE: f64 = 0.05;
/// Tolerated relative throughput loss (soft unless `strict_throughput`).
const BPS_TOLERANCE: f64 = 0.5;

/// Multi-core throughput must be at least this multiple of the serial
/// (1-worker) figure on hosts where the gate is live.
const SPEEDUP_TARGET: f64 = 2.0;
/// The speedup gate only binds on hosts with at least this many cores —
/// on fewer, threads time-slice the same silicon and a wall-clock speedup
/// is impossible by construction, so the figure is recorded, not gated.
const SPEEDUP_MIN_CORES: f64 = 4.0;

/// Diffs `current` against `stored`. Hard regressions: any `*.cr` drop
/// beyond 5%, any requant-count increase, accumulated-bound growth beyond
/// 5%, max-abs-err growth beyond 5%, or energy drift beyond first-order
/// noise. Throughput (`*_bps`) losses beyond 50% are warnings, upgraded to
/// regressions under `strict_throughput`; before comparing, each side is
/// normalized by its own recorded `host.cores` so a baseline captured on a
/// big machine doesn't fail every smaller host (`*_bps_per_core` keys are
/// stored pre-normalized and compared as-is).
///
/// Additionally, `quality.*.multicore_speedup` records in `current` are
/// gated absolutely: on a >=4-core host a speedup below 2x is a hard
/// regression; on smaller hosts the figure is reported as a warning note
/// (honestly ~1x there) and the gate is skipped.
pub fn check(
    current: &BTreeMap<String, f64>,
    stored: &BTreeMap<String, f64>,
    strict_throughput: bool,
) -> CheckResult {
    let mut res = CheckResult::default();
    let cores_now = current.get("host.cores").copied().unwrap_or(1.0).max(1.0);
    let cores_base = stored.get("host.cores").copied().unwrap_or(1.0).max(1.0);
    for (key, &base) in stored {
        if key == "host.cores" {
            continue; // context for normalization, not a checked quantity
        }
        if key.starts_with("slo.") {
            // Judged by the absolute rule below, not by drift vs baseline
            // (a baseline captured with violations must not grandfather
            // them in).
            continue;
        }
        let Some(&now) = current.get(key) else {
            res.warnings
                .push(format!("{key}: in baseline but missing from this run"));
            continue;
        };
        if key.ends_with(".cr") || key == "qaoa.ratio" {
            if now < base * (1.0 - CR_TOLERANCE) {
                res.regressions.push(format!(
                    "{key}: compression ratio fell {:.1}x -> {:.1}x",
                    base, now
                ));
            }
        } else if key.starts_with("state.requants") {
            if now > base {
                res.regressions.push(format!(
                    "{key}: requant count grew {} -> {} (cache or ledger regression)",
                    base as u64, now as u64
                ));
            }
        } else if key.contains("accumulated_bound") || key.ends_with(".max_abs_err") {
            if now > base * (1.0 + BOUND_TOLERANCE) + f64::MIN_POSITIVE {
                res.regressions
                    .push(format!("{key}: error grew {base:.3e} -> {now:.3e}"));
            }
        } else if key.ends_with(".energy") {
            let tol = 1e-6 + 1e-3 * base.abs();
            if (now - base).abs() > tol {
                res.regressions
                    .push(format!("{key}: energy drifted {base:.6} -> {now:.6}"));
            }
        } else if key.ends_with("_bps") || key.ends_with("_bps_per_core") {
            // Compare per-core figures: `_bps_per_core` keys already are,
            // raw `_bps` keys divide by their own side's recorded cores.
            let (base_pc, now_pc) = if key.ends_with("_bps_per_core") {
                (base, now)
            } else {
                (base / cores_base, now / cores_now)
            };
            if now_pc < base_pc * (1.0 - BPS_TOLERANCE) {
                let msg = format!(
                    "{key}: per-core throughput fell {:.2} -> {:.2} GB/s",
                    base_pc / 1e9,
                    now_pc / 1e9
                );
                if strict_throughput {
                    res.regressions.push(msg);
                } else {
                    res.warnings.push(msg);
                }
            }
        }
        // Remaining keys (counts, cache hits) are informational.
    }
    // Absolute multi-core scaling gate on the current run: the paper's
    // >=2x cuSZ/cuSZx target, enforced only where a speedup is physically
    // possible and recorded honestly where it is not.
    for (key, &speedup) in current
        .iter()
        .filter(|(k, _)| k.starts_with("quality.") && k.ends_with(".multicore_speedup"))
    {
        if cores_now >= SPEEDUP_MIN_CORES {
            if speedup < SPEEDUP_TARGET {
                res.regressions.push(format!(
                    "{key}: multi-core speedup {speedup:.2}x below the \
                     {SPEEDUP_TARGET:.0}x target on a {cores_now:.0}-core host"
                ));
            }
        } else {
            res.warnings.push(format!(
                "{key}: ~{speedup:.1}x ({cores_now:.0}-core host) — \
                 multi-core >={SPEEDUP_TARGET:.0}x gate skipped"
            ));
        }
    }
    // Absolute SLO verdict: any end-of-run objective violation is a hard
    // regression, including against baselines that predate the slo.* keys
    // (so an old stored baseline cannot wave a violating run through).
    if let Some(&v) = current.get("slo.violations") {
        if v > 0.0 {
            res.regressions.push(format!(
                "slo.violations: {} objective(s) violated at end of run \
                 (see the report's SLO section)",
                v as u64
            ));
        }
    }
    res
}

/// Maps a baseline key onto the SLO dimension its movement endangers.
fn slo_dimension(key: &str) -> &'static str {
    if key.contains("requant")
        || key.contains("quarantine")
        || key.contains("bound")
        || key.contains("err")
        || key.ends_with(".energy")
    {
        "fidelity"
    } else if key.contains("_bps") || key.contains("speedup") || key.contains("stall") {
        "latency"
    } else if key.ends_with(".cr")
        || key.contains("ratio")
        || key.contains("cache")
        || key.contains("prefetch")
        || key.contains("hit")
    {
        "efficiency"
    } else if key.contains("bytes") || key.contains("resident") || key.contains("spill") {
        "capacity"
    } else {
        "none"
    }
}

/// How many attribution lines `--diff` prints.
const ATTRIBUTION_TOP: usize = 10;

/// Ranked regression attribution for `qcfz report --diff`: every key
/// present on both sides, ordered by relative movement, annotated with
/// the SLO dimension it endangers. Keys that did not move are dropped;
/// the list is truncated to the [`ATTRIBUTION_TOP`] largest movers (the
/// tail is summarized, never silently cut).
pub fn diff_attribution(
    current: &BTreeMap<String, f64>,
    stored: &BTreeMap<String, f64>,
) -> Vec<String> {
    let mut moved: Vec<(f64, String)> = Vec::new();
    for (key, &base) in stored {
        if key == "host.cores" {
            continue;
        }
        let Some(&now) = current.get(key) else {
            continue;
        };
        let rel = (now - base) / base.abs().max(f64::MIN_POSITIVE);
        if rel.abs() < 1e-9 {
            continue;
        }
        let dim = match slo_dimension(key) {
            "none" => "no mapped SLO dimension".to_string(),
            d => format!("endangers {d} SLOs"),
        };
        moved.push((
            rel.abs(),
            format!(
                "{key}: {base:.4e} -> {now:.4e} ({:+.1}% — {dim})",
                rel * 100.0
            ),
        ));
    }
    moved.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
    let total = moved.len();
    let mut lines: Vec<String> = moved
        .into_iter()
        .take(ATTRIBUTION_TOP)
        .map(|(_, l)| l)
        .collect();
    if total > ATTRIBUTION_TOP {
        lines.push(format!(
            "... and {} smaller movements not shown",
            total - ATTRIBUTION_TOP
        ));
    }
    lines
}

/// The `qcfz report` subcommand body: collect, render to `out` (`.html`
/// switches format), optionally save the baseline JSON, optionally check
/// against a stored baseline. With `attribute` (the `--diff` path) the
/// result also carries the ranked movement attribution. Returns the
/// hard-regression list (empty when clean) so the caller can choose the
/// exit code.
pub fn run(
    config: ReportConfig,
    out: &Path,
    save_json: Option<&Path>,
    baseline: Option<&Path>,
    strict_throughput: bool,
    attribute: bool,
) -> Result<CheckResult, CliError> {
    let report = collect(config)?;
    let doc = if out.extension().is_some_and(|e| e == "html") {
        report.to_html()
    } else {
        report.to_markdown()
    };
    std::fs::write(out, doc)?;
    let current = report.baseline();
    if let Some(path) = save_json {
        std::fs::write(path, baseline_json(&current))?;
    }
    let result = match baseline {
        Some(path) => {
            let stored = parse_baseline(&std::fs::read_to_string(path)?)?;
            let mut res = check(&current, &stored, strict_throughput);
            if attribute {
                res.attribution = diff_attribution(&current, &stored);
            }
            res
        }
        None => CheckResult::default(),
    };
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `collect` drains the process-global registry per phase; concurrent
    /// collects would drain each other's counters mid-phase.
    fn collect_serially(config: ReportConfig) -> Result<RunReport, CliError> {
        let _g = crate::telemetry_test_lock();
        qcf_telemetry::set_enabled(true);
        collect(config)
    }

    fn small_config() -> ReportConfig {
        ReportConfig {
            nodes: 8,
            seed: 5,
            compressor: "cuSZx".into(),
            bound: ErrorBound::Abs(1e-6),
            chunk_qubits: 4,
            cache: Some(4),
        }
    }

    #[test]
    fn report_collects_all_sections() {
        let r = collect_serially(small_config()).unwrap();
        assert!(r.qaoa.tensors_compressed > 0);
        assert!(
            r.state.ledger.total_requants > 0,
            "4-slot cache over 16 chunks must requant"
        );
        assert!(!r.quality.is_empty());
        // Phase isolation: the qaoa phase must not carry state.cache counters.
        // (`miss`, not `hit`: 16 chunks cycled through a 4-slot LRU is the
        // sequential-thrash worst case, so hits can legitimately be zero.)
        assert!(
            !r.qaoa_phase
                .metrics
                .counters
                .contains_key("state.cache.miss")
                || r.qaoa_phase.metrics.counters["state.cache.miss"] == 0,
            "state-phase counters bled into the qaoa phase"
        );
        assert!(
            r.state_phase
                .metrics
                .counters
                .get("state.cache.miss")
                .copied()
                .unwrap_or(0)
                > 0,
            "state phase must record its own cache counters"
        );

        // Out-of-core phase: the 1 KiB budget must force real spilling on
        // this instance, with the prefetcher covering most fetches, while
        // landing on exactly the in-RAM bits (collect hard-errors if not).
        assert!(r.oocore.stats.spills > 0, "oocore phase never spilled");
        assert!(r.oocore.stats.fetches > 0);
        assert_eq!(r.oocore.energy.to_bits(), r.state.energy.to_bits());
        assert!(
            r.oocore_phase
                .metrics
                .counters
                .get("state.spill.writes")
                .copied()
                .unwrap_or(0)
                > 0,
            "oocore phase must record its own spill counters"
        );

        let md = r.to_markdown();
        for needle in [
            "# qcfz run report",
            "QAOA contraction",
            "error-budget ledger",
            "total requants",
            "per-compressor round trip",
            "state phase",
            "state-phase latency percentiles",
            "state.apply_us",
            "Out-of-core tier",
            "hit rate",
            "synchronous fetch-on-miss",
            "Service-level objectives",
            "SLO verdict: PASS",
        ] {
            assert!(md.contains(needle), "markdown missing {needle:?}");
        }
        let html = r.to_html();
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("error-budget ledger"));
    }

    #[test]
    fn latency_table_renders_percentiles_and_skips_empty_phases() {
        use qcf_telemetry::metrics::HistogramSnapshot;

        let empty = Snapshot::default();
        assert!(latency_table("t", &empty).is_none());

        let mut snap = Snapshot::default();
        // 90 obs ≤100µs, 10 in the implicit overflow bucket: p50 = 100µs
        // bucket bound, p99 = ∞ (rendered as "> last finite bound").
        snap.histograms.insert(
            "state.apply_us".into(),
            HistogramSnapshot {
                count: 100,
                dropped: 0,
                sum: 9000.0,
                mean: 90.0,
                buckets: vec![(100.0, 90), (250.0, 0), (f64::INFINITY, 10)],
            },
        );
        // Non-latency histograms and zero-count latency histograms are
        // excluded from the table.
        snap.histograms.insert(
            "state.ledger.event_abs_bound".into(),
            HistogramSnapshot {
                count: 3,
                buckets: vec![(1.0, 3)],
                ..Default::default()
            },
        );
        snap.histograms
            .insert("state.encode_us".into(), HistogramSnapshot::default());

        let rendered = latency_table("state latency", &snap).unwrap().render();
        assert!(rendered.contains("state.apply_us"), "{rendered}");
        assert!(rendered.contains("100µs"), "p50 bound missing: {rendered}");
        assert!(
            rendered.contains(">250µs"),
            "overflow p99 missing: {rendered}"
        );
        assert!(!rendered.contains("event_abs_bound"), "{rendered}");
        assert!(!rendered.contains("state.encode_us"), "{rendered}");
    }

    #[test]
    fn baseline_roundtrips_through_json() {
        let r = collect_serially(small_config()).unwrap();
        let b = r.baseline();
        assert!(b.contains_key("state.requants.total"));
        assert!(b.contains_key("qaoa.energy"));
        assert!(b.contains_key("oocore.energy"));
        assert!(b.contains_key("oocore.spill.writes"));
        assert!(b.contains_key("oocore.prefetch.hits"));
        assert!(b.contains_key("slo.objectives"));
        assert_eq!(
            b["slo.violations"], 0.0,
            "a clean demo run must not violate the default SLOs"
        );
        assert_eq!(b["oocore.energy"].to_bits(), b["state.energy"].to_bits());
        assert!(b
            .keys()
            .any(|k| k.starts_with("quality.") && k.ends_with(".cr")));
        let parsed = parse_baseline(&baseline_json(&b)).unwrap();
        assert_eq!(parsed.len(), b.len());
        for (k, v) in &b {
            let p = parsed[k];
            assert!(
                (p - v).abs() <= v.abs() * 1e-12,
                "{k}: {v} re-parsed as {p}"
            );
        }
    }

    #[test]
    fn same_run_checks_clean_against_itself() {
        let r = collect_serially(small_config()).unwrap();
        let mut b = r.baseline();
        // Pin the host below the speedup gate so the self-check is about
        // the diff rules, not this machine's actual scaling.
        b.insert("host.cores".into(), 1.0);
        let res = check(&b, &b, true);
        assert!(res.ok(), "self-check regressions: {:?}", res.regressions);
        // The only admissible warnings are the honest "gate skipped"
        // speedup notes a small host always emits.
        assert!(
            res.warnings.iter().all(|w| w.contains("gate skipped")),
            "unexpected warnings: {:?}",
            res.warnings
        );
    }

    #[test]
    fn speedup_gate_binds_only_on_multicore_hosts() {
        let mut cur: BTreeMap<String, f64> = BTreeMap::new();
        cur.insert("host.cores".into(), 8.0);
        cur.insert("quality.cuSZ.multicore_speedup".into(), 1.3);
        let base = cur.clone();

        // 8-core host below target: hard regression even in lax mode.
        let res = check(&cur, &base, false);
        assert_eq!(res.regressions.len(), 1, "{:?}", res.regressions);
        assert!(res.regressions[0].contains("multicore_speedup"));

        // Same figure on a 1-core host: recorded as a warning, not gated.
        cur.insert("host.cores".into(), 1.0);
        let res = check(&cur, &base, false);
        assert!(res.ok(), "{:?}", res.regressions);
        assert_eq!(res.warnings.len(), 1);
        assert!(res.warnings[0].contains("gate skipped"));

        // Meeting the target on a big host is clean.
        cur.insert("host.cores".into(), 8.0);
        cur.insert("quality.cuSZ.multicore_speedup".into(), 2.4);
        let res = check(&cur, &base, true);
        assert!(res.ok(), "{:?}", res.regressions);
        assert!(res.warnings.is_empty(), "{:?}", res.warnings);
    }

    #[test]
    fn throughput_rule_normalizes_by_recorded_cores() {
        // Baseline captured on a 4-core box at 8 GB/s total (2 GB/s per
        // core); current host is 1-core at 2.5 GB/s. Raw comparison would
        // scream (2.5 < 8·0.5); per-core it is an improvement.
        let mut base: BTreeMap<String, f64> = BTreeMap::new();
        base.insert("host.cores".into(), 4.0);
        base.insert("quality.cuSZ.host_compress_bps".into(), 8e9);
        let mut cur: BTreeMap<String, f64> = BTreeMap::new();
        cur.insert("host.cores".into(), 1.0);
        cur.insert("quality.cuSZ.host_compress_bps".into(), 2.5e9);
        let res = check(&cur, &base, true);
        assert!(res.ok(), "{:?}", res.regressions);
        assert!(res.warnings.is_empty(), "{:?}", res.warnings);

        // A genuine per-core collapse still fires under strict mode, and
        // pre-normalized *_bps_per_core keys are compared as-is.
        cur.insert("quality.cuSZ.host_compress_bps".into(), 0.5e9);
        base.insert("quality.cuSZ.host_compress_bps_per_core".into(), 2e9);
        cur.insert("quality.cuSZ.host_compress_bps_per_core".into(), 0.5e9);
        let res = check(&cur, &base, true);
        assert_eq!(res.regressions.len(), 2, "{:?}", res.regressions);
    }

    #[test]
    fn injected_regressions_are_caught() {
        let mut base: BTreeMap<String, f64> = BTreeMap::new();
        base.insert("quality.cuSZ.cr".into(), 10.0);
        base.insert("state.requants.total".into(), 5.0);
        base.insert("state.accumulated_bound.rss".into(), 1e-6);
        base.insert("qaoa.energy".into(), 11.5);
        base.insert("quality.cuSZ.host_compress_bps".into(), 8e9);

        let mut cur = base.clone();
        cur.insert("quality.cuSZ.cr".into(), 8.0); // CR fell 20%
        cur.insert("state.requants.total".into(), 9.0); // requants grew
        cur.insert("state.accumulated_bound.rss".into(), 2e-6); // bound doubled
        cur.insert("qaoa.energy".into(), 11.8); // energy drifted
        cur.insert("quality.cuSZ.host_compress_bps".into(), 1e9); // throughput fell

        let lax = check(&cur, &base, false);
        assert_eq!(lax.regressions.len(), 4, "{:?}", lax.regressions);
        assert_eq!(lax.warnings.len(), 1, "{:?}", lax.warnings);
        let strict = check(&cur, &base, true);
        assert_eq!(strict.regressions.len(), 5);

        // Small wobble within tolerance stays clean.
        let mut ok = base.clone();
        ok.insert("quality.cuSZ.cr".into(), 9.8);
        ok.insert("quality.cuSZ.host_compress_bps".into(), 7e9);
        assert!(check(&ok, &base, true).ok());
    }

    #[test]
    fn parse_baseline_rejects_garbage() {
        assert!(parse_baseline("").is_err());
        assert!(parse_baseline("[1,2]").is_err());
        assert!(parse_baseline("{\"k\": \"not a number\"}").is_err());
        assert!(parse_baseline("{}").is_err());
        let m = parse_baseline("{\"a\": 1, \"b\": 2.5e-3}").unwrap();
        assert_eq!(m["a"], 1.0);
        assert_eq!(m["b"], 2.5e-3);
    }

    #[test]
    fn slo_violations_gate_is_absolute_not_drift_relative() {
        // A violating baseline must not grandfather violations in: the
        // current side fails on its own count even when the stored side
        // carries the same (or no) slo.* keys.
        let mut base: BTreeMap<String, f64> = BTreeMap::new();
        base.insert("qaoa.energy".into(), 11.5);
        let mut cur = base.clone();
        cur.insert("slo.violations".into(), 2.0);
        cur.insert("slo.objectives".into(), 6.0);
        let res = check(&cur, &base, false);
        assert_eq!(res.regressions.len(), 1, "{:?}", res.regressions);
        assert!(res.regressions[0].contains("2 objective(s) violated"));

        // Same violating figure on both sides still fails — drift-skip for
        // slo.* keys means the absolute rule is the only judge.
        base.insert("slo.violations".into(), 2.0);
        base.insert("slo.objectives".into(), 6.0);
        assert!(!check(&cur, &base, false).ok());

        // Zero violations are clean regardless of the baseline.
        cur.insert("slo.violations".into(), 0.0);
        assert!(check(&cur, &base, false).ok());
    }

    #[test]
    fn slo_dimension_maps_keys_to_objective_families() {
        assert_eq!(slo_dimension("state.requants.total"), "fidelity");
        assert_eq!(slo_dimension("state.accumulated_bound.rss"), "fidelity");
        assert_eq!(slo_dimension("qaoa.energy"), "fidelity");
        assert_eq!(slo_dimension("quality.cuSZ.host_compress_bps"), "latency");
        assert_eq!(slo_dimension("quality.cuSZ.cr"), "efficiency");
        assert_eq!(slo_dimension("oocore.prefetch.hits"), "efficiency");
        assert_eq!(slo_dimension("oocore.spill.writes"), "capacity");
        assert_eq!(slo_dimension("host.cores"), "none");
    }

    #[test]
    fn diff_attribution_ranks_movers_and_summarizes_the_tail() {
        let mut base: BTreeMap<String, f64> = BTreeMap::new();
        let mut cur: BTreeMap<String, f64> = BTreeMap::new();
        base.insert("quality.cuSZ.cr".into(), 10.0);
        cur.insert("quality.cuSZ.cr".into(), 5.0); // -50%, biggest mover
        base.insert("qaoa.energy".into(), 10.0);
        cur.insert("qaoa.energy".into(), 11.0); // +10%
        base.insert("state.requants.total".into(), 4.0);
        cur.insert("state.requants.total".into(), 4.0); // unchanged: dropped
        base.insert("host.cores".into(), 4.0);
        cur.insert("host.cores".into(), 128.0); // host fact: never attributed
        base.insert("only.in.baseline".into(), 1.0); // one-sided: dropped

        let lines = diff_attribution(&cur, &base);
        assert_eq!(lines.len(), 2, "{lines:?}");
        assert!(lines[0].contains("quality.cuSZ.cr"), "{lines:?}");
        assert!(lines[0].contains("-50.0%"), "{lines:?}");
        assert!(lines[0].contains("efficiency"), "{lines:?}");
        assert!(lines[1].contains("qaoa.energy"), "{lines:?}");
        assert!(lines[1].contains("fidelity"), "{lines:?}");

        // Overflow past the cap is summarized, never silently cut.
        for i in 0..(ATTRIBUTION_TOP + 3) {
            base.insert(format!("quality.k{i}.cr"), 1.0);
            cur.insert(format!("quality.k{i}.cr"), 1.0 + 0.01 * (i + 1) as f64);
        }
        let lines = diff_attribution(&cur, &base);
        assert_eq!(lines.len(), ATTRIBUTION_TOP + 1, "{lines:?}");
        assert!(
            lines
                .last()
                .unwrap()
                .contains("smaller movements not shown"),
            "{lines:?}"
        );
    }

    #[test]
    fn slo_eval_judges_phase_final_registries() {
        use qcf_telemetry::slo::{Expr, Objective, Op, SloSpec};

        let mut spec = SloSpec::defaults();
        spec.objectives = vec![
            Objective {
                name: "fidelity.quarantine".into(),
                expr: Expr::Level("state.ledger.quarantines".into()),
                op: Op::Le,
                threshold: 0.0,
            },
            Objective {
                name: "capacity.resident".into(),
                expr: Expr::Level("state.resident_bytes".into()),
                op: Op::Le,
                threshold: 100.0,
            },
        ];
        let mut clean = Snapshot::default();
        clean
            .gauges
            .insert("state.ledger.quarantines".into(), (0, 0));
        clean.gauges.insert("state.resident_bytes".into(), (64, 64));
        let mut hot = clean.clone();
        hot.gauges
            .insert("state.resident_bytes".into(), (4096, 4096));

        let section = slo_eval(&spec, &[&clean]);
        assert_eq!(section.violations, 0);
        assert_eq!(section.rows.len(), 2);

        // The worst phase reading is the one reported.
        let section = slo_eval(&spec, &[&clean, &hot]);
        assert_eq!(section.violations, 1, "{:?}", section.rows);
        let row = section
            .rows
            .iter()
            .find(|r| r.name == "capacity.resident")
            .unwrap();
        assert!(row.violated);
        assert_eq!(row.value, Some(4096.0));
    }
}
