//! `qcfz` — a file-level compression utility over the whole compressor
//! suite (the downstream-user face of the framework).
//!
//! Files are treated as little-endian `f64` streams (the layout QTensor
//! tensors serialize to). Compressed files are the compressors' own
//! self-describing streams, so `decompress`/`info` need no side channel.

use compressors::{all_compressors, by_name, Compressor, ErrorBound};
use gpu_model::{DeviceSpec, Stream};
use qcf_core::QcfCompressor;
use qcf_telemetry::StreamLane;
use qcircuit::{qaoa_circuit, Graph, QaoaParams};
use qtensor::compressed::CompressingHook;
use qtensor::{CompressedState, Simulator, StateStats};
use std::path::Path;

/// CLI-level errors with user-facing messages.
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError(format!("io error: {e}"))
    }
}

/// The full lineup addressable by name (baselines + framework modes).
pub fn cli_lineup() -> Vec<Box<dyn Compressor>> {
    let mut comps = all_compressors();
    comps.push(Box::new(QcfCompressor::ratio()));
    comps.push(Box::new(QcfCompressor::speed()));
    comps
}

/// Looks up a compressor by display name across the full lineup.
pub fn cli_by_name(name: &str) -> Option<Box<dyn Compressor>> {
    if name.eq_ignore_ascii_case("qcf-ratio") {
        return Some(Box::new(QcfCompressor::ratio()));
    }
    if name.eq_ignore_ascii_case("qcf-speed") {
        return Some(Box::new(QcfCompressor::speed()));
    }
    by_name(name)
}

fn read_f64_file(path: &Path) -> Result<Vec<f64>, CliError> {
    let bytes = std::fs::read(path)?;
    if bytes.len() % 8 != 0 {
        return Err(CliError(format!(
            "{} is {} bytes — not a whole number of f64 values",
            path.display(),
            bytes.len()
        )));
    }
    Ok(bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
        .collect())
}

/// Result summary of a compression run.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressSummary {
    /// Input values.
    pub n_values: usize,
    /// Output bytes.
    pub compressed_bytes: usize,
    /// Input / output size.
    pub ratio: f64,
    /// Simulated A100 compression seconds.
    pub simulated_s: f64,
}

/// Compresses `input` (raw little-endian f64) into `output`.
pub fn compress_file(
    input: &Path,
    output: &Path,
    compressor: &str,
    bound: ErrorBound,
) -> Result<CompressSummary, CliError> {
    compress_file_on(
        input,
        output,
        compressor,
        bound,
        &Stream::new(DeviceSpec::a100()),
    )
}

/// [`compress_file`] on a caller-owned stream, so the caller can export
/// the stream's kernel events afterwards (`--trace`).
pub fn compress_file_on(
    input: &Path,
    output: &Path,
    compressor: &str,
    bound: ErrorBound,
    stream: &Stream,
) -> Result<CompressSummary, CliError> {
    let comp = cli_by_name(compressor).ok_or_else(|| {
        CliError(format!(
            "unknown compressor '{compressor}' (try `qcfz list`)"
        ))
    })?;
    let data = read_f64_file(input)?;
    let bytes = comp
        .compress(&data, bound, stream)
        .map_err(|e| CliError(format!("{}: {e}", comp.name())))?;
    std::fs::write(output, &bytes)?;
    Ok(CompressSummary {
        n_values: data.len(),
        compressed_bytes: bytes.len(),
        ratio: (data.len() * 8) as f64 / bytes.len().max(1) as f64,
        simulated_s: stream.elapsed_s(),
    })
}

/// Decompresses a `qcfz` stream back to raw little-endian f64.
pub fn decompress_file(input: &Path, output: &Path) -> Result<usize, CliError> {
    decompress_file_on(input, output, &Stream::new(DeviceSpec::a100()))
}

/// [`decompress_file`] on a caller-owned stream (see [`compress_file_on`]).
pub fn decompress_file_on(input: &Path, output: &Path, stream: &Stream) -> Result<usize, CliError> {
    let bytes = std::fs::read(input)?;
    let values = compressed_values(&bytes, stream)?;
    let mut out = Vec::with_capacity(values.len() * 8);
    for v in &values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    std::fs::write(output, &out)?;
    Ok(values.len())
}

/// Dispatches decompression on the stream's id byte across the full lineup.
/// The id survives sealing (the frame flag is the high bit), so framed and
/// legacy streams dispatch identically; the codec itself verifies the frame.
fn compressed_values(bytes: &[u8], stream: &Stream) -> Result<Vec<f64>, CliError> {
    let id = codec_kit::frame::stream_id(bytes).map_err(|_| CliError("empty file".into()))?;
    let comp = cli_lineup()
        .into_iter()
        .find(|c| c.id() == id)
        .ok_or_else(|| CliError(format!("unknown stream id {id}")))?;
    comp.decompress(bytes, stream)
        .map_err(|e| CliError(format!("{}: {e}", comp.name())))
}

/// Human-readable info about a compressed file.
pub fn info(input: &Path) -> Result<String, CliError> {
    let bytes = std::fs::read(input)?;
    let id = codec_kit::frame::stream_id(&bytes).map_err(|_| CliError("empty file".into()))?;
    let comp = cli_lineup()
        .into_iter()
        .find(|c| c.id() == id)
        .ok_or_else(|| CliError(format!("unknown stream id {id}")))?;
    // Frame first: a sealed stream's header lives inside the payload, and
    // unsealing also validates length + checksum (cheap integrity report).
    let framed = codec_kit::frame::is_framed(&bytes);
    let payload =
        codec_kit::frame::unseal(&bytes).map_err(|e| CliError(format!("corrupt frame: {e}")))?;
    let mut pos = 1usize;
    let n = codec_kit::varint::read_uvarint(payload, &mut pos)
        .map_err(|e| CliError(format!("corrupt header: {e}")))?;
    Ok(format!(
        "{}: {} values, {} bytes compressed ({:.1}x), {}",
        comp.name(),
        n,
        bytes.len(),
        (n as f64 * 8.0) / bytes.len() as f64,
        if framed {
            "sealed v2 frame (checksum verified)"
        } else {
            "legacy v1 stream (no integrity frame)"
        }
    ))
}

/// Scrubs a compressed file: frame + checksum validation, then a full
/// decode. Returns a human-readable verdict line; any corruption is a
/// `CliError` (the `qcfz verify <file>` exit-code contract).
pub fn verify_file(input: &Path) -> Result<String, CliError> {
    let bytes = std::fs::read(input)?;
    let framed = codec_kit::frame::is_framed(&bytes);
    codec_kit::frame::unseal(&bytes).map_err(|e| CliError(format!("corrupt frame: {e}")))?;
    let stream = Stream::new(DeviceSpec::a100());
    let values = compressed_values(&bytes, &stream)?;
    Ok(format!(
        "{}: OK — {} values decoded, {}",
        input.display(),
        values.len(),
        if framed {
            "v2 frame checksum verified"
        } else {
            "legacy v1 stream (no checksum to verify)"
        }
    ))
}

/// The `list` subcommand body.
pub fn list() -> String {
    cli_lineup()
        .iter()
        .map(|c| format!("  {:10} (id {}, {:?})", c.name(), c.id(), c.kind()))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Result summary of a [`qaoa_demo`] run.
#[derive(Debug, Clone)]
pub struct QaoaSummary {
    /// MaxCut energy expectation from the compressed contraction.
    pub energy: f64,
    /// Intermediates routed through the compressor.
    pub tensors_compressed: usize,
    /// Aggregate compression ratio over those intermediates.
    pub ratio: f64,
    /// Peak live bytes during contraction.
    pub peak_live_bytes: usize,
    /// Lossy round trips over intermediates (0 under a lossless codec).
    pub lossy_events: u64,
    /// Accumulated-bound estimate over the contraction (RSS of every lossy
    /// round trip's resolved absolute bound).
    pub accumulated_bound: f64,
    /// Simulated seconds spent on the compressor's stream.
    pub simulated_s: f64,
    /// The compressor stream's kernel-event lane (for `--trace`).
    pub stream_lane: StreamLane,
}

/// Runs a small QAOA energy computation with every intermediate tensor
/// round-tripping through `compressor` — the end-to-end pipeline
/// (contraction → stages → compressor kernels) that `qcfz qaoa --trace`
/// exports as a Chrome trace.
pub fn qaoa_demo(
    nodes: usize,
    seed: u64,
    compressor: &str,
    bound: ErrorBound,
) -> Result<QaoaSummary, CliError> {
    let comp = cli_by_name(compressor).ok_or_else(|| {
        CliError(format!(
            "unknown compressor '{compressor}' (try `qcfz list`)"
        ))
    })?;
    let graph = Graph::random_regular(nodes, 3, seed);
    let params = QaoaParams::fixed_angles_3reg_p1();
    let mut hook = CompressingHook::new(comp.as_ref(), bound, 4);
    let report = Simulator::default()
        .energy_with_hook(&graph, &params, &mut hook)
        .map_err(|e| CliError(format!("contraction failed: {e}")))?;
    Ok(QaoaSummary {
        energy: report.energy,
        tensors_compressed: hook.stats.tensors_compressed,
        ratio: hook.stats.ratio(),
        peak_live_bytes: report.stats.peak_live_bytes,
        lossy_events: hook.stats.lossy_events,
        accumulated_bound: hook.stats.accumulated_bound,
        simulated_s: hook.stream().elapsed_s(),
        stream_lane: hook
            .stream()
            .telemetry_lane(format!("{} stream", comp.name())),
    })
}

/// Result summary of a [`state_demo`] run.
#[derive(Debug, Clone)]
pub struct StateSummary {
    /// MaxCut energy expectation from the compressed-state simulation.
    pub energy: f64,
    /// Bytes the dense statevector would need.
    pub dense_bytes: usize,
    /// Write-back chunk-cache capacity used (chunks).
    pub cache_capacity: usize,
    /// Effective compressed-resident byte budget (`None` = no disk tier).
    pub mem_budget: Option<usize>,
    /// Where the frames ended up: cached amps / compressed RAM / disk.
    pub tiers: qtensor::TierBreakdown,
    /// Run accounting (codec calls, cache hits/misses, resident bytes).
    pub stats: StateStats,
    /// Error-budget ledger aggregate (requant counts, accumulated bounds).
    pub ledger: qtensor::LedgerSummary,
    /// Causal event chain for the requested chunk (`qcfz state --chunk`).
    pub chain: Option<ChunkChain>,
}

/// The causal journal chain behind one chunk's ledger row (`qcfz state
/// --chunk <id>`): the chunk's exact per-kind event counts, the tail of
/// its event ring, and the ledger record those events must explain.
#[derive(Debug, Clone)]
pub struct ChunkChain {
    /// Chunk id.
    pub id: u64,
    /// The ledger's accounting for this chunk.
    pub record: qtensor::ChunkRecord,
    /// Newest events still in the ring (oldest → newest).
    pub events: Vec<qcf_telemetry::journal::ChunkEvent>,
    /// Events discarded from the ring (the chain's trimmed prefix).
    pub dropped: u64,
    /// Exact per-kind counts (survive ring overflow).
    pub kind_counts: [u64; qcf_telemetry::journal::KINDS],
}

impl ChunkChain {
    /// True when the journal's exact counts agree with the ledger — the
    /// `qcfz state --chunk` consistency contract.
    pub fn consistent(&self) -> bool {
        use qcf_telemetry::journal::EventKind;
        self.kind_counts[EventKind::WritebackRequant.index()] == self.record.requants
            && self.kind_counts[EventKind::Quarantine.index()] == self.record.quarantines
    }
}

/// Everything one `qcfz state` run needs ([`state_demo`]'s input — grown
/// past the point where positional arguments stay readable).
#[derive(Debug, Clone)]
pub struct StateRunCfg {
    /// QAOA graph size (nodes = qubits).
    pub nodes: usize,
    /// Graph seed.
    pub seed: u64,
    /// Qubits per chunk.
    pub chunk_qubits: usize,
    /// Compressor display name (`qcfz list`).
    pub compressor: String,
    /// Error bound for the chunk codec.
    pub bound: ErrorBound,
    /// Write-back chunk-cache capacity override.
    pub cache: Option<usize>,
    /// Chunk id whose causal journal chain to capture (`--chunk <id>`).
    pub journal_chunk: Option<u64>,
    /// Compressed-resident byte budget; `Some` arms the disk spill tier
    /// (`--mem-budget`, also set by `QCF_MEM_BUDGET`).
    pub mem_budget: Option<usize>,
    /// Gate-schedule-aware async prefetch for the spilled run (the
    /// default; `--no-prefetch` forces synchronous fetch-on-miss).
    pub prefetch: bool,
}

impl StateRunCfg {
    /// A default-shaped run: no cache/budget overrides, prefetch on.
    pub fn new(nodes: usize, seed: u64, chunk_qubits: usize, compressor: &str) -> Self {
        StateRunCfg {
            nodes,
            seed,
            chunk_qubits,
            compressor: compressor.to_string(),
            bound: ErrorBound::Rel(1e-3),
            cache: None,
            journal_chunk: None,
            mem_budget: None,
            prefetch: true,
        }
    }
}

/// Runs a QAOA circuit through the chunk-compressed statevector simulator
/// (`qcfz state`). Exercises the write-back chunk cache, so the
/// `state.cache.*` and `workspace.*` registry counters populate for
/// `--metrics`; with a memory budget set, the out-of-core spill tier and
/// its prefetcher populate `state.spill.*` / `state.prefetch.*` too.
///
/// With `journal_chunk` set, the per-chunk causal journal is armed for the
/// run and the named chunk's event chain is returned alongside its ledger
/// record (`qcfz state --chunk <id>`).
pub fn state_demo(cfg: &StateRunCfg) -> Result<StateSummary, CliError> {
    use qcf_telemetry::journal;
    let comp = cli_by_name(&cfg.compressor).ok_or_else(|| {
        CliError(format!(
            "unknown compressor '{}' (try `qcfz list`)",
            cfg.compressor
        ))
    })?;
    if cfg.journal_chunk.is_some() {
        // The journal only records under the master switch too.
        qcf_telemetry::set_enabled(true);
        journal::set_enabled(true);
        journal::reset();
    }
    let graph = Graph::random_regular(cfg.nodes, 3, cfg.seed);
    let circuit = qaoa_circuit(&graph, &QaoaParams::fixed_angles_3reg_p1());
    let err = |e: qtensor::ContractError| CliError(format!("compressed state: {e}"));
    let mut cs = CompressedState::zero(
        cfg.nodes,
        cfg.chunk_qubits.min(cfg.nodes),
        comp.as_ref(),
        cfg.bound,
    )
    .map_err(err)?;
    if let Some(cap) = cfg.cache {
        cs.set_cache_capacity(cap).map_err(err)?;
    }
    if cfg.mem_budget.is_some() {
        cs.set_mem_budget(cfg.mem_budget);
    }
    // One gate path for every tier shape: without a budget this is the
    // plain apply loop; with one it runs the schedule-aware prefetcher
    // (or synchronous fetch-on-miss under `prefetch: false`).
    cs.run_scheduled(circuit.gates(), cfg.prefetch)
        .map_err(err)?;
    let energy = cs.maxcut_energy(&graph).map_err(err)?;
    // Finalize: write dirty cached chunks back so resident bytes are exact.
    cs.flush().map_err(err)?;
    let chain = match cfg.journal_chunk {
        Some(id) => {
            let n_chunks = cs.ledger().n_chunks() as u64;
            if id >= n_chunks {
                return Err(CliError(format!(
                    "chunk {id} out of range (state has {n_chunks} chunks)"
                )));
            }
            Some(ChunkChain {
                id,
                record: cs.ledger().chunk(id as usize).clone(),
                events: journal::events(id),
                dropped: journal::dropped(id),
                kind_counts: journal::kind_counts(id),
            })
        }
        None => None,
    };
    if cfg.journal_chunk.is_some() {
        journal::set_enabled(false);
    }
    Ok(StateSummary {
        energy,
        dense_bytes: cs.dense_bytes(),
        cache_capacity: cs.cache_capacity(),
        mem_budget: cs.mem_budget(),
        tiers: cs.tier_breakdown(),
        stats: cs.stats.clone(),
        ledger: cs.ledger_summary(),
        chain,
    })
}

/// Result summary of a [`verify_state`] scrub run.
#[derive(Debug, Clone)]
pub struct VerifySummary {
    /// MaxCut energy expectation from the (possibly degraded) run.
    pub energy: f64,
    /// The settled scrub report (after healing passes).
    pub report: qtensor::VerifyReport,
    /// Fault accounting accumulated over the run plus the scrub.
    pub faults: qtensor::FaultStats,
    /// Injected `state.chunk.bitflip` events (0 when faults are disarmed).
    pub injected_bitflips: u64,
    /// Injected `codec.decode` events.
    pub injected_decode_errors: u64,
    /// Injected events across all sites.
    pub injected_total: u64,
    /// Injected `state.spill.bitflip` events (on-disk frame corruption).
    pub injected_spill_bitflips: u64,
    /// Frames spilled to disk over run + scrub (0 without a budget).
    pub spills: u64,
    /// Spilled frames fetched back over run + scrub.
    pub fetches: u64,
    /// Spill-log compaction passes over run + scrub.
    pub compactions: u64,
    /// Dead bytes those passes reclaimed from the spill log.
    pub spill_reclaimed: u64,
    /// Scrub passes it took to settle (1 on a healthy state).
    pub scrub_passes: usize,
    /// True when the final pass came back fully clean.
    pub settled: bool,
}

impl VerifySummary {
    /// The `qcfz verify --state` pass/fail verdict: the scrub must settle
    /// clean, every measured error must respect its ledger bound, and every
    /// injected storage corruption must have surfaced as a detected decode
    /// failure (the 100%-detection contract of the integrity frame).
    pub fn ok(&self) -> bool {
        self.settled
            && self.report.ledger_breaches == 0
            && self.faults.decode_errors >= self.injected_bitflips
    }
}

/// Runs a QAOA circuit on the chunk-compressed state, then scrubs it:
/// every chunk is decoded (frame checksum verified on the way) and checked
/// against its error-budget ledger bound. With `mem_budget` set the run
/// spills cold frames to disk and the scrub reads the disk tier back
/// through the exact same decode path, so on-disk corruption is covered by
/// the same detection contract. With `QCF_FAULTS` armed in the environment
/// the run executes under injected faults; injection is disarmed before
/// the scrub so it evaluates the storage actually left behind, and the
/// scrub loops until the state settles clean.
pub fn verify_state(
    nodes: usize,
    seed: u64,
    chunk_qubits: usize,
    compressor: &str,
    bound: ErrorBound,
    cache: Option<usize>,
    mem_budget: Option<usize>,
) -> Result<VerifySummary, CliError> {
    use qcf_telemetry::faults;
    let comp = cli_by_name(compressor).ok_or_else(|| {
        CliError(format!(
            "unknown compressor '{compressor}' (try `qcfz list`)"
        ))
    })?;
    let armed = faults::armed(); // first call also arms from QCF_FAULTS
    let graph = Graph::random_regular(nodes, 3, seed);
    let circuit = qaoa_circuit(&graph, &QaoaParams::fixed_angles_3reg_p1());
    let err = |e: qtensor::ContractError| CliError(format!("compressed state: {e}"));
    let mut cs =
        CompressedState::zero(nodes, chunk_qubits.min(nodes), comp.as_ref(), bound).map_err(err)?;
    if let Some(cap) = cache {
        cs.set_cache_capacity(cap).map_err(err)?;
    }
    if mem_budget.is_some() {
        cs.set_mem_budget(mem_budget);
    }
    cs.run_scheduled(circuit.gates(), true).map_err(err)?;
    let energy = cs.maxcut_energy(&graph).map_err(err)?;
    cs.flush().map_err(err)?;
    let injected_bitflips = faults::injected_count("state.chunk.bitflip");
    let injected_spill_bitflips = faults::injected_count("state.spill.bitflip");
    let injected_decode_errors = faults::injected_count("codec.decode");
    let injected_total = faults::total_injected();
    if armed {
        faults::disarm();
    }
    // Scrub until settled: the first clean pass proves every corruption the
    // run left behind was caught and healed (or quarantined) by a prior one.
    let mut report = cs.verify().map_err(err)?;
    let mut scrub_passes = 1;
    while !report.all_clean() && scrub_passes < 8 {
        report = cs.verify().map_err(err)?;
        scrub_passes += 1;
    }
    Ok(VerifySummary {
        energy,
        settled: report.all_clean(),
        report,
        spills: cs.stats.spills,
        fetches: cs.stats.fetches,
        compactions: cs.stats.compactions,
        spill_reclaimed: cs.stats.spill_reclaimed_bytes,
        faults: cs.faults.clone(),
        injected_bitflips,
        injected_spill_bitflips,
        injected_decode_errors,
        injected_total,
        scrub_passes,
    })
}

/// The caller-opaque `app_meta` blob `qcfz` stores in a snapshot: the
/// circuit recipe and run progress needed to finish the simulation after
/// a resume, without the user restating any flags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CkptMeta {
    /// QAOA graph size (nodes = qubits).
    pub nodes: usize,
    /// Graph seed.
    pub seed: u64,
    /// Qubits per chunk.
    pub chunk_qubits: usize,
    /// Write-back cache capacity at checkpoint time — restored on resume
    /// so a lossy codec's requant schedule (and therefore the bits)
    /// replays identically.
    pub cache: usize,
    /// Gates of the QAOA circuit already applied to the snapshot state.
    pub gates_applied: usize,
    /// Compressor display name (the snapshot also stores the stream id;
    /// the name makes `qcfz resume` output self-describing).
    pub compressor: String,
}

const META_MAGIC: &[u8; 6] = b"QMETA1";

impl CkptMeta {
    /// Serializes into the little-endian blob stored as snapshot
    /// `app_meta` (layout: magic, nodes u32, seed u64, chunk_qubits u32,
    /// cache u32, gates_applied u64, name len u8 + bytes).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(35 + self.compressor.len());
        out.extend_from_slice(META_MAGIC);
        out.extend_from_slice(&(self.nodes as u32).to_le_bytes());
        out.extend_from_slice(&self.seed.to_le_bytes());
        out.extend_from_slice(&(self.chunk_qubits as u32).to_le_bytes());
        out.extend_from_slice(&(self.cache as u32).to_le_bytes());
        out.extend_from_slice(&(self.gates_applied as u64).to_le_bytes());
        let name = self.compressor.as_bytes();
        out.push(name.len().min(255) as u8);
        out.extend_from_slice(&name[..name.len().min(255)]);
        out
    }

    /// Parses an `app_meta` blob written by [`CkptMeta::encode`].
    pub fn decode(raw: &[u8]) -> Result<Self, CliError> {
        let bad = || CliError("snapshot app metadata is not a qcfz blob".into());
        if raw.len() < 35 || &raw[..6] != META_MAGIC {
            return Err(bad());
        }
        let u32_at = |i: usize| u32::from_le_bytes(raw[i..i + 4].try_into().unwrap());
        let u64_at = |i: usize| u64::from_le_bytes(raw[i..i + 8].try_into().unwrap());
        let name_len = raw[34] as usize;
        if raw.len() != 35 + name_len {
            return Err(bad());
        }
        Ok(CkptMeta {
            nodes: u32_at(6) as usize,
            seed: u64_at(10),
            chunk_qubits: u32_at(18) as usize,
            cache: u32_at(22) as usize,
            gates_applied: u64_at(26) as usize,
            compressor: String::from_utf8(raw[35..].to_vec()).map_err(|_| bad())?,
        })
    }
}

/// Picks the lineup compressor matching a snapshot's stored stream id
/// (the same id-dispatch `qcfz info` uses on compressed files).
fn snapshot_compressor(path: &Path) -> Result<Box<dyn Compressor>, CliError> {
    let id = qtensor::checkpoint::snapshot_compressor_id(path)
        .map_err(|e| CliError(format!("resume {}: {e}", path.display())))?;
    cli_lineup()
        .into_iter()
        .find(|c| c.id() == id)
        .ok_or_else(|| CliError(format!("snapshot codec id {id} is not in the lineup")))
}

/// Result summary of a `qcfz checkpoint` commit.
#[derive(Debug, Clone)]
pub struct CkptSummary {
    /// Bytes at the committed snapshot path.
    pub snapshot_bytes: u64,
    /// Gates applied to the snapshotted state (from circuit start).
    pub gates_applied: usize,
    /// Gates in the full QAOA circuit.
    pub total_gates: usize,
    /// MaxCut energy of the snapshotted (possibly partial) state.
    pub energy: f64,
    /// Gate progress of the source snapshot when `--from` resumed one.
    pub resumed_from: Option<usize>,
}

/// Runs a QAOA circuit up to `gates` gates (default: all) on the
/// chunk-compressed state and commits a durable snapshot at `out`
/// (`qcfz checkpoint`). With `from` set, the run continues a previous
/// snapshot instead of starting fresh: geometry, codec, bound, and cache
/// capacity all come from the snapshot, so the evolution is bit-identical
/// to a run that was never interrupted; only `cfg.prefetch` and
/// `cfg.mem_budget` (pure tiering, bit-transparent) still apply.
pub fn checkpoint_demo(
    cfg: &StateRunCfg,
    out: &Path,
    from: Option<&Path>,
    gates: Option<usize>,
) -> Result<CkptSummary, CliError> {
    let err = |e: qtensor::ContractError| CliError(format!("compressed state: {e}"));
    let comp: Box<dyn Compressor> = match from {
        Some(src) => snapshot_compressor(src)?,
        None => cli_by_name(&cfg.compressor).ok_or_else(|| {
            CliError(format!(
                "unknown compressor '{}' (try `qcfz list`)",
                cfg.compressor
            ))
        })?,
    };
    let (mut cs, mut meta) = match from {
        Some(src) => {
            let (mut cs, raw) = CompressedState::resume(src, comp.as_ref())
                .map_err(|e| CliError(format!("resume {}: {e}", src.display())))?;
            let meta = CkptMeta::decode(&raw)?;
            cs.set_cache_capacity(meta.cache).map_err(err)?;
            (cs, meta)
        }
        None => {
            let mut cs = CompressedState::zero(
                cfg.nodes,
                cfg.chunk_qubits.min(cfg.nodes),
                comp.as_ref(),
                cfg.bound,
            )
            .map_err(err)?;
            if let Some(cap) = cfg.cache {
                cs.set_cache_capacity(cap).map_err(err)?;
            }
            let meta = CkptMeta {
                nodes: cfg.nodes,
                seed: cfg.seed,
                chunk_qubits: cfg.chunk_qubits.min(cfg.nodes),
                cache: cs.cache_capacity(),
                gates_applied: 0,
                compressor: comp.name().to_string(),
            };
            (cs, meta)
        }
    };
    if cfg.mem_budget.is_some() {
        cs.set_mem_budget(cfg.mem_budget);
    }
    let graph = Graph::random_regular(meta.nodes, 3, meta.seed);
    let circuit = qaoa_circuit(&graph, &QaoaParams::fixed_angles_3reg_p1());
    let total = circuit.gates().len();
    let target = gates.unwrap_or(total).min(total);
    if target < meta.gates_applied {
        return Err(CliError(format!(
            "snapshot already has {} gates applied — --gates {target} would go backwards",
            meta.gates_applied
        )));
    }
    cs.run_scheduled(&circuit.gates()[meta.gates_applied..target], cfg.prefetch)
        .map_err(err)?;
    let resumed_from = from.map(|_| meta.gates_applied);
    meta.gates_applied = target;
    let snapshot_bytes = cs
        .checkpoint(out, &meta.encode())
        .map_err(|e| CliError(format!("checkpoint: {e}")))?;
    let energy = cs.maxcut_energy(&graph).map_err(err)?;
    Ok(CkptSummary {
        snapshot_bytes,
        gates_applied: target,
        total_gates: total,
        energy,
        resumed_from,
    })
}

/// Result summary of a `qcfz resume` run-to-completion.
#[derive(Debug, Clone)]
pub struct ResumeSummary {
    /// The snapshot's stored run recipe and progress.
    pub meta: CkptMeta,
    /// Gates in the full QAOA circuit.
    pub total_gates: usize,
    /// MaxCut energy after finishing the remaining gates.
    pub energy: f64,
    /// Error-budget ledger aggregate at the end of the finished run.
    pub ledger: qtensor::LedgerSummary,
    /// Fault accounting: the snapshot's restored history plus this
    /// process's events.
    pub faults: qtensor::FaultStats,
    /// Settled scrub report when `--verify` was requested.
    pub scrub: Option<qtensor::VerifyReport>,
    /// This process's run accounting (starts fresh at resume).
    pub stats: StateStats,
}

impl ResumeSummary {
    /// The `qcfz resume --verify` verdict: either no scrub was requested,
    /// or the restored state settled fully clean with no ledger breach.
    pub fn ok(&self) -> bool {
        self.scrub.as_ref().is_none_or(|r| r.all_clean())
    }
}

/// Restores a snapshot and finishes its run (`qcfz resume`): the stored
/// recipe rebuilds the QAOA circuit, the remaining gates are applied, and
/// the final energy + ledger are reported. With `scrub` set every restored
/// chunk is decoded and checked against its ledger bound *before* the run
/// continues (`--verify`); scrubbing only re-tiers — it never requantizes
/// a clean chunk — so the continued evolution stays bit-identical.
pub fn resume_demo(
    path: &Path,
    scrub: bool,
    prefetch: bool,
    mem_budget: Option<usize>,
) -> Result<ResumeSummary, CliError> {
    let err = |e: qtensor::ContractError| CliError(format!("compressed state: {e}"));
    let comp = snapshot_compressor(path)?;
    let (mut cs, raw) = CompressedState::resume(path, comp.as_ref())
        .map_err(|e| CliError(format!("resume {}: {e}", path.display())))?;
    let meta = CkptMeta::decode(&raw)?;
    cs.set_cache_capacity(meta.cache).map_err(err)?;
    if mem_budget.is_some() {
        cs.set_mem_budget(mem_budget);
    }
    let scrub_report = if scrub {
        let mut report = cs.verify().map_err(err)?;
        let mut passes = 1;
        while !report.all_clean() && passes < 8 {
            report = cs.verify().map_err(err)?;
            passes += 1;
        }
        Some(report)
    } else {
        None
    };
    let graph = Graph::random_regular(meta.nodes, 3, meta.seed);
    let circuit = qaoa_circuit(&graph, &QaoaParams::fixed_angles_3reg_p1());
    let total = circuit.gates().len();
    let from = meta.gates_applied.min(total);
    cs.run_scheduled(&circuit.gates()[from..], prefetch)
        .map_err(err)?;
    let energy = cs.maxcut_energy(&graph).map_err(err)?;
    cs.flush().map_err(err)?;
    Ok(ResumeSummary {
        meta,
        total_gates: total,
        energy,
        ledger: cs.ledger_summary(),
        faults: cs.faults.clone(),
        scrub: scrub_report,
        stats: cs.stats.clone(),
    })
}

/// Writes the recorded spans plus `lanes` as Chrome-trace JSON to `path`.
pub fn write_trace(path: &Path, lanes: &[StreamLane]) -> Result<(), CliError> {
    let spans = qcf_telemetry::span::snapshot();
    std::fs::write(path, qcf_telemetry::chrome_trace(&spans, lanes))?;
    Ok(())
}

/// Writes the registry snapshot to `path`: JSON when the extension is
/// `.json`, TSV otherwise.
pub fn write_metrics(path: &Path) -> Result<(), CliError> {
    let snap = qcf_telemetry::registry().snapshot();
    let doc = if path.extension().is_some_and(|e| e == "json") {
        qcf_telemetry::metrics_json(&snap)
    } else {
        qcf_telemetry::metrics_tsv(&snap)
    };
    std::fs::write(path, doc)?;
    Ok(())
}

/// Parses a `--rel X` / `--abs X` pair into a bound (defaults to rel 1e-3).
pub fn parse_bound(rel: Option<&str>, abs: Option<&str>) -> Result<ErrorBound, CliError> {
    match (rel, abs) {
        (Some(_), Some(_)) => Err(CliError("--rel and --abs are mutually exclusive".into())),
        (Some(r), None) => r
            .parse::<f64>()
            .map(ErrorBound::Rel)
            .map_err(|_| CliError(format!("bad --rel value '{r}'"))),
        (None, Some(a)) => a
            .parse::<f64>()
            .map(ErrorBound::Abs)
            .map_err(|_| CliError(format!("bad --abs value '{a}'"))),
        (None, None) => Ok(ErrorBound::Rel(1e-3)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("qcfz-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn write_f64s(path: &Path, values: &[f64]) {
        let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        std::fs::write(path, bytes).unwrap();
    }

    #[test]
    fn compress_decompress_roundtrip_lossless() {
        let input = tmp("in1.f64");
        let comp = tmp("out1.qcfz");
        let back = tmp("back1.f64");
        let values: Vec<f64> = (0..1000).map(|i| (i % 17) as f64 * 0.25).collect();
        write_f64s(&input, &values);
        let s = compress_file(&input, &comp, "LZ4", ErrorBound::Abs(0.0)).unwrap();
        assert_eq!(s.n_values, 1000);
        assert!(s.ratio > 1.0);
        let n = decompress_file(&comp, &back).unwrap();
        assert_eq!(n, 1000);
        assert_eq!(
            std::fs::read(&input).unwrap(),
            std::fs::read(&back).unwrap()
        );
    }

    #[test]
    fn compress_with_framework_and_info() {
        let input = tmp("in2.f64");
        let comp = tmp("out2.qcfz");
        let values: Vec<f64> = (0..2048).map(|i| ((i % 13) as f64 * 0.1).sin()).collect();
        write_f64s(&input, &values);
        let s = compress_file(&input, &comp, "QCF-ratio", ErrorBound::Rel(1e-4)).unwrap();
        assert!(s.ratio > 4.0, "framework ratio {}", s.ratio);
        let info_line = info(&comp).unwrap();
        assert!(info_line.contains("QCF-ratio"), "{info_line}");
        assert!(info_line.contains("2048"));
    }

    #[test]
    fn errors_are_messages_not_panics() {
        let input = tmp("in3.f64");
        std::fs::write(&input, [1, 2, 3]).unwrap(); // not multiple of 8
        assert!(compress_file(&input, &tmp("x"), "cuSZ", ErrorBound::Rel(1e-3)).is_err());
        write_f64s(&input, &[1.0]);
        assert!(compress_file(&input, &tmp("x"), "nope", ErrorBound::Rel(1e-3)).is_err());
        let garbage = tmp("garbage.qcfz");
        std::fs::write(&garbage, [250u8, 0, 0]).unwrap();
        assert!(decompress_file(&garbage, &tmp("y")).is_err());
        assert!(info(&garbage).is_err());
    }

    #[test]
    fn verify_file_passes_clean_and_flags_corruption() {
        let input = tmp("in-verify.f64");
        let comp = tmp("out-verify.qcfz");
        let values: Vec<f64> = (0..512).map(|i| ((i % 11) as f64 * 0.2).cos()).collect();
        write_f64s(&input, &values);
        compress_file(&input, &comp, "LZ4", ErrorBound::Abs(0.0)).unwrap();
        let verdict = verify_file(&comp).unwrap();
        assert!(verdict.contains("OK"), "{verdict}");
        assert!(verdict.contains("checksum verified"), "{verdict}");

        // Flip one payload bit: the scrub must fail with a frame error.
        let mut bytes = std::fs::read(&comp).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        let bad = tmp("out-verify-bad.qcfz");
        std::fs::write(&bad, &bytes).unwrap();
        assert!(verify_file(&bad).is_err(), "corruption went undetected");
    }

    #[test]
    fn verify_state_healthy_run_is_ok() {
        let _g = qcf_telemetry::faults::chaos_guard();
        qcf_telemetry::faults::disarm();
        let s = verify_state(8, 3, 3, "LZ4", ErrorBound::Abs(0.0), Some(2), None).unwrap();
        assert!(s.ok());
        assert!(s.settled);
        assert_eq!(s.scrub_passes, 1);
        assert_eq!(s.injected_total, 0);
        assert_eq!(s.report.chunks, 32);
        assert_eq!(s.report.clean, 32);
        assert_eq!(s.spills, 0, "no budget, no disk tier");
    }

    #[test]
    fn verify_state_scrubs_the_disk_tier() {
        let _g = qcf_telemetry::faults::chaos_guard();
        qcf_telemetry::faults::disarm();
        // All-spill budget: every sealed frame lives on disk, and the
        // scrub must fetch and re-verify each through the normal path.
        let s = verify_state(8, 3, 3, "LZ4", ErrorBound::Abs(0.0), Some(2), Some(0)).unwrap();
        assert!(s.ok(), "{s:?}");
        assert!(s.spills > 0, "budget 0 must spill");
        assert!(s.fetches > 0, "scrub must read the disk tier");
        // Identical physics to the unbudgeted run.
        let r = verify_state(8, 3, 3, "LZ4", ErrorBound::Abs(0.0), Some(2), None).unwrap();
        assert_eq!(s.energy.to_bits(), r.energy.to_bits());
    }

    #[test]
    fn verify_state_detects_injected_bitflip() {
        let _g = qcf_telemetry::faults::chaos_guard();
        qcf_telemetry::faults::arm_from_spec("seed=5,state.chunk.bitflip@3").unwrap();
        let s = verify_state(8, 3, 3, "LZ4", ErrorBound::Abs(0.0), Some(2), None).unwrap();
        // verify_state disarms after the run; re-disarm is harmless.
        qcf_telemetry::faults::disarm();
        assert_eq!(s.injected_bitflips, 1, "@3 fires exactly once");
        assert!(s.ok(), "detection contract failed: {s:?}");
        assert!(s.faults.decode_errors >= 1, "bitflip went undetected");
        assert!(s.settled);
    }

    #[test]
    fn state_demo_reports_tier_breakdown() {
        let mut cfg = StateRunCfg::new(8, 5, 4, "LZ4");
        cfg.bound = ErrorBound::Abs(0.0);
        cfg.cache = Some(2);
        let base = state_demo(&cfg).unwrap();
        assert_eq!(base.mem_budget, None);
        assert_eq!(base.stats.spills, 0);
        assert_eq!(base.tiers.spilled_bytes, 0);

        cfg.mem_budget = Some(0); // all-spill
        let spilled = state_demo(&cfg).unwrap();
        assert_eq!(spilled.mem_budget, Some(0));
        assert!(spilled.stats.spills > 0, "budget 0 must spill");
        assert!(spilled.stats.fetches > 0);
        assert!(spilled.tiers.spilled_bytes > 0);
        assert!(spilled.tiers.spilled_chunks > 0);
        // Placement never changes physics.
        assert_eq!(spilled.energy.to_bits(), base.energy.to_bits());

        cfg.prefetch = false; // synchronous fetch-on-miss, same bits
        let sync = state_demo(&cfg).unwrap();
        assert_eq!(sync.stats.prefetch_hits, 0);
        assert_eq!(sync.energy.to_bits(), base.energy.to_bits());
    }

    #[test]
    fn bound_parsing() {
        assert_eq!(parse_bound(None, None).unwrap(), ErrorBound::Rel(1e-3));
        assert_eq!(
            parse_bound(Some("1e-4"), None).unwrap(),
            ErrorBound::Rel(1e-4)
        );
        assert_eq!(
            parse_bound(None, Some("0.5")).unwrap(),
            ErrorBound::Abs(0.5)
        );
        assert!(parse_bound(Some("1e-4"), Some("1")).is_err());
        assert!(parse_bound(Some("zzz"), None).is_err());
    }

    #[test]
    fn qaoa_demo_trace_and_metrics_are_parseable() {
        qcf_telemetry::set_enabled(true);
        let s = qaoa_demo(10, 21, "QCF-ratio", ErrorBound::Abs(1e-5)).unwrap();
        assert!(s.tensors_compressed > 0);
        assert!(
            !s.stream_lane.events.is_empty(),
            "stream lane must carry kernel events"
        );

        // Chrome trace: valid JSON with host spans from >= 3 categories
        // plus the virtual stream lane.
        let trace_path = tmp("qaoa.trace.json");
        write_trace(&trace_path, std::slice::from_ref(&s.stream_lane)).unwrap();
        let doc = std::fs::read_to_string(&trace_path).unwrap();
        qcf_telemetry::export::validate_json(&doc).expect("trace must be valid JSON");
        let spans = qcf_telemetry::span::snapshot();
        let cats: std::collections::BTreeSet<&str> = spans.iter().map(|e| e.cat).collect();
        assert!(
            ["contract", "stage", "compress"]
                .iter()
                .all(|c| cats.contains(c)),
            "need contraction, stage and compressor-pipeline categories, got {cats:?}"
        );
        assert!(
            doc.contains("\"pid\":2"),
            "stream lane events must be present"
        );

        // Metrics: TSV and JSON both parse, and carry peak-live-bytes and
        // per-compressor CR.
        let tsv_path = tmp("qaoa.metrics.tsv");
        write_metrics(&tsv_path).unwrap();
        let tsv = std::fs::read_to_string(&tsv_path).unwrap();
        assert!(tsv.starts_with("kind\tname\tvalue\textra\n"));
        for line in tsv.lines() {
            assert_eq!(line.split('\t').count(), 4, "malformed TSV row {line:?}");
        }
        assert!(
            tsv.contains("contract.live_bytes"),
            "peak-live-bytes gauge missing:\n{tsv}"
        );
        assert!(
            tsv.contains("compressor.QCF-ratio.cr"),
            "per-compressor CR missing:\n{tsv}"
        );

        let json_path = tmp("qaoa.metrics.json");
        write_metrics(&json_path).unwrap();
        let mjson = std::fs::read_to_string(&json_path).unwrap();
        qcf_telemetry::export::validate_json(&mjson).expect("metrics JSON must be valid");
        assert!(mjson.contains("contract.live_bytes"));
    }

    #[test]
    fn list_names_everything() {
        let l = list();
        for name in [
            "cuSZ",
            "cuSZx",
            "cuZFP",
            "LZ4",
            "GDeflate",
            "QCF-ratio",
            "QCF-speed",
        ] {
            assert!(l.contains(name), "missing {name} in:\n{l}");
        }
    }
}
