//! Arena-backed warm-path allocation guard.
//!
//! Installs a counting global allocator and asserts that, once the
//! thread-local bump arena, the workspace pools, and the stream's event
//! log are warm, a full cuSZx `compress_raw_into`/`decompress_raw_into`
//! round trip performs ZERO heap allocations: block-code scratch comes
//! from the arena phase, the payload writer and output buffers from the
//! workspace pools, and the serial single-worker fast path never spawns.
//!
//! (cuSZ's warm path is arena-backed for its symbol plane too; its
//! chunked-Huffman table construction is pooled in the codec's
//! thread-local encode pool and gated separately in
//! `alloc_cusz_table.rs`.)
//!
//! Keep this file to a single `#[test]`: the counter only counts the
//! opted-in test thread, but a sibling test reusing that thread would
//! still show up in the delta.

use compressors::cuszx::CuSzx;
use compressors::{Compressor, ErrorBound};
use gpu_model::exec::worker_count;
use gpu_model::{with_arena_phase, DeviceSpec, Stream};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// System allocator wrapped with an allocation-event counter. Frees are
/// not counted — the guard is about *new* heap traffic in the hot loop.
///
/// Only allocations made by the test thread itself are counted: the
/// libtest harness's main thread blocks on an mpsc `recv` while the test
/// runs, and its lazily-initialized channel context can allocate at an
/// arbitrary point — a race that lands inside the measured window on some
/// runs. The round trip under test is strictly single-threaded (the test
/// skips unless `worker_count() == 1`), so thread-filtering loses
/// nothing. The flag is a const-initialized native TLS cell, which is
/// itself allocation-free to access.
struct CountingAlloc;

static ALLOC_EVENTS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static COUNT_THIS_THREAD: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn count() {
    if COUNT_THIS_THREAD.with(|c| c.get()) {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count();
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count();
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count();
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[test]
fn warm_cuszx_round_trip_allocates_nothing() {
    COUNT_THIS_THREAD.with(|c| c.set(true));
    if worker_count() != 1 {
        // The zero-allocation contract is the single-worker fast path;
        // scoped worker threads allocate stacks by construction.
        eprintln!("skipping: worker_count()={} (needs 1)", worker_count());
        return;
    }

    let comp = CuSzx::default();
    let stream = Stream::new(DeviceSpec::a100());
    let n = 1usize << 14;
    let data: Vec<f64> = (0..n)
        .map(|i| {
            if i % 5 == 0 {
                (i as f64 * 0.3).sin() * 0.5
            } else {
                1e-8 * (i as f64)
            }
        })
        .collect();
    let bound = ErrorBound::Abs(1e-6);
    let mut bytes = Vec::new();
    let mut out = Vec::new();

    // Warm-up: grow the workspace pools, the arena chunk, the output
    // buffers, and the stream's kernel-event log (a Vec that doubles; 24
    // rounds of 2 launches land its capacity well past the measured
    // window below).
    for _ in 0..24 {
        bytes.clear();
        comp.compress_raw_into(&data, bound, &stream, &mut bytes)
            .unwrap();
        comp.decompress_raw_into(&bytes, &stream, &mut out).unwrap();
    }

    // Warm arena phases on this thread must be pure cursor arithmetic.
    let before = ALLOC_EVENTS.load(Ordering::SeqCst);
    for _ in 0..8 {
        with_arena_phase(|arena| {
            let a = arena.alloc_u64(1024);
            let b = arena.alloc_f64(1024);
            a[0] = 1;
            b[0] = 1.0;
        });
    }
    let delta = ALLOC_EVENTS.load(Ordering::SeqCst) - before;
    assert_eq!(delta, 0, "warm arena phases performed {delta} allocations");

    let before = ALLOC_EVENTS.load(Ordering::SeqCst);
    const ROUNDS: u64 = 5;
    for _ in 0..ROUNDS {
        bytes.clear();
        comp.compress_raw_into(&data, bound, &stream, &mut bytes)
            .unwrap();
        comp.decompress_raw_into(&bytes, &stream, &mut out).unwrap();
    }
    let delta = ALLOC_EVENTS.load(Ordering::SeqCst) - before;
    assert_eq!(
        delta, 0,
        "warm cuSZx round trips performed {delta} heap allocations over {ROUNDS} rounds"
    );
    assert_eq!(out.len(), n);

    // The arena actually carried the block scratch: phases reset and the
    // high-water mark covers at least the 128-block u64 code buffer.
    let stats = gpu_model::thread_arena_stats();
    assert!(stats.resets > 0, "no arena phase ran");
    assert!(
        stats.high_water >= 128 * 8,
        "arena high-water {} too small for block scratch",
        stats.high_water
    );
    assert_eq!(stats.bytes_in_use, 0, "phase leaked arena bytes");
}
