//! Chunked-Huffman table pooling guard (cuSZ's warm compress path).
//!
//! Installs a counting global allocator and asserts that, once the
//! thread-local bump arena, the workspace pools and the codec's encode
//! pool are warm, a cuSZ `compress_raw_into` allocates at most once per
//! call: the dual-quant kernel's per-block outlier table, which is the
//! only remaining cold structure. Everything the chunked-Huffman stage
//! used to allocate per call — partial histograms, the merged frequency
//! table, the code-length/code tables (heap, parent links, counting
//! arrays) and the per-chunk payload writers — now lives in the codec's
//! thread-local `EncodePool` and must stay out of the warm loop. A
//! regression there adds ~15 allocations per round and fails loudly.
//!
//! Keep this file to a single `#[test]`: the counter only counts the
//! opted-in test thread, but a sibling test reusing that thread would
//! still show up in the delta.

use compressors::cusz::CuSz;
use compressors::{Compressor, ErrorBound};
use gpu_model::exec::worker_count;
use gpu_model::{DeviceSpec, Stream};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// System allocator wrapped with an allocation-event counter; only the
/// opted-in test thread is counted (see `alloc_arena.rs` for why).
struct CountingAlloc;

static ALLOC_EVENTS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static COUNT_THIS_THREAD: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn count() {
    if COUNT_THIS_THREAD.with(|c| c.get()) {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count();
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count();
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count();
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[test]
fn warm_cusz_compress_tables_come_from_the_pool() {
    COUNT_THIS_THREAD.with(|c| c.set(true));
    if worker_count() != 1 {
        // The pooled contract is the single-worker fast path; scoped
        // worker threads allocate stacks by construction.
        eprintln!("skipping: worker_count()={} (needs 1)", worker_count());
        return;
    }

    let comp = CuSz::default();
    let stream = Stream::new(DeviceSpec::a100());
    // Smooth signal: small Lorenzo deltas, zero outliers — the outlier
    // list itself stays empty and unallocated, isolating the one counted
    // allocation below to the per-block outlier result table.
    let n = 1usize << 16;
    let data: Vec<f64> = (0..n).map(|i| (i as f64 * 0.01).sin() * 0.8).collect();
    let bound = ErrorBound::Abs(1e-3);
    let mut bytes = Vec::new();

    // Warm-up: grow the arena chunk, the workspace payload buffer, the
    // codec's thread-local encode pool and the stream's event log. 40
    // rounds of 5 launches put the event log's doubling capacity (256)
    // well past the measured window below.
    for _ in 0..40 {
        bytes.clear();
        comp.compress_raw_into(&data, bound, &stream, &mut bytes)
            .unwrap();
    }

    let before = ALLOC_EVENTS.load(Ordering::SeqCst);
    const ROUNDS: u64 = 5;
    for _ in 0..ROUNDS {
        bytes.clear();
        comp.compress_raw_into(&data, bound, &stream, &mut bytes)
            .unwrap();
    }
    let delta = ALLOC_EVENTS.load(Ordering::SeqCst) - before;
    // One allocation per round is tolerated: `par_map_chunks_mut` collects
    // the dual-quant blocks' (empty) outlier lists into a fresh result
    // vector. The Huffman code tables must contribute zero.
    assert!(
        delta <= ROUNDS,
        "warm cuSZ compress performed {delta} heap allocations over {ROUNDS} rounds \
         (expected ≤ {ROUNDS}: the chunked-Huffman tables must come from the pool)"
    );

    // The stream actually exercised the chunked-Huffman stage.
    assert!(stream.time_in("huffman_encode") > 0.0);
}
