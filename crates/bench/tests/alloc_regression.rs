//! Steady-state allocation regression guard.
//!
//! Installs a counting global allocator and asserts that, once the
//! write-back chunk cache is warm, `CompressedState::apply` performs ZERO
//! heap allocations per gate under a lossless codec: cache hits mutate the
//! resident amplitudes in place, gate matrices come from the fixed-size
//! `qubits_array`/`matrix_array` accessors, and grouped gates reuse the
//! persistent gather buffer.
//!
//! Keep this file to a single `#[test]`: the counter only counts the
//! opted-in test thread, but a sibling test reusing that thread would
//! still show up in the delta.

use compressors::dummy::Memcpy;
use compressors::ErrorBound;
use qcircuit::Gate;
use qtensor::CompressedState;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// System allocator wrapped with an allocation-event counter. Frees are
/// not counted — the guard is about *new* heap traffic in the hot loop.
///
/// Only allocations made by the test thread itself are counted: the
/// libtest harness's main thread blocks on an mpsc `recv` while the test
/// runs, and its lazily-initialized channel context can allocate at an
/// arbitrary point — a race that lands inside the measured window on some
/// runs. The warm apply loop under test is strictly single-threaded, so
/// thread-filtering loses nothing. The flag is a const-initialized native
/// TLS cell, which is itself allocation-free to access.
struct CountingAlloc;

static ALLOC_EVENTS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static COUNT_THIS_THREAD: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn count() {
    if COUNT_THIS_THREAD.with(|c| c.get()) {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count();
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count();
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count();
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[test]
fn warm_apply_loop_allocates_nothing() {
    COUNT_THIS_THREAD.with(|c| c.set(true));
    let comp = Memcpy;
    // 2^10 amplitudes in 16 chunks of 2^6; cache holds all 16.
    let mut cs = CompressedState::zero(10, 6, &comp, ErrorBound::Abs(1e-6)).unwrap();
    cs.set_cache_capacity(16).unwrap();

    // Mix of low-qubit (per-chunk), one-high and two-high (grouped) gates.
    let gates = [
        Gate::H(0),
        Gate::Rx(3, 0.41),
        Gate::Cnot(0, 5),
        Gate::Cnot(5, 8),    // one high qubit
        Gate::Zz(2, 9, 0.3), // one high qubit
        Gate::Swap(7, 9),    // two high qubits
        Gate::Ry(1, 0.9),
    ];

    // Warm-up: first pass faults every chunk into the cache and grows the
    // scratch/group buffers to their steady-state capacities.
    for _ in 0..2 {
        for g in &gates {
            cs.apply(g).unwrap();
        }
    }

    let before = ALLOC_EVENTS.load(Ordering::SeqCst);
    const ROUNDS: u64 = 5;
    for _ in 0..ROUNDS {
        for g in &gates {
            cs.apply(g).unwrap();
        }
    }
    let delta = ALLOC_EVENTS.load(Ordering::SeqCst) - before;
    assert_eq!(
        delta,
        0,
        "steady-state apply loop performed {delta} heap allocations over {} gate applications",
        ROUNDS * gates.len() as u64
    );

    // The loop above must also have been pure cache traffic.
    assert_eq!(cs.stats.cache_misses, 16, "only the warm-up may miss");
    assert!(cs.stats.cache_hits > 0);
}
