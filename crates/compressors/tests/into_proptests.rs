//! Buffer-reuse contract: for every compressor in the registry, the
//! `*_into` entry points must be bit-identical to their allocating
//! counterparts — even when the caller's output buffer arrives dirty and
//! oversized from a previous, unrelated call.

use compressors::registry::{all_compressors, decompress_any, decompress_any_into};
use compressors::ErrorBound;
use gpu_model::{DeviceSpec, Stream};
use proptest::prelude::*;

fn stream() -> Stream {
    Stream::new(DeviceSpec::a100())
}

/// Payloads spanning the regimes the codecs branch on.
fn f64_payload() -> impl Strategy<Value = Vec<f64>> {
    let val = prop_oneof![
        3 => (0u8..12).prop_map(|k| k as f64 * 0.07 - 0.4), // small alphabet
        2 => Just(0.0f64),
        2 => -1.0f64..1.0,
        1 => -1e5f64..1e5,
    ];
    prop::collection::vec(val, 0..600)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn compress_into_matches_compress_for_every_compressor(
        data in f64_payload(),
        garbage in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        let s = stream();
        for comp in all_compressors() {
            let fresh = comp.compress(&data, ErrorBound::Abs(1e-4), &s).unwrap();
            // Dirty, possibly oversized reused buffer.
            let mut reused = garbage.clone();
            reused.reserve(4096);
            comp.compress_into(&data, ErrorBound::Abs(1e-4), &s, &mut reused)
                .unwrap();
            prop_assert_eq!(
                &fresh, &reused,
                "compress_into diverges for {}", comp.name()
            );
        }
    }

    #[test]
    fn decompress_into_matches_decompress_for_every_compressor(
        data in f64_payload(),
        dirt in prop::collection::vec(-1e3f64..1e3, 0..128),
    ) {
        let s = stream();
        for comp in all_compressors() {
            let bytes = comp.compress(&data, ErrorBound::Abs(1e-4), &s).unwrap();
            let fresh = comp.decompress(&bytes, &s).unwrap();
            let mut reused = dirt.clone();
            comp.decompress_into(&bytes, &s, &mut reused).unwrap();
            prop_assert_eq!(
                fresh.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                reused.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "decompress_into diverges for {}", comp.name()
            );
            // Registry dispatch must agree too.
            let any_fresh = decompress_any(&bytes, &s).unwrap();
            let mut any_reused = dirt.clone();
            decompress_any_into(&bytes, &s, &mut any_reused).unwrap();
            prop_assert_eq!(
                any_fresh.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                any_reused.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "decompress_any_into diverges for {}", comp.name()
            );
        }
    }
}
