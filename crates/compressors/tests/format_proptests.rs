//! Property tests on the byte-level wire formats (LZ4 block, Snappy raw,
//! DEFLATE-style) — arbitrary payloads must roundtrip bit-exactly and
//! corrupted payloads must never panic.

use compressors::gdeflate::{deflate_bytes, inflate_bytes};
use compressors::lz4::{lz4_decode_block, lz4_encode_block};
use proptest::prelude::*;

fn byte_payload() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        // arbitrary bytes
        3 => prop::collection::vec(any::<u8>(), 0..4000),
        // highly repetitive
        2 => (any::<u8>(), 1usize..4000).prop_map(|(b, n)| vec![b; n]),
        // periodic
        2 => (1usize..40, 1usize..200).prop_map(|(p, reps)| {
            (0..p * reps).map(|i| (i % p) as u8).collect()
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn lz4_block_roundtrips(data in byte_payload()) {
        let mut enc = Vec::new();
        lz4_encode_block(&data, &mut enc);
        prop_assert_eq!(lz4_decode_block(&enc, data.len()).unwrap(), data);
    }

    #[test]
    fn deflate_roundtrips(data in byte_payload()) {
        let enc = deflate_bytes(&data);
        let mut pos = 0;
        prop_assert_eq!(inflate_bytes(&enc, &mut pos, data.len()).unwrap(), data);
        prop_assert_eq!(pos, enc.len());
    }

    #[test]
    fn repetitive_payloads_shrink(b in any::<u8>(), n in 512usize..4000) {
        let data = vec![b; n];
        let mut lz4 = Vec::new();
        lz4_encode_block(&data, &mut lz4);
        prop_assert!(lz4.len() < data.len() / 4, "lz4 {} for {}", lz4.len(), data.len());
        let defl = deflate_bytes(&data);
        prop_assert!(defl.len() < data.len() / 4, "deflate {} for {}", defl.len(), data.len());
    }

    #[test]
    fn truncated_streams_error_not_panic(
        data in prop::collection::vec(any::<u8>(), 1..1000),
        cut_frac in 0.0f64..0.95,
    ) {
        let mut lz4 = Vec::new();
        lz4_encode_block(&data, &mut lz4);
        let cut = ((lz4.len() as f64) * cut_frac) as usize;
        let _ = lz4_decode_block(&lz4[..cut], data.len());

        let defl = deflate_bytes(&data);
        let cut = ((defl.len() as f64) * cut_frac) as usize;
        let mut pos = 0;
        let _ = inflate_bytes(&defl[..cut], &mut pos, data.len());
    }

    #[test]
    fn garbage_streams_error_not_panic(garbage in prop::collection::vec(any::<u8>(), 0..500)) {
        let _ = lz4_decode_block(&garbage, 100);
        let mut pos = 0;
        let _ = inflate_bytes(&garbage, &mut pos, 100);
    }
}
