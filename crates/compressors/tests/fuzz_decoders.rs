//! Decode-path fuzzing: every registered decoder, plus the format-sniffing
//! registry entry point, must survive arbitrary and mutated bytes.
//!
//! The contract under test (the robustness half of the integrity frame):
//!
//! * **no panics** — corrupt input returns `CodecError`, never unwinds;
//! * **no unbounded allocation** — forged declared lengths are rejected
//!   before reservation (the runs here would OOM long before the proptest
//!   timeout if a guard regressed);
//! * **error or bit-exact** — a mutated *sealed* stream either fails to
//!   decode or (only when the mutation misses every load-bearing byte,
//!   which the frame checksum makes impossible for single-bit flips)
//!   reproduces the original values exactly.

use compressors::registry::{all_compressors, decompress_any};
use compressors::ErrorBound;
use gpu_model::{DeviceSpec, Stream};
use proptest::prelude::*;

fn stream() -> Stream {
    Stream::new(DeviceSpec::a100())
}

fn value_payload() -> impl Strategy<Value = Vec<f64>> {
    prop_oneof![
        3 => prop::collection::vec(-1.0f64..1.0, 0..600),
        2 => (any::<f64>(), 1usize..600).prop_map(|(v, n)| {
            let v = if v.is_finite() { v } else { 0.0 };
            vec![v; n]
        }),
        2 => (1usize..500).prop_map(|n| {
            (0..n).map(|i| (i as f64 * 0.37).sin() * 1e-3).collect()
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    // Arbitrary garbage through the sniffing entry point: error or a
    // (vacuously valid) decode, never a panic, never a huge allocation.
    #[test]
    fn registry_survives_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let s = stream();
        if let Ok(vals) = decompress_any(&bytes, &s) {
            // A successful decode of random bytes must still be bounded by
            // the bomb guard: the declared length can't exceed the guard's
            // input-proportional cap.
            prop_assert!(vals.len() <= (1 << 16) + bytes.len() * (1 << 23));
        }
    }

    // The same through every concrete decoder, bypassing id sniffing.
    #[test]
    fn every_decoder_survives_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let s = stream();
        for c in all_compressors() {
            let _ = c.decompress(&bytes, &s);
        }
    }

    // Single-byte mutations of real sealed streams: the frame checksum
    // must catch every payload corruption; header corruptions must error
    // cleanly. A decode that still succeeds must be bit-exact (the only
    // legal case: the mutation hit bytes the codec never reads, which the
    // exact-length frame makes impossible — so in practice: must error).
    #[test]
    fn mutated_streams_error_or_roundtrip(
        data in value_payload(),
        pos_frac in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let s = stream();
        for c in all_compressors() {
            let sealed = match c.compress(&data, ErrorBound::Abs(1e-6), &s) {
                Ok(b) => b,
                Err(_) => continue,
            };
            let baseline = c.decompress(&sealed, &s).unwrap();
            let mut bad = sealed.clone();
            let idx = ((bad.len() as f64) * pos_frac) as usize % bad.len().max(1);
            // Keep the frame-flag bit: clearing it turns the stream into a
            // legacy-v1 lookalike, which is exercised separately below.
            let mask = if idx == 0 { flip & 0x7f } else { flip };
            if mask == 0 {
                continue;
            }
            bad[idx] ^= mask;
            if let Ok(vals) = c.decompress(&bad, &s) {
                prop_assert_eq!(
                    vals.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    baseline.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "codec {} decoded a mutated stream to different values",
                    c.name()
                );
            }
        }
    }

    // Truncations of sealed streams must always error (the frame declares
    // its exact length).
    #[test]
    fn truncated_sealed_streams_error(
        data in prop::collection::vec(-1.0f64..1.0, 1..200),
        cut_frac in 0.0f64..0.999,
    ) {
        let s = stream();
        for c in all_compressors() {
            let sealed = match c.compress(&data, ErrorBound::Abs(1e-6), &s) {
                Ok(b) => b,
                Err(_) => continue,
            };
            let cut = ((sealed.len() as f64) * cut_frac) as usize;
            prop_assert!(
                c.decompress(&sealed[..cut], &s).is_err(),
                "codec {} accepted a truncated stream",
                c.name()
            );
        }
    }
}
