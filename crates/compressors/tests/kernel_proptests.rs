//! Bit-identity proofs for the width-8 vectorized codec kernels against
//! their scalar references, on adversarial inputs: NaN, infinities,
//! subnormals, values whose quantized magnitude saturates `i64`, and
//! ordinary amplitude-like payloads.
//!
//! The scalar functions (`dual_quant_scalar`, `encode_block_scalar`,
//! `decode_block_scalar`) are the format definition; the unrolled kernels
//! must reproduce their output bit for bit at every length (lane-multiple
//! and ragged tails alike) and every worker count (the chunked
//! `dual_quant_into` re-derives each chunk's carry from the raw input).

use codec_kit::bitio::{BitReader, BitWriter};
use compressors::cusz::{dual_quant_into, dual_quant_scalar};
use compressors::cuszx::{
    block_mean, decode_block, decode_block_scalar, encode_block, encode_block_scalar,
};
use proptest::prelude::*;

/// One f64 drawn from the regions that break naive vectorization: the
/// edges of the finite range, non-finite payloads, subnormals, and the
/// ordinary near-zero amplitudes quantum states are full of.
fn edge_f64() -> impl Strategy<Value = f64> {
    prop_oneof![
        4 => -1.0f64..1.0,
        2 => -1e-7f64..1e-7,
        1 => Just(0.0f64),
        1 => Just(-0.0f64),
        1 => Just(f64::NAN),
        1 => Just(f64::INFINITY),
        1 => Just(f64::NEG_INFINITY),
        1 => Just(f64::MIN_POSITIVE / 2.0), // subnormal
        1 => Just(1e300f64),                // quantizes past i64::MAX
        1 => Just(-1e300f64),
        1 => Just(f64::MAX),
        1 => Just(f64::MIN),
    ]
}

fn payload() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(edge_f64(), 0..700)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn dual_quant_vector_matches_scalar(
        data in payload(),
        twoeb in prop_oneof![Just(2e-4f64), Just(2e-8f64), Just(2e-300f64)],
        radius in prop_oneof![Just(16i64), Just(512i64)],
    ) {
        let (ref_syms, ref_outliers) = dual_quant_scalar(&data, twoeb, radius);
        let mut syms = vec![0u32; data.len()];
        let outliers = dual_quant_into(&data, twoeb, radius, &mut syms);
        prop_assert_eq!(syms, ref_syms);
        prop_assert_eq!(outliers, ref_outliers);
    }

    #[test]
    fn szx_encode_vector_matches_scalar(
        data in payload(),
        bs in prop_oneof![Just(16usize), Just(128usize), Just(333usize)],
        eb in prop_oneof![Just(1e-4f64), Just(1e-300f64)],
    ) {
        let twoeb = 2.0 * eb;
        let mut wr = BitWriter::new();
        let mut wv = BitWriter::new();
        let mut scratch = vec![0u64; bs];
        for block in data.chunks(bs) {
            encode_block_scalar(block, eb, twoeb, &mut wr);
            encode_block(block, eb, twoeb, &mut scratch, &mut wv);
        }
        prop_assert_eq!(wv.finish(), wr.finish());
    }

    #[test]
    fn szx_decode_vector_matches_scalar(
        data in payload(),
        bs in prop_oneof![Just(16usize), Just(128usize), Just(333usize)],
        eb in prop_oneof![Just(1e-4f64), Just(1e-300f64)],
    ) {
        // Encode finite-mean blocks only: a non-finite mean is rejected by
        // both decoders identically, which the error branch below checks.
        let twoeb = 2.0 * eb;
        let mut w = BitWriter::new();
        let mut scratch = vec![0u64; bs];
        let mut lens = Vec::new();
        for block in data.chunks(bs) {
            if block_mean(block).is_finite() {
                encode_block(block, eb, twoeb, &mut scratch, &mut w);
                lens.push(block.len());
            }
        }
        let bytes = w.finish();
        let mut rr = BitReader::new(&bytes);
        let mut rv = BitReader::new(&bytes);
        let mut dref = Vec::new();
        let mut dvec = Vec::new();
        for &len in &lens {
            decode_block_scalar(&mut rr, len, twoeb, &mut dref).unwrap();
            decode_block(&mut rv, len, twoeb, &mut dvec).unwrap();
        }
        prop_assert_eq!(dvec.len(), dref.len());
        for (v, r) in dvec.iter().zip(&dref) {
            prop_assert_eq!(v.to_bits(), r.to_bits());
        }
    }

    #[test]
    fn szx_decoders_reject_corruption_identically(
        bytes in prop::collection::vec(any::<u8>(), 0..200),
        len in 1usize..64,
    ) {
        let mut rr = BitReader::new(&bytes);
        let mut rv = BitReader::new(&bytes);
        let mut dref = Vec::new();
        let mut dvec = Vec::new();
        let res_ref = decode_block_scalar(&mut rr, len, 2e-4, &mut dref);
        let res_vec = decode_block(&mut rv, len, 2e-4, &mut dvec);
        prop_assert_eq!(res_ref.is_err(), res_vec.is_err());
        if res_ref.is_ok() {
            prop_assert_eq!(dvec.len(), dref.len());
            for (v, r) in dvec.iter().zip(&dref) {
                prop_assert_eq!(v.to_bits(), r.to_bits());
            }
        }
    }
}
