//! Snappy — byte-oriented lossless compression (nvCOMP port of Google's).
//!
//! Faithful Snappy raw format: a varint uncompressed length, then tagged
//! elements — literals (tag `00`) and copies with 1-, 2- or 4-byte offsets
//! (tags `01`, `10`, `11`). The encoder uses the shared LZ77 parse and emits
//! tag-01 copies when the offset and length allow (Snappy's cheapest copy),
//! falling back to tag-10.

use crate::traits::{read_stream_header, stream_header, Compressor, CompressorKind, ErrorBound};
use codec_kit::lz77::{find_matches, LzConfig, LzToken};
use codec_kit::varint::{read_uvarint, write_uvarint};
use codec_kit::CodecError;
use gpu_model::{KernelSpec, MemoryPattern, Stream};

/// Stream id of Snappy.
pub const SNAPPY_ID: u8 = 5;

/// The Snappy compressor.
#[derive(Debug, Clone, Default)]
pub struct Snappy;

fn emit_literal(out: &mut Vec<u8>, lit: &[u8]) {
    let mut rest = lit;
    while !rest.is_empty() {
        let take = rest.len().min(1 << 16); // keep extensions to ≤2 bytes
        let n = take - 1;
        if n < 60 {
            out.push((n as u8) << 2);
        } else if n < 256 {
            out.push(60 << 2);
            out.push(n as u8);
        } else {
            out.push(61 << 2);
            out.extend_from_slice(&(n as u16).to_le_bytes());
        }
        out.extend_from_slice(&rest[..take]);
        rest = &rest[take..];
    }
}

fn emit_copy(out: &mut Vec<u8>, mut len: usize, dist: usize) {
    debug_assert!((1..=65_535).contains(&dist));
    while len > 0 {
        // tag 01: len 4..=11, offset < 2048
        if (4..=11).contains(&len) && dist < 2048 {
            out.push(0b01 | (((len - 4) as u8) << 2) | (((dist >> 8) as u8) << 5));
            out.push((dist & 0xFF) as u8);
            return;
        }
        // tag 10: len 1..=64, 16-bit offset
        let take = len.min(64);
        if len - take != 0 && len - take < 4 {
            // Don't leave a tail shorter than a legal copy; rebalance.
            let take = len - 4;
            out.push(0b10 | (((take - 1) as u8) << 2));
            out.extend_from_slice(&(dist as u16).to_le_bytes());
            len -= take;
            continue;
        }
        out.push(0b10 | (((take - 1) as u8) << 2));
        out.extend_from_slice(&(dist as u16).to_le_bytes());
        len -= take;
    }
}

/// Encodes `data` in Snappy raw format.
pub(crate) fn snappy_encode(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 16);
    write_uvarint(&mut out, data.len() as u64);
    let cfg = LzConfig {
        min_match: 4,
        max_match: 1 << 20,
        window: 65_535,
        max_chain: 32,
    };
    for token in find_matches(data, &cfg) {
        match token {
            LzToken::Literal { start, len } => emit_literal(&mut out, &data[start..start + len]),
            LzToken::Match { len, dist } => emit_copy(&mut out, len, dist),
        }
    }
    out
}

/// Decodes a Snappy raw stream.
pub(crate) fn snappy_decode(data: &[u8]) -> Result<Vec<u8>, CodecError> {
    let mut pos = 0usize;
    let expected = read_uvarint(data, &mut pos)? as usize;
    if expected > 1 << 34 {
        return Err(CodecError::Corrupt("absurd snappy length"));
    }
    // Pre-allocation guard: the densest legal stream is a chain of tag-10
    // copies (3 bytes → 64 out, ~22×), so a declared length beyond 64× the
    // input (plus a floor for tiny streams) is forged.
    if expected > (1 << 16) + data.len().saturating_mul(64) {
        return Err(CodecError::Corrupt(
            "declared length exceeds remaining input",
        ));
    }
    let mut out = Vec::with_capacity(expected);
    while out.len() < expected {
        let tag = *data.get(pos).ok_or(CodecError::UnexpectedEof)?;
        pos += 1;
        match tag & 0b11 {
            0b00 => {
                let mut n = (tag >> 2) as usize;
                if n >= 60 {
                    let extra_bytes = n - 59;
                    if extra_bytes > 4 || pos + extra_bytes > data.len() {
                        return Err(CodecError::UnexpectedEof);
                    }
                    let mut v = 0usize;
                    for (k, &b) in data[pos..pos + extra_bytes].iter().enumerate() {
                        v |= (b as usize) << (8 * k);
                    }
                    pos += extra_bytes;
                    n = v;
                }
                let len = n + 1;
                if pos + len > data.len() {
                    return Err(CodecError::UnexpectedEof);
                }
                out.extend_from_slice(&data[pos..pos + len]);
                pos += len;
            }
            0b01 => {
                let len = 4 + ((tag >> 2) & 0x7) as usize;
                let hi = (tag >> 5) as usize;
                let lo = *data.get(pos).ok_or(CodecError::UnexpectedEof)? as usize;
                pos += 1;
                copy_back(&mut out, len, (hi << 8) | lo, expected)?;
            }
            0b10 => {
                let len = 1 + (tag >> 2) as usize;
                if pos + 2 > data.len() {
                    return Err(CodecError::UnexpectedEof);
                }
                let dist = u16::from_le_bytes([data[pos], data[pos + 1]]) as usize;
                pos += 2;
                copy_back(&mut out, len, dist, expected)?;
            }
            _ => {
                let len = 1 + (tag >> 2) as usize;
                if pos + 4 > data.len() {
                    return Err(CodecError::UnexpectedEof);
                }
                let dist = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap()) as usize;
                pos += 4;
                copy_back(&mut out, len, dist, expected)?;
            }
        }
    }
    if out.len() != expected {
        return Err(CodecError::Corrupt("snappy output length mismatch"));
    }
    Ok(out)
}

fn copy_back(
    out: &mut Vec<u8>,
    len: usize,
    dist: usize,
    expected: usize,
) -> Result<(), CodecError> {
    if dist == 0 || dist > out.len() {
        return Err(CodecError::Corrupt("snappy offset out of window"));
    }
    if out.len() + len > expected {
        return Err(CodecError::Corrupt("snappy copy overruns output"));
    }
    let from = out.len() - dist;
    for k in 0..len {
        let b = out[from + k];
        out.push(b);
    }
    Ok(())
}

impl Compressor for Snappy {
    fn name(&self) -> &'static str {
        "Snappy"
    }

    fn id(&self) -> u8 {
        SNAPPY_ID
    }

    fn kind(&self) -> CompressorKind {
        CompressorKind::Lossless
    }

    fn compress_raw(
        &self,
        data: &[f64],
        _bound: ErrorBound,
        stream: &Stream,
    ) -> Result<Vec<u8>, CodecError> {
        let bytes: Vec<u8> = data.iter().flat_map(|v| v.to_le_bytes()).collect();
        let mut out = stream_header(SNAPPY_ID, data.len());
        let payload = stream.launch(
            &KernelSpec::streaming(
                "snappy::match_and_emit",
                (bytes.len() * 3) as u64,
                bytes.len() as u64,
            )
            .with_pattern(MemoryPattern::Random),
            || snappy_encode(&bytes),
        );
        write_uvarint(&mut out, payload.len() as u64);
        out.extend_from_slice(&payload);
        Ok(out)
    }

    fn decompress_raw(&self, bytes: &[u8], stream: &Stream) -> Result<Vec<f64>, CodecError> {
        let (n, mut pos) = read_stream_header(bytes, SNAPPY_ID)?;
        let payload_len = read_uvarint(bytes, &mut pos)? as usize;
        if bytes.len() < pos + payload_len {
            return Err(CodecError::UnexpectedEof);
        }
        let raw = stream.launch(
            &KernelSpec::streaming("snappy::decode", payload_len as u64, (n * 8) as u64)
                .with_pattern(MemoryPattern::Strided),
            || snappy_decode(&bytes[pos..pos + payload_len]),
        )?;
        if raw.len() != n * 8 {
            return Err(CodecError::Corrupt("snappy payload length mismatch"));
        }
        Ok(raw
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_model::DeviceSpec;
    use rand::{Rng, SeedableRng};

    fn stream() -> Stream {
        Stream::new(DeviceSpec::a100())
    }

    fn roundtrip_bytes(data: &[u8]) -> usize {
        let enc = snappy_encode(data);
        assert_eq!(snappy_decode(&enc).unwrap(), data, "byte roundtrip failed");
        enc.len()
    }

    #[test]
    fn byte_layer_assorted() {
        roundtrip_bytes(b"");
        roundtrip_bytes(b"x");
        roundtrip_bytes(b"aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa");
        roundtrip_bytes(b"abcabcabcabcabcabcabcabcabc");
        // Snappy copies cap at 64 bytes, so a 100 KB run needs ~1600 copies.
        let long = vec![7u8; 100_000];
        assert!(roundtrip_bytes(&long) < 8_000);
    }

    #[test]
    fn long_literals_use_extension_bytes() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(8);
        let data: Vec<u8> = (0..70_000).map(|_| rng.gen()).collect();
        roundtrip_bytes(&data);
    }

    #[test]
    fn float_roundtrip_bit_exact() {
        let c = Snappy;
        let v: Vec<f64> = (0..4096).map(|i| ((i * 37) % 91) as f64 * 0.25).collect();
        let bytes = c.compress(&v, ErrorBound::Abs(0.0), &stream()).unwrap();
        let rec = c.decompress(&bytes, &stream()).unwrap();
        for (a, b) in v.iter().zip(&rec) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn random_floats_near_ratio_one() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(6);
        let v: Vec<f64> = (0..8192).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let c = Snappy;
        let bytes = c.compress(&v, ErrorBound::Abs(0.0), &stream()).unwrap();
        let cr = (v.len() * 8) as f64 / bytes.len() as f64;
        assert!(cr < 1.2 && cr > 0.8, "CR={cr:.2}");
    }

    #[test]
    fn corrupt_input_errors() {
        let c = Snappy;
        let v: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let bytes = c.compress(&v, ErrorBound::Abs(0.0), &stream()).unwrap();
        for cut in [0, 1, 4, bytes.len() - 2] {
            assert!(c.decompress(&bytes[..cut], &stream()).is_err());
        }
        // bogus copy offset
        assert!(snappy_decode(&[4, 0b10 | (3 << 2), 9, 0]).is_err());
    }
}
