//! cuSZ — prediction-based error-bounded lossy compression (Tian et al.).
//!
//! The ratio-oriented GPU compressor the paper's framework builds on. The
//! pipeline is cuSZ's dual-quantization formulation:
//!
//! 1. **Pre-quantization**: `ep_i = round(x_i / 2eb)` — after this every
//!    reconstruction `ep_i · 2eb` is within `eb` of `x_i` by construction.
//! 2. **Lorenzo prediction** (1D): `δ_i = ep_i − ep_{i−1}`; smooth data gives
//!    δ concentrated around 0.
//! 3. **Quant-code clamping**: |δ| < `radius` becomes symbol `δ + radius`;
//!    anything else is an *outlier* stored exactly in a sparse side list
//!    (symbol 0 marks its position).
//! 4. **Canonical Huffman** over the symbol stream.
//!
//! GPU cost: a streaming dual-quant kernel, an atomic histogram kernel, a
//! (partly serial) codebook build, and a bit-serial Huffman emission kernel —
//! the same stage structure cuSZ profiles on an A100. Symbols are coded in
//! chunks with a gap array ([`codec_kit::chunked`]), matching cuSZ's
//! thread-block-parallel decode layout.

use crate::traits::{
    read_stream_header, stream_header_into, value_range, Compressor, CompressorKind, ErrorBound,
};
use codec_kit::chunked::{decode_chunked_into, encode_chunked_into, DEFAULT_CHUNK};
use codec_kit::varint::{read_ivarint, read_uvarint, write_ivarint, write_uvarint};
use codec_kit::CodecError;
use gpu_model::exec::par_map_blocks;
use gpu_model::{KernelSpec, MemoryPattern, Stream};

/// Stream id of cuSZ.
pub const CUSZ_ID: u8 = 1;

/// Quant-code radius: codes live in `(-radius, radius)`, alphabet `2·radius`.
const DEFAULT_RADIUS: i64 = 512;

/// The cuSZ compressor.
#[derive(Debug, Clone)]
pub struct CuSz {
    radius: i64,
}

impl Default for CuSz {
    fn default() -> Self {
        CuSz {
            radius: DEFAULT_RADIUS,
        }
    }
}

impl CuSz {
    /// Creates cuSZ with a custom quant-code radius (alphabet = 2·radius).
    ///
    /// # Panics
    /// Panics unless `8 ≤ radius ≤ 2^20`.
    pub fn with_radius(radius: i64) -> Self {
        assert!((8..=1 << 20).contains(&radius), "radius out of range");
        CuSz { radius }
    }

    /// The quant-code radius (alphabet = 2·radius).
    pub fn radius(&self) -> i64 {
        self.radius
    }
}

/// Values per parallel dual-quant block.
const QUANT_BLOCK: usize = 1 << 14;

/// Quantizes into (symbols, outliers); shared with the framework crate.
///
/// Block-parallel: `δ_i` depends only on `ep_i` and `ep_{i−1}`, both pure
/// functions of the input, so each block re-derives its predecessor's `ep`
/// from `data[lo−1]` and proceeds independently. Blocks concatenate in
/// index order — symbols and the outlier list are identical to the serial
/// single-pass walk.
pub(crate) fn dual_quant(data: &[f64], twoeb: f64, radius: i64) -> (Vec<u32>, Vec<(usize, i64)>) {
    let parts = par_map_blocks(data, QUANT_BLOCK, |b, chunk| {
        let base = b * QUANT_BLOCK;
        let mut symbols = Vec::with_capacity(chunk.len());
        let mut outliers = Vec::new();
        let mut prev_ep = if base == 0 {
            0i64
        } else {
            (data[base - 1] / twoeb).round() as i64
        };
        for (j, &x) in chunk.iter().enumerate() {
            let ep = (x / twoeb).round() as i64;
            let delta = ep - prev_ep;
            if delta > -radius && delta < radius {
                symbols.push((delta + radius) as u32);
            } else {
                symbols.push(0);
                outliers.push((base + j, ep));
            }
            prev_ep = ep;
        }
        (symbols, outliers)
    });
    let mut symbols = Vec::with_capacity(data.len());
    let mut outliers = Vec::new();
    for (s, o) in &parts {
        symbols.extend_from_slice(s);
        outliers.extend_from_slice(o);
    }
    (symbols, outliers)
}

impl Compressor for CuSz {
    fn name(&self) -> &'static str {
        "cuSZ"
    }

    fn id(&self) -> u8 {
        CUSZ_ID
    }

    fn kind(&self) -> CompressorKind {
        CompressorKind::ErrorBounded
    }

    fn compress_raw(
        &self,
        data: &[f64],
        bound: ErrorBound,
        stream: &Stream,
    ) -> Result<Vec<u8>, CodecError> {
        let mut out = Vec::new();
        self.compress_raw_into(data, bound, stream, &mut out)?;
        Ok(out)
    }

    fn compress_raw_into(
        &self,
        data: &[f64],
        bound: ErrorBound,
        stream: &Stream,
        out: &mut Vec<u8>,
    ) -> Result<(), CodecError> {
        let (min, max) = value_range(data);
        let eb = bound.to_abs(max - min);
        if eb.is_nan() || eb <= 0.0 {
            return Err(CodecError::Unsupported("error bound must be positive"));
        }
        let twoeb = 2.0 * eb;
        let n = data.len();
        let nbytes = (n * 8) as u64;
        let ws = crate::workspace();

        // Kernel 1: fused pre-quant + Lorenzo delta (streaming; writes u16
        // codes and the sparse outlier list).
        let (symbols, outliers) = stream.launch(
            &KernelSpec::streaming("cusz::dual_quant", nbytes, (n * 2) as u64)
                .with_flops((n * 4) as u64),
            || dual_quant(data, twoeb, self.radius),
        );

        // Kernel 2: histogram (shared-memory atomics → Random pattern).
        let alphabet = (2 * self.radius) as usize;
        stream.launch(
            &KernelSpec::streaming("cusz::histogram", (n * 2) as u64, 4 * alphabet as u64)
                .with_pattern(MemoryPattern::Random),
            || (),
        );

        // Kernel 3: codebook construction — tiny but partially serial.
        stream.launch(
            &KernelSpec::streaming("cusz::huffman_build", 8 * alphabet as u64, alphabet as u64)
                .with_serial_fraction(0.02),
            || (),
        );

        stream_header_into(CUSZ_ID, n, out);
        out.extend_from_slice(&eb.to_le_bytes());
        write_uvarint(out, self.radius as u64);

        // Kernel 4: Huffman emission — the bit-serial stage that dominates.
        // Chunked with a gap array, as real cuSZ lays it out for
        // block-parallel decode (the codebook build above feeds it).
        let mut payload = ws.take_u8_spare(n / 2 + 64);
        stream.launch(
            &KernelSpec::streaming("cusz::huffman_encode", (n * 2) as u64, n as u64 / 2)
                .with_pattern(MemoryPattern::BitSerial),
            || encode_chunked_into(&symbols, alphabet, DEFAULT_CHUNK, &mut payload),
        );
        write_uvarint(out, payload.len() as u64);
        out.extend_from_slice(&payload);
        ws.put_u8(payload);

        // Outliers: gather kernel (sparse, Random).
        stream.launch(
            &KernelSpec::streaming("cusz::outlier_gather", 0, (outliers.len() * 12) as u64)
                .with_pattern(MemoryPattern::Random),
            || (),
        );
        write_uvarint(out, outliers.len() as u64);
        let mut last_idx = 0usize;
        for &(idx, ep) in &outliers {
            write_uvarint(out, (idx - last_idx) as u64);
            write_ivarint(out, ep);
            last_idx = idx;
        }
        Ok(())
    }

    fn decompress_raw(&self, bytes: &[u8], stream: &Stream) -> Result<Vec<f64>, CodecError> {
        let mut out = Vec::new();
        self.decompress_raw_into(bytes, stream, &mut out)?;
        Ok(out)
    }

    fn decompress_raw_into(
        &self,
        bytes: &[u8],
        stream: &Stream,
        out: &mut Vec<f64>,
    ) -> Result<(), CodecError> {
        let (n, mut pos) = read_stream_header(bytes, CUSZ_ID)?;
        if bytes.len() < pos + 8 {
            return Err(CodecError::UnexpectedEof);
        }
        let eb = f64::from_le_bytes(bytes[pos..pos + 8].try_into().unwrap());
        pos += 8;
        if eb.is_nan() || eb <= 0.0 || !eb.is_finite() {
            return Err(CodecError::Corrupt("bad error bound"));
        }
        let radius = read_uvarint(bytes, &mut pos)? as i64;
        if !(8..=1 << 20).contains(&radius) {
            return Err(CodecError::Corrupt("bad radius"));
        }
        let payload_len = read_uvarint(bytes, &mut pos)? as usize;
        if bytes.len() < pos + payload_len {
            return Err(CodecError::UnexpectedEof);
        }
        let payload = &bytes[pos..pos + payload_len];
        pos += payload_len;
        let ws = crate::workspace();

        // Kernel 1: Huffman decode — chunk-parallel thanks to the gap array.
        let mut symbols = ws.take_u32_spare(n);
        let decoded = stream.launch(
            &KernelSpec::streaming("cusz::huffman_decode", payload_len as u64, (n * 2) as u64)
                .with_pattern(MemoryPattern::BitSerial),
            || {
                decode_chunked_into(payload, &mut symbols)?;
                if symbols.len() != n {
                    return Err(CodecError::Corrupt("symbol count mismatch"));
                }
                Ok(())
            },
        );
        if let Err(e) = decoded {
            ws.put_u32(symbols);
            return Err(e);
        }

        // Outlier scatter.
        let result = (|| {
            let outlier_count = read_uvarint(bytes, &mut pos)? as usize;
            if outlier_count > n {
                return Err(CodecError::Corrupt("more outliers than elements"));
            }
            let mut outliers = Vec::with_capacity(outlier_count);
            let mut idx = 0usize;
            for k in 0..outlier_count {
                let delta = read_uvarint(bytes, &mut pos)? as usize;
                // checked_add: a forged delta must not overflow (debug
                // panic) before the range check fires.
                idx = idx
                    .checked_add(delta)
                    .filter(|&i| i < n)
                    .ok_or(CodecError::Corrupt("outlier index out of range"))?;
                if k > 0 && delta == 0 {
                    return Err(CodecError::Corrupt("duplicate outlier index"));
                }
                let ep = read_ivarint(bytes, &mut pos)?;
                outliers.push((idx, ep));
            }

            // Kernel 2: inverse Lorenzo (a prefix-sum; block-scan → Strided).
            let twoeb = 2.0 * eb;
            stream.launch(
                &KernelSpec::streaming("cusz::lorenzo_reconstruct", (n * 2) as u64, (n * 8) as u64)
                    .with_pattern(MemoryPattern::Strided)
                    .with_flops((n * 2) as u64),
                || {
                    out.clear();
                    out.reserve(n);
                    let mut ep = 0i64;
                    let mut next_outlier = 0usize;
                    for (i, &sym) in symbols.iter().enumerate() {
                        if sym == 0 {
                            if next_outlier >= outliers.len() || outliers[next_outlier].0 != i {
                                return Err(CodecError::Corrupt("missing outlier record"));
                            }
                            ep = outliers[next_outlier].1;
                            next_outlier += 1;
                        } else {
                            // Wrapping: forged outlier levels can sit at the
                            // i64 edges; reconstruction must not panic on
                            // overflow (the values are garbage either way
                            // and the checksum layer catches real
                            // corruption).
                            ep = ep.wrapping_add(sym as i64 - radius);
                        }
                        out.push(ep as f64 * twoeb);
                    }
                    Ok(())
                },
            )
        })();
        ws.put_u32(symbols);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::assert_bound;
    use gpu_model::DeviceSpec;

    fn stream() -> Stream {
        Stream::new(DeviceSpec::a100())
    }

    fn smooth_signal(n: usize) -> Vec<f64> {
        (0..n).map(|i| (i as f64 * 0.01).sin() * 0.8).collect()
    }

    #[test]
    fn roundtrip_within_bound_smooth() {
        let data = smooth_signal(10_000);
        let c = CuSz::default();
        for eb in [1e-2, 1e-3, 1e-4] {
            let bytes = c.compress(&data, ErrorBound::Abs(eb), &stream()).unwrap();
            let rec = c.decompress(&bytes, &stream()).unwrap();
            assert_bound(&data, &rec, eb);
        }
    }

    #[test]
    fn smooth_data_compresses_well() {
        let data = smooth_signal(100_000);
        let c = CuSz::default();
        let bytes = c.compress(&data, ErrorBound::Abs(1e-3), &stream()).unwrap();
        let cr = (data.len() * 8) as f64 / bytes.len() as f64;
        assert!(cr > 8.0, "smooth data CR only {cr:.1}");
    }

    #[test]
    fn random_data_generates_outliers_but_respects_bound() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        let data: Vec<f64> = (0..5_000).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let c = CuSz::default();
        let eb = 1e-5; // tight bound on noise → many outliers
        let bytes = c.compress(&data, ErrorBound::Abs(eb), &stream()).unwrap();
        let rec = c.decompress(&bytes, &stream()).unwrap();
        assert_bound(&data, &rec, eb);
    }

    #[test]
    fn relative_bound_resolved_against_range() {
        let data: Vec<f64> = (0..1000).map(|i| i as f64).collect(); // range 999
        let c = CuSz::default();
        let bytes = c.compress(&data, ErrorBound::Rel(1e-3), &stream()).unwrap();
        let rec = c.decompress(&bytes, &stream()).unwrap();
        assert_bound(&data, &rec, 0.999);
    }

    #[test]
    fn empty_and_single_element() {
        let c = CuSz::default();
        for data in [vec![], vec![0.5f64]] {
            let bytes = c.compress(&data, ErrorBound::Abs(1e-3), &stream()).unwrap();
            let rec = c.decompress(&bytes, &stream()).unwrap();
            assert_eq!(rec.len(), data.len());
            assert_bound(&data, &rec, 1e-3);
        }
    }

    #[test]
    fn constant_data_is_tiny() {
        let data = vec![0.25f64; 65_536];
        let c = CuSz::default();
        let bytes = c.compress(&data, ErrorBound::Abs(1e-4), &stream()).unwrap();
        assert!(
            bytes.len() < 20_000,
            "constant data took {} bytes",
            bytes.len()
        );
        let rec = c.decompress(&bytes, &stream()).unwrap();
        assert_bound(&data, &rec, 1e-4);
    }

    #[test]
    fn zero_bound_rejected() {
        let c = CuSz::default();
        assert!(c.compress(&[1.0], ErrorBound::Abs(0.0), &stream()).is_err());
    }

    #[test]
    fn corrupt_stream_errors_not_panics() {
        let c = CuSz::default();
        let data = smooth_signal(1000);
        let mut bytes = c.compress(&data, ErrorBound::Abs(1e-3), &stream()).unwrap();
        // Truncations at every prefix must error or return wrong-length data,
        // never panic.
        for cut in [0, 1, 5, bytes.len() / 2, bytes.len() - 1] {
            let _ = c.decompress(&bytes[..cut], &stream());
        }
        // Flip bits in the payload region.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        let _ = c.decompress(&bytes, &stream());
    }

    #[test]
    fn gpu_time_dominated_by_huffman_encode() {
        let data = smooth_signal(1 << 18);
        let c = CuSz::default();
        let s = stream();
        c.compress(&data, ErrorBound::Abs(1e-3), &s).unwrap();
        let huff = s.time_in("huffman_encode");
        let quant = s.time_in("dual_quant");
        assert!(
            huff > quant,
            "expected Huffman ({huff}) to dominate quant ({quant})"
        );
    }

    #[test]
    fn custom_radius_roundtrip() {
        let data = smooth_signal(4096);
        let c = CuSz::with_radius(64);
        let bytes = c.compress(&data, ErrorBound::Abs(1e-4), &stream()).unwrap();
        let rec = c.decompress(&bytes, &stream()).unwrap();
        assert_bound(&data, &rec, 1e-4);
    }
}
