//! cuSZ — prediction-based error-bounded lossy compression (Tian et al.).
//!
//! The ratio-oriented GPU compressor the paper's framework builds on. The
//! pipeline is cuSZ's dual-quantization formulation:
//!
//! 1. **Pre-quantization**: `ep_i = round(x_i / 2eb)` — after this every
//!    reconstruction `ep_i · 2eb` is within `eb` of `x_i` by construction.
//! 2. **Lorenzo prediction** (1D): `δ_i = ep_i − ep_{i−1}`; smooth data gives
//!    δ concentrated around 0.
//! 3. **Quant-code clamping**: |δ| < `radius` becomes symbol `δ + radius`;
//!    anything else is an *outlier* stored exactly in a sparse side list
//!    (symbol 0 marks its position).
//! 4. **Canonical Huffman** over the symbol stream.
//!
//! GPU cost: a streaming dual-quant kernel, an atomic histogram kernel, a
//! (partly serial) codebook build, and a bit-serial Huffman emission kernel —
//! the same stage structure cuSZ profiles on an A100. Symbols are coded in
//! chunks with a gap array ([`codec_kit::chunked`]), matching cuSZ's
//! thread-block-parallel decode layout.

use crate::traits::{
    read_stream_header, stream_header_into, value_range, Compressor, CompressorKind, ErrorBound,
};
use codec_kit::chunked::{decode_chunked_into_slice, encode_chunked_into, DEFAULT_CHUNK};
use codec_kit::varint::{read_ivarint, read_uvarint, write_ivarint, write_uvarint};
use codec_kit::CodecError;
use gpu_model::exec::par_map_chunks_mut;
use gpu_model::{with_arena_phase, KernelSpec, MemoryPattern, Stream};

/// Stream id of cuSZ.
pub const CUSZ_ID: u8 = 1;

/// Quant-code radius: codes live in `(-radius, radius)`, alphabet `2·radius`.
const DEFAULT_RADIUS: i64 = 512;

/// The cuSZ compressor.
#[derive(Debug, Clone)]
pub struct CuSz {
    radius: i64,
}

impl Default for CuSz {
    fn default() -> Self {
        CuSz {
            radius: DEFAULT_RADIUS,
        }
    }
}

impl CuSz {
    /// Creates cuSZ with a custom quant-code radius (alphabet = 2·radius).
    ///
    /// # Panics
    /// Panics unless `8 ≤ radius ≤ 2^20`.
    pub fn with_radius(radius: i64) -> Self {
        assert!((8..=1 << 20).contains(&radius), "radius out of range");
        CuSz { radius }
    }

    /// The quant-code radius (alphabet = 2·radius).
    pub fn radius(&self) -> i64 {
        self.radius
    }
}

/// Values per parallel dual-quant block.
const QUANT_BLOCK: usize = 1 << 14;

/// Width of the unrolled dual-quant inner loop.
const LANES: usize = 8;

/// Pre-quantization: `ep = round(x / 2eb)`. Deltas use wrapping arithmetic
/// everywhere (kernel, scalar reference, reconstruction) so non-finite
/// inputs — whose `as i64` casts saturate at the integer edges — quantize
/// without overflow panics in debug builds.
#[inline]
fn quantize(x: f64, twoeb: f64) -> i64 {
    (x / twoeb).round() as i64
}

/// Scalar reference for [`dual_quant_into`]: the serial single-pass walk.
///
/// This is the *definition* of the dual-quant output; the vectorized
/// kernel must stay bit-identical to it on every input (proptested in
/// `tests/kernel_proptests.rs`). Keep it boring.
pub fn dual_quant_scalar(data: &[f64], twoeb: f64, radius: i64) -> (Vec<u32>, Vec<(usize, i64)>) {
    let mut symbols = Vec::with_capacity(data.len());
    let mut outliers = Vec::new();
    let mut prev_ep = 0i64;
    for (i, &x) in data.iter().enumerate() {
        let ep = quantize(x, twoeb);
        let delta = ep.wrapping_sub(prev_ep);
        if delta > -radius && delta < radius {
            symbols.push((delta + radius) as u32);
        } else {
            symbols.push(0);
            outliers.push((i, ep));
        }
        prev_ep = ep;
    }
    (symbols, outliers)
}

/// Quantizes `data` into `symbols` (same length) and returns the sparse
/// outlier list. Bit-identical to [`dual_quant_scalar`].
///
/// Block-parallel: `δ_i` depends only on `ep_i` and `ep_{i−1}`, both pure
/// functions of the input, so each block re-derives its predecessor's `ep`
/// from `data[lo−1]` and proceeds independently; blocks concatenate in
/// index order. Within a block the loop is unrolled [`LANES`] wide with
/// branchless clamp/select — the out-of-range test for all eight lanes is
/// accumulated into one `u64` bitmask and only the (rare) set bits take
/// the outlier path, via `trailing_zeros`/`mask &= mask - 1`.
pub fn dual_quant_into(
    data: &[f64],
    twoeb: f64,
    radius: i64,
    symbols: &mut [u32],
) -> Vec<(usize, i64)> {
    assert_eq!(symbols.len(), data.len(), "symbol buffer length mismatch");
    let parts = par_map_chunks_mut(symbols, QUANT_BLOCK, |b, sym| {
        let base = b * QUANT_BLOCK;
        let chunk = &data[base..base + sym.len()];
        let prev_ep = if base == 0 {
            0i64
        } else {
            quantize(data[base - 1], twoeb)
        };
        dual_quant_block(chunk, twoeb, radius, prev_ep, base, sym)
    });
    let mut outliers = Vec::new();
    for o in &parts {
        outliers.extend_from_slice(o);
    }
    outliers
}

/// One block of the vectorized dual-quant kernel: writes `sym_out`
/// (`chunk.len()` symbols), returns the block's outliers at absolute
/// indices (`base +` local offset).
fn dual_quant_block(
    chunk: &[f64],
    twoeb: f64,
    radius: i64,
    mut prev_ep: i64,
    base: usize,
    sym_out: &mut [u32],
) -> Vec<(usize, i64)> {
    debug_assert_eq!(chunk.len(), sym_out.len());
    let mut outliers = Vec::new();
    let mut i = 0usize;
    while i + LANES <= chunk.len() {
        let mut ep = [0i64; LANES];
        for j in 0..LANES {
            ep[j] = quantize(chunk[i + j], twoeb);
        }
        let mut mask: u64 = 0;
        for j in 0..LANES {
            let pred = if j == 0 { prev_ep } else { ep[j - 1] };
            let delta = ep[j].wrapping_sub(pred);
            // Branchless select: symbol = δ + radius when in range, else 0
            // (the outlier marker). `ok as u32` negated gives an all-ones /
            // all-zeros mask; the wrapping add keeps out-of-range lanes
            // defined — their value is discarded by the mask anyway.
            let ok = (delta > -radius) & (delta < radius);
            sym_out[i + j] = (delta.wrapping_add(radius) as u32) & (ok as u32).wrapping_neg();
            mask |= ((!ok) as u64) << j;
        }
        // Rare path: visit only the set (outlier) bits.
        while mask != 0 {
            let j = mask.trailing_zeros() as usize;
            outliers.push((base + i + j, ep[j]));
            mask &= mask - 1;
        }
        prev_ep = ep[LANES - 1];
        i += LANES;
    }
    // Scalar tail, same arithmetic.
    while i < chunk.len() {
        let ep = quantize(chunk[i], twoeb);
        let delta = ep.wrapping_sub(prev_ep);
        if delta > -radius && delta < radius {
            sym_out[i] = (delta + radius) as u32;
        } else {
            sym_out[i] = 0;
            outliers.push((base + i, ep));
        }
        prev_ep = ep;
        i += 1;
    }
    outliers
}

impl Compressor for CuSz {
    fn name(&self) -> &'static str {
        "cuSZ"
    }

    fn id(&self) -> u8 {
        CUSZ_ID
    }

    fn kind(&self) -> CompressorKind {
        CompressorKind::ErrorBounded
    }

    fn compress_raw(
        &self,
        data: &[f64],
        bound: ErrorBound,
        stream: &Stream,
    ) -> Result<Vec<u8>, CodecError> {
        let mut out = Vec::new();
        self.compress_raw_into(data, bound, stream, &mut out)?;
        Ok(out)
    }

    fn compress_raw_into(
        &self,
        data: &[f64],
        bound: ErrorBound,
        stream: &Stream,
        out: &mut Vec<u8>,
    ) -> Result<(), CodecError> {
        let (min, max) = value_range(data);
        let eb = bound.to_abs(max - min);
        if eb.is_nan() || eb <= 0.0 {
            return Err(CodecError::Unsupported("error bound must be positive"));
        }
        let twoeb = 2.0 * eb;
        let n = data.len();
        let nbytes = (n * 8) as u64;
        let ws = crate::workspace();

        // The symbol buffer lives in the caller thread's bump arena for the
        // duration of this compression phase; the phase release reclaims it
        // with one cursor move.
        with_arena_phase(|arena| {
            // Kernel 1: fused pre-quant + Lorenzo delta (streaming; writes
            // u16 codes and the sparse outlier list).
            let symbols = arena.alloc_u32(n);
            let outliers = stream.launch(
                &KernelSpec::streaming("cusz::dual_quant", nbytes, (n * 2) as u64)
                    .with_flops((n * 4) as u64),
                || dual_quant_into(data, twoeb, self.radius, &mut *symbols),
            );

            // Kernel 2: histogram (shared-memory atomics → Random pattern).
            let alphabet = (2 * self.radius) as usize;
            stream.launch(
                &KernelSpec::streaming("cusz::histogram", (n * 2) as u64, 4 * alphabet as u64)
                    .with_pattern(MemoryPattern::Random),
                || (),
            );

            // Kernel 3: codebook construction — tiny but partially serial.
            stream.launch(
                &KernelSpec::streaming("cusz::huffman_build", 8 * alphabet as u64, alphabet as u64)
                    .with_serial_fraction(0.02),
                || (),
            );

            stream_header_into(CUSZ_ID, n, out);
            out.extend_from_slice(&eb.to_le_bytes());
            write_uvarint(out, self.radius as u64);

            // Kernel 4: Huffman emission — the bit-serial stage that
            // dominates. Chunked with a gap array, as real cuSZ lays it out
            // for block-parallel decode (the codebook build above feeds it).
            let mut payload = ws.take_u8_spare(n / 2 + 64);
            stream.launch(
                &KernelSpec::streaming("cusz::huffman_encode", (n * 2) as u64, n as u64 / 2)
                    .with_pattern(MemoryPattern::BitSerial),
                || encode_chunked_into(symbols, alphabet, DEFAULT_CHUNK, &mut payload),
            );
            write_uvarint(out, payload.len() as u64);
            out.extend_from_slice(&payload);
            ws.put_u8(payload);

            // Outliers: gather kernel (sparse, Random).
            stream.launch(
                &KernelSpec::streaming("cusz::outlier_gather", 0, (outliers.len() * 12) as u64)
                    .with_pattern(MemoryPattern::Random),
                || (),
            );
            write_uvarint(out, outliers.len() as u64);
            let mut last_idx = 0usize;
            for &(idx, ep) in &outliers {
                write_uvarint(out, (idx - last_idx) as u64);
                write_ivarint(out, ep);
                last_idx = idx;
            }
            Ok(())
        })
    }

    fn decompress_raw(&self, bytes: &[u8], stream: &Stream) -> Result<Vec<f64>, CodecError> {
        let mut out = Vec::new();
        self.decompress_raw_into(bytes, stream, &mut out)?;
        Ok(out)
    }

    fn decompress_raw_into(
        &self,
        bytes: &[u8],
        stream: &Stream,
        out: &mut Vec<f64>,
    ) -> Result<(), CodecError> {
        let (n, mut pos) = read_stream_header(bytes, CUSZ_ID)?;
        if bytes.len() < pos + 8 {
            return Err(CodecError::UnexpectedEof);
        }
        let eb = f64::from_le_bytes(bytes[pos..pos + 8].try_into().unwrap());
        pos += 8;
        if eb.is_nan() || eb <= 0.0 || !eb.is_finite() {
            return Err(CodecError::Corrupt("bad error bound"));
        }
        let radius = read_uvarint(bytes, &mut pos)? as i64;
        if !(8..=1 << 20).contains(&radius) {
            return Err(CodecError::Corrupt("bad radius"));
        }
        let payload_len = read_uvarint(bytes, &mut pos)? as usize;
        if bytes.len() < pos + payload_len {
            return Err(CodecError::UnexpectedEof);
        }
        let payload = &bytes[pos..pos + payload_len];
        pos += payload_len;

        with_arena_phase(|arena| {
            // Kernel 1: Huffman decode — chunk-parallel thanks to the gap
            // array, written straight into the arena-backed symbol buffer.
            let symbols = arena.alloc_u32(n);
            stream.launch(
                &KernelSpec::streaming("cusz::huffman_decode", payload_len as u64, (n * 2) as u64)
                    .with_pattern(MemoryPattern::BitSerial),
                || decode_chunked_into_slice(payload, &mut *symbols),
            )?;

            // Outlier scatter.
            let outlier_count = read_uvarint(bytes, &mut pos)? as usize;
            if outlier_count > n {
                return Err(CodecError::Corrupt("more outliers than elements"));
            }
            let mut outliers = Vec::with_capacity(outlier_count);
            let mut idx = 0usize;
            for k in 0..outlier_count {
                let delta = read_uvarint(bytes, &mut pos)? as usize;
                // checked_add: a forged delta must not overflow (debug
                // panic) before the range check fires.
                idx = idx
                    .checked_add(delta)
                    .filter(|&i| i < n)
                    .ok_or(CodecError::Corrupt("outlier index out of range"))?;
                if k > 0 && delta == 0 {
                    return Err(CodecError::Corrupt("duplicate outlier index"));
                }
                let ep = read_ivarint(bytes, &mut pos)?;
                outliers.push((idx, ep));
            }

            // Kernel 2: inverse Lorenzo (a prefix-sum; block-scan → Strided).
            let twoeb = 2.0 * eb;
            stream.launch(
                &KernelSpec::streaming("cusz::lorenzo_reconstruct", (n * 2) as u64, (n * 8) as u64)
                    .with_pattern(MemoryPattern::Strided)
                    .with_flops((n * 2) as u64),
                || {
                    out.clear();
                    out.reserve(n);
                    let mut ep = 0i64;
                    let mut next_outlier = 0usize;
                    for (i, &sym) in symbols.iter().enumerate() {
                        if sym == 0 {
                            if next_outlier >= outliers.len() || outliers[next_outlier].0 != i {
                                return Err(CodecError::Corrupt("missing outlier record"));
                            }
                            ep = outliers[next_outlier].1;
                            next_outlier += 1;
                        } else {
                            // Wrapping: forged outlier levels can sit at the
                            // i64 edges; reconstruction must not panic on
                            // overflow (the values are garbage either way
                            // and the checksum layer catches real
                            // corruption).
                            ep = ep.wrapping_add(sym as i64 - radius);
                        }
                        out.push(ep as f64 * twoeb);
                    }
                    Ok(())
                },
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::assert_bound;
    use gpu_model::DeviceSpec;

    fn stream() -> Stream {
        Stream::new(DeviceSpec::a100())
    }

    fn smooth_signal(n: usize) -> Vec<f64> {
        (0..n).map(|i| (i as f64 * 0.01).sin() * 0.8).collect()
    }

    #[test]
    fn roundtrip_within_bound_smooth() {
        let data = smooth_signal(10_000);
        let c = CuSz::default();
        for eb in [1e-2, 1e-3, 1e-4] {
            let bytes = c.compress(&data, ErrorBound::Abs(eb), &stream()).unwrap();
            let rec = c.decompress(&bytes, &stream()).unwrap();
            assert_bound(&data, &rec, eb);
        }
    }

    #[test]
    fn smooth_data_compresses_well() {
        let data = smooth_signal(100_000);
        let c = CuSz::default();
        let bytes = c.compress(&data, ErrorBound::Abs(1e-3), &stream()).unwrap();
        let cr = (data.len() * 8) as f64 / bytes.len() as f64;
        assert!(cr > 8.0, "smooth data CR only {cr:.1}");
    }

    #[test]
    fn random_data_generates_outliers_but_respects_bound() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        let data: Vec<f64> = (0..5_000).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let c = CuSz::default();
        let eb = 1e-5; // tight bound on noise → many outliers
        let bytes = c.compress(&data, ErrorBound::Abs(eb), &stream()).unwrap();
        let rec = c.decompress(&bytes, &stream()).unwrap();
        assert_bound(&data, &rec, eb);
    }

    #[test]
    fn relative_bound_resolved_against_range() {
        let data: Vec<f64> = (0..1000).map(|i| i as f64).collect(); // range 999
        let c = CuSz::default();
        let bytes = c.compress(&data, ErrorBound::Rel(1e-3), &stream()).unwrap();
        let rec = c.decompress(&bytes, &stream()).unwrap();
        assert_bound(&data, &rec, 0.999);
    }

    #[test]
    fn empty_and_single_element() {
        let c = CuSz::default();
        for data in [vec![], vec![0.5f64]] {
            let bytes = c.compress(&data, ErrorBound::Abs(1e-3), &stream()).unwrap();
            let rec = c.decompress(&bytes, &stream()).unwrap();
            assert_eq!(rec.len(), data.len());
            assert_bound(&data, &rec, 1e-3);
        }
    }

    #[test]
    fn constant_data_is_tiny() {
        let data = vec![0.25f64; 65_536];
        let c = CuSz::default();
        let bytes = c.compress(&data, ErrorBound::Abs(1e-4), &stream()).unwrap();
        assert!(
            bytes.len() < 20_000,
            "constant data took {} bytes",
            bytes.len()
        );
        let rec = c.decompress(&bytes, &stream()).unwrap();
        assert_bound(&data, &rec, 1e-4);
    }

    #[test]
    fn zero_bound_rejected() {
        let c = CuSz::default();
        assert!(c.compress(&[1.0], ErrorBound::Abs(0.0), &stream()).is_err());
    }

    #[test]
    fn corrupt_stream_errors_not_panics() {
        let c = CuSz::default();
        let data = smooth_signal(1000);
        let mut bytes = c.compress(&data, ErrorBound::Abs(1e-3), &stream()).unwrap();
        // Truncations at every prefix must error or return wrong-length data,
        // never panic.
        for cut in [0, 1, 5, bytes.len() / 2, bytes.len() - 1] {
            let _ = c.decompress(&bytes[..cut], &stream());
        }
        // Flip bits in the payload region.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        let _ = c.decompress(&bytes, &stream());
    }

    #[test]
    fn gpu_time_dominated_by_huffman_encode() {
        let data = smooth_signal(1 << 18);
        let c = CuSz::default();
        let s = stream();
        c.compress(&data, ErrorBound::Abs(1e-3), &s).unwrap();
        let huff = s.time_in("huffman_encode");
        let quant = s.time_in("dual_quant");
        assert!(
            huff > quant,
            "expected Huffman ({huff}) to dominate quant ({quant})"
        );
    }

    #[test]
    fn custom_radius_roundtrip() {
        let data = smooth_signal(4096);
        let c = CuSz::with_radius(64);
        let bytes = c.compress(&data, ErrorBound::Abs(1e-4), &stream()).unwrap();
        let rec = c.decompress(&bytes, &stream()).unwrap();
        assert_bound(&data, &rec, 1e-4);
    }
}
