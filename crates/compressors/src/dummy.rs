//! Memcpy — the no-op baseline (nvCOMP benchmarks report it too).
//!
//! Compression ratio exactly 1 at raw copy bandwidth: the floor every other
//! compressor is judged against.

use crate::traits::{
    read_stream_header, stream_header_into, Compressor, CompressorKind, ErrorBound,
};
use codec_kit::CodecError;
use gpu_model::{KernelSpec, Stream};

/// Stream id of the memcpy baseline.
pub const MEMCPY_ID: u8 = 9;

/// The identity "compressor".
#[derive(Debug, Clone, Default)]
pub struct Memcpy;

impl Compressor for Memcpy {
    fn name(&self) -> &'static str {
        "memcpy"
    }

    fn id(&self) -> u8 {
        MEMCPY_ID
    }

    fn kind(&self) -> CompressorKind {
        CompressorKind::Lossless
    }

    fn compress_raw(
        &self,
        data: &[f64],
        bound: ErrorBound,
        stream: &Stream,
    ) -> Result<Vec<u8>, CodecError> {
        let mut out = Vec::new();
        self.compress_raw_into(data, bound, stream, &mut out)?;
        Ok(out)
    }

    /// Writes directly into `out` — with warm capacity this path performs
    /// zero heap allocations, which is what makes the compressed-state
    /// apply loop's steady state allocation-free under a lossless codec.
    fn compress_raw_into(
        &self,
        data: &[f64],
        _bound: ErrorBound,
        stream: &Stream,
        out: &mut Vec<u8>,
    ) -> Result<(), CodecError> {
        let nbytes = (data.len() * 8) as u64;
        stream_header_into(MEMCPY_ID, data.len(), out);
        stream.launch(
            &KernelSpec::streaming("memcpy::copy", nbytes, nbytes),
            || {
                out.reserve(data.len() * 8);
                for v in data {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            },
        );
        Ok(())
    }

    fn decompress_raw(&self, bytes: &[u8], stream: &Stream) -> Result<Vec<f64>, CodecError> {
        let mut out = Vec::new();
        self.decompress_raw_into(bytes, stream, &mut out)?;
        Ok(out)
    }

    fn decompress_raw_into(
        &self,
        bytes: &[u8],
        stream: &Stream,
        out: &mut Vec<f64>,
    ) -> Result<(), CodecError> {
        let (n, pos) = read_stream_header(bytes, MEMCPY_ID)?;
        if bytes.len() < pos + n * 8 {
            return Err(CodecError::UnexpectedEof);
        }
        let nbytes = (n * 8) as u64;
        stream.launch(
            &KernelSpec::streaming("memcpy::copy", nbytes, nbytes),
            || {
                out.clear();
                out.reserve(n);
                out.extend(
                    bytes[pos..pos + n * 8]
                        .chunks_exact(8)
                        .map(|c| f64::from_le_bytes(c.try_into().unwrap())),
                );
            },
        );
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_model::DeviceSpec;

    #[test]
    fn identity_roundtrip() {
        let s = Stream::new(DeviceSpec::a100());
        let v = vec![1.0f64, -2.5, f64::NAN, 0.0];
        let bytes = Memcpy.compress(&v, ErrorBound::Abs(0.0), &s).unwrap();
        assert_eq!(
            bytes.len(),
            v.len() * 8 + 2 + codec_kit::frame::FRAME_OVERHEAD
        );
        let rec = Memcpy.decompress(&bytes, &s).unwrap();
        for (a, b) in v.iter().zip(&rec) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn runs_at_copy_bandwidth() {
        let s = Stream::new(DeviceSpec::a100());
        let v = vec![0.5f64; 1 << 20];
        Memcpy.compress(&v, ErrorBound::Abs(0.0), &s).unwrap();
        let gbps = s.throughput((v.len() * 8) as u64) / 1e9;
        assert!(gbps > 500.0, "memcpy at only {gbps:.0} GB/s");
    }

    #[test]
    fn truncated_errors() {
        let s = Stream::new(DeviceSpec::a100());
        let bytes = Memcpy
            .compress(&[1.0, 2.0], ErrorBound::Abs(0.0), &s)
            .unwrap();
        assert!(Memcpy.decompress(&bytes[..bytes.len() - 1], &s).is_err());
    }
}
