//! Cascaded — nvCOMP's integer scheme: RLE → delta → bit-packing.
//!
//! Stage 1 run-length encodes the input's 64-bit words; stage 2 deltas the
//! surviving values (split into 32-bit low/high planes); stage 3 bit-packs
//! planes and run lengths at their required widths. On integer-like or
//! highly repetitive data this excels; on floating-point mantissa noise
//! every stage whiffs, so the stream carries a raw-fallback flag — exactly
//! the behaviour the paper reports for Cascaded on tensors.

use crate::traits::{read_stream_header, stream_header, Compressor, CompressorKind, ErrorBound};
use codec_kit::bitio::{BitReader, BitWriter};
use codec_kit::bitpack::{pack, required_width, unpack};
use codec_kit::varint::{read_uvarint, write_uvarint};
use codec_kit::CodecError;
use gpu_model::{KernelSpec, MemoryPattern, Stream};

/// Stream id of Cascaded.
pub const CASCADED_ID: u8 = 7;

/// The Cascaded compressor.
#[derive(Debug, Clone, Default)]
pub struct Cascaded;

/// Encodes 64-bit words through RLE→delta→bitpack; returns `None` when the
/// result would not beat raw storage. The RLE runs over whole 64-bit words
/// (one per double); surviving values are split into 32-bit low/high planes
/// that are delta'd and packed independently — the plane split is what lets
/// slowly varying exponent words pack narrow even when mantissas churn.
fn cascade_encode(words: &[u64]) -> Option<Vec<u8>> {
    // Stage 1: RLE over 64-bit words.
    let mut values: Vec<u64> = Vec::new();
    let mut runs: Vec<u64> = Vec::new();
    let mut i = 0usize;
    while i < words.len() {
        let v = words[i];
        let mut run = 1usize;
        while i + run < words.len() && words[i + run] == v {
            run += 1;
        }
        values.push(v);
        runs.push(run as u64);
        i += run;
    }

    // Stage 2: split surviving values into 32-bit planes, delta each
    // (zigzagged so the packer sees small unsigned codes).
    let mut lo: Vec<u64> = Vec::with_capacity(values.len());
    let mut hi: Vec<u64> = Vec::with_capacity(values.len());
    let (mut prev_lo, mut prev_hi) = (0i64, 0i64);
    for &v in &values {
        let l = (v & 0xFFFF_FFFF) as i64;
        let h = (v >> 32) as i64;
        lo.push(codec_kit::varint::zigzag(l - prev_lo));
        hi.push(codec_kit::varint::zigzag(h - prev_hi));
        prev_lo = l;
        prev_hi = h;
    }

    // Stage 3: bit-pack all three streams at their required widths.
    let lw = required_width(&lo).min(57);
    let hw = required_width(&hi).min(57);
    let rw = required_width(&runs).min(57);
    let mut w = BitWriter::with_capacity(values.len() * 8);
    w.write_bits(values.len() as u64 & 0xFFFF_FFFF, 32);
    w.write_bits((values.len() as u64) >> 32, 25);
    w.write_bits(lw as u64, 6);
    w.write_bits(hw as u64, 6);
    w.write_bits(rw as u64, 6);
    pack(&lo, lw, &mut w);
    pack(&hi, hw, &mut w);
    pack(&runs, rw, &mut w);
    let out = w.finish();
    if out.len() < words.len() * 8 {
        Some(out)
    } else {
        None
    }
}

fn cascade_decode(payload: &[u8], n_words: usize) -> Result<Vec<u64>, CodecError> {
    let mut r = BitReader::new(payload);
    let c_lo = r.read_bits(32)?;
    let c_hi = r.read_bits(25)?;
    let n_values = (c_lo | (c_hi << 32)) as usize;
    if n_values > n_words {
        return Err(CodecError::Corrupt("cascaded value count exceeds words"));
    }
    let lw = r.read_bits(6)? as u32;
    let hw = r.read_bits(6)? as u32;
    let rw = r.read_bits(6)? as u32;
    let lo = unpack(&mut r, lw, n_values)?;
    let hi = unpack(&mut r, hw, n_values)?;
    let runs = unpack(&mut r, rw, n_values)?;

    let mut out = Vec::with_capacity(n_words);
    let (mut prev_lo, mut prev_hi) = (0i64, 0i64);
    for ((&l, &h), &run) in lo.iter().zip(&hi).zip(&runs) {
        let vl = prev_lo + codec_kit::varint::unzigzag(l);
        let vh = prev_hi + codec_kit::varint::unzigzag(h);
        if !(0..=u32::MAX as i64).contains(&vl) || !(0..=u32::MAX as i64).contains(&vh) {
            return Err(CodecError::Corrupt("cascaded delta out of plane range"));
        }
        let v = (vl as u64) | ((vh as u64) << 32);
        if run == 0 || out.len() + run as usize > n_words {
            return Err(CodecError::Corrupt("cascaded run overruns output"));
        }
        out.resize(out.len() + run as usize, v);
        prev_lo = vl;
        prev_hi = vh;
    }
    if out.len() != n_words {
        return Err(CodecError::Corrupt("cascaded output length mismatch"));
    }
    Ok(out)
}

impl Compressor for Cascaded {
    fn name(&self) -> &'static str {
        "Cascaded"
    }

    fn id(&self) -> u8 {
        CASCADED_ID
    }

    fn kind(&self) -> CompressorKind {
        CompressorKind::Lossless
    }

    fn compress_raw(
        &self,
        data: &[f64],
        _bound: ErrorBound,
        stream: &Stream,
    ) -> Result<Vec<u8>, CodecError> {
        let words: Vec<u64> = data.iter().map(|v| v.to_bits()).collect();
        let mut out = stream_header(CASCADED_ID, data.len());
        let nbytes = (words.len() * 8) as u64;
        let encoded = stream.launch(
            &KernelSpec::streaming("cascaded::rle_delta_pack", 2 * nbytes, nbytes / 2)
                .with_pattern(MemoryPattern::Strided)
                .with_flops(words.len() as u64 * 2),
            || cascade_encode(&words),
        );
        match encoded {
            Some(payload) => {
                out.push(1); // cascaded payload
                write_uvarint(&mut out, payload.len() as u64);
                out.extend_from_slice(&payload);
            }
            None => {
                out.push(0); // raw fallback
                stream.launch(
                    &KernelSpec::streaming("cascaded::raw_copy", nbytes, nbytes),
                    || (),
                );
                for w in &words {
                    out.extend_from_slice(&w.to_le_bytes());
                }
            }
        }
        Ok(out)
    }

    fn decompress_raw(&self, bytes: &[u8], stream: &Stream) -> Result<Vec<f64>, CodecError> {
        let (n, mut pos) = read_stream_header(bytes, CASCADED_ID)?;
        let mode = *bytes.get(pos).ok_or(CodecError::UnexpectedEof)?;
        pos += 1;
        let n_words = n;
        let words: Vec<u64> = match mode {
            1 => {
                let payload_len = read_uvarint(bytes, &mut pos)? as usize;
                if bytes.len() < pos + payload_len {
                    return Err(CodecError::UnexpectedEof);
                }
                stream.launch(
                    &KernelSpec::streaming(
                        "cascaded::unpack_scan",
                        payload_len as u64,
                        (n_words * 8) as u64,
                    )
                    .with_pattern(MemoryPattern::Strided),
                    || cascade_decode(&bytes[pos..pos + payload_len], n_words),
                )?
            }
            0 => {
                if bytes.len() < pos + n_words * 8 {
                    return Err(CodecError::UnexpectedEof);
                }
                stream.launch(
                    &KernelSpec::streaming(
                        "cascaded::raw_copy",
                        (n_words * 8) as u64,
                        (n_words * 8) as u64,
                    ),
                    || (),
                );
                bytes[pos..pos + n_words * 8]
                    .chunks_exact(8)
                    .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
                    .collect()
            }
            _ => return Err(CodecError::Corrupt("bad cascaded mode byte")),
        };
        Ok(words.into_iter().map(f64::from_bits).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_model::DeviceSpec;
    use rand::{Rng, SeedableRng};

    fn stream() -> Stream {
        Stream::new(DeviceSpec::a100())
    }

    fn roundtrip(data: &[f64]) -> usize {
        let c = Cascaded;
        let bytes = c.compress(data, ErrorBound::Abs(0.0), &stream()).unwrap();
        let rec = c.decompress(&bytes, &stream()).unwrap();
        assert_eq!(rec.len(), data.len());
        for (a, b) in data.iter().zip(&rec) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        bytes.len()
    }

    #[test]
    fn repetitive_data_uses_cascade() {
        let n = roundtrip(&vec![0.0f64; 10_000]);
        assert!(n < 64, "all-zero took {n} bytes");
        let n2 = roundtrip(&vec![1.5f64; 10_000]);
        assert!(n2 < 64, "constant took {n2} bytes");
    }

    #[test]
    fn random_floats_fall_back_to_raw() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(12);
        let v: Vec<f64> = (0..4096).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let n = roundtrip(&v);
        // raw fallback: 8 bytes/elem + small header
        let cr = (v.len() * 8) as f64 / n as f64;
        assert!(cr <= 1.0 + 1e-3 && cr > 0.99, "CR={cr}");
    }

    #[test]
    fn empty_and_small() {
        roundtrip(&[]);
        roundtrip(&[42.0]);
        roundtrip(&[1.0, 1.0, 2.0]);
    }

    #[test]
    fn integer_like_data_compresses_well() {
        // Doubles that are small integers: upper words constant, lower words
        // slowly varying — cascaded's home turf.
        let v: Vec<f64> = (0..8192).map(|i| (i / 64) as f64).collect();
        let n = roundtrip(&v);
        let cr = (v.len() * 8) as f64 / n as f64;
        assert!(cr > 4.0, "integer-like CR={cr:.1}");
    }

    #[test]
    fn corrupt_stream_errors() {
        let c = Cascaded;
        let v = vec![1.0f64; 100];
        let bytes = c.compress(&v, ErrorBound::Abs(0.0), &stream()).unwrap();
        for cut in [0, 1, 3, bytes.len() - 1] {
            assert!(c.decompress(&bytes[..cut], &stream()).is_err());
        }
        let mut bad = bytes.clone();
        bad[2] = 9; // invalid mode byte position may vary; just must not panic
        let _ = c.decompress(&bad, &stream());
    }
}
