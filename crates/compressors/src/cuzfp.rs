//! cuZFP — transform-based fixed-accuracy compression (1D ZFP).
//!
//! ZFP operates on blocks of 4 values (1D): align the block to a common
//! exponent (block-floating-point into 62-bit ints), apply the reversible
//! integer lifting transform, map to negabinary, and emit bit planes from
//! most significant down, stopping at the precision the error tolerance
//! requires. This implementation is faithful to that structure with one
//! simplification, documented here: bit planes are emitted raw (no
//! group-testing flags), costing some ratio on small-magnitude planes but
//! preserving the error-bound contract and the performance profile.

use crate::traits::{
    read_stream_header, stream_header_into, value_range, Compressor, CompressorKind, ErrorBound,
};
use codec_kit::bitio::{BitReader, BitWriter};
use codec_kit::varint::{read_uvarint, write_uvarint};
use codec_kit::CodecError;
use gpu_model::{KernelSpec, MemoryPattern, Stream};

/// Stream id of cuZFP.
pub const CUZFP_ID: u8 = 3;

/// Values per 1D block.
const BLOCK: usize = 4;
/// Integer precision after block-floating-point conversion.
const INT_PREC: u32 = 62;
/// Exponent bias for the 12-bit stored emax.
const EMAX_BIAS: i32 = 1200;
/// Guard bits covering truncation slack (+1 plane), the inverse-transform
/// error gain (≤ 2 per Haar level, 2 levels) and block-floating-point
/// rounding. Truncating to `maxprec = emax − e_tol + GUARD_BITS` planes
/// keeps the reconstruction within `2^e_tol ≤ eb`. (Like real zfp, bounds
/// tighter than ~2^(emax−53) are below what 62-bit ints can honour.)
const GUARD_BITS: i32 = 9;

/// The cuZFP compressor (fixed-accuracy mode).
#[derive(Debug, Clone, Default)]
pub struct CuZfp;

impl Compressor for CuZfp {
    fn name(&self) -> &'static str {
        "cuZFP"
    }

    fn id(&self) -> u8 {
        CUZFP_ID
    }

    fn kind(&self) -> CompressorKind {
        CompressorKind::ErrorBounded
    }

    fn compress_raw(
        &self,
        data: &[f64],
        bound: ErrorBound,
        stream: &Stream,
    ) -> Result<Vec<u8>, CodecError> {
        let mut out = Vec::new();
        self.compress_raw_into(data, bound, stream, &mut out)?;
        Ok(out)
    }

    fn compress_raw_into(
        &self,
        data: &[f64],
        bound: ErrorBound,
        stream: &Stream,
        out: &mut Vec<u8>,
    ) -> Result<(), CodecError> {
        let (min, max) = value_range(data);
        let eb = bound.to_abs(max - min);
        if eb.is_nan() || eb <= 0.0 {
            return Err(CodecError::Unsupported("error bound must be positive"));
        }
        let n = data.len();
        let e_tol = eb.log2().floor() as i32;
        let ws = crate::workspace();

        stream_header_into(CUZFP_ID, n, out);
        out.extend_from_slice(&eb.to_le_bytes());

        let payload = stream.launch(
            &KernelSpec::streaming("zfp::block_encode", (n * 8) as u64, (n * 3) as u64)
                .with_pattern(MemoryPattern::Strided)
                .with_flops((n * 12) as u64),
            || {
                let mut w = BitWriter::from_vec(ws.take_u8_spare(n * 3));
                for chunk in data.chunks(BLOCK) {
                    let mut block = [0.0f64; BLOCK];
                    block[..chunk.len()].copy_from_slice(chunk);
                    encode_block(&block, e_tol, &mut w);
                }
                w.finish()
            },
        );
        write_uvarint(out, payload.len() as u64);
        out.extend_from_slice(&payload);
        ws.put_u8(payload);
        Ok(())
    }

    fn decompress_raw(&self, bytes: &[u8], stream: &Stream) -> Result<Vec<f64>, CodecError> {
        let mut out = Vec::new();
        self.decompress_raw_into(bytes, stream, &mut out)?;
        Ok(out)
    }

    fn decompress_raw_into(
        &self,
        bytes: &[u8],
        stream: &Stream,
        out: &mut Vec<f64>,
    ) -> Result<(), CodecError> {
        let (n, mut pos) = read_stream_header(bytes, CUZFP_ID)?;
        if bytes.len() < pos + 8 {
            return Err(CodecError::UnexpectedEof);
        }
        let eb = f64::from_le_bytes(bytes[pos..pos + 8].try_into().unwrap());
        pos += 8;
        if eb.is_nan() || eb <= 0.0 || !eb.is_finite() {
            return Err(CodecError::Corrupt("bad error bound"));
        }
        let payload_len = read_uvarint(bytes, &mut pos)? as usize;
        if bytes.len() < pos + payload_len {
            return Err(CodecError::UnexpectedEof);
        }
        let payload = &bytes[pos..pos + payload_len];

        stream.launch(
            &KernelSpec::streaming("zfp::block_decode", payload_len as u64, (n * 8) as u64)
                .with_pattern(MemoryPattern::Strided)
                .with_flops((n * 12) as u64),
            || {
                let mut r = BitReader::new(payload);
                out.clear();
                out.reserve(n + BLOCK);
                let blocks = n.div_ceil(BLOCK);
                for _ in 0..blocks {
                    let block = decode_block(&mut r)?;
                    out.extend_from_slice(&block);
                }
                out.truncate(n);
                Ok(())
            },
        )
    }
}

fn encode_block(block: &[f64; BLOCK], e_tol: i32, w: &mut BitWriter) {
    let maxabs = block.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
    if maxabs == 0.0 {
        w.write_bit(true); // zero block
        return;
    }
    w.write_bit(false);

    // Block-floating-point: common exponent, 62-bit signed ints.
    let emax = exponent_of(maxabs);
    let k = INT_PREC as i32 - 4 - emax;
    let mut ints = [0i64; BLOCK];
    for (i, &v) in block.iter().enumerate() {
        ints[i] = mul_pow2(v, k).round() as i64;
    }
    forward_lift(&mut ints);

    // Negabinary: order-preserving unsigned mapping friendly to truncation.
    let neg: [u64; BLOCK] = ints.map(int_to_negabinary);

    // Precision needed for the tolerance (see GUARD_BITS analysis).
    let maxprec = (emax - e_tol + GUARD_BITS).clamp(0, INT_PREC as i32) as u32;
    w.write_bits((emax + EMAX_BIAS) as u64, 12);
    w.write_bits(maxprec as u64, 6);

    // Bit planes, MSB first: plane p holds bit (INT_PREC-1-p) of each value.
    for p in 0..maxprec {
        let bit = INT_PREC - 1 - p;
        let mut plane = 0u64;
        for (i, &v) in neg.iter().enumerate() {
            plane |= ((v >> bit) & 1) << i;
        }
        w.write_bits(plane, BLOCK as u32);
    }
}

fn decode_block(r: &mut BitReader<'_>) -> Result<[f64; BLOCK], CodecError> {
    if r.read_bit()? {
        return Ok([0.0; BLOCK]);
    }
    let emax = r.read_bits(12)? as i32 - EMAX_BIAS;
    if !(-1100..=1100).contains(&emax) {
        return Err(CodecError::Corrupt("zfp emax out of range"));
    }
    let maxprec = r.read_bits(6)? as u32;
    if maxprec > INT_PREC {
        return Err(CodecError::Corrupt("zfp precision out of range"));
    }
    let mut neg = [0u64; BLOCK];
    for p in 0..maxprec {
        let bit = INT_PREC - 1 - p;
        let plane = r.read_bits(BLOCK as u32)?;
        for (i, v) in neg.iter_mut().enumerate() {
            *v |= ((plane >> i) & 1) << bit;
        }
    }
    let mut ints = neg.map(negabinary_to_int);
    inverse_lift(&mut ints);
    let k = INT_PREC as i32 - 4 - emax;
    Ok(ints.map(|i| mul_pow2(i as f64, -k)))
}

/// Forward decorrelating transform: a two-level integer S-transform
/// (Haar with exact integer lifting).
///
/// zfp's own lift is only approximately invertible in integer arithmetic
/// (its inverse differs by rounding, absorbed into zfp's guard bits); we use
/// the exactly-invertible S-transform instead so the error analysis has a
/// single source of loss — bit-plane truncation. Decorrelation quality on
/// smooth data is comparable.
///
/// Pair rule: `s = (a + b) >> 1`, `d = a − b`; output `[ss, ds, d0, d1]`.
fn forward_lift(p: &mut [i64; BLOCK]) {
    let [x, y, z, w] = *p;
    let (s0, d0) = ((x + y) >> 1, x - y);
    let (s1, d1) = ((z + w) >> 1, z - w);
    let (ss, ds) = ((s0 + s1) >> 1, s0 - s1);
    *p = [ss, ds, d0, d1];
}

/// Exact inverse of [`forward_lift`]: `a = s + ((d + 1) >> 1)`, `b = a − d`.
///
/// Wrapping: decoded coefficients come from untrusted bit-planes and can sit
/// near the i64 edges, where the exact sums would overflow (debug panic).
/// Honest streams never wrap — the encoder's inputs are bounded well below
/// 2^62 — and corrupted ones produce garbage the frame checksum catches.
fn inverse_lift(p: &mut [i64; BLOCK]) {
    let [ss, ds, d0, d1] = *p;
    let s0 = ss.wrapping_add((ds.wrapping_add(1)) >> 1);
    let s1 = s0.wrapping_sub(ds);
    let x = s0.wrapping_add((d0.wrapping_add(1)) >> 1);
    let y = x.wrapping_sub(d0);
    let z = s1.wrapping_add((d1.wrapping_add(1)) >> 1);
    let w = z.wrapping_sub(d1);
    *p = [x, y, z, w];
}

const NBMASK: u64 = 0xAAAA_AAAA_AAAA_AAAA;

#[inline]
fn int_to_negabinary(v: i64) -> u64 {
    ((v as u64).wrapping_add(NBMASK)) ^ NBMASK
}

#[inline]
fn negabinary_to_int(v: u64) -> i64 {
    (v ^ NBMASK).wrapping_sub(NBMASK) as i64
}

/// IEEE exponent of a positive value: smallest `e` with `|v| < 2^(e+1)`.
#[inline]
fn exponent_of(v: f64) -> i32 {
    let (_, exp) = frexp(v);
    exp - 1
}

/// `(mantissa, exponent)` with `v = m · 2^e`, `0.5 ≤ |m| < 1`.
fn frexp(v: f64) -> (f64, i32) {
    if v == 0.0 || !v.is_finite() {
        return (v, 0);
    }
    let bits = v.to_bits();
    let biased = ((bits >> 52) & 0x7FF) as i32;
    if biased == 0 {
        // subnormal: normalize through multiplication
        let (m, e) = frexp(v * pow2(64));
        (m, e - 64)
    } else {
        let e = biased - 1022;
        let m = f64::from_bits((bits & !(0x7FFu64 << 52)) | (1022u64 << 52));
        (m, e)
    }
}

/// `2^e` as f64 for `e` in the normal range (clamped outside it; use
/// [`mul_pow2`] when the exponent may exceed ±1022).
#[inline]
fn pow2(e: i32) -> f64 {
    f64::from_bits(((e + 1023).clamp(1, 2046) as u64) << 52)
}

/// `v · 2^e` without overflow/underflow of the scale itself: split into two
/// half-steps so subnormal blocks scale exactly (ldexp semantics).
#[inline]
fn mul_pow2(v: f64, e: i32) -> f64 {
    let h1 = e / 2;
    let h2 = e - h1;
    v * pow2(h1) * pow2(h2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::assert_bound;
    use gpu_model::DeviceSpec;
    use rand::{Rng, SeedableRng};

    fn stream() -> Stream {
        Stream::new(DeviceSpec::a100())
    }

    #[test]
    fn lift_is_invertible() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2);
        for _ in 0..1000 {
            let orig: [i64; 4] = [
                rng.gen_range(-(1i64 << 60)..(1i64 << 60)),
                rng.gen_range(-(1i64 << 60)..(1i64 << 60)),
                rng.gen_range(-(1i64 << 60)..(1i64 << 60)),
                rng.gen_range(-(1i64 << 60)..(1i64 << 60)),
            ];
            let mut p = orig;
            forward_lift(&mut p);
            inverse_lift(&mut p);
            assert_eq!(p, orig);
        }
    }

    #[test]
    fn negabinary_roundtrip() {
        for v in [0i64, 1, -1, 42, -1000, i64::MAX / 4, i64::MIN / 4] {
            assert_eq!(negabinary_to_int(int_to_negabinary(v)), v);
        }
    }

    #[test]
    fn frexp_matches_libm_semantics() {
        for v in [1.0f64, 0.5, 0.75, 2.0, 1e-300, 1e300, 3.9375] {
            let (m, e) = frexp(v);
            assert!((0.5..1.0).contains(&m.abs()), "m={m} for {v}");
            assert!((m * pow2(e) - v).abs() <= v.abs() * 1e-15);
        }
        assert_eq!(exponent_of(1.0), 0);
        assert_eq!(exponent_of(0.5), -1);
        assert_eq!(exponent_of(4.0), 2);
    }

    #[test]
    fn roundtrip_within_bound_smooth() {
        let data: Vec<f64> = (0..8192).map(|i| (i as f64 * 0.005).sin()).collect();
        let c = CuZfp;
        for eb in [1e-2, 1e-4, 1e-6] {
            let bytes = c.compress(&data, ErrorBound::Abs(eb), &stream()).unwrap();
            let rec = c.decompress(&bytes, &stream()).unwrap();
            assert_bound(&data, &rec, eb);
        }
    }

    #[test]
    fn roundtrip_within_bound_random_blocks() {
        // Worst-case stress of the GUARD_BITS analysis: wild magnitudes.
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(77);
        let mut data = Vec::new();
        for _ in 0..4000 {
            let mag = 10f64.powi(rng.gen_range(-8..6));
            data.push(rng.gen_range(-1.0..1.0) * mag);
        }
        let c = CuZfp;
        for eb in [1e-3, 1e-7] {
            let bytes = c.compress(&data, ErrorBound::Abs(eb), &stream()).unwrap();
            let rec = c.decompress(&bytes, &stream()).unwrap();
            assert_bound(&data, &rec, eb);
        }
    }

    #[test]
    fn zero_blocks_nearly_free() {
        let data = vec![0.0f64; 1 << 16];
        let bytes = CuZfp
            .compress(&data, ErrorBound::Abs(1e-6), &stream())
            .unwrap();
        // 1 bit per 4 values + headers
        assert!(
            bytes.len() < 4096,
            "{} bytes for all-zero input",
            bytes.len()
        );
    }

    #[test]
    fn partial_tail_handled() {
        let data: Vec<f64> = (0..13).map(|i| i as f64 * 0.1).collect();
        let bytes = CuZfp
            .compress(&data, ErrorBound::Abs(1e-5), &stream())
            .unwrap();
        let rec = CuZfp.decompress(&bytes, &stream()).unwrap();
        assert_eq!(rec.len(), 13);
        assert_bound(&data, &rec, 1e-5);
    }

    #[test]
    fn looser_bound_smaller_stream() {
        let data: Vec<f64> = (0..65_536).map(|i| (i as f64 * 0.01).sin()).collect();
        let loose = CuZfp
            .compress(&data, ErrorBound::Abs(1e-2), &stream())
            .unwrap();
        let tight = CuZfp
            .compress(&data, ErrorBound::Abs(1e-8), &stream())
            .unwrap();
        assert!(loose.len() < tight.len());
    }

    #[test]
    fn corrupt_stream_errors() {
        let data: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let bytes = CuZfp
            .compress(&data, ErrorBound::Abs(1e-4), &stream())
            .unwrap();
        for cut in [0, 1, 9, bytes.len() - 1] {
            let _ = CuZfp.decompress(&bytes[..cut], &stream());
        }
    }

    #[test]
    fn subnormal_inputs_do_not_break_bound() {
        let data = vec![1e-310f64, -1e-312, 0.0, 1e-308];
        let bytes = CuZfp
            .compress(&data, ErrorBound::Abs(1e-6), &stream())
            .unwrap();
        let rec = CuZfp.decompress(&bytes, &stream()).unwrap();
        assert_bound(&data, &rec, 1e-6);
    }
}
