//! Quality and performance metrics for compression runs.
//!
//! The quantities every figure in the paper's evaluation reports:
//! compression ratio, maximum pointwise error, PSNR, and simulated / host
//! throughput.

use crate::traits::{Compressor, ErrorBound};
use codec_kit::CodecError;
use gpu_model::{DeviceSpec, Stream};
use std::time::Instant;

/// Quality metrics of a reconstruction against its original.
#[derive(Debug, Clone, PartialEq)]
pub struct QualityMetrics {
    /// Original bytes / compressed bytes.
    pub compression_ratio: f64,
    /// `max_i |x_i − x̂_i|`.
    pub max_abs_error: f64,
    /// Root-mean-square error.
    pub rmse: f64,
    /// Peak signal-to-noise ratio in dB (∞ for exact reconstruction).
    pub psnr_db: f64,
}

/// Computes quality metrics; `compressed_len` in bytes.
///
/// # Empty input
/// Empty slices are well-defined, not an error: `max_abs_error` and `rmse`
/// are `0.0`, `psnr_db` is `+∞` (nothing deviated), and
/// `compression_ratio` is `0.0` (zero input bytes over a nonzero
/// container). Callers that consider an empty buffer a bug must check
/// before calling — this function deliberately reports "perfect
/// reconstruction of nothing" rather than panicking mid-experiment.
///
/// # Panics
/// Panics when lengths differ.
pub fn quality(original: &[f64], reconstructed: &[f64], compressed_len: usize) -> QualityMetrics {
    assert_eq!(original.len(), reconstructed.len(), "length mismatch");
    let n = original.len().max(1) as f64;
    let mut max_err = 0.0f64;
    let mut sq_sum = 0.0f64;
    let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
    for (&a, &b) in original.iter().zip(reconstructed) {
        let e = (a - b).abs();
        max_err = max_err.max(e);
        sq_sum += e * e;
        min = min.min(a);
        max = max.max(a);
    }
    let rmse = (sq_sum / n).sqrt();
    let range = if original.is_empty() { 0.0 } else { max - min };
    let psnr_db = if rmse == 0.0 || range == 0.0 {
        f64::INFINITY
    } else {
        20.0 * (range / rmse).log10()
    };
    QualityMetrics {
        compression_ratio: (original.len() * 8) as f64 / compressed_len.max(1) as f64,
        max_abs_error: max_err,
        rmse,
        psnr_db,
    }
}

/// Everything measured about one compress→decompress round trip.
#[derive(Debug, Clone)]
pub struct RoundTripReport {
    /// Compressor name.
    pub name: &'static str,
    /// Input element count.
    pub n: usize,
    /// Compressed size in bytes.
    pub compressed_bytes: usize,
    /// Quality metrics.
    pub quality: QualityMetrics,
    /// Simulated-GPU compression throughput, bytes/s of input.
    pub gpu_compress_bps: f64,
    /// Simulated-GPU decompression throughput, bytes/s of output.
    pub gpu_decompress_bps: f64,
    /// Host wall-clock compression throughput, bytes/s (for sanity only).
    pub host_compress_bps: f64,
    /// Host wall-clock decompression throughput, bytes/s.
    pub host_decompress_bps: f64,
    /// The reconstructed values.
    pub reconstructed: Vec<f64>,
}

/// Runs a full round trip on a fresh A100 stream and measures everything.
///
/// When telemetry is enabled, the run also publishes per-compressor
/// metrics to the registry: `compressor.<name>.cr` / `.max_abs_err` /
/// `.psnr_db` / `.gpu_compress_bps` / `.gpu_decompress_bps` float gauges
/// plus a `compressor.<name>.round_trips` counter, and feeds the shared
/// `compressor.encode_us` / `compressor.decode_us` latency histograms
/// (host wall clock, µs) whose p50/p95/p99 surface in `qcfz top` and the
/// Prometheus exposition.
pub fn round_trip(
    comp: &dyn Compressor,
    data: &[f64],
    bound: ErrorBound,
) -> Result<RoundTripReport, CodecError> {
    let _span = qcf_telemetry::span!("compressor.round_trip");
    let payload = (data.len() * 8) as u64;

    let cstream = Stream::new(DeviceSpec::a100());
    let t0 = Instant::now();
    let bytes = comp.compress(data, bound, &cstream)?;
    let encode_s = t0.elapsed().as_secs_f64();
    let host_c = payload as f64 / encode_s.max(1e-12);

    let dstream = Stream::new(DeviceSpec::a100());
    let t1 = Instant::now();
    let reconstructed = comp.decompress(&bytes, &dstream)?;
    let decode_s = t1.elapsed().as_secs_f64();
    let host_d = payload as f64 / decode_s.max(1e-12);

    let report = RoundTripReport {
        name: comp.name(),
        n: data.len(),
        compressed_bytes: bytes.len(),
        quality: quality(data, &reconstructed, bytes.len()),
        gpu_compress_bps: cstream.throughput(payload),
        gpu_decompress_bps: dstream.throughput(payload),
        host_compress_bps: host_c,
        host_decompress_bps: host_d,
        reconstructed,
    };
    if qcf_telemetry::enabled() {
        let r = qcf_telemetry::registry();
        let name = report.name;
        r.float_gauge(&format!("compressor.{name}.cr"))
            .set(report.quality.compression_ratio);
        r.float_gauge(&format!("compressor.{name}.max_abs_err"))
            .set(report.quality.max_abs_error);
        r.float_gauge(&format!("compressor.{name}.psnr_db"))
            .set(report.quality.psnr_db);
        r.float_gauge(&format!("compressor.{name}.gpu_compress_bps"))
            .set(report.gpu_compress_bps);
        r.float_gauge(&format!("compressor.{name}.gpu_decompress_bps"))
            .set(report.gpu_decompress_bps);
        r.counter(&format!("compressor.{name}.round_trips")).inc();
        // Shared (cross-compressor) latency histograms, µs. Log-spaced
        // bounds from small test buffers up to multi-ms statevector planes.
        const LAT_BOUNDS_US: [f64; 10] = [
            10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0,
        ];
        r.histogram("compressor.encode_us", &LAT_BOUNDS_US)
            .observe(encode_s * 1e6);
        r.histogram("compressor.decode_us", &LAT_BOUNDS_US)
            .observe(decode_s * 1e6);
    }
    Ok(report)
}

/// Asserts the error-bound contract of a reconstruction.
///
/// The contract is `|x − x̂| ≤ eb` up to floating-point rounding of the
/// reconstruction arithmetic. That rounding scales with the largest
/// magnitude participating in the arithmetic — not the value itself: cuSZx
/// reconstructs `mean + q·2eb`, so a small value sharing a block with a
/// ±1e5 neighbour carries ~1e-11 of rounding regardless of `eb`. Real
/// SZ-family implementations carry the same caveat, so the tolerance here
/// is `eb + O(eps · max|x|)` over the buffer.
pub fn assert_bound(original: &[f64], reconstructed: &[f64], abs_bound: f64) {
    assert_eq!(original.len(), reconstructed.len());
    let max_abs = original
        .iter()
        .chain(reconstructed)
        .fold(0.0f64, |m, &v| m.max(v.abs()));
    let ulp_slack = max_abs * 16.0 * f64::EPSILON;
    for (i, (&a, &b)) in original.iter().zip(reconstructed).enumerate() {
        assert!(
            (a - b).abs() <= abs_bound * (1.0 + 1e-12) + ulp_slack + f64::EPSILON,
            "bound violated at {i}: |{a} - {b}| = {} > {abs_bound}",
            (a - b).abs()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_reconstruction_metrics() {
        let data = vec![1.0, 2.0, 3.0, 4.0];
        let q = quality(&data, &data, 16);
        assert_eq!(q.max_abs_error, 0.0);
        assert_eq!(q.rmse, 0.0);
        assert!(q.psnr_db.is_infinite());
        assert!((q.compression_ratio - 2.0).abs() < 1e-12);
    }

    #[test]
    fn error_metrics_computed() {
        let a = vec![0.0, 1.0];
        let b = vec![0.1, 1.0];
        let q = quality(&a, &b, 16);
        assert!((q.max_abs_error - 0.1).abs() < 1e-12);
        let want_rmse = (0.01f64 / 2.0).sqrt();
        assert!((q.rmse - want_rmse).abs() < 1e-12);
        // psnr = 20 log10(1.0 / rmse)
        assert!((q.psnr_db - 20.0 * (1.0 / want_rmse).log10()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "bound violated")]
    fn assert_bound_catches_violation() {
        assert_bound(&[0.0], &[0.5], 0.1);
    }

    #[test]
    fn empty_buffers_do_not_divide_by_zero() {
        let q = quality(&[], &[], 1);
        assert_eq!(q.max_abs_error, 0.0);
        assert!(q.psnr_db.is_infinite());
    }

    #[test]
    fn empty_input_behavior_is_fully_specified() {
        // The documented contract for empty slices, field by field: no
        // panic, no NaN, and a ratio of exactly zero so the case is
        // distinguishable from any real (ratio > 0) compression.
        for compressed_len in [0usize, 1, 100] {
            let q = quality(&[], &[], compressed_len);
            assert_eq!(q.max_abs_error, 0.0, "no elements → no error");
            assert_eq!(q.rmse, 0.0);
            assert!(q.psnr_db.is_infinite() && q.psnr_db > 0.0);
            assert_eq!(q.compression_ratio, 0.0, "zero input bytes → ratio 0");
            assert!(!q.compression_ratio.is_nan());
        }
    }
}
