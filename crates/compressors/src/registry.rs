//! The compressor registry: the paper's nine evaluated compressors.

use crate::bitcomp::Bitcomp;
use crate::cascaded::Cascaded;
use crate::cusz::CuSz;
use crate::cuszx::CuSzx;
use crate::cuzfp::CuZfp;
use crate::dummy::Memcpy;
use crate::gdeflate::GDeflate;
use crate::lz4::Lz4;
use crate::snappy::Snappy;
use crate::traits::Compressor;
use codec_kit::CodecError;
use gpu_model::Stream;

/// All nine compressors of the evaluation (E2/E3), in plot order:
/// lossy first, then lossless, then the memcpy floor.
pub fn all_compressors() -> Vec<Box<dyn Compressor>> {
    vec![
        Box::new(CuSz::default()),
        Box::new(CuSzx::default()),
        Box::new(CuZfp),
        Box::new(Lz4),
        Box::new(Snappy),
        Box::new(GDeflate),
        Box::new(Cascaded),
        Box::new(Bitcomp),
        Box::new(Memcpy),
    ]
}

/// Looks a compressor up by its display name (case-insensitive).
pub fn by_name(name: &str) -> Option<Box<dyn Compressor>> {
    all_compressors()
        .into_iter()
        .find(|c| c.name().eq_ignore_ascii_case(name))
}

/// Decompresses any stream produced by a registry compressor, dispatching on
/// the stream's id byte.
pub fn decompress_any(bytes: &[u8], stream: &Stream) -> Result<Vec<f64>, CodecError> {
    let id = *bytes.first().ok_or(CodecError::UnexpectedEof)?;
    let comp = all_compressors()
        .into_iter()
        .find(|c| c.id() == id)
        .ok_or(CodecError::Corrupt("unknown compressor id"))?;
    comp.decompress(bytes, stream)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::assert_bound;
    use crate::traits::{CompressorKind, ErrorBound};
    use gpu_model::DeviceSpec;

    fn stream() -> Stream {
        Stream::new(DeviceSpec::a100())
    }

    #[test]
    fn there_are_nine() {
        assert_eq!(all_compressors().len(), 9);
        let mut ids: Vec<u8> = all_compressors().iter().map(|c| c.id()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 9, "ids must be unique");
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("cusz").is_some());
        assert!(by_name("cuSZx").is_some());
        assert!(by_name("GDEFLATE").is_some());
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn every_compressor_roundtrips_the_same_buffer() {
        let data: Vec<f64> = (0..5000)
            .map(|i| {
                if i % 7 == 0 {
                    0.0
                } else {
                    ((i as f64) * 0.013).sin() * 0.7
                }
            })
            .collect();
        let eb = 1e-4;
        for c in all_compressors() {
            let bytes = c.compress(&data, ErrorBound::Abs(eb), &stream()).unwrap();
            let rec = c.decompress(&bytes, &stream()).unwrap();
            assert_eq!(rec.len(), data.len(), "{}", c.name());
            match c.kind() {
                CompressorKind::Lossless => {
                    for (a, b) in data.iter().zip(&rec) {
                        assert_eq!(a.to_bits(), b.to_bits(), "{} not lossless", c.name());
                    }
                }
                CompressorKind::ErrorBounded => assert_bound(&data, &rec, eb),
            }
        }
    }

    #[test]
    fn decompress_any_dispatches() {
        let data: Vec<f64> = (0..256).map(|i| i as f64 * 0.01).collect();
        for c in all_compressors() {
            let bytes = c.compress(&data, ErrorBound::Abs(1e-5), &stream()).unwrap();
            let rec = decompress_any(&bytes, &stream()).unwrap();
            assert_eq!(rec.len(), data.len(), "{}", c.name());
        }
        assert!(decompress_any(&[], &stream()).is_err());
        assert!(decompress_any(&[200, 1], &stream()).is_err());
    }
}
