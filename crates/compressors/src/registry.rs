//! The compressor registry: the paper's nine evaluated compressors.

use crate::bitcomp::Bitcomp;
use crate::cascaded::Cascaded;
use crate::cusz::CuSz;
use crate::cuszx::CuSzx;
use crate::cuzfp::CuZfp;
use crate::dummy::Memcpy;
use crate::gdeflate::GDeflate;
use crate::lz4::Lz4;
use crate::snappy::Snappy;
use crate::traits::Compressor;
use codec_kit::CodecError;
use gpu_model::Stream;

/// All nine compressors of the evaluation (E2/E3), in plot order:
/// lossy first, then lossless, then the memcpy floor.
pub fn all_compressors() -> Vec<Box<dyn Compressor>> {
    vec![
        Box::new(CuSz::default()),
        Box::new(CuSzx::default()),
        Box::new(CuZfp),
        Box::new(Lz4),
        Box::new(Snappy),
        Box::new(GDeflate),
        Box::new(Cascaded),
        Box::new(Bitcomp),
        Box::new(Memcpy),
    ]
}

/// Looks a compressor up by its display name (case-insensitive).
pub fn by_name(name: &str) -> Option<Box<dyn Compressor>> {
    all_compressors()
        .into_iter()
        .find(|c| c.name().eq_ignore_ascii_case(name))
}

/// Decompresses any stream produced by a registry compressor, dispatching on
/// the stream's id byte.
pub fn decompress_any(bytes: &[u8], stream: &Stream) -> Result<Vec<f64>, CodecError> {
    by_id(bytes)?.decompress(bytes, stream)
}

/// [`decompress_any`] into a caller-provided buffer (cleared first,
/// capacity reused).
pub fn decompress_any_into(
    bytes: &[u8],
    stream: &Stream,
    out: &mut Vec<f64>,
) -> Result<(), CodecError> {
    by_id(bytes)?.decompress_into(bytes, stream, out)
}

/// Resolves the registry compressor a stream's leading id byte names.
/// Sealed v2 frames carry the id with the frame flag set
/// ([`codec_kit::frame::FRAME_FLAG`]); errors report the raw leading byte.
fn by_id(bytes: &[u8]) -> Result<Box<dyn Compressor>, CodecError> {
    let lead = *bytes.first().ok_or(CodecError::UnexpectedEof)?;
    let id = codec_kit::frame::stream_id(bytes)?;
    all_compressors()
        .into_iter()
        .find(|c| c.id() == id)
        .ok_or(CodecError::UnknownFormat(lead))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::assert_bound;
    use crate::traits::{CompressorKind, ErrorBound};
    use gpu_model::DeviceSpec;

    fn stream() -> Stream {
        Stream::new(DeviceSpec::a100())
    }

    #[test]
    fn there_are_nine() {
        assert_eq!(all_compressors().len(), 9);
        let mut ids: Vec<u8> = all_compressors().iter().map(|c| c.id()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 9, "ids must be unique");
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("cusz").is_some());
        assert!(by_name("cuSZx").is_some());
        assert!(by_name("GDEFLATE").is_some());
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn every_compressor_roundtrips_the_same_buffer() {
        let data: Vec<f64> = (0..5000)
            .map(|i| {
                if i % 7 == 0 {
                    0.0
                } else {
                    ((i as f64) * 0.013).sin() * 0.7
                }
            })
            .collect();
        let eb = 1e-4;
        for c in all_compressors() {
            let bytes = c.compress(&data, ErrorBound::Abs(eb), &stream()).unwrap();
            let rec = c.decompress(&bytes, &stream()).unwrap();
            assert_eq!(rec.len(), data.len(), "{}", c.name());
            match c.kind() {
                CompressorKind::Lossless => {
                    for (a, b) in data.iter().zip(&rec) {
                        assert_eq!(a.to_bits(), b.to_bits(), "{} not lossless", c.name());
                    }
                }
                CompressorKind::ErrorBounded => assert_bound(&data, &rec, eb),
            }
        }
    }

    #[test]
    fn decompress_any_dispatches() {
        let data: Vec<f64> = (0..256).map(|i| i as f64 * 0.01).collect();
        for c in all_compressors() {
            let bytes = c.compress(&data, ErrorBound::Abs(1e-5), &stream()).unwrap();
            let rec = decompress_any(&bytes, &stream()).unwrap();
            assert_eq!(rec.len(), data.len(), "{}", c.name());
        }
        assert!(decompress_any(&[], &stream()).is_err());
        assert!(decompress_any(&[200, 1], &stream()).is_err());
    }

    #[test]
    fn decompress_any_empty_input_is_eof() {
        assert_eq!(
            decompress_any(&[], &stream()).unwrap_err(),
            CodecError::UnexpectedEof
        );
    }

    #[test]
    fn decompress_any_unknown_magic_names_the_byte() {
        let err = decompress_any(&[0xC8, 1, 2, 3], &stream()).unwrap_err();
        assert_eq!(err, CodecError::UnknownFormat(0xC8));
        assert!(
            err.to_string().contains("0xc8"),
            "error must name the format byte, got: {err}"
        );
        // id 0 is also unassigned
        assert_eq!(
            decompress_any(&[0x00], &stream()).unwrap_err(),
            CodecError::UnknownFormat(0x00)
        );
    }

    #[test]
    fn decompress_any_truncated_streams_error() {
        let data: Vec<f64> = (0..300).map(|i| (i as f64 * 0.1).sin()).collect();
        for c in all_compressors() {
            let bytes = c.compress(&data, ErrorBound::Abs(1e-4), &stream()).unwrap();
            // Header-region truncations must always error.
            for cut in 1..8.min(bytes.len()) {
                assert!(
                    decompress_any(&bytes[..cut], &stream()).is_err(),
                    "{} accepted a {cut}-byte prefix",
                    c.name()
                );
            }
        }
    }

    #[test]
    fn every_stream_is_sealed_and_any_byte_corruption_is_caught() {
        let data: Vec<f64> = (0..400).map(|i| (i as f64 * 0.07).sin() * 0.4).collect();
        for c in all_compressors() {
            let bytes = c.compress(&data, ErrorBound::Abs(1e-4), &stream()).unwrap();
            assert!(
                codec_kit::frame::is_framed(&bytes),
                "{} stream not sealed",
                c.name()
            );
            for pos in [1usize, 2, 5, 6, bytes.len() / 2, bytes.len() - 1] {
                let mut bad = bytes.clone();
                bad[pos] ^= 0x10;
                assert!(
                    decompress_any(&bad, &stream()).is_err(),
                    "{}: corruption at byte {pos} went undetected",
                    c.name()
                );
            }
        }
    }

    #[test]
    fn legacy_unframed_streams_still_decode() {
        let data: Vec<f64> = (0..256).map(|i| (i as f64 * 0.03).cos()).collect();
        for c in all_compressors() {
            let raw = c
                .compress_raw(&data, ErrorBound::Abs(1e-5), &stream())
                .unwrap();
            assert!(!codec_kit::frame::is_framed(&raw), "{}", c.name());
            let rec = decompress_any(&raw, &stream()).unwrap();
            assert_eq!(rec.len(), data.len(), "{}", c.name());
        }
    }

    #[test]
    fn decompress_any_into_matches_allocating_variant() {
        let data: Vec<f64> = (0..512).map(|i| (i as f64 * 0.02).cos()).collect();
        for c in all_compressors() {
            let bytes = c.compress(&data, ErrorBound::Abs(1e-5), &stream()).unwrap();
            let plain = decompress_any(&bytes, &stream()).unwrap();
            let mut reused = vec![42.0; 7]; // dirty target
            decompress_any_into(&bytes, &stream(), &mut reused).unwrap();
            assert_eq!(plain.len(), reused.len(), "{}", c.name());
            for (a, b) in plain.iter().zip(&reused) {
                assert_eq!(a.to_bits(), b.to_bits(), "{}", c.name());
            }
        }
    }
}
