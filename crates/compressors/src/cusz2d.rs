//! cuSZ's 2D Lorenzo mode.
//!
//! Real cuSZ predicts with the multidimensional Lorenzo stencil; for 2D
//! row-major data the predictor is `p[i][j] = ep[i-1][j] + ep[i][j-1] −
//! ep[i-1][j-1]` (zero outside the grid). On fields that vary smoothly in
//! both directions this collapses the quant-code entropy far below the 1D
//! chain's. Tensors carry shapes, so the framework can hand cuSZ the true
//! innermost extent — exposed here as an inherent API (`compress_2d`),
//! with its own stream id so `decompress_any` stays unambiguous.

use crate::cusz::CuSz;
use crate::traits::{read_stream_header, stream_header, value_range, ErrorBound};
use codec_kit::chunked::{decode_chunked, encode_chunked, DEFAULT_CHUNK};
use codec_kit::varint::{read_ivarint, read_uvarint, write_ivarint, write_uvarint};
use codec_kit::CodecError;
use gpu_model::{KernelSpec, MemoryPattern, Stream};

/// Stream id of the 2D cuSZ mode.
pub const CUSZ2D_ID: u8 = 12;

impl CuSz {
    /// Compresses `data` interpreted as a row-major `⌈n/width⌉ × width`
    /// grid (a trailing partial row is allowed) with the 2D Lorenzo
    /// predictor.
    ///
    /// # Panics
    /// Panics when `width == 0`.
    pub fn compress_2d(
        &self,
        data: &[f64],
        width: usize,
        bound: ErrorBound,
        stream: &Stream,
    ) -> Result<Vec<u8>, CodecError> {
        assert!(width > 0, "row width must be positive");
        let (min, max) = value_range(data);
        let eb = bound.to_abs(max - min);
        if eb.is_nan() || eb <= 0.0 {
            return Err(CodecError::Unsupported("error bound must be positive"));
        }
        let twoeb = 2.0 * eb;
        let n = data.len();
        let radius = self.radius();

        // Fused pre-quant + 2D Lorenzo (reads the previous row too: ~2x
        // value traffic vs the 1D kernel).
        let (symbols, outliers) = stream.launch(
            &KernelSpec::streaming("cusz2d::dual_quant", (n * 16) as u64, (n * 2) as u64)
                .with_flops((n * 6) as u64),
            || {
                let mut ep = vec![0i64; n];
                let mut symbols = Vec::with_capacity(n);
                let mut outliers = Vec::new();
                for (i, &x) in data.iter().enumerate() {
                    ep[i] = (x / twoeb).round() as i64;
                    let (row, col) = (i / width, i % width);
                    let left = if col > 0 { ep[i - 1] } else { 0 };
                    let up = if row > 0 { ep[i - width] } else { 0 };
                    let upleft = if row > 0 && col > 0 {
                        ep[i - width - 1]
                    } else {
                        0
                    };
                    let delta = ep[i] - (left + up - upleft);
                    if delta > -radius && delta < radius {
                        symbols.push((delta + radius) as u32);
                    } else {
                        symbols.push(0);
                        outliers.push((i, ep[i]));
                    }
                }
                (symbols, outliers)
            },
        );

        let alphabet = (2 * radius) as usize;
        stream.launch(
            &KernelSpec::streaming("cusz2d::histogram", (n * 2) as u64, 4 * alphabet as u64)
                .with_pattern(MemoryPattern::Random),
            || (),
        );

        let mut out = stream_header(CUSZ2D_ID, n);
        write_uvarint(&mut out, width as u64);
        out.extend_from_slice(&eb.to_le_bytes());
        write_uvarint(&mut out, radius as u64);

        let payload = stream.launch(
            &KernelSpec::streaming("cusz2d::huffman_encode", (n * 2) as u64, n as u64 / 2)
                .with_pattern(MemoryPattern::BitSerial),
            || encode_chunked(&symbols, alphabet, DEFAULT_CHUNK),
        );
        write_uvarint(&mut out, payload.len() as u64);
        out.extend_from_slice(&payload);

        write_uvarint(&mut out, outliers.len() as u64);
        let mut last_idx = 0usize;
        for &(idx, ep) in &outliers {
            write_uvarint(&mut out, (idx - last_idx) as u64);
            write_ivarint(&mut out, ep);
            last_idx = idx;
        }
        codec_kit::frame::seal_in_place(&mut out);
        Ok(out)
    }

    /// Decompresses a [`CuSz::compress_2d`] stream (sealed v2 frame or
    /// legacy bare v1).
    pub fn decompress_2d(&self, bytes: &[u8], stream: &Stream) -> Result<Vec<f64>, CodecError> {
        let bytes = codec_kit::frame::unseal(bytes)?;
        let (n, mut pos) = read_stream_header(bytes, CUSZ2D_ID)?;
        let width = read_uvarint(bytes, &mut pos)? as usize;
        if width == 0 {
            return Err(CodecError::Corrupt("zero row width"));
        }
        if bytes.len() < pos + 8 {
            return Err(CodecError::UnexpectedEof);
        }
        let eb = f64::from_le_bytes(bytes[pos..pos + 8].try_into().unwrap());
        pos += 8;
        if eb.is_nan() || eb <= 0.0 || !eb.is_finite() {
            return Err(CodecError::Corrupt("bad error bound"));
        }
        let radius = read_uvarint(bytes, &mut pos)? as i64;
        if !(8..=1 << 20).contains(&radius) {
            return Err(CodecError::Corrupt("bad radius"));
        }
        let payload_len = read_uvarint(bytes, &mut pos)? as usize;
        if bytes.len() < pos + payload_len {
            return Err(CodecError::UnexpectedEof);
        }
        let symbols = stream.launch(
            &KernelSpec::streaming("cusz2d::huffman_decode", payload_len as u64, (n * 2) as u64)
                .with_pattern(MemoryPattern::BitSerial),
            || decode_chunked(&bytes[pos..pos + payload_len]),
        )?;
        pos += payload_len;
        if symbols.len() != n {
            return Err(CodecError::Corrupt("symbol count mismatch"));
        }

        let outlier_count = read_uvarint(bytes, &mut pos)? as usize;
        if outlier_count > n {
            return Err(CodecError::Corrupt("more outliers than elements"));
        }
        let mut outliers = Vec::with_capacity(outlier_count);
        let mut idx = 0usize;
        for k in 0..outlier_count {
            let delta = read_uvarint(bytes, &mut pos)? as usize;
            // checked_add: a forged delta must not overflow (debug panic).
            idx = idx
                .checked_add(delta)
                .filter(|&i| i < n)
                .ok_or(CodecError::Corrupt("outlier index out of range"))?;
            let ep = read_ivarint(bytes, &mut pos)?;
            if k > 0 && delta == 0 {
                return Err(CodecError::Corrupt("duplicate outlier index"));
            }
            outliers.push((idx, ep));
        }

        let twoeb = 2.0 * eb;
        stream.launch(
            &KernelSpec::streaming(
                "cusz2d::lorenzo_reconstruct",
                (n * 10) as u64,
                (n * 8) as u64,
            )
            .with_pattern(MemoryPattern::Strided)
            .with_flops((n * 4) as u64),
            || {
                let mut ep = vec![0i64; n];
                let mut next_outlier = 0usize;
                for (i, &sym) in symbols.iter().enumerate() {
                    let (row, col) = (i / width, i % width);
                    let left = if col > 0 { ep[i - 1] } else { 0 };
                    let up = if row > 0 { ep[i - width] } else { 0 };
                    let upleft = if row > 0 && col > 0 {
                        ep[i - width - 1]
                    } else {
                        0
                    };
                    if sym == 0 {
                        if next_outlier >= outliers.len() || outliers[next_outlier].0 != i {
                            return Err(CodecError::Corrupt("missing outlier record"));
                        }
                        ep[i] = outliers[next_outlier].1;
                        next_outlier += 1;
                    } else {
                        // Wrapping: forged outlier levels can sit at the
                        // i64 edges; reconstruction must not panic on
                        // overflow (the values are garbage either way and
                        // the checksum layer catches real corruption).
                        ep[i] = left
                            .wrapping_add(up)
                            .wrapping_sub(upleft)
                            .wrapping_add(sym as i64 - radius);
                    }
                }
                Ok(ep.into_iter().map(|e| e as f64 * twoeb).collect())
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::assert_bound;
    use crate::traits::Compressor;
    use gpu_model::DeviceSpec;

    fn stream() -> Stream {
        Stream::new(DeviceSpec::a100())
    }

    /// A 2D-smooth field flattened row-major.
    fn smooth_field(rows: usize, cols: usize) -> Vec<f64> {
        let mut out = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                out.push((r as f64 * 0.02).sin() * (c as f64 * 0.03).cos());
            }
        }
        out
    }

    #[test]
    fn roundtrip_within_bound() {
        let data = smooth_field(64, 100);
        let c = CuSz::default();
        for eb in [1e-2, 1e-4, 1e-6] {
            let bytes = c
                .compress_2d(&data, 100, ErrorBound::Abs(eb), &stream())
                .unwrap();
            let rec = c.decompress_2d(&bytes, &stream()).unwrap();
            assert_bound(&data, &rec, eb);
        }
    }

    #[test]
    fn beats_1d_on_2d_smooth_fields() {
        let data = smooth_field(128, 128);
        let c = CuSz::default();
        let eb = ErrorBound::Abs(1e-5);
        let b2 = c.compress_2d(&data, 128, eb, &stream()).unwrap().len();
        let b1 = c.compress(&data, eb, &stream()).unwrap().len();
        assert!(
            b2 < b1,
            "2D Lorenzo ({b2} B) should beat 1D ({b1} B) on a 2D-smooth field"
        );
    }

    #[test]
    fn partial_last_row() {
        let data = smooth_field(10, 33)[..300].to_vec();
        let c = CuSz::default();
        let bytes = c
            .compress_2d(&data, 33, ErrorBound::Abs(1e-5), &stream())
            .unwrap();
        let rec = c.decompress_2d(&bytes, &stream()).unwrap();
        assert_eq!(rec.len(), 300);
        assert_bound(&data, &rec, 1e-5);
    }

    #[test]
    fn width_one_degenerates_to_1d_chain() {
        let data: Vec<f64> = (0..500).map(|i| (i as f64 * 0.01).sin()).collect();
        let c = CuSz::default();
        let bytes = c
            .compress_2d(&data, 1, ErrorBound::Abs(1e-4), &stream())
            .unwrap();
        let rec = c.decompress_2d(&bytes, &stream()).unwrap();
        assert_bound(&data, &rec, 1e-4);
    }

    #[test]
    fn random_data_respects_bound_via_outliers() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(17);
        let data: Vec<f64> = (0..4096).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let c = CuSz::default();
        let bytes = c
            .compress_2d(&data, 64, ErrorBound::Abs(1e-6), &stream())
            .unwrap();
        let rec = c.decompress_2d(&bytes, &stream()).unwrap();
        assert_bound(&data, &rec, 1e-6);
    }

    #[test]
    fn corrupt_streams_error() {
        let data = smooth_field(16, 16);
        let c = CuSz::default();
        let bytes = c
            .compress_2d(&data, 16, ErrorBound::Abs(1e-4), &stream())
            .unwrap();
        for cut in [0, 1, 5, bytes.len() / 2] {
            assert!(c.decompress_2d(&bytes[..cut], &stream()).is_err());
        }
        // A 1D stream must be rejected by the 2D decoder.
        let b1 = c.compress(&data, ErrorBound::Abs(1e-4), &stream()).unwrap();
        assert!(c.decompress_2d(&b1, &stream()).is_err());
    }

    #[test]
    fn empty_input() {
        let c = CuSz::default();
        let bytes = c
            .compress_2d(&[], 8, ErrorBound::Abs(1e-3), &stream())
            .unwrap();
        assert!(c.decompress_2d(&bytes, &stream()).unwrap().is_empty());
    }
}
