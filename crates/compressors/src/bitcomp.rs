//! Bitcomp — NVIDIA's proprietary bit-level compressor (lossless mode).
//!
//! Bitcomp's lossless float path is an FPC-style scheme: XOR each 64-bit
//! word with its predecessor (identical leading bytes cancel to zero), then
//! store each fixed-size block at the width of its largest XOR residual.
//! Exactly reproducible from its observable behaviour: strong on slowly
//! varying sign/exponent fields, ratio ≈ 1 on noisy mantissas, very fast
//! (single streaming pass, no entropy coding).

use crate::traits::{read_stream_header, stream_header, Compressor, CompressorKind, ErrorBound};
use codec_kit::bitio::{BitReader, BitWriter};
use codec_kit::bitpack::{pack, required_width, unpack};
use codec_kit::varint::{read_uvarint, write_uvarint};
use codec_kit::CodecError;
use gpu_model::{KernelSpec, MemoryPattern, Stream};

/// Stream id of Bitcomp.
pub const BITCOMP_ID: u8 = 8;

/// Words per width block.
const BLOCK: usize = 128;

/// The Bitcomp compressor (lossless mode).
#[derive(Debug, Clone, Default)]
pub struct Bitcomp;

impl Compressor for Bitcomp {
    fn name(&self) -> &'static str {
        "Bitcomp"
    }

    fn id(&self) -> u8 {
        BITCOMP_ID
    }

    fn kind(&self) -> CompressorKind {
        CompressorKind::Lossless
    }

    fn compress_raw(
        &self,
        data: &[f64],
        _bound: ErrorBound,
        stream: &Stream,
    ) -> Result<Vec<u8>, CodecError> {
        let n = data.len();
        let nbytes = (n * 8) as u64;
        let mut out = stream_header(BITCOMP_ID, n);

        let payload = stream.launch(
            &KernelSpec::streaming("bitcomp::xor_pack", nbytes, nbytes)
                .with_pattern(MemoryPattern::Streaming)
                .with_flops(n as u64),
            || {
                let mut w = BitWriter::with_capacity(n * 8);
                let mut prev = 0u64;
                let mut residuals = [0u64; BLOCK];
                for chunk in data.chunks(BLOCK) {
                    for (i, &v) in chunk.iter().enumerate() {
                        let bits = v.to_bits();
                        residuals[i] = bits ^ prev;
                        prev = bits;
                    }
                    let res = &residuals[..chunk.len()];
                    // 64-bit residuals exceed the 57-bit packer: split each
                    // into a 32-bit low and up-to-32-bit high half at the
                    // block's required widths.
                    let width = required_width(res);
                    w.write_bits(width as u64, 7);
                    if width <= 57 {
                        pack(res, width, &mut w);
                    } else {
                        for &r in res {
                            w.write_bits(r & 0xFFFF_FFFF, 32);
                            w.write_bits(r >> 32, 32);
                        }
                    }
                }
                w.finish()
            },
        );
        write_uvarint(&mut out, payload.len() as u64);
        out.extend_from_slice(&payload);
        Ok(out)
    }

    fn decompress_raw(&self, bytes: &[u8], stream: &Stream) -> Result<Vec<f64>, CodecError> {
        let (n, mut pos) = read_stream_header(bytes, BITCOMP_ID)?;
        let payload_len = read_uvarint(bytes, &mut pos)? as usize;
        if bytes.len() < pos + payload_len {
            return Err(CodecError::UnexpectedEof);
        }
        let payload = &bytes[pos..pos + payload_len];

        let out = stream.launch(
            &KernelSpec::streaming("bitcomp::unpack_xor", payload_len as u64, (n * 8) as u64)
                .with_pattern(MemoryPattern::Streaming)
                .with_flops(n as u64),
            || {
                let mut r = BitReader::new(payload);
                let mut out = Vec::with_capacity(n);
                let mut prev = 0u64;
                let mut remaining = n;
                while remaining > 0 {
                    let len = remaining.min(BLOCK);
                    let width = r.read_bits(7)? as u32;
                    if width > 64 {
                        return Err(CodecError::Corrupt("bitcomp width out of range"));
                    }
                    if width <= 57 {
                        for res in unpack(&mut r, width, len)? {
                            prev ^= res;
                            out.push(f64::from_bits(prev));
                        }
                    } else {
                        for _ in 0..len {
                            let lo = r.read_bits(32)?;
                            let hi = r.read_bits(32)?;
                            prev ^= lo | (hi << 32);
                            out.push(f64::from_bits(prev));
                        }
                    }
                    remaining -= len;
                }
                Ok(out)
            },
        )?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_model::DeviceSpec;
    use rand::{Rng, SeedableRng};

    fn stream() -> Stream {
        Stream::new(DeviceSpec::a100())
    }

    fn roundtrip(data: &[f64]) -> usize {
        let c = Bitcomp;
        let bytes = c.compress(data, ErrorBound::Abs(0.0), &stream()).unwrap();
        let rec = c.decompress(&bytes, &stream()).unwrap();
        assert_eq!(rec.len(), data.len());
        for (a, b) in data.iter().zip(&rec) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        bytes.len()
    }

    #[test]
    fn constant_runs_collapse() {
        let n = roundtrip(&vec![2.5f64; 65_536]);
        assert!(n < 1500, "constant data took {n} bytes");
    }

    #[test]
    fn assorted_roundtrips() {
        roundtrip(&[]);
        roundtrip(&[1.0]);
        roundtrip(&[f64::NAN, -0.0, f64::INFINITY]);
        let v: Vec<f64> = (0..1000).map(|i| i as f64 * 0.5).collect();
        roundtrip(&v);
    }

    #[test]
    fn random_mantissas_near_ratio_one() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(13);
        let v: Vec<f64> = (0..8192).map(|_| rng.gen_range(0.5..1.0)).collect();
        let n = roundtrip(&v);
        let cr = (v.len() * 8) as f64 / n as f64;
        // sign+exponent cancel via XOR; mantissa noise stays → CR slightly > 1
        assert!(cr > 0.95 && cr < 1.5, "CR={cr:.2}");
    }

    #[test]
    fn fastest_lossless_on_gpu_model() {
        let v: Vec<f64> = (0..(1 << 16)).map(|i| (i % 100) as f64).collect();
        let b = stream();
        Bitcomp.compress(&v, ErrorBound::Abs(0.0), &b).unwrap();
        let g = stream();
        crate::gdeflate::GDeflate
            .compress(&v, ErrorBound::Abs(0.0), &g)
            .unwrap();
        assert!(b.elapsed_s() < g.elapsed_s() / 4.0);
    }

    #[test]
    fn corrupt_stream_errors() {
        let v: Vec<f64> = (0..500).map(|i| i as f64).collect();
        let c = Bitcomp;
        let bytes = c.compress(&v, ErrorBound::Abs(0.0), &stream()).unwrap();
        for cut in [0, 1, 4, bytes.len() / 3] {
            assert!(c.decompress(&bytes[..cut], &stream()).is_err());
        }
    }
}
