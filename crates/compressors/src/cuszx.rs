//! cuSZx — ultra-fast block-wise error-bounded compression (Yu et al., SZx).
//!
//! The throughput-oriented GPU compressor the paper's *speed mode* builds
//! on. No prediction and no entropy coding — just two cheap decisions per
//! fixed-size block:
//!
//! * **Constant block**: every value within `eb` of the block mean → store
//!   the mean alone (8 bytes for 128 values).
//! * **Nonconstant block**: quantize deviations from the mean at `2eb`
//!   granularity and bit-pack them at the block's required width.
//!
//! Both paths are branch-light single-pass streaming work, which is exactly
//! why SZx tops out near memory bandwidth on real GPUs.

use crate::traits::{
    read_stream_header, stream_header_into, value_range, Compressor, CompressorKind, ErrorBound,
};
use codec_kit::bitio::{BitReader, BitWriter};
use codec_kit::bitpack::unpack;
use codec_kit::varint::{read_uvarint, write_uvarint};
use codec_kit::varint::{unzigzag, zigzag};
use codec_kit::CodecError;
use gpu_model::exec::{par_map_blocks, serial_for_blocks, worker_count};
use gpu_model::{with_arena_phase, KernelSpec, MemoryPattern, Stream};

/// Stream id of cuSZx.
pub const CUSZX_ID: u8 = 2;

/// The cuSZx compressor.
#[derive(Debug, Clone)]
pub struct CuSzx {
    block_size: usize,
}

impl Default for CuSzx {
    fn default() -> Self {
        CuSzx { block_size: 128 }
    }
}

impl CuSzx {
    /// Creates cuSZx with a custom block size.
    ///
    /// # Panics
    /// Panics unless `16 ≤ block_size ≤ 65536`.
    pub fn with_block_size(block_size: usize) -> Self {
        assert!(
            (16..=65_536).contains(&block_size),
            "block size out of range"
        );
        CuSzx { block_size }
    }
}

impl Compressor for CuSzx {
    fn name(&self) -> &'static str {
        "cuSZx"
    }

    fn id(&self) -> u8 {
        CUSZX_ID
    }

    fn kind(&self) -> CompressorKind {
        CompressorKind::ErrorBounded
    }

    fn compress_raw(
        &self,
        data: &[f64],
        bound: ErrorBound,
        stream: &Stream,
    ) -> Result<Vec<u8>, CodecError> {
        let mut out = Vec::new();
        self.compress_raw_into(data, bound, stream, &mut out)?;
        Ok(out)
    }

    fn compress_raw_into(
        &self,
        data: &[f64],
        bound: ErrorBound,
        stream: &Stream,
        out: &mut Vec<u8>,
    ) -> Result<(), CodecError> {
        let (min, max) = value_range(data);
        let eb = bound.to_abs(max - min);
        if eb.is_nan() || eb <= 0.0 {
            return Err(CodecError::Unsupported("error bound must be positive"));
        }
        let n = data.len();
        let bs = self.block_size;
        let nbytes = (n * 8) as u64;
        let ws = crate::workspace();

        stream_header_into(CUSZX_ID, n, out);
        out.extend_from_slice(&eb.to_le_bytes());
        write_uvarint(out, bs as u64);

        // Single fused kernel: block stats + classification + packing.
        // SZx reads each value twice (stats pass, emit pass) within the
        // block — still streaming-class traffic. Each block encodes into a
        // private writer in parallel; blocks are not byte-aligned in the
        // stream, so the writers concatenate at bit granularity
        // (`BitWriter::append`), reproducing the serial stream exactly.
        // The concatenation writer emits into a pooled buffer.
        let payload = stream.launch(
            &KernelSpec::streaming("szx::fused_block_encode", 2 * nbytes, nbytes / 3)
                .with_pattern(MemoryPattern::Strided)
                .with_flops((n * 3) as u64),
            || {
                let twoeb = 2.0 * eb;
                if worker_count() == 1 {
                    // Serial fast path: every block encodes straight into
                    // the pooled output writer, with one arena-backed code
                    // scratch reused across blocks — zero heap allocation
                    // on the warm path. `BitWriter::append` is bit-exact,
                    // so this emits the same stream as the parallel path,
                    // and `serial_for_blocks` keeps the per-block fault
                    // point and panic accounting of the executor.
                    return with_arena_phase(|arena| {
                        let scratch = arena.alloc_u64(bs.min(n));
                        let mut w = BitWriter::from_vec(ws.take_u8_spare(n));
                        let mut blocks = data.chunks(bs);
                        serial_for_blocks(n.div_ceil(bs), |_| {
                            let block = blocks.next().expect("block count matches chunks");
                            encode_block(block, eb, twoeb, scratch, &mut w);
                        });
                        w.finish()
                    });
                }
                let parts = par_map_blocks(data, bs, |_, block| {
                    let mut scratch = vec![0u64; block.len()];
                    let mut w = BitWriter::with_capacity(block.len());
                    encode_block(block, eb, twoeb, &mut scratch, &mut w);
                    w
                });
                let mut w = BitWriter::from_vec(ws.take_u8_spare(n));
                for part in &parts {
                    w.append(part);
                }
                w.finish()
            },
        );
        write_uvarint(out, payload.len() as u64);
        out.extend_from_slice(&payload);
        ws.put_u8(payload);
        Ok(())
    }

    fn decompress_raw(&self, bytes: &[u8], stream: &Stream) -> Result<Vec<f64>, CodecError> {
        let mut out = Vec::new();
        self.decompress_raw_into(bytes, stream, &mut out)?;
        Ok(out)
    }

    fn decompress_raw_into(
        &self,
        bytes: &[u8],
        stream: &Stream,
        out: &mut Vec<f64>,
    ) -> Result<(), CodecError> {
        let (n, mut pos) = read_stream_header(bytes, CUSZX_ID)?;
        if bytes.len() < pos + 8 {
            return Err(CodecError::UnexpectedEof);
        }
        let eb = f64::from_le_bytes(bytes[pos..pos + 8].try_into().unwrap());
        pos += 8;
        if eb.is_nan() || eb <= 0.0 || !eb.is_finite() {
            return Err(CodecError::Corrupt("bad error bound"));
        }
        let bs = read_uvarint(bytes, &mut pos)? as usize;
        if !(16..=65_536).contains(&bs) {
            return Err(CodecError::Corrupt("bad block size"));
        }
        let payload_len = read_uvarint(bytes, &mut pos)? as usize;
        if bytes.len() < pos + payload_len {
            return Err(CodecError::UnexpectedEof);
        }
        let payload = &bytes[pos..pos + payload_len];

        stream.launch(
            &KernelSpec::streaming("szx::block_decode", payload_len as u64, (n * 8) as u64)
                .with_pattern(MemoryPattern::Strided)
                .with_flops((n * 2) as u64),
            || {
                let mut r = BitReader::new(payload);
                let twoeb = 2.0 * eb;
                out.clear();
                out.reserve(n);
                let mut remaining = n;
                while remaining > 0 {
                    let len = remaining.min(bs);
                    decode_block(&mut r, len, twoeb, out)?;
                    remaining -= len;
                }
                Ok(())
            },
        )
    }
}

/// Width of the unrolled block-kernel inner loops.
const LANES: usize = 8;

/// Block mean via an eight-lane sum tree.
///
/// This reduction order — lane `j` accumulates elements `j`, `j+8`,
/// `j+16`, … and the lanes combine pairwise `((0+1)+(2+3)) +
/// ((4+5)+(6+7))` — **is** the stream format's definition of the block
/// mean. Both the scalar reference and the unrolled kernel implement
/// exactly this order, so they are bit-identical; the unrolled kernel's
/// accumulators carry no loop dependency, which is what lets the adds
/// pipeline.
pub fn block_mean(block: &[f64]) -> f64 {
    let mut lanes = [0.0f64; LANES];
    for (i, &v) in block.iter().enumerate() {
        lanes[i % LANES] += v;
    }
    let s = ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]))
        + ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
    s / block.len() as f64
}

#[inline]
fn quant_dev(v: f64, mean: f64, twoeb: f64) -> u64 {
    zigzag(((v - mean) / twoeb).round() as i64)
}

/// Scalar reference for [`encode_block`]: simple loops, same stream bytes
/// (proptested in `tests/kernel_proptests.rs`).
///
/// The block radius is a `max` fold, which is order-insensitive down to
/// the bit level (`|v − mean|` never yields `-0.0`, and `f64::max`
/// ignores NaN operands in any association), so the reference keeps the
/// plain sequential fold. Deviations are emitted with `write_bits` —
/// which masks to the emitted width — rather than `bitpack::pack`: at the
/// capped width of 57 an adversarial deviation can exceed the width and
/// `pack`'s debug assertion would reject what is identical masked output
/// in release builds.
pub fn encode_block_scalar(block: &[f64], eb: f64, twoeb: f64, w: &mut BitWriter) {
    let mean = block_mean(block);
    let radius = block.iter().map(|&v| (v - mean).abs()).fold(0.0, f64::max);
    if radius <= eb {
        w.write_bit(true); // constant block
        w.write_u64(mean.to_bits());
        return;
    }
    w.write_bit(false);
    w.write_u64(mean.to_bits());
    let codes: Vec<u64> = block.iter().map(|&v| quant_dev(v, mean, twoeb)).collect();
    let width = codes
        .iter()
        .map(|&c| 64 - c.leading_zeros())
        .max()
        .unwrap_or(0)
        .min(57);
    w.write_bits(width as u64, 6);
    for &c in &codes {
        w.write_bits(c, width);
    }
}

/// The vectorized cuSZx block encoder: eight-lane unrolled stats and
/// emission, bit-identical to [`encode_block_scalar`].
///
/// `scratch` holds the zigzag codes (`len ≥ block.len()`; arena- or
/// pool-backed by the callers, so the kernel itself performs no heap
/// allocation). Three passes, all width-8: lane-tree sum (see
/// [`block_mean`]), radius via eight independent `max` accumulators, and
/// code emission with an OR-accumulated width — `64 −
/// leading_zeros(OR of all codes)` equals the max per-code width, one
/// `u64` bit-trick instead of a per-element compare. When two codes fit
/// the 57-bit writer limit they are fused into one `write_bits` call.
pub fn encode_block(block: &[f64], eb: f64, twoeb: f64, scratch: &mut [u64], w: &mut BitWriter) {
    let codes = &mut scratch[..block.len()];
    let n = block.len();

    // Pass 1: lane-tree mean.
    let mut sum = [0.0f64; LANES];
    let mut i = 0usize;
    while i + LANES <= n {
        for j in 0..LANES {
            sum[j] += block[i + j];
        }
        i += LANES;
    }
    let mut j = 0usize;
    while i < n {
        sum[j] += block[i];
        i += 1;
        j += 1;
    }
    let mean = (((sum[0] + sum[1]) + (sum[2] + sum[3])) + ((sum[4] + sum[5]) + (sum[6] + sum[7])))
        / n as f64;

    // Pass 2: radius, eight max accumulators (order-insensitive; see the
    // scalar reference).
    let mut rad = [0.0f64; LANES];
    let mut i = 0usize;
    while i + LANES <= n {
        for j in 0..LANES {
            rad[j] = rad[j].max((block[i + j] - mean).abs());
        }
        i += LANES;
    }
    while i < n {
        rad[0] = rad[0].max((block[i] - mean).abs());
        i += 1;
    }
    let radius = (rad[0].max(rad[1]))
        .max(rad[2].max(rad[3]))
        .max((rad[4].max(rad[5])).max(rad[6].max(rad[7])));

    if radius <= eb {
        w.write_bit(true); // constant block
        w.write_u64(mean.to_bits());
        return;
    }
    w.write_bit(false);
    w.write_u64(mean.to_bits());

    // Pass 3: zigzag codes with OR-accumulated width.
    let mut acc = [0u64; LANES];
    let mut i = 0usize;
    while i + LANES <= n {
        for j in 0..LANES {
            let c = quant_dev(block[i + j], mean, twoeb);
            codes[i + j] = c;
            acc[j] |= c;
        }
        i += LANES;
    }
    let mut orall =
        ((acc[0] | acc[1]) | (acc[2] | acc[3])) | ((acc[4] | acc[5]) | (acc[6] | acc[7]));
    while i < n {
        let c = quant_dev(block[i], mean, twoeb);
        codes[i] = c;
        orall |= c;
        i += 1;
    }
    let width = (64 - orall.leading_zeros()).min(57);
    w.write_bits(width as u64, 6);
    if width == 0 {
        return; // all-zero deviations pack to zero bits
    }
    let mut k = 0usize;
    if 2 * width <= 57 {
        // Fused pair emission: LSB-first concatenation makes
        // `write_bits(lo | hi << width, 2·width)` bit-identical to two
        // single writes (write_bits masks each operand to `width`).
        let m = u64::MAX >> (64 - width);
        while k + 2 <= n {
            w.write_bits((codes[k] & m) | ((codes[k + 1] & m) << width), 2 * width);
            k += 2;
        }
    }
    while k < n {
        w.write_bits(codes[k], width);
        k += 1;
    }
}

/// Scalar reference for [`decode_block`]: header, `bitpack::unpack` into a
/// vector, then dequantize. Same values and same error cases as the fused
/// kernel (proptested).
pub fn decode_block_scalar(
    r: &mut BitReader<'_>,
    len: usize,
    twoeb: f64,
    out: &mut Vec<f64>,
) -> Result<(), CodecError> {
    let constant = r.read_bit()?;
    let mean = f64::from_bits(r.read_u64()?);
    if !mean.is_finite() {
        return Err(CodecError::Corrupt("non-finite block mean"));
    }
    if constant {
        out.extend(std::iter::repeat_n(mean, len));
        return Ok(());
    }
    let width = r.read_bits(6)? as u32;
    let codes = unpack(r, width, len)?;
    for c in codes {
        out.push(mean + unzigzag(c) as f64 * twoeb);
    }
    Ok(())
}

/// The vectorized cuSZx block decoder: fused unpack + dequantize in
/// eight-element groups with no intermediate code vector, reading fused
/// bit pairs exactly as [`encode_block`] emits them. Bit-identical output
/// to [`decode_block_scalar`].
pub fn decode_block(
    r: &mut BitReader<'_>,
    len: usize,
    twoeb: f64,
    out: &mut Vec<f64>,
) -> Result<(), CodecError> {
    let constant = r.read_bit()?;
    let mean = f64::from_bits(r.read_u64()?);
    if !mean.is_finite() {
        return Err(CodecError::Corrupt("non-finite block mean"));
    }
    if constant {
        out.extend(std::iter::repeat_n(mean, len));
        return Ok(());
    }
    let width = r.read_bits(6)? as u32;
    if width > 57 {
        return Err(CodecError::Corrupt("pack width out of range"));
    }
    let mut rem = len;
    if width > 0 && 2 * width <= 57 {
        let m = u64::MAX >> (64 - width);
        while rem >= LANES {
            let mut c = [0u64; LANES];
            for j in 0..LANES / 2 {
                let v = r.read_bits(2 * width)?;
                c[2 * j] = v & m;
                c[2 * j + 1] = v >> width;
            }
            for &cj in &c {
                out.push(mean + unzigzag(cj) as f64 * twoeb);
            }
            rem -= LANES;
        }
    } else {
        while rem >= LANES {
            let mut c = [0u64; LANES];
            for cj in &mut c {
                *cj = r.read_bits(width)?;
            }
            for &cj in &c {
                out.push(mean + unzigzag(cj) as f64 * twoeb);
            }
            rem -= LANES;
        }
    }
    while rem > 0 {
        let c = r.read_bits(width)?;
        out.push(mean + unzigzag(c) as f64 * twoeb);
        rem -= 1;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::assert_bound;
    use gpu_model::DeviceSpec;

    fn stream() -> Stream {
        Stream::new(DeviceSpec::a100())
    }

    #[test]
    fn roundtrip_within_bound() {
        let data: Vec<f64> = (0..10_000).map(|i| (i as f64 * 0.02).cos() * 0.5).collect();
        let c = CuSzx::default();
        for eb in [1e-2, 1e-3, 1e-5] {
            let bytes = c.compress(&data, ErrorBound::Abs(eb), &stream()).unwrap();
            let rec = c.decompress(&bytes, &stream()).unwrap();
            assert_bound(&data, &rec, eb);
        }
    }

    #[test]
    fn mostly_zero_data_hits_constant_blocks() {
        let mut data = vec![0.0f64; 100_000];
        for i in (0..data.len()).step_by(1000) {
            data[i] = 0.5; // sparse spikes keep some blocks nonconstant
        }
        let c = CuSzx::default();
        let bytes = c.compress(&data, ErrorBound::Abs(1e-4), &stream()).unwrap();
        let cr = (data.len() * 8) as f64 / bytes.len() as f64;
        assert!(cr > 20.0, "zero-dominated data CR only {cr:.1}");
        let rec = c.decompress(&bytes, &stream()).unwrap();
        assert_bound(&data, &rec, 1e-4);
    }

    #[test]
    fn partial_tail_block() {
        let data: Vec<f64> = (0..333).map(|i| i as f64 * 1e-3).collect();
        let c = CuSzx::with_block_size(128);
        let bytes = c.compress(&data, ErrorBound::Abs(1e-4), &stream()).unwrap();
        let rec = c.decompress(&bytes, &stream()).unwrap();
        assert_eq!(rec.len(), 333);
        assert_bound(&data, &rec, 1e-4);
    }

    #[test]
    fn empty_input() {
        let c = CuSzx::default();
        let bytes = c.compress(&[], ErrorBound::Abs(1e-3), &stream()).unwrap();
        assert!(c.decompress(&bytes, &stream()).unwrap().is_empty());
    }

    #[test]
    fn faster_than_cusz_on_model() {
        let data: Vec<f64> = (0..(1 << 18)).map(|i| (i as f64 * 0.01).sin()).collect();
        let szx_stream = stream();
        CuSzx::default()
            .compress(&data, ErrorBound::Abs(1e-3), &szx_stream)
            .unwrap();
        let sz_stream = stream();
        crate::cusz::CuSz::default()
            .compress(&data, ErrorBound::Abs(1e-3), &sz_stream)
            .unwrap();
        assert!(
            szx_stream.elapsed_s() < sz_stream.elapsed_s() / 2.0,
            "szx {} vs sz {}",
            szx_stream.elapsed_s(),
            sz_stream.elapsed_s()
        );
    }

    #[test]
    fn relative_bound() {
        let data: Vec<f64> = (0..4096).map(|i| (i % 37) as f64).collect();
        let c = CuSzx::default();
        let bytes = c.compress(&data, ErrorBound::Rel(1e-2), &stream()).unwrap();
        let rec = c.decompress(&bytes, &stream()).unwrap();
        assert_bound(&data, &rec, 0.36);
    }

    #[test]
    fn corrupt_streams_error() {
        let data: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let c = CuSzx::default();
        let bytes = c.compress(&data, ErrorBound::Abs(1e-3), &stream()).unwrap();
        for cut in [0, 1, 8, bytes.len() / 2] {
            let _ = c.decompress(&bytes[..cut], &stream());
        }
        let mut bad = bytes.clone();
        // corrupt the declared block size
        bad[bytes.len() - 1] ^= 0x55;
        let _ = c.decompress(&bad, &stream());
    }

    #[test]
    fn block_size_affects_ratio_on_piecewise_constant() {
        let mut data = Vec::new();
        for seg in 0..64 {
            data.extend(std::iter::repeat_n(seg as f64 * 0.1, 512));
        }
        let small = CuSzx::with_block_size(32);
        let large = CuSzx::with_block_size(512);
        let b_small = small
            .compress(&data, ErrorBound::Abs(1e-6), &stream())
            .unwrap();
        let b_large = large
            .compress(&data, ErrorBound::Abs(1e-6), &stream())
            .unwrap();
        // Piecewise-constant segments aligned with large blocks: larger
        // blocks amortize the per-block mean better.
        assert!(b_large.len() < b_small.len());
    }
}
