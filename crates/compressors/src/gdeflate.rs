//! GDeflate — DEFLATE-class lossless compression (nvCOMP's GPU deflate).
//!
//! LZ77 parse + two dynamic canonical Huffman codes, using DEFLATE's
//! length/distance bucketing (base + extra bits). The container differs
//! from RFC1951 in one way, chosen for clarity: code-length tables are
//! serialized with `codec-kit`'s zero-run format instead of DEFLATE's
//! meta-Huffman — same information, simpler framing. nvCOMP's GDeflate also
//! deviates from RFC1951 framing (for GPU-parallel decode), so fidelity here
//! is to the compressor *class*: highest lossless ratio, lowest throughput.

use crate::traits::{read_stream_header, stream_header, Compressor, CompressorKind, ErrorBound};
use codec_kit::bitio::{BitReader, BitWriter};
use codec_kit::huffman::{HuffmanDecoder, HuffmanEncoder};
use codec_kit::lz77::{find_matches, LzConfig, LzToken};
use codec_kit::varint::{read_uvarint, write_uvarint};
use codec_kit::CodecError;
use gpu_model::{KernelSpec, MemoryPattern, Stream};

/// Stream id of GDeflate.
pub const GDEFLATE_ID: u8 = 6;

/// End-of-block symbol in the literal/length alphabet.
const EOB: u32 = 256;
/// Literal/length alphabet size (DEFLATE: 0..=285).
const LITLEN_SYMS: usize = 286;
/// Distance alphabet size (DEFLATE: 0..=29).
const DIST_SYMS: usize = 30;

/// DEFLATE length code table: `(base, extra_bits)` for symbols 257..=284;
/// symbol 285 is the fixed length 258.
const LEN_TABLE: [(usize, u32); 28] = [
    (3, 0),
    (4, 0),
    (5, 0),
    (6, 0),
    (7, 0),
    (8, 0),
    (9, 0),
    (10, 0),
    (11, 1),
    (13, 1),
    (15, 1),
    (17, 1),
    (19, 2),
    (23, 2),
    (27, 2),
    (31, 2),
    (35, 3),
    (43, 3),
    (51, 3),
    (59, 3),
    (67, 4),
    (83, 4),
    (99, 4),
    (115, 4),
    (131, 5),
    (163, 5),
    (195, 5),
    (227, 5),
];

/// DEFLATE distance code table: `(base, extra_bits)` for symbols 0..=29.
const DIST_TABLE: [(usize, u32); 30] = [
    (1, 0),
    (2, 0),
    (3, 0),
    (4, 0),
    (5, 1),
    (7, 1),
    (9, 2),
    (13, 2),
    (17, 3),
    (25, 3),
    (33, 4),
    (49, 4),
    (65, 5),
    (97, 5),
    (129, 6),
    (193, 6),
    (257, 7),
    (385, 7),
    (513, 8),
    (769, 8),
    (1025, 9),
    (1537, 9),
    (2049, 10),
    (3073, 10),
    (4097, 11),
    (6145, 11),
    (8193, 12),
    (12289, 12),
    (16385, 13),
    (24577, 13),
];

fn length_symbol(len: usize) -> (u32, u32, u64) {
    debug_assert!((3..=258).contains(&len));
    if len == 258 {
        return (285, 0, 0);
    }
    for (i, &(base, extra)) in LEN_TABLE.iter().enumerate().rev() {
        if len >= base {
            return (257 + i as u32, extra, (len - base) as u64);
        }
    }
    unreachable!("length below 3");
}

fn dist_symbol(dist: usize) -> (u32, u32, u64) {
    debug_assert!((1..=32768).contains(&dist));
    for (i, &(base, extra)) in DIST_TABLE.iter().enumerate().rev() {
        if dist >= base {
            return (i as u32, extra, (dist - base) as u64);
        }
    }
    unreachable!("distance below 1");
}

/// The GDeflate compressor.
#[derive(Debug, Clone, Default)]
pub struct GDeflate;

/// Byte-level DEFLATE-style compression (LZ77 + two dynamic canonical
/// Huffman codes). Public because the framework's ratio-mode dictionary
/// stage entropy-codes its index stream with it.
pub fn deflate_bytes(bytes: &[u8]) -> Vec<u8> {
    let cfg = LzConfig {
        min_match: 4,
        max_match: 258,
        window: 32_768,
        max_chain: 64,
    };
    let tokens = find_matches(bytes, &cfg);

    let mut litlen_hist = vec![0u64; LITLEN_SYMS];
    let mut dist_hist = vec![0u64; DIST_SYMS];
    for t in &tokens {
        match *t {
            LzToken::Literal { start, len } => {
                for &b in &bytes[start..start + len] {
                    litlen_hist[b as usize] += 1;
                }
            }
            LzToken::Match { len, dist } => {
                litlen_hist[length_symbol(len).0 as usize] += 1;
                dist_hist[dist_symbol(dist).0 as usize] += 1;
            }
        }
    }
    litlen_hist[EOB as usize] += 1;
    if dist_hist.iter().all(|&f| f == 0) {
        dist_hist[0] = 1;
    }
    let litlen_enc = HuffmanEncoder::from_freqs(&litlen_hist);
    let dist_enc = HuffmanEncoder::from_freqs(&dist_hist);

    let mut out = Vec::with_capacity(bytes.len() / 2 + 64);
    litlen_enc.write_table(&mut out);
    dist_enc.write_table(&mut out);
    let mut w = BitWriter::with_capacity(bytes.len() / 2 + 64);
    for t in &tokens {
        match *t {
            LzToken::Literal { start, len } => {
                for &b in &bytes[start..start + len] {
                    litlen_enc.encode_symbol(&mut w, b as u32);
                }
            }
            LzToken::Match { len, dist } => {
                let (sym, extra, extra_val) = length_symbol(len);
                litlen_enc.encode_symbol(&mut w, sym);
                w.write_bits(extra_val, extra);
                let (dsym, dextra, dval) = dist_symbol(dist);
                dist_enc.encode_symbol(&mut w, dsym);
                w.write_bits(dval, dextra);
            }
        }
    }
    litlen_enc.encode_symbol(&mut w, EOB);
    let payload = w.finish();
    write_uvarint(&mut out, payload.len() as u64);
    out.extend_from_slice(&payload);
    out
}

/// Inverse of [`deflate_bytes`]: decodes exactly `expected` bytes.
pub fn inflate_bytes(data: &[u8], pos: &mut usize, expected: usize) -> Result<Vec<u8>, CodecError> {
    let litlen_dec = HuffmanDecoder::read_table(data, pos)?;
    let dist_dec = HuffmanDecoder::read_table(data, pos)?;
    let payload_len = read_uvarint(data, pos)? as usize;
    if data.len() < *pos + payload_len {
        return Err(CodecError::UnexpectedEof);
    }
    let payload = &data[*pos..*pos + payload_len];
    *pos += payload_len;
    let mut r = BitReader::new(payload);
    // Cap the up-front reservation: `expected` is caller-declared and may be
    // forged far beyond what this payload can produce (a match emits ≤ 258
    // bytes per ~2 payload bits). Honest outputs still land via growth.
    let mut out: Vec<u8> =
        Vec::with_capacity(expected.min(payload.len().saturating_mul(1032).max(1 << 16)));
    loop {
        let sym = litlen_dec.decode_symbol(&mut r)?;
        if sym < 256 {
            if out.len() >= expected {
                return Err(CodecError::Corrupt("literal overruns output"));
            }
            out.push(sym as u8);
        } else if sym == EOB {
            break;
        } else {
            let idx = (sym - 257) as usize;
            let len = if sym == 285 {
                258
            } else {
                let (base, extra) = *LEN_TABLE
                    .get(idx)
                    .ok_or(CodecError::Corrupt("bad length symbol"))?;
                base + r.read_bits(extra)? as usize
            };
            let dsym = dist_dec.decode_symbol(&mut r)? as usize;
            let (dbase, dextra) = *DIST_TABLE
                .get(dsym)
                .ok_or(CodecError::Corrupt("bad distance symbol"))?;
            let dist = dbase + r.read_bits(dextra)? as usize;
            if dist == 0 || dist > out.len() {
                return Err(CodecError::Corrupt("deflate offset out of window"));
            }
            if out.len() + len > expected {
                return Err(CodecError::Corrupt("deflate match overruns output"));
            }
            let from = out.len() - dist;
            for k in 0..len {
                let b = out[from + k];
                out.push(b);
            }
        }
    }
    if out.len() != expected {
        return Err(CodecError::Corrupt("deflate output length mismatch"));
    }
    Ok(out)
}

impl Compressor for GDeflate {
    fn name(&self) -> &'static str {
        "GDeflate"
    }

    fn id(&self) -> u8 {
        GDEFLATE_ID
    }

    fn kind(&self) -> CompressorKind {
        CompressorKind::Lossless
    }

    fn compress_raw(
        &self,
        data: &[f64],
        _bound: ErrorBound,
        stream: &Stream,
    ) -> Result<Vec<u8>, CodecError> {
        let bytes: Vec<u8> = data.iter().flat_map(|v| v.to_le_bytes()).collect();
        let mut out = stream_header(GDEFLATE_ID, data.len());

        // Charge the three kernel stages of a GPU deflate, then run the
        // byte codec (the host computation happens once, in the last one).
        stream.launch(
            &KernelSpec::streaming(
                "gdeflate::lz_parse",
                (bytes.len() * 3) as u64,
                bytes.len() as u64,
            )
            .with_pattern(MemoryPattern::Random),
            || (),
        );
        stream.launch(
            &KernelSpec::streaming("gdeflate::histogram_build", bytes.len() as u64, 4096)
                .with_pattern(MemoryPattern::Random)
                .with_serial_fraction(0.01),
            || (),
        );
        let payload = stream.launch(
            &KernelSpec::streaming(
                "gdeflate::huffman_emit",
                bytes.len() as u64,
                bytes.len() as u64 / 2,
            )
            .with_pattern(MemoryPattern::BitSerial),
            || deflate_bytes(&bytes),
        );
        out.extend_from_slice(&payload);
        Ok(out)
    }

    fn decompress_raw(&self, bytes: &[u8], stream: &Stream) -> Result<Vec<f64>, CodecError> {
        let (n, mut pos) = read_stream_header(bytes, GDEFLATE_ID)?;
        let expected = n * 8;
        let raw = stream.launch(
            &KernelSpec::streaming(
                "gdeflate::decode",
                (bytes.len() - pos) as u64,
                expected as u64,
            )
            .with_pattern(MemoryPattern::BitSerial),
            || inflate_bytes(bytes, &mut pos, expected),
        )?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_model::DeviceSpec;
    use rand::{Rng, SeedableRng};

    fn stream() -> Stream {
        Stream::new(DeviceSpec::a100())
    }

    fn roundtrip(data: &[f64]) -> usize {
        let c = GDeflate;
        let bytes = c.compress(data, ErrorBound::Abs(0.0), &stream()).unwrap();
        let rec = c.decompress(&bytes, &stream()).unwrap();
        assert_eq!(rec.len(), data.len());
        for (a, b) in data.iter().zip(&rec) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        bytes.len()
    }

    #[test]
    fn symbol_tables_cover_ranges() {
        for len in 3..=258usize {
            let (sym, extra, val) = length_symbol(len);
            assert!((257..=285).contains(&sym));
            let recovered = if sym == 285 {
                258
            } else {
                LEN_TABLE[(sym - 257) as usize].0 + val as usize
            };
            assert_eq!(recovered, len, "length {len}");
            assert!(val < (1 << extra.max(1)));
        }
        for dist in [1usize, 2, 4, 5, 100, 1024, 32_768] {
            let (sym, _, val) = dist_symbol(dist);
            assert_eq!(
                DIST_TABLE[sym as usize].0 + val as usize,
                dist,
                "dist {dist}"
            );
        }
    }

    #[test]
    fn assorted_roundtrips() {
        roundtrip(&[]);
        roundtrip(&[42.0]);
        roundtrip(&vec![1.25; 5000]);
        let v: Vec<f64> = (0..3000).map(|i| ((i * 13) % 17) as f64).collect();
        roundtrip(&v);
    }

    #[test]
    fn beats_lz4_on_match_poor_skewed_data() {
        // Random doubles in [0.5, 1): almost no byte matches, but the sign/
        // exponent byte is constant and mantissa-top bytes are skewed —
        // entropy coding wins where pure LZ cannot.
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(42);
        let v: Vec<f64> = (0..16_384).map(|_| rng.gen_range(0.5..1.0)).collect();
        let g = roundtrip(&v);
        let l = {
            let c = crate::lz4::Lz4;
            c.compress(&v, ErrorBound::Abs(0.0), &stream())
                .unwrap()
                .len()
        };
        assert!(g < l, "gdeflate {g} should beat lz4 {l} on match-poor data");
    }

    #[test]
    fn random_floats_ratio_near_one() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(10);
        let v: Vec<f64> = (0..8192).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let n = roundtrip(&v);
        let cr = (v.len() * 8) as f64 / n as f64;
        assert!(cr < 1.35, "random doubles CR={cr:.2}");
    }

    #[test]
    fn slowest_lossless_on_gpu_model() {
        let v: Vec<f64> = (0..(1 << 16)).map(|i| (i % 256) as f64).collect();
        let g = stream();
        GDeflate.compress(&v, ErrorBound::Abs(0.0), &g).unwrap();
        let l = stream();
        crate::lz4::Lz4
            .compress(&v, ErrorBound::Abs(0.0), &l)
            .unwrap();
        assert!(
            g.elapsed_s() > l.elapsed_s(),
            "deflate must cost more than lz4"
        );
    }

    #[test]
    fn corrupt_stream_errors() {
        let v: Vec<f64> = (0..256).map(|i| i as f64).collect();
        let c = GDeflate;
        let bytes = c.compress(&v, ErrorBound::Abs(0.0), &stream()).unwrap();
        for cut in [0, 1, 2, 10, bytes.len() / 2] {
            assert!(c.decompress(&bytes[..cut], &stream()).is_err());
        }
    }
}
