//! # compressors — the nine (de)compressors of the evaluation
//!
//! Reimplementations of the compressor suite the paper benchmarks on an
//! A100, behind one [`Compressor`] trait:
//!
//! | name | class | scheme |
//! |------|-------|--------|
//! | [`cusz::CuSz`]       | error-bounded | Lorenzo dual-quant + Huffman |
//! | [`cuszx::CuSzx`]     | error-bounded | constant blocks + bit-packed residuals |
//! | [`cuzfp::CuZfp`]     | error-bounded | block transform + bit planes |
//! | [`lz4::Lz4`]         | lossless | LZ77, byte tokens |
//! | [`snappy::Snappy`]   | lossless | LZ77, tagged elements |
//! | [`gdeflate::GDeflate`] | lossless | LZ77 + dynamic Huffman |
//! | [`cascaded::Cascaded`] | lossless | RLE + delta + bit-pack |
//! | [`bitcomp::Bitcomp`] | lossless | XOR-delta + width blocks |
//! | [`dummy::Memcpy`]    | baseline | raw copy |
//!
//! GPU cost is charged through `gpu-model` kernels declared by each
//! implementation; quality metrics live in [`metrics`].

pub mod bitcomp;
pub mod cascaded;
pub mod cusz;
pub mod cusz2d;
pub mod cuszx;
pub mod cuzfp;
pub mod dummy;
pub mod gdeflate;
pub mod lz4;
pub mod metrics;
pub mod registry;
pub mod snappy;
pub mod traits;

pub use metrics::{quality, round_trip, QualityMetrics, RoundTripReport};
pub use registry::{all_compressors, by_name, decompress_any};
pub use traits::{Compressor, CompressorKind, ErrorBound};
