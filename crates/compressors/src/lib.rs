//! # compressors — the nine (de)compressors of the evaluation
//!
//! Reimplementations of the compressor suite the paper benchmarks on an
//! A100, behind one [`Compressor`] trait:
//!
//! | name | class | scheme |
//! |------|-------|--------|
//! | [`cusz::CuSz`]       | error-bounded | Lorenzo dual-quant + Huffman |
//! | [`cuszx::CuSzx`]     | error-bounded | constant blocks + bit-packed residuals |
//! | [`cuzfp::CuZfp`]     | error-bounded | block transform + bit planes |
//! | [`lz4::Lz4`]         | lossless | LZ77, byte tokens |
//! | [`snappy::Snappy`]   | lossless | LZ77, tagged elements |
//! | [`gdeflate::GDeflate`] | lossless | LZ77 + dynamic Huffman |
//! | [`cascaded::Cascaded`] | lossless | RLE + delta + bit-pack |
//! | [`bitcomp::Bitcomp`] | lossless | XOR-delta + width blocks |
//! | [`dummy::Memcpy`]    | baseline | raw copy |
//!
//! GPU cost is charged through `gpu-model` kernels declared by each
//! implementation; quality metrics live in [`metrics`].

pub mod bitcomp;
pub mod cascaded;
pub mod cusz;
pub mod cusz2d;
pub mod cuszx;
pub mod cuzfp;
pub mod dummy;
pub mod gdeflate;
pub mod lz4;
pub mod metrics;
pub mod registry;
pub mod snappy;
pub mod traits;

pub use metrics::{quality, round_trip, QualityMetrics, RoundTripReport};
pub use registry::{all_compressors, by_name, decompress_any, decompress_any_into};
pub use traits::{Compressor, CompressorKind, ErrorBound};

/// The crate-wide scratch [`Workspace`](gpu_model::Workspace) backing the
/// `*_into` fast paths: payload and symbol buffers that would otherwise be
/// allocated per call are checked out here and returned after use, so every
/// compressor (and the framework built on them) amortizes one set of
/// grown-once buffers.
pub fn workspace() -> &'static gpu_model::Workspace {
    static WS: std::sync::OnceLock<gpu_model::Workspace> = std::sync::OnceLock::new();
    WS.get_or_init(gpu_model::Workspace::new)
}
