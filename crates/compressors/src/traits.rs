//! The `Compressor` abstraction all nine compressors implement.
//!
//! Compressors take flat `f64` buffers — the layout QTensor tensors have
//! after the framework's de-interleaving — and run their kernels on a
//! simulated-GPU [`Stream`], which is where throughput numbers come from.
//! Streams are self-describing: a one-byte compressor id, then the
//! compressor's own header, so decompression can be dispatched blindly.
//!
//! Codecs implement the `*_raw` methods, which speak the bare v1 stream
//! format. The public [`Compressor::compress`]/[`Compressor::decompress`]
//! family wraps every stream in a checksummed v2 integrity frame
//! ([`codec_kit::frame`]) and verifies it on the way back in — legacy
//! (unframed) v1 streams still decode unchanged.

use codec_kit::{frame, CodecError};
use gpu_model::Stream;

/// User-facing error-bound specification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ErrorBound {
    /// Absolute: `|x − x̂| ≤ eb` pointwise.
    Abs(f64),
    /// Value-range relative: `|x − x̂| ≤ eb · (max − min)` pointwise
    /// (the SZ convention; resolved to absolute per buffer).
    Rel(f64),
}

impl ErrorBound {
    /// Resolves to an absolute bound for a buffer with the given value range.
    /// Zero-range (constant) data yields a tiny positive bound so divisions
    /// stay finite.
    pub fn to_abs(self, value_range: f64) -> f64 {
        match self {
            ErrorBound::Abs(eb) => eb,
            ErrorBound::Rel(eb) => {
                let r = if value_range > 0.0 { value_range } else { 1.0 };
                eb * r
            }
        }
    }

    /// The raw bound value (for display).
    pub fn value(self) -> f64 {
        match self {
            ErrorBound::Abs(v) | ErrorBound::Rel(v) => v,
        }
    }
}

/// Lossless compressors ignore the bound; error-bounded ones honour it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompressorKind {
    /// Bit-exact reconstruction.
    Lossless,
    /// Pointwise error-bounded lossy reconstruction.
    ErrorBounded,
}

/// A (de)compressor of `f64` buffers with simulated-GPU cost accounting.
pub trait Compressor: Send + Sync {
    /// Short name as used in the paper's plots (e.g. `"cuSZ"`).
    fn name(&self) -> &'static str;

    /// Stable one-byte stream id.
    fn id(&self) -> u8;

    /// Lossless or error-bounded.
    fn kind(&self) -> CompressorKind;

    /// Encodes the bare (v1, unframed) stream — what codecs implement.
    fn compress_raw(
        &self,
        data: &[f64],
        bound: ErrorBound,
        stream: &Stream,
    ) -> Result<Vec<u8>, CodecError>;

    /// Decodes a bare v1 stream produced by [`Compressor::compress_raw`].
    fn decompress_raw(&self, bytes: &[u8], stream: &Stream) -> Result<Vec<f64>, CodecError>;

    /// Like [`Compressor::compress_raw`], but writes into a caller-provided
    /// buffer (cleared first, capacity reused). The bytes produced are
    /// **bit-identical** to `compress_raw` — the property tests enforce it.
    ///
    /// The default routes through `compress_raw` and copies; hot
    /// compressors override it with genuinely allocation-reusing encoders.
    /// On error the buffer contents are unspecified but valid.
    fn compress_raw_into(
        &self,
        data: &[f64],
        bound: ErrorBound,
        stream: &Stream,
        out: &mut Vec<u8>,
    ) -> Result<(), CodecError> {
        let bytes = self.compress_raw(data, bound, stream)?;
        out.clear();
        out.extend_from_slice(&bytes);
        Ok(())
    }

    /// Like [`Compressor::decompress_raw`], but writes into a
    /// caller-provided buffer (cleared first, capacity reused). Values
    /// produced are bit-identical to `decompress_raw`. On error the buffer
    /// contents are unspecified but valid.
    fn decompress_raw_into(
        &self,
        bytes: &[u8],
        stream: &Stream,
        out: &mut Vec<f64>,
    ) -> Result<(), CodecError> {
        let values = self.decompress_raw(bytes, stream)?;
        out.clear();
        out.extend_from_slice(&values);
        Ok(())
    }

    /// Compresses `data` under `bound` into a checksummed v2 integrity
    /// frame, charging kernels to `stream`.
    fn compress(
        &self,
        data: &[f64],
        bound: ErrorBound,
        stream: &Stream,
    ) -> Result<Vec<u8>, CodecError> {
        let mut out = Vec::new();
        self.compress_into(data, bound, stream, &mut out)?;
        Ok(out)
    }

    /// [`Compressor::compress`] into a caller-provided buffer (cleared
    /// first, capacity reused); bit-identical to `compress`. The frame is
    /// sealed in place — no scratch allocation beyond the output buffer.
    fn compress_into(
        &self,
        data: &[f64],
        bound: ErrorBound,
        stream: &Stream,
        out: &mut Vec<u8>,
    ) -> Result<(), CodecError> {
        self.compress_raw_into(data, bound, stream, out)?;
        frame::seal_in_place(out);
        Ok(())
    }

    /// Decompresses a stream produced by [`Compressor::compress`],
    /// verifying the integrity frame first. Bare v1 streams (no frame)
    /// decode unchanged for backward compatibility.
    fn decompress(&self, bytes: &[u8], stream: &Stream) -> Result<Vec<f64>, CodecError> {
        let mut out = Vec::new();
        self.decompress_into(bytes, stream, &mut out)?;
        Ok(out)
    }

    /// [`Compressor::decompress`] into a caller-provided buffer (cleared
    /// first, capacity reused).
    fn decompress_into(
        &self,
        bytes: &[u8],
        stream: &Stream,
        out: &mut Vec<f64>,
    ) -> Result<(), CodecError> {
        let payload = frame::unseal(bytes)?;
        if qcf_telemetry::faults::inject("codec.decode").is_some() {
            return Err(CodecError::Corrupt("injected decode fault"));
        }
        self.decompress_raw_into(payload, stream, out)
    }
}

/// Writes the common stream prologue (id + element count); returns the buffer.
pub fn stream_header(id: u8, n: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    stream_header_into(id, n, &mut out);
    out
}

/// [`stream_header`] into a caller-provided buffer (cleared first, capacity
/// reused) — the `*_into` encoders start their streams with this.
pub fn stream_header_into(id: u8, n: usize, out: &mut Vec<u8>) {
    out.clear();
    out.push(id);
    codec_kit::varint::write_uvarint(out, n as u64);
}

/// Decompression-bomb guard: the largest plausible expansion of one stream
/// byte into decoded f64 values. The run-length family legitimately
/// reaches millions of values per byte on constant chunks (an all-zero
/// `2^27`-amplitude chunk cascades to a few dozen bytes), so the cap is
/// generous — but a forged header can no longer make a decoder reserve
/// terabytes from a handful of bytes.
const MAX_VALUES_PER_BYTE: usize = 1 << 23;

/// Declared counts below this are always allowed (degenerate tiny streams).
const GUARD_FLOOR: usize = 1 << 16;

/// Checks the id byte and reads the element count; returns `(n, pos)`.
///
/// The declared count is validated against the remaining input *before*
/// the caller allocates anything: `n` may not exceed
/// [`MAX_VALUES_PER_BYTE`] × the bytes actually present (plus a small
/// floor).
pub fn read_stream_header(bytes: &[u8], expect_id: u8) -> Result<(usize, usize), CodecError> {
    let id = *bytes.first().ok_or(CodecError::UnexpectedEof)?;
    if id != expect_id {
        return Err(CodecError::Corrupt("compressor id mismatch"));
    }
    let mut pos = 1usize;
    let n = codec_kit::varint::read_uvarint(bytes, &mut pos)? as usize;
    if n > (1usize << 32) {
        return Err(CodecError::Corrupt("absurd element count"));
    }
    let remaining = bytes.len() - pos;
    if n > GUARD_FLOOR + remaining.saturating_mul(MAX_VALUES_PER_BYTE) {
        return Err(CodecError::Corrupt(
            "declared length exceeds remaining input",
        ));
    }
    if qcf_telemetry::faults::inject("codec.alloc").is_some() {
        return Err(CodecError::Corrupt("injected allocation-cap breach"));
    }
    Ok((n, pos))
}

/// Value range `(min, max)` of a buffer; `(0, 0)` when empty.
pub fn value_range(data: &[f64]) -> (f64, f64) {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for &v in data {
        min = min.min(v);
        max = max.max(v);
    }
    if data.is_empty() {
        (0.0, 0.0)
    } else {
        (min, max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_resolution() {
        assert_eq!(ErrorBound::Abs(1e-3).to_abs(100.0), 1e-3);
        assert_eq!(ErrorBound::Rel(1e-3).to_abs(2.0), 2e-3);
        // constant data: falls back to treating range as 1
        assert_eq!(ErrorBound::Rel(1e-3).to_abs(0.0), 1e-3);
    }

    #[test]
    fn header_roundtrip() {
        let mut h = stream_header(7, 123_456);
        let hdr_len = h.len();
        // The bomb guard requires payload bytes proportional to the declared
        // count; a bare header with a six-figure n is treated as forged.
        h.push(0);
        let (n, pos) = read_stream_header(&h, 7).unwrap();
        assert_eq!(n, 123_456);
        assert_eq!(pos, hdr_len);
    }

    #[test]
    fn header_id_mismatch() {
        let h = stream_header(7, 10);
        assert!(read_stream_header(&h, 8).is_err());
        assert!(read_stream_header(&[], 7).is_err());
    }

    #[test]
    fn range_of_buffer() {
        assert_eq!(value_range(&[1.0, -2.0, 3.0]), (-2.0, 3.0));
        assert_eq!(value_range(&[]), (0.0, 0.0));
    }

    #[test]
    fn header_rejects_declared_length_exceeding_input() {
        // A 2-byte tail declaring 2^30 values: no real codec expands a
        // couple of bytes that far — reject before anyone allocates.
        let mut h = vec![7u8];
        codec_kit::varint::write_uvarint(&mut h, 1u64 << 30);
        assert_eq!(
            read_stream_header(&h, 7).unwrap_err(),
            CodecError::Corrupt("declared length exceeds remaining input")
        );
        // The same count with a plausibly sized body passes the guard.
        let mut ok = vec![7u8];
        codec_kit::varint::write_uvarint(&mut ok, 1u64 << 27);
        ok.extend_from_slice(&[0; 64]);
        assert!(read_stream_header(&ok, 7).is_ok());
    }

    #[test]
    fn header_rejects_absurd_counts_outright() {
        let mut h = vec![7u8];
        codec_kit::varint::write_uvarint(&mut h, 1u64 << 39);
        h.extend_from_slice(&vec![0u8; 1 << 17]);
        assert_eq!(
            read_stream_header(&h, 7).unwrap_err(),
            CodecError::Corrupt("absurd element count")
        );
    }
}
