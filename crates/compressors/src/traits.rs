//! The `Compressor` abstraction all nine compressors implement.
//!
//! Compressors take flat `f64` buffers — the layout QTensor tensors have
//! after the framework's de-interleaving — and run their kernels on a
//! simulated-GPU [`Stream`], which is where throughput numbers come from.
//! Streams are self-describing: a one-byte compressor id, then the
//! compressor's own header, so decompression can be dispatched blindly.

use codec_kit::CodecError;
use gpu_model::Stream;

/// User-facing error-bound specification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ErrorBound {
    /// Absolute: `|x − x̂| ≤ eb` pointwise.
    Abs(f64),
    /// Value-range relative: `|x − x̂| ≤ eb · (max − min)` pointwise
    /// (the SZ convention; resolved to absolute per buffer).
    Rel(f64),
}

impl ErrorBound {
    /// Resolves to an absolute bound for a buffer with the given value range.
    /// Zero-range (constant) data yields a tiny positive bound so divisions
    /// stay finite.
    pub fn to_abs(self, value_range: f64) -> f64 {
        match self {
            ErrorBound::Abs(eb) => eb,
            ErrorBound::Rel(eb) => {
                let r = if value_range > 0.0 { value_range } else { 1.0 };
                eb * r
            }
        }
    }

    /// The raw bound value (for display).
    pub fn value(self) -> f64 {
        match self {
            ErrorBound::Abs(v) | ErrorBound::Rel(v) => v,
        }
    }
}

/// Lossless compressors ignore the bound; error-bounded ones honour it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompressorKind {
    /// Bit-exact reconstruction.
    Lossless,
    /// Pointwise error-bounded lossy reconstruction.
    ErrorBounded,
}

/// A (de)compressor of `f64` buffers with simulated-GPU cost accounting.
pub trait Compressor: Send + Sync {
    /// Short name as used in the paper's plots (e.g. `"cuSZ"`).
    fn name(&self) -> &'static str;

    /// Stable one-byte stream id.
    fn id(&self) -> u8;

    /// Lossless or error-bounded.
    fn kind(&self) -> CompressorKind;

    /// Compresses `data` under `bound`, charging kernels to `stream`.
    fn compress(
        &self,
        data: &[f64],
        bound: ErrorBound,
        stream: &Stream,
    ) -> Result<Vec<u8>, CodecError>;

    /// Decompresses a stream produced by this compressor's [`Compressor::compress`].
    fn decompress(&self, bytes: &[u8], stream: &Stream) -> Result<Vec<f64>, CodecError>;

    /// Like [`Compressor::compress`], but writes into a caller-provided
    /// buffer (cleared first, capacity reused). The bytes produced are
    /// **bit-identical** to `compress` — the property tests enforce it.
    ///
    /// The default routes through `compress` and copies; hot compressors
    /// override it with genuinely allocation-reusing encoders. On error the
    /// buffer contents are unspecified but valid.
    fn compress_into(
        &self,
        data: &[f64],
        bound: ErrorBound,
        stream: &Stream,
        out: &mut Vec<u8>,
    ) -> Result<(), CodecError> {
        let bytes = self.compress(data, bound, stream)?;
        out.clear();
        out.extend_from_slice(&bytes);
        Ok(())
    }

    /// Like [`Compressor::decompress`], but writes into a caller-provided
    /// buffer (cleared first, capacity reused). Values produced are
    /// bit-identical to `decompress`. On error the buffer contents are
    /// unspecified but valid.
    fn decompress_into(
        &self,
        bytes: &[u8],
        stream: &Stream,
        out: &mut Vec<f64>,
    ) -> Result<(), CodecError> {
        let values = self.decompress(bytes, stream)?;
        out.clear();
        out.extend_from_slice(&values);
        Ok(())
    }
}

/// Writes the common stream prologue (id + element count); returns the buffer.
pub fn stream_header(id: u8, n: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    stream_header_into(id, n, &mut out);
    out
}

/// [`stream_header`] into a caller-provided buffer (cleared first, capacity
/// reused) — the `*_into` encoders start their streams with this.
pub fn stream_header_into(id: u8, n: usize, out: &mut Vec<u8>) {
    out.clear();
    out.push(id);
    codec_kit::varint::write_uvarint(out, n as u64);
}

/// Checks the id byte and reads the element count; returns `(n, pos)`.
pub fn read_stream_header(bytes: &[u8], expect_id: u8) -> Result<(usize, usize), CodecError> {
    let id = *bytes.first().ok_or(CodecError::UnexpectedEof)?;
    if id != expect_id {
        return Err(CodecError::Corrupt("compressor id mismatch"));
    }
    let mut pos = 1usize;
    let n = codec_kit::varint::read_uvarint(bytes, &mut pos)? as usize;
    if n > (1usize << 40) {
        return Err(CodecError::Corrupt("absurd element count"));
    }
    Ok((n, pos))
}

/// Value range `(min, max)` of a buffer; `(0, 0)` when empty.
pub fn value_range(data: &[f64]) -> (f64, f64) {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for &v in data {
        min = min.min(v);
        max = max.max(v);
    }
    if data.is_empty() {
        (0.0, 0.0)
    } else {
        (min, max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_resolution() {
        assert_eq!(ErrorBound::Abs(1e-3).to_abs(100.0), 1e-3);
        assert_eq!(ErrorBound::Rel(1e-3).to_abs(2.0), 2e-3);
        // constant data: falls back to treating range as 1
        assert_eq!(ErrorBound::Rel(1e-3).to_abs(0.0), 1e-3);
    }

    #[test]
    fn header_roundtrip() {
        let h = stream_header(7, 123_456);
        let (n, pos) = read_stream_header(&h, 7).unwrap();
        assert_eq!(n, 123_456);
        assert_eq!(pos, h.len());
    }

    #[test]
    fn header_id_mismatch() {
        let h = stream_header(7, 10);
        assert!(read_stream_header(&h, 8).is_err());
        assert!(read_stream_header(&[], 7).is_err());
    }

    #[test]
    fn range_of_buffer() {
        assert_eq!(value_range(&[1.0, -2.0, 3.0]), (-2.0, 3.0));
        assert_eq!(value_range(&[]), (0.0, 0.0));
    }
}
