//! LZ4 — byte-oriented lossless compression (nvCOMP's fastest general codec).
//!
//! Faithful LZ4 *block format*: sequences of a token byte (literal-length
//! nibble + match-length nibble, 15 = continued in 255-run extension bytes),
//! literal bytes, and a 2-byte little-endian match offset. The paper's
//! takeaway for this class of compressor — ratio ≈ 1 on floating-point
//! tensors — is a property of byte-granular matching that this
//! implementation reproduces exactly.

use crate::traits::{read_stream_header, stream_header, Compressor, CompressorKind, ErrorBound};
use codec_kit::lz77::{find_matches, LzConfig, LzToken};
use codec_kit::varint::{read_uvarint, write_uvarint};
use codec_kit::CodecError;
use gpu_model::{KernelSpec, MemoryPattern, Stream};

/// Stream id of LZ4.
pub const LZ4_ID: u8 = 4;

/// The LZ4 compressor.
#[derive(Debug, Clone, Default)]
pub struct Lz4;

/// Encodes an LZ4 block from an LZ77 parse. Public because the framework's
/// optional lossless tail pass reuses it on already-compressed bytes.
pub fn lz4_encode_block(data: &[u8], out: &mut Vec<u8>) {
    let cfg = LzConfig {
        min_match: 4,
        max_match: 1 << 20,
        window: 65_535,
        max_chain: 32,
    };
    let tokens = find_matches(data, &cfg);

    // LZ4 sequences alternate (literals, match); coalesce the parse into
    // that shape, with a possibly match-less final sequence.
    let mut i = 0usize;
    while i < tokens.len() {
        let (lit_start, lit_len) = match tokens[i] {
            LzToken::Literal { start, len } => {
                i += 1;
                (start, len)
            }
            LzToken::Match { .. } => (0, 0),
        };
        let m = if i < tokens.len() {
            match tokens[i] {
                LzToken::Match { len, dist } => {
                    i += 1;
                    Some((len, dist))
                }
                LzToken::Literal { .. } => None, // cannot happen: parser coalesces
            }
        } else {
            None
        };
        write_sequence(out, &data[lit_start..lit_start + lit_len], m);
    }
    if tokens.is_empty() {
        write_sequence(out, &[], None);
    }
}

fn write_sequence(out: &mut Vec<u8>, literals: &[u8], m: Option<(usize, usize)>) {
    let lit_nib = literals.len().min(15) as u8;
    let (match_nib, rest) = match m {
        Some((len, _)) => {
            debug_assert!(len >= 4);
            let ml = len - 4;
            (ml.min(15) as u8, Some(ml))
        }
        None => (0, None),
    };
    out.push((lit_nib << 4) | match_nib);
    if literals.len() >= 15 {
        write_ext_len(out, literals.len() - 15);
    }
    out.extend_from_slice(literals);
    if let Some((_, dist)) = m {
        debug_assert!((1..=65_535).contains(&dist));
        out.extend_from_slice(&(dist as u16).to_le_bytes());
        if let Some(ml) = rest {
            if ml >= 15 {
                write_ext_len(out, ml - 15);
            }
        }
    }
}

fn write_ext_len(out: &mut Vec<u8>, mut extra: usize) {
    while extra >= 255 {
        out.push(255);
        extra -= 255;
    }
    out.push(extra as u8);
}

fn read_ext_len(data: &[u8], pos: &mut usize) -> Result<usize, CodecError> {
    let mut total = 0usize;
    loop {
        let b = *data.get(*pos).ok_or(CodecError::UnexpectedEof)?;
        *pos += 1;
        total += b as usize;
        if b != 255 {
            return Ok(total);
        }
        if total > 1 << 30 {
            return Err(CodecError::Corrupt("absurd LZ4 length"));
        }
    }
}

/// Decodes an LZ4 block into exactly `expected_len` bytes.
pub fn lz4_decode_block(data: &[u8], expected_len: usize) -> Result<Vec<u8>, CodecError> {
    let mut out = Vec::with_capacity(expected_len);
    let mut pos = 0usize;
    while out.len() < expected_len {
        let token = *data.get(pos).ok_or(CodecError::UnexpectedEof)?;
        pos += 1;
        let mut lit_len = (token >> 4) as usize;
        if lit_len == 15 {
            lit_len += read_ext_len(data, &mut pos)?;
        }
        if pos + lit_len > data.len() {
            return Err(CodecError::UnexpectedEof);
        }
        out.extend_from_slice(&data[pos..pos + lit_len]);
        pos += lit_len;
        if out.len() >= expected_len {
            break; // final literal-only sequence
        }
        if pos + 2 > data.len() {
            return Err(CodecError::UnexpectedEof);
        }
        let dist = u16::from_le_bytes([data[pos], data[pos + 1]]) as usize;
        pos += 2;
        if dist == 0 || dist > out.len() {
            return Err(CodecError::Corrupt("LZ4 offset out of window"));
        }
        let mut match_len = (token & 0x0F) as usize;
        if match_len == 15 {
            match_len += read_ext_len(data, &mut pos)?;
        }
        match_len += 4;
        if out.len() + match_len > expected_len {
            return Err(CodecError::Corrupt("LZ4 match overruns output"));
        }
        let from = out.len() - dist;
        for k in 0..match_len {
            let b = out[from + k];
            out.push(b);
        }
    }
    if out.len() != expected_len {
        return Err(CodecError::Corrupt("LZ4 output length mismatch"));
    }
    Ok(out)
}

impl Compressor for Lz4 {
    fn name(&self) -> &'static str {
        "LZ4"
    }

    fn id(&self) -> u8 {
        LZ4_ID
    }

    fn kind(&self) -> CompressorKind {
        CompressorKind::Lossless
    }

    fn compress_raw(
        &self,
        data: &[f64],
        _bound: ErrorBound,
        stream: &Stream,
    ) -> Result<Vec<u8>, CodecError> {
        let bytes: Vec<u8> = data.iter().flat_map(|v| v.to_le_bytes()).collect();
        let mut out = stream_header(LZ4_ID, data.len());
        let payload = stream.launch(
            // Hash-table probing is data-dependent gather: Random pattern,
            // ~3 touched bytes per input byte.
            &KernelSpec::streaming(
                "lz4::match_and_emit",
                (bytes.len() * 3) as u64,
                bytes.len() as u64,
            )
            .with_pattern(MemoryPattern::Random),
            || {
                let mut payload = Vec::with_capacity(bytes.len() / 2 + 64);
                lz4_encode_block(&bytes, &mut payload);
                payload
            },
        );
        write_uvarint(&mut out, payload.len() as u64);
        out.extend_from_slice(&payload);
        Ok(out)
    }

    fn decompress_raw(&self, bytes: &[u8], stream: &Stream) -> Result<Vec<f64>, CodecError> {
        let (n, mut pos) = read_stream_header(bytes, LZ4_ID)?;
        let payload_len = read_uvarint(bytes, &mut pos)? as usize;
        if bytes.len() < pos + payload_len {
            return Err(CodecError::UnexpectedEof);
        }
        let raw = stream.launch(
            &KernelSpec::streaming("lz4::decode", payload_len as u64, (n * 8) as u64)
                .with_pattern(MemoryPattern::Strided),
            || lz4_decode_block(&bytes[pos..pos + payload_len], n * 8),
        )?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_model::DeviceSpec;

    fn stream() -> Stream {
        Stream::new(DeviceSpec::a100())
    }

    fn roundtrip(data: &[f64]) -> usize {
        let c = Lz4;
        let bytes = c.compress(data, ErrorBound::Abs(0.0), &stream()).unwrap();
        let rec = c.decompress(&bytes, &stream()).unwrap();
        assert_eq!(rec.len(), data.len());
        for (a, b) in data.iter().zip(&rec) {
            assert_eq!(a.to_bits(), b.to_bits(), "lossless must be bit-exact");
        }
        bytes.len()
    }

    #[test]
    fn bit_exact_on_assorted_data() {
        roundtrip(&[]);
        roundtrip(&[1.5]);
        roundtrip(&[0.0; 1000]);
        let v: Vec<f64> = (0..997).map(|i| (i % 10) as f64 * 0.5).collect();
        roundtrip(&v);
    }

    #[test]
    fn repetitive_data_compresses() {
        let v = vec![std::f64::consts::PI; 10_000];
        let n = roundtrip(&v);
        assert!(n < 2000, "constant doubles took {n} bytes");
    }

    #[test]
    fn random_floats_do_not_compress() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(4);
        let v: Vec<f64> = (0..8192).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let n = roundtrip(&v);
        let cr = (v.len() * 8) as f64 / n as f64;
        assert!(cr < 1.2, "random doubles should not compress, CR={cr:.2}");
    }

    #[test]
    fn nan_and_inf_preserved() {
        roundtrip(&[
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            -0.0,
            f64::MIN_POSITIVE,
        ]);
    }

    #[test]
    fn negative_zero_bit_preserved() {
        let c = Lz4;
        let bytes = c
            .compress(&[-0.0], ErrorBound::Abs(0.0), &stream())
            .unwrap();
        let rec = c.decompress(&bytes, &stream()).unwrap();
        assert_eq!(rec[0].to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn corrupt_stream_errors() {
        let c = Lz4;
        let v: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let bytes = c.compress(&v, ErrorBound::Abs(0.0), &stream()).unwrap();
        for cut in [0, 1, 3, bytes.len() / 2] {
            assert!(c.decompress(&bytes[..cut], &stream()).is_err());
        }
        let mut bad = bytes.clone();
        if let Some(b) = bad.last_mut() {
            *b ^= 0xFF;
        }
        let _ = c.decompress(&bad, &stream()); // must not panic
    }

    #[test]
    fn raw_block_layer_roundtrips_bytes() {
        let data = b"the quick brown fox jumps over the lazy dog; the quick brown fox";
        let mut enc = Vec::new();
        lz4_encode_block(data, &mut enc);
        assert_eq!(lz4_decode_block(&enc, data.len()).unwrap(), data);
    }
}
