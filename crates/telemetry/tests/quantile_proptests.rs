//! Property tests for the bucket-sketch percentiles: for any observation
//! set and any bucket layout, the sketch quantile must land within one
//! histogram bucket of the true order statistic — including ranks that
//! fall in the implicit overflow bucket, where the sketch honestly
//! answers `+inf` ("beyond the last configured bound") instead of a
//! made-up number.
//!
//! The observations go through the real `Registry::histogram` +
//! `Histogram::observe` path (not a re-implementation of the bucketing),
//! so these tests pin the production sketch end to end.

use proptest::prelude::*;
use proptest::TestCaseError;
use qcf_telemetry::metrics::quantile_from_buckets;
use std::sync::atomic::{AtomicU64, Ordering};

/// Unique metric name per case — the registry hands back the *existing*
/// histogram (ignoring new bounds) when a name repeats.
fn fresh_name() -> String {
    static N: AtomicU64 = AtomicU64::new(0);
    format!("proptest.quantile.{}", N.fetch_add(1, Ordering::Relaxed))
}

/// The true order statistic the sketch approximates: with
/// `rank = ceil(q·n)` (clamped to `[1, n]`), the rank-th smallest value.
fn true_quantile(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len() as f64;
    let rank = ((q * n).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Asserts the sketch contract for one (histogram, q) pair: the estimate
/// is the upper bound of the bucket holding the true quantile, so
/// `prev_bound < true ≤ estimate` — or `+inf` exactly when the true
/// quantile exceeds the last configured bound.
fn assert_within_bucket(
    bounds: &[f64],
    buckets: &[(f64, u64)],
    count: u64,
    sorted: &[f64],
    q: f64,
) -> Result<(), TestCaseError> {
    let est = quantile_from_buckets(buckets, count, q);
    let truth = true_quantile(sorted, q);
    let last = bounds.last().copied().unwrap_or(f64::NEG_INFINITY);
    if est.is_infinite() {
        prop_assert!(
            truth > last,
            "sketch says overflow (> {last}) but true q{q} is {truth}"
        );
        return Ok(());
    }
    prop_assert!(
        truth <= est,
        "true q{q} = {truth} above its sketch bucket bound {est}"
    );
    // The bound below the estimate (if any) must sit strictly under the
    // truth — otherwise the sketch skipped a tighter bucket.
    if let Some(prev) = bounds.iter().rev().find(|&&b| b < est) {
        prop_assert!(
            truth > *prev,
            "true q{q} = {truth} fits the tighter bucket ≤ {prev}, sketch said {est}"
        );
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Degenerate inputs: the sketch must stay honest (`+inf` for overflow
// ranks, NaN-as-"no answer" for empty/invalid queries) and never panic.
// ---------------------------------------------------------------------------

#[test]
fn empty_histogram_answers_nan_never_panics() {
    qcf_telemetry::set_enabled(true);
    let h = qcf_telemetry::registry().histogram(&fresh_name(), &[1.0, 10.0]);
    for q in [0.0, 0.5, 0.99, 1.0] {
        assert!(
            h.quantile(q).is_nan(),
            "empty sketch must answer NaN for q={q}"
        );
    }
    // Zero-count with no buckets at all, straight through the free fn.
    assert!(quantile_from_buckets(&[], 0, 0.5).is_nan());
    // A count with *no bucket table* cannot be located anywhere: the
    // honest answer is still NaN, not a fabricated bound.
    assert!(quantile_from_buckets(&[], 5, 0.5).is_nan());
}

#[test]
fn single_bucket_sketch_answers_its_only_bound() {
    qcf_telemetry::set_enabled(true);
    let h = qcf_telemetry::registry().histogram(&fresh_name(), &[7.5]);
    h.observe(1.0);
    h.observe(2.0);
    for q in [0.01, 0.5, 1.0] {
        assert_eq!(h.quantile(q), 7.5, "all mass in one bucket ⇒ its bound");
    }
}

#[test]
fn all_overflow_sketch_answers_infinite_for_every_rank() {
    qcf_telemetry::set_enabled(true);
    let h = qcf_telemetry::registry().histogram(&fresh_name(), &[1.0]);
    for _ in 0..10 {
        h.observe(1e9); // everything beyond the last bound
    }
    assert_eq!(h.overflow(), 10);
    for q in [0.01, 0.5, 0.95, 1.0] {
        let est = h.quantile(q);
        assert!(
            est.is_infinite() && est > 0.0,
            "all-overflow sketch must answer +inf for q={q}, got {est}"
        );
    }
}

#[test]
fn out_of_range_q_is_refused_with_nan() {
    let buckets = [(1.0, 3u64), (f64::INFINITY, 1)];
    for q in [-0.1, 1.1, f64::NAN] {
        assert!(quantile_from_buckets(&buckets, 4, q).is_nan());
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn sketch_quantiles_land_within_one_bucket(
        // Strictly increasing bounds built from positive gaps, scaled so
        // some observation sets overflow the top bucket and some don't.
        gaps in prop::collection::vec(0.1f64..50.0, 1..12),
        // Raw observations in [0, 500): with bounds summing to at most
        // 12·50 = 600 the overflow bucket is hit by many cases.
        raw in prop::collection::vec(0.0f64..500.0, 1..300),
    ) {
        let mut bounds = Vec::with_capacity(gaps.len());
        let mut acc = 0.0;
        for g in &gaps {
            acc += g;
            bounds.push(acc);
        }

        qcf_telemetry::set_enabled(true);
        let h = qcf_telemetry::registry().histogram(&fresh_name(), &bounds);
        for &v in &raw {
            h.observe(v);
        }

        let mut sorted = raw.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let buckets = h.bucket_counts();
        prop_assert_eq!(h.count(), raw.len() as u64);
        for q in [0.50, 0.95, 0.99] {
            assert_within_bucket(&bounds, &buckets, h.count(), &sorted, q)?;
        }
    }

    #[test]
    fn overflow_rank_is_reported_as_infinite_never_invented(
        bound in 1.0f64..100.0,
        below in prop::collection::vec(0.0f64..1.0, 0..40),
        above in prop::collection::vec(100.1f64..1e6, 1..40),
    ) {
        // One finite bucket at `bound`; everything in `above` overflows it.
        let bounds = [bound];
        qcf_telemetry::set_enabled(true);
        let h = qcf_telemetry::registry().histogram(&fresh_name(), &bounds);
        for &v in below.iter().chain(&above) {
            h.observe(v);
        }

        let n = (below.len() + above.len()) as u64;
        prop_assert_eq!(h.overflow(), above.len() as u64);
        // q = 1.0 always ranks into the overflow bucket here.
        let est = h.quantile(1.0);
        prop_assert!(est.is_infinite(), "p100 with overflow obs must be +inf, got {est}");
        // And a quantile that ranks below the overflow stays finite.
        if below.len() as u64 * 2 > n {
            let est = h.quantile(0.5);
            prop_assert_eq!(est, bound);
        }
    }
}
