//! Property tests for the downsampling ring's timestamp discipline: for
//! any capture timestamp sequence — including ties and clock stalls —
//! and any number of fold-induced halvings, the retained series must
//! keep **strictly** monotonic timestamps and still span the whole run
//! (first offered sample retained, newest on-stride offer retained).
//!
//! Strictness matters downstream: rate signals divide by `Δt` between
//! retained samples, and a tie that survives a halving would make that
//! zero. The ring bumps ties forward by 1 µs on admission instead.

use proptest::prelude::*;
use qcf_telemetry::metrics::Snapshot;
use qcf_telemetry::timeseries::{self, Sample, CAPACITY};
use std::sync::Mutex;

/// The ring is process-global; cases must not interleave.
static RING_LOCK: Mutex<()> = Mutex::new(());

fn offer_all(timestamps: &[u64]) {
    for &t_us in timestamps {
        timeseries::offer(Sample {
            t_us,
            metrics: Snapshot::default(),
        });
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn retained_series_is_strictly_monotonic_and_spans_the_run(
        // Non-negative per-capture clock increments; zero models a
        // sub-microsecond tick (the tie case that motivated the fix).
        increments in prop::collection::vec(0u64..3, 1..(CAPACITY * 4 + 7)),
        start in 0u64..1_000_000,
    ) {
        let _g = RING_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        timeseries::reset();

        let mut t = start;
        let mut stamps = Vec::with_capacity(increments.len());
        for inc in &increments {
            t += inc;
            stamps.push(t);
        }
        offer_all(&stamps);

        let retained = timeseries::samples();
        prop_assert!(!retained.is_empty());
        prop_assert!(retained.len() <= CAPACITY);

        // Strict monotonicity survives any number of halvings.
        for w in retained.windows(2) {
            prop_assert!(
                w[0].t_us < w[1].t_us,
                "tie or inversion after {} folds: {} then {}",
                timeseries::folds(),
                w[0].t_us,
                w[1].t_us
            );
        }

        // Whole-run span: the fold keeps index 0, so the very first
        // capture is always present (possibly tie-bumped by admission,
        // but the first offer is never bumped).
        prop_assert_eq!(retained[0].t_us, stamps[0]);

        // The newest retained sample is the last *on-stride* offer: no
        // more than one stride's worth of captures ever falls off the
        // fresh end, and admission only bumps timestamps forward.
        let stride = timeseries::stride();
        let offered = stamps.len() as u64;
        let last_kept_idx = ((offered - 1) / stride) * stride;
        prop_assert!(
            retained.last().unwrap().t_us >= stamps[last_kept_idx as usize],
            "newest retained sample predates the newest on-stride offer"
        );

        timeseries::reset();
    }

    #[test]
    fn fold_halves_once_at_capacity_and_keeps_ends(
        extra in 1usize..CAPACITY,
    ) {
        let _g = RING_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        timeseries::reset();

        // Capacity fills the ring; each further on-stride offer folds at
        // most once more. Identical timestamps throughout: the admission
        // bump must synthesize a strictly increasing series from a
        // completely stalled clock.
        let stamps = vec![42u64; CAPACITY + extra];
        offer_all(&stamps);

        let retained = timeseries::samples();
        prop_assert!(retained.len() <= CAPACITY);
        for w in retained.windows(2) {
            prop_assert!(w[0].t_us < w[1].t_us);
        }
        prop_assert_eq!(retained[0].t_us, 42, "first capture must survive every fold");
        prop_assert!(timeseries::folds() >= 1);

        timeseries::reset();
    }
}
