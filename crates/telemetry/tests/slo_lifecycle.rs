//! Integration tests for the SLO engine: synthetic sampler rings drive
//! the full pending → firing → resolved lifecycle through the public
//! API only ([`qcf_telemetry::timeseries::offer`] +
//! [`qcf_telemetry::slo::evaluate_ring`]), the way `qcfz slo` replays a
//! finished run.

use qcf_telemetry::metrics::Snapshot;
use qcf_telemetry::slo::{self, AlertState, SloSpec};
use qcf_telemetry::timeseries::{self, Sample};
use std::sync::Mutex;

/// The ring and engine are process-global; tests must not interleave.
static LOCK: Mutex<()> = Mutex::new(());

/// A ring sample with one counter and one float gauge set.
fn sample(t_ms: u64, stall_us: u64, rss: f64) -> Sample {
    let mut m = Snapshot::default();
    m.counters
        .insert("state.prefetch.stall_us".into(), stall_us);
    m.float_gauges
        .insert("state.ledger.accumulated_rss".into(), rss);
    Sample {
        t_us: t_ms * 1000,
        metrics: m,
    }
}

#[test]
fn latency_burn_fires_and_resolves_over_synthetic_ring() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let spec = SloSpec::parse(
        "windows=2/6; pending=2; resolve=2\n\
         latency.stall: rate(state.prefetch.stall_us) <= 100000\n\
         fidelity.bound: state.ledger.accumulated_rss <= 1e-3",
    )
    .unwrap();

    // 10 ms per tick. Phase 1 (8 ticks): no stall. Phase 2 (10 ticks):
    // the device stalls 5 ms of every 10 ms tick — a 500000 µs/s burn,
    // 5× the budget. Phase 3 (10 ticks): healthy again.
    let mut ring = Vec::new();
    let mut stall = 0u64;
    for i in 0..28u64 {
        if (8..18).contains(&i) {
            stall += 5_000;
        }
        ring.push(sample((i + 1) * 10, stall, 1e-6));
    }

    let report = slo::evaluate_ring(&spec, &ring);
    assert_eq!(report.ticks, 28);
    report.check_accounting().expect("exact accounting");

    let latency = &report.alerts[0];
    assert_eq!(latency.objective.name, "latency.stall");
    assert_eq!(
        latency.state,
        AlertState::Resolved,
        "burn ended mid-run, the alert must have resolved"
    );
    let steps: Vec<(&str, AlertState, AlertState)> = report
        .transitions
        .iter()
        .map(|t| (t.name.as_str(), t.from, t.to))
        .collect();
    assert_eq!(
        steps,
        vec![
            ("latency.stall", AlertState::Ok, AlertState::Pending),
            ("latency.stall", AlertState::Pending, AlertState::Firing),
            ("latency.stall", AlertState::Firing, AlertState::Resolved),
        ]
    );
    // The fidelity objective never breached: a quiet signal is not an
    // alert, and its machine never left Ok.
    let fidelity = &report.alerts[1];
    assert_eq!(fidelity.state, AlertState::Ok);
    assert_eq!(fidelity.breach_ticks, 0);
    assert_eq!(fidelity.transitions, 0);
    // Transition values carry the contributing window signals.
    let firing = &report.transitions[1];
    assert!(
        firing.fast > 100_000.0 && firing.slow > 100_000.0,
        "a multi-window breach needs both windows over budget: fast={} slow={}",
        firing.fast,
        firing.slow
    );
}

#[test]
fn replay_over_real_ring_matches_live_engine() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    qcf_telemetry::set_enabled(true);
    timeseries::stop();
    timeseries::reset();
    qcf_telemetry::registry().reset_values();
    let spec =
        SloSpec::parse("windows=1/3; pending=2; resolve=2; hot: telemetry.test.slo_int <= 2")
            .unwrap();
    slo::arm(spec.clone());

    let c = qcf_telemetry::registry().counter("telemetry.test.slo_int");
    for i in 0..8 {
        if i >= 3 {
            c.add(10);
        }
        timeseries::capture(); // live path: capture drives one tick
    }

    let live = slo::alerts();
    assert_eq!(live.len(), 1);
    assert_eq!(live[0].state, AlertState::Firing);

    // The pure replay over the same retained ring agrees with the live
    // machine on state and exact breach accounting.
    let replay = slo::evaluate_ring(&spec, &timeseries::samples());
    assert_eq!(replay.alerts[0].state, live[0].state);
    assert_eq!(replay.alerts[0].breach_ticks, live[0].breach_ticks);
    assert_eq!(replay.alerts[0].transitions, live[0].transitions);
    replay.check_accounting().expect("exact accounting");

    // And the registry carries the same numbers on the slo.* keys.
    let snap = qcf_telemetry::registry().snapshot();
    assert_eq!(snap.counters.get("slo.ticks"), Some(&8));
    assert_eq!(
        snap.counters.get("slo.breach.hot").copied().unwrap_or(0),
        live[0].breach_ticks
    );
    assert_eq!(snap.gauges.get("slo.firing").map(|&(v, _)| v), Some(1));

    slo::disarm();
    timeseries::reset();
    qcf_telemetry::registry().reset_values();
}

#[test]
fn run_scope_isolation_resets_machines_but_keeps_spec() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    qcf_telemetry::set_enabled(true);
    timeseries::stop();
    timeseries::reset();
    slo::arm(
        SloSpec::parse("windows=1/1; pending=1; resolve=1; hot: telemetry.test.slo_rs <= 0")
            .unwrap(),
    );
    let c = qcf_telemetry::registry().counter("telemetry.test.slo_rs");
    c.add(1);
    timeseries::capture();
    assert_eq!(slo::alerts()[0].state, AlertState::Firing);

    // A new scope must judge only its own samples: the firing machine
    // from the previous phase is gone, the spec survives.
    let scope = qcf_telemetry::RunScope::enter();
    assert!(slo::armed());
    assert_eq!(slo::alerts()[0].state, AlertState::Ok);
    assert_eq!(slo::ticks(), 0);
    drop(scope);

    slo::disarm();
    timeseries::reset();
    qcf_telemetry::registry().reset_values();
}
