//! The global metrics registry: counters, gauges, float gauges and
//! fixed-bucket histograms.
//!
//! Instruments are created (or fetched) by name from [`registry`] and held
//! as `Arc` handles; hot paths cache the handle once and then pay a single
//! atomic op per update. All mutating operations are no-ops while
//! telemetry is disabled, so instrumented code needs no of its own guards
//! — but local bookkeeping that *must* stay correct regardless (the public
//! stats structs in `qtensor`) goes through [`GaugeTrack`], which tracks
//! locally always and mirrors into the registry only when enabled.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A monotone event counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` (no-op while telemetry is disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A signed level with a high-water mark (live bytes, queue depths).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
    high_water: AtomicI64,
}

impl Gauge {
    /// Adds `delta` (may be negative); updates the high-water mark.
    /// No-op while telemetry is disabled.
    #[inline]
    pub fn add(&self, delta: i64) {
        if !crate::enabled() {
            return;
        }
        let now = self.value.fetch_add(delta, Ordering::Relaxed) + delta;
        self.high_water.fetch_max(now, Ordering::Relaxed);
    }

    /// Subtracts `delta`.
    #[inline]
    pub fn sub(&self, delta: i64) {
        self.add(-delta);
    }

    /// Sets the level outright (still raises the high-water mark).
    pub fn set(&self, value: i64) {
        if !crate::enabled() {
            return;
        }
        self.value.store(value, Ordering::Relaxed);
        self.high_water.fetch_max(value, Ordering::Relaxed);
    }

    /// Current level.
    pub fn value(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Highest level ever observed.
    pub fn high_water(&self) -> i64 {
        self.high_water.load(Ordering::Relaxed)
    }

    /// Starts a per-run tracker mirroring into this gauge; see
    /// [`GaugeTrack`].
    pub fn track(self: &Arc<Self>) -> GaugeTrack {
        GaugeTrack {
            gauge: Arc::clone(self),
            local: 0,
            local_peak: 0,
        }
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
        self.high_water.store(0, Ordering::Relaxed);
    }
}

/// Per-run view of a [`Gauge`]: tracks a local level and local peak
/// unconditionally (so per-run stats stay exact even with telemetry
/// disabled, or with concurrent runs sharing the global gauge) while
/// forwarding every delta to the registry gauge.
#[derive(Debug)]
pub struct GaugeTrack {
    gauge: Arc<Gauge>,
    local: i64,
    local_peak: i64,
}

impl GaugeTrack {
    /// Adds `delta` locally and to the global gauge.
    pub fn add(&mut self, delta: i64) {
        self.local += delta;
        self.local_peak = self.local_peak.max(self.local);
        self.gauge.add(delta);
    }

    /// Subtracts `delta`.
    pub fn sub(&mut self, delta: i64) {
        self.add(-delta);
    }

    /// This run's current level.
    pub fn value(&self) -> i64 {
        self.local
    }

    /// This run's peak level.
    pub fn peak(&self) -> i64 {
        self.local_peak
    }
}

impl Drop for GaugeTrack {
    fn drop(&mut self) {
        // Return this run's residual level so the global gauge reflects
        // only live runs.
        if self.local != 0 {
            self.gauge.add(-self.local);
        }
    }
}

/// A last-value float gauge (compression ratios, PSNR, throughput).
#[derive(Debug, Default)]
pub struct FloatGauge {
    bits: AtomicU64,
}

impl FloatGauge {
    /// Sets the value (no-op while telemetry is disabled).
    pub fn set(&self, v: f64) {
        if crate::enabled() {
            self.bits.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Last value set (0.0 if never set).
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    fn reset(&self) {
        self.bits.store(0, Ordering::Relaxed);
    }
}

/// A fixed-bucket histogram over f64 observations.
///
/// Buckets are cumulative-upper-bound style: observation `v` lands in the
/// first bucket with `v <= bound`, or — for any finite `v` above the last
/// bound — in the explicit **overflow bucket** (reported with a `+inf`
/// upper bound). Non-finite observations (`NaN`, `±inf`) carry no usable
/// magnitude: they are *dropped*, counted per-histogram ([`Histogram::dropped`])
/// and in the global `telemetry.dropped_samples` registry counter, rather
/// than silently polluting the top bucket and the sum/mean. Tracks count
/// and sum for mean derivation.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    dropped: AtomicU64,
    sum_bits: Mutex<f64>,
}

/// The global drop counter every histogram feeds: lives in the process
/// registry as `telemetry.dropped_samples`, so any metrics dump shows at a
/// glance whether observations were discarded.
fn dropped_samples_counter() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| registry().counter("telemetry.dropped_samples"))
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bounds must be increasing"
        );
        assert!(
            bounds.iter().all(|b| b.is_finite()),
            "bounds must be finite (the overflow bucket is implicit)"
        );
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            sum_bits: Mutex::new(0.0),
        }
    }

    /// Records one observation (no-op while telemetry is disabled).
    /// Non-finite values are dropped and counted, not bucketed.
    pub fn observe(&self, v: f64) {
        if !crate::enabled() {
            return;
        }
        if !v.is_finite() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            dropped_samples_counter().inc();
            return;
        }
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        *lock_unpoisoned(&self.sum_bits) += v;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Number of non-finite observations dropped by this histogram.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Count in the explicit overflow bucket (finite observations above
    /// the last configured bound).
    pub fn overflow(&self) -> u64 {
        self.buckets
            .last()
            .map(|b| b.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        *lock_unpoisoned(&self.sum_bits)
    }

    /// Mean of observations (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() / n as f64
        }
    }

    /// `(upper_bound, count)` pairs; the final pair uses `f64::INFINITY`.
    pub fn bucket_counts(&self) -> Vec<(f64, u64)> {
        self.bounds
            .iter()
            .copied()
            .chain(std::iter::once(f64::INFINITY))
            .zip(self.buckets.iter().map(|b| b.load(Ordering::Relaxed)))
            .collect()
    }

    /// The bucket-sketch `q`-quantile; see [`quantile_from_buckets`] for
    /// the exact contract and error bound.
    pub fn quantile(&self, q: f64) -> f64 {
        quantile_from_buckets(&self.bucket_counts(), self.count(), q)
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.dropped.store(0, Ordering::Relaxed);
        *lock_unpoisoned(&self.sum_bits) = 0.0;
    }
}

/// The process-global instrument registry. Obtain via [`registry`].
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    float_gauges: Mutex<BTreeMap<String, Arc<FloatGauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = lock_unpoisoned(&self.counters);
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = lock_unpoisoned(&self.gauges);
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// The float gauge named `name`, created on first use.
    pub fn float_gauge(&self, name: &str) -> Arc<FloatGauge> {
        let mut map = lock_unpoisoned(&self.float_gauges);
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// The histogram named `name` with `bounds`, created on first use.
    /// Later calls return the existing histogram regardless of `bounds`.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Arc<Histogram> {
        let mut map = lock_unpoisoned(&self.histograms);
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new(bounds))),
        )
    }

    /// A flat, name-sorted snapshot of every instrument.
    pub fn snapshot(&self) -> Snapshot {
        let counters = lock_unpoisoned(&self.counters)
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let gauges = lock_unpoisoned(&self.gauges)
            .iter()
            .map(|(k, v)| (k.clone(), (v.value(), v.high_water())))
            .collect();
        let float_gauges = lock_unpoisoned(&self.float_gauges)
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let histograms = lock_unpoisoned(&self.histograms)
            .iter()
            .map(|(k, v)| {
                (
                    k.clone(),
                    HistogramSnapshot {
                        count: v.count(),
                        dropped: v.dropped(),
                        sum: v.sum(),
                        mean: v.mean(),
                        buckets: v.bucket_counts(),
                    },
                )
            })
            .collect();
        Snapshot {
            counters,
            gauges,
            float_gauges,
            histograms,
        }
    }

    /// Takes a snapshot and then zeroes every instrument — the atomic
    /// "read out this run, start the next one clean" primitive scoped runs
    /// ([`crate::RunScope`]) and the `qcfz report` phase pipeline use so
    /// consecutive runs in one process don't bleed counters into each
    /// other.
    pub fn drain(&self) -> Snapshot {
        let snap = self.snapshot();
        self.reset_values();
        snap
    }

    /// Zeroes every instrument's value, keeping registrations.
    pub fn reset_values(&self) {
        for c in lock_unpoisoned(&self.counters).values() {
            c.reset();
        }
        for g in lock_unpoisoned(&self.gauges).values() {
            g.reset();
        }
        for f in lock_unpoisoned(&self.float_gauges).values() {
            f.reset();
        }
        for h in lock_unpoisoned(&self.histograms).values() {
            h.reset();
        }
    }
}

/// Point-in-time registry values (input to the exporters).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// `name -> value`.
    pub counters: BTreeMap<String, u64>,
    /// `name -> (value, high_water)`.
    pub gauges: BTreeMap<String, (i64, i64)>,
    /// `name -> value`.
    pub float_gauges: BTreeMap<String, f64>,
    /// `name -> histogram`.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

/// One histogram's snapshot.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HistogramSnapshot {
    /// Observation count.
    pub count: u64,
    /// Non-finite observations dropped instead of bucketed.
    pub dropped: u64,
    /// Observation sum.
    pub sum: f64,
    /// Mean (0.0 when empty).
    pub mean: f64,
    /// `(upper_bound, count)` pairs (last bound is +inf).
    pub buckets: Vec<(f64, u64)>,
}

impl HistogramSnapshot {
    /// The bucket-sketch `q`-quantile; see [`quantile_from_buckets`].
    pub fn quantile(&self, q: f64) -> f64 {
        quantile_from_buckets(&self.buckets, self.count, q)
    }
}

/// The zero-dependency percentile sketch over fixed histogram buckets.
///
/// Returns the **upper bound of the bucket containing the `q`-quantile**
/// of the observed distribution: with `rank = ceil(q·count)` (clamped to
/// `[1, count]`), the smallest bucket bound whose cumulative count reaches
/// `rank`. The true quantile lies in the same bucket, i.e. in
/// `(prev_bound, returned_bound]`, so the sketch error is at most one
/// bucket width and the sketch never *under*-reports — the conservative
/// direction for latency SLOs. A quantile that lands in the explicit
/// overflow bucket is reported as `f64::INFINITY` (no finite bound covers
/// it); an empty histogram or a `q` outside `[0, 1]` yields `NaN`.
pub fn quantile_from_buckets(buckets: &[(f64, u64)], count: u64, q: f64) -> f64 {
    if count == 0 || !(0.0..=1.0).contains(&q) {
        return f64::NAN;
    }
    let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
    let mut cumulative = 0u64;
    for &(bound, n) in buckets {
        cumulative += n;
        if cumulative >= rank {
            return bound;
        }
    }
    f64::NAN
}

/// The process-global registry.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        let c = Counter::default();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        crate::set_enabled(false);
        c.inc();
        assert_eq!(c.get(), 5, "disabled counter must not move");
        crate::set_enabled(true);
    }

    #[test]
    fn gauge_tracks_high_water() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        let g = Gauge::default();
        g.add(10);
        g.add(5);
        g.sub(12);
        assert_eq!(g.value(), 3);
        assert_eq!(g.high_water(), 15);
    }

    #[test]
    fn gauge_track_keeps_local_peak_even_disabled() {
        let _g = crate::test_guard();
        crate::set_enabled(false);
        let gauge = Arc::new(Gauge::default());
        let mut t = gauge.track();
        t.add(100);
        t.add(50);
        t.sub(120);
        assert_eq!(t.value(), 30);
        assert_eq!(t.peak(), 150);
        assert_eq!(gauge.value(), 0, "disabled: global gauge untouched");
        crate::set_enabled(true);
    }

    #[test]
    fn gauge_track_returns_residual_on_drop() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        let gauge = Arc::new(Gauge::default());
        {
            let mut t = gauge.track();
            t.add(64);
            assert_eq!(gauge.value(), 64);
        }
        assert_eq!(gauge.value(), 0, "drop must release the run's level");
        assert_eq!(gauge.high_water(), 64, "but keep the high-water mark");
    }

    #[test]
    fn histogram_buckets_and_mean() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        let h = Histogram::new(&[1.0, 10.0, 100.0]);
        for v in [0.5, 5.0, 50.0, 500.0, 7.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert!((h.mean() - 112.5).abs() < 1e-12);
        let buckets = h.bucket_counts();
        assert_eq!(buckets.len(), 4);
        assert_eq!(buckets[0], (1.0, 1));
        assert_eq!(buckets[1], (10.0, 2));
        assert_eq!(buckets[2], (100.0, 1));
        assert_eq!(buckets[3].1, 1);
    }

    #[test]
    fn histogram_bucket_boundaries_are_inclusive_upper() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        let h = Histogram::new(&[1.0, 10.0]);
        // Exactly on a bound lands in that bucket; just above moves on.
        h.observe(1.0);
        h.observe(1.0 + f64::EPSILON * 2.0);
        h.observe(10.0);
        h.observe(10.000001); // above the top bound: explicit overflow
        let buckets = h.bucket_counts();
        assert_eq!(buckets[0], (1.0, 1));
        assert_eq!(buckets[1], (10.0, 2));
        assert_eq!(buckets[2], (f64::INFINITY, 1));
        assert_eq!(h.overflow(), 1, "out-of-range sample must be visible");
        assert_eq!(h.count(), 4);
        assert_eq!(h.dropped(), 0);
    }

    #[test]
    fn histogram_drops_non_finite_and_counts_them() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        let global = dropped_samples_counter();
        let before = global.get();
        let h = Histogram::new(&[1.0]);
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        h.observe(f64::NEG_INFINITY);
        h.observe(0.5);
        assert_eq!(h.count(), 1, "only the finite sample is observed");
        assert_eq!(h.dropped(), 3);
        assert_eq!(h.overflow(), 0, "non-finite must not pollute overflow");
        assert_eq!(h.sum(), 0.5, "sum must stay finite");
        assert_eq!(
            global.get(),
            before + 3,
            "telemetry.dropped_samples aggregates across histograms"
        );
        // Snapshot carries the per-histogram drop count.
        h.reset();
        assert_eq!(h.dropped(), 0);
    }

    #[test]
    fn quantile_sketch_basics() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        let h = Histogram::new(&[10.0, 20.0, 50.0, 100.0]);
        // 100 observations uniform over (0, 100]: k-th percentile ≈ k.
        for i in 1..=100 {
            h.observe(i as f64);
        }
        assert_eq!(h.quantile(0.5), 50.0, "p50 of uniform(0,100] in (20,50]");
        assert_eq!(h.quantile(0.95), 100.0);
        assert_eq!(h.quantile(0.05), 10.0);
        assert_eq!(h.quantile(0.0), 10.0, "q=0 clamps to rank 1");
        assert_eq!(h.quantile(1.0), 100.0);
        assert!(h.quantile(1.5).is_nan(), "q outside [0,1]");
        assert!(h.quantile(-0.1).is_nan());
    }

    #[test]
    fn quantile_overflow_bucket_reports_infinity() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        let h = Histogram::new(&[1.0]);
        h.observe(0.5);
        h.observe(5.0);
        h.observe(9.0);
        assert_eq!(h.quantile(0.1), 1.0);
        assert_eq!(
            h.quantile(0.99),
            f64::INFINITY,
            "overflow-bucket quantiles have no finite bound"
        );
    }

    #[test]
    fn quantile_empty_is_nan() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        let h = Histogram::new(&[1.0]);
        assert!(h.quantile(0.5).is_nan());
        let snap = HistogramSnapshot::default();
        assert!(snap.quantile(0.5).is_nan());
    }

    #[test]
    fn snapshot_quantile_matches_live_histogram() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        let h = Histogram::new(&[1.0, 2.0, 4.0, 8.0]);
        for v in [0.1, 0.2, 1.5, 3.0, 3.5, 7.0, 7.5, 20.0] {
            h.observe(v);
        }
        let snap = HistogramSnapshot {
            count: h.count(),
            dropped: h.dropped(),
            sum: h.sum(),
            mean: h.mean(),
            buckets: h.bucket_counts(),
        };
        for q in [0.0, 0.25, 0.5, 0.75, 0.9, 1.0] {
            let (a, b) = (h.quantile(q), snap.quantile(q));
            assert!(a == b || (a.is_nan() && b.is_nan()), "q={q}: {a} vs {b}");
        }
    }

    #[test]
    fn drain_snapshots_then_clears() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        let r = Registry::default();
        r.counter("runs").add(3);
        r.gauge("depth").add(7);
        let snap = r.drain();
        assert_eq!(snap.counters.get("runs"), Some(&3));
        assert_eq!(snap.gauges.get("depth"), Some(&(7, 7)));
        let after = r.snapshot();
        assert_eq!(after.counters.get("runs"), Some(&0), "drain must reset");
        assert_eq!(after.gauges.get("depth"), Some(&(0, 0)));
    }

    #[test]
    fn registry_returns_same_instrument() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        let r = Registry::default();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        assert_eq!(b.get(), 1);
        let snap = r.snapshot();
        assert_eq!(snap.counters.get("x"), Some(&1));
        r.reset_values();
        assert_eq!(a.get(), 0);
    }
}
