//! The per-chunk causal event journal: every chunk's lifecycle as a
//! bounded, sequence-numbered event ring.
//!
//! The error-budget ledger answers *how much* error a chunk absorbed; this
//! journal answers *why*: the ordered chain of encodes, decodes, cache
//! hits, write-back requants, faults, heals, evictions and quarantines
//! that produced those totals. `qcfz state --chunk <id>` renders the
//! chain, so a requant storm or a quarantine in the ledger is attributable
//! to concrete events instead of a bare count.
//!
//! ## Ring semantics
//!
//! Each chunk keeps its newest [`RING`] events; older ones are discarded
//! and counted per chunk ([`dropped`]). Per-kind **totals are exact
//! regardless of ring overflow** — [`kind_counts`] tallies on append, so
//! consistency checks against the ledger (requants, quarantines) never
//! depend on ring capacity. Sequence numbers are journal-global and
//! strictly monotone, giving a total order across chunks (cross-chunk
//! causality: a gather on chunk A followed by a write-back on chunk B).
//!
//! ## Cost and gating
//!
//! Off by default; armed by `QCF_JOURNAL=1` (or [`set_enabled`], which
//! `qcfz state --chunk` / `qcfz top` use). Disabled, every [`record`] call
//! is one relaxed atomic load and a branch — the same contract as spans,
//! metrics and the flight recorder. Chunk ids are the caller's (stable
//! chunk index within a run); [`crate::RunScope`] resets the journal so
//! ids cannot collide across phases in one process.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Events retained per chunk; older events are dropped (and counted).
pub const RING: usize = 32;

/// What happened to a chunk. `detail` in [`ChunkEvent`] carries the
/// kind-specific magnitude documented per variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Initial state-preparation encode (`detail`: compressed bytes).
    Zero,
    /// Chunk (re-)encoded to bytes (`detail`: compressed bytes).
    Encode,
    /// Chunk decoded to amplitudes (`detail`: amplitude count).
    Decode,
    /// Served from the resident cache (`detail`: 0).
    CacheHit,
    /// Lossy write-back re-quantization (`detail`: resolved abs bound).
    WritebackRequant,
    /// A fault surfaced on this chunk — decode failure, corrupt frame
    /// (`detail`: 0).
    Fault,
    /// Recovery succeeded — decode retry or cache repair (`detail`: 0).
    Heal,
    /// Chunk zero-filled after recovery was exhausted (`detail`: lost
    /// squared amplitude norm).
    Quarantine,
    /// Evicted from the resident cache (`detail`: 1 when the eviction
    /// wrote back a dirty chunk, else 0).
    Evict,
    /// Compressed frame spilled from RAM to the disk tier (`detail`:
    /// spilled bytes).
    Spill,
    /// Compressed frame fetched back from the disk tier (`detail`:
    /// fetched bytes).
    Fetch,
    /// SLO alert lifecycle transition (`detail`: the new
    /// [`crate::slo::AlertState`] code). Journaled under synthetic chunk
    /// ids starting at [`crate::slo::JOURNAL_BASE`], so alert chains
    /// share the journal's global sequence order with real chunk events.
    Slo,
    /// Chunk's sealed frame serialized into a durable snapshot, or
    /// restored from one on resume (`detail`: frame bytes).
    Checkpoint,
    /// Chunk's live spill record relocated by a compaction pass
    /// (`detail`: record bytes rewritten).
    Compact,
}

/// Number of [`EventKind`] variants (size of the per-kind count table).
pub const KINDS: usize = 14;

impl EventKind {
    /// Stable index into per-kind count tables.
    pub fn index(self) -> usize {
        match self {
            EventKind::Zero => 0,
            EventKind::Encode => 1,
            EventKind::Decode => 2,
            EventKind::CacheHit => 3,
            EventKind::WritebackRequant => 4,
            EventKind::Fault => 5,
            EventKind::Heal => 6,
            EventKind::Quarantine => 7,
            EventKind::Evict => 8,
            EventKind::Spill => 9,
            EventKind::Fetch => 10,
            EventKind::Slo => 11,
            EventKind::Checkpoint => 12,
            EventKind::Compact => 13,
        }
    }

    /// Human/export label.
    pub fn label(self) -> &'static str {
        match self {
            EventKind::Zero => "zero",
            EventKind::Encode => "encode",
            EventKind::Decode => "decode",
            EventKind::CacheHit => "cache-hit",
            EventKind::WritebackRequant => "writeback-requant",
            EventKind::Fault => "fault",
            EventKind::Heal => "heal",
            EventKind::Quarantine => "quarantine",
            EventKind::Evict => "evict",
            EventKind::Spill => "spill",
            EventKind::Fetch => "fetch",
            EventKind::Slo => "slo",
            EventKind::Checkpoint => "checkpoint",
            EventKind::Compact => "compact",
        }
    }

    /// All variants, in [`EventKind::index`] order.
    pub fn all() -> [EventKind; KINDS] {
        [
            EventKind::Zero,
            EventKind::Encode,
            EventKind::Decode,
            EventKind::CacheHit,
            EventKind::WritebackRequant,
            EventKind::Fault,
            EventKind::Heal,
            EventKind::Quarantine,
            EventKind::Evict,
            EventKind::Spill,
            EventKind::Fetch,
            EventKind::Slo,
            EventKind::Checkpoint,
            EventKind::Compact,
        ]
    }
}

/// One journaled event.
#[derive(Debug, Clone, PartialEq)]
pub struct ChunkEvent {
    /// Journal-global strictly monotone sequence number.
    pub seq: u64,
    /// Microseconds since the telemetry epoch.
    pub t_us: u64,
    /// What happened.
    pub kind: EventKind,
    /// Kind-specific magnitude (see [`EventKind`] variant docs).
    pub detail: f64,
}

#[derive(Debug, Default)]
struct ChunkRing {
    events: VecDeque<ChunkEvent>,
    dropped: u64,
    kind_counts: [u64; KINDS],
}

#[derive(Debug, Default)]
struct Journal {
    chunks: BTreeMap<u64, ChunkRing>,
    next_seq: u64,
}

fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn journal() -> &'static Mutex<Journal> {
    static JOURNAL: OnceLock<Mutex<Journal>> = OnceLock::new();
    JOURNAL.get_or_init(|| Mutex::new(Journal::default()))
}

/// 0 = uninitialized, 1 = enabled, 2 = disabled.
static ENABLED: AtomicU8 = AtomicU8::new(0);

/// True when the journal is armed (`QCF_JOURNAL` or [`set_enabled`]).
#[inline]
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => init_enabled(),
    }
}

#[cold]
fn init_enabled() -> bool {
    let on = match std::env::var("QCF_JOURNAL") {
        Ok(v) => {
            let v = v.trim();
            !(v.is_empty()
                || v == "0"
                || v.eq_ignore_ascii_case("false")
                || v.eq_ignore_ascii_case("off"))
        }
        Err(_) => false,
    };
    ENABLED.store(if on { 1 } else { 2 }, Ordering::Relaxed);
    on
}

/// Overrides the armed state (`qcfz state --chunk`, `qcfz top`, tests).
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

/// Appends one event to `chunk`'s ring. No-op unless both the journal and
/// telemetry are enabled; the disarmed path is one relaxed atomic load.
pub fn record(chunk: u64, kind: EventKind, detail: f64) {
    if !enabled() || !crate::enabled() {
        return;
    }
    let t_us = crate::span::now_us();
    let mut j = lock_unpoisoned(journal());
    let seq = j.next_seq;
    j.next_seq += 1;
    let ring = j.chunks.entry(chunk).or_default();
    ring.kind_counts[kind.index()] += 1;
    if ring.events.len() == RING {
        ring.events.pop_front();
        ring.dropped += 1;
    }
    ring.events.push_back(ChunkEvent {
        seq,
        t_us,
        kind,
        detail,
    });
}

/// The retained events for `chunk`, oldest first (empty when unknown).
pub fn events(chunk: u64) -> Vec<ChunkEvent> {
    lock_unpoisoned(journal())
        .chunks
        .get(&chunk)
        .map(|r| r.events.iter().cloned().collect())
        .unwrap_or_default()
}

/// Events dropped from `chunk`'s ring (appended beyond [`RING`]).
pub fn dropped(chunk: u64) -> u64 {
    lock_unpoisoned(journal())
        .chunks
        .get(&chunk)
        .map(|r| r.dropped)
        .unwrap_or(0)
}

/// Exact per-kind event totals for `chunk` (indexed by
/// [`EventKind::index`]; unaffected by ring overflow).
pub fn kind_counts(chunk: u64) -> [u64; KINDS] {
    lock_unpoisoned(journal())
        .chunks
        .get(&chunk)
        .map(|r| r.kind_counts)
        .unwrap_or([0; KINDS])
}

/// All chunk ids with at least one journaled event, ascending.
pub fn chunk_ids() -> Vec<u64> {
    lock_unpoisoned(journal()).chunks.keys().copied().collect()
}

/// Total events ever appended (== the next sequence number).
pub fn total_events() -> u64 {
    lock_unpoisoned(journal()).next_seq
}

/// Clears all rings and the sequence counter (run isolation).
pub fn reset() {
    *lock_unpoisoned(journal()) = Journal::default();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_ordered_events_per_chunk() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        set_enabled(true);
        reset();
        record(0, EventKind::Zero, 100.0);
        record(1, EventKind::Zero, 90.0);
        record(0, EventKind::Decode, 64.0);
        record(0, EventKind::WritebackRequant, 1e-4);
        let ev = events(0);
        assert_eq!(ev.len(), 3);
        assert_eq!(ev[0].kind, EventKind::Zero);
        assert_eq!(ev[2].kind, EventKind::WritebackRequant);
        assert!(ev.windows(2).all(|w| w[0].seq < w[1].seq));
        // Global sequence orders across chunks too.
        assert!(events(1)[0].seq > ev[0].seq);
        assert!(events(1)[0].seq < ev[1].seq);
        assert_eq!(chunk_ids(), vec![0, 1]);
        assert_eq!(total_events(), 4);
        reset();
        set_enabled(false);
    }

    #[test]
    fn ring_bounds_but_kind_counts_stay_exact() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        set_enabled(true);
        reset();
        for _ in 0..(RING + 10) {
            record(7, EventKind::CacheHit, 0.0);
        }
        record(7, EventKind::Quarantine, 0.5);
        assert_eq!(events(7).len(), RING);
        assert_eq!(dropped(7), 11);
        let counts = kind_counts(7);
        assert_eq!(
            counts[EventKind::CacheHit.index()],
            (RING + 10) as u64,
            "totals must survive ring overflow"
        );
        assert_eq!(counts[EventKind::Quarantine.index()], 1);
        // The newest event is always retained.
        assert_eq!(events(7).last().unwrap().kind, EventKind::Quarantine);
        reset();
        set_enabled(false);
    }

    #[test]
    fn disabled_journal_records_nothing() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        set_enabled(false);
        reset();
        record(0, EventKind::Fault, 0.0);
        assert!(events(0).is_empty());
        assert_eq!(total_events(), 0);
    }

    #[test]
    fn telemetry_disabled_blocks_journal() {
        let _g = crate::test_guard();
        set_enabled(true);
        crate::set_enabled(false);
        reset();
        record(0, EventKind::Fault, 0.0);
        assert!(events(0).is_empty());
        crate::set_enabled(true);
        set_enabled(false);
    }

    #[test]
    fn kind_labels_and_indices_are_bijective() {
        let mut seen = [false; KINDS];
        for k in EventKind::all() {
            assert!(!seen[k.index()], "duplicate index for {:?}", k);
            seen[k.index()] = true;
            assert!(!k.label().is_empty());
        }
        assert!(seen.iter().all(|&s| s));
    }
}
