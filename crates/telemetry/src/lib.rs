//! # qcf-telemetry — the workspace's measurement substrate
//!
//! Every crate in the workspace reports into this one layer, so the
//! questions the paper's evaluation asks — where does the time go per
//! kernel, what is the peak live footprint, what ratio does each stage
//! contribute — are answered from one place instead of per-crate ad-hoc
//! state:
//!
//! * [`span`] — lightweight hierarchical spans with thread-aware lanes.
//!   `span!("contract.pairwise")` returns an RAII guard; the category is
//!   the name's first dot-separated segment.
//! * [`metrics`] — a global registry of counters, gauges (with high-water
//!   marks), float gauges and fixed-bucket histograms.
//! * [`export`] — a Chrome-trace JSON exporter (`chrome://tracing` /
//!   `ui.perfetto.dev`-loadable; one lane per worker thread plus one
//!   virtual lane per simulated GPU stream) and flat JSON/TSV metrics
//!   dumps.
//! * [`faults`] — deterministic fault injection for chaos testing
//!   (`QCF_FAULTS`), gated on the same one-relaxed-load pattern as the
//!   enabled flag.
//! * [`timeseries`] — a background sampler (`QCF_TELEMETRY_SAMPLE=<ms>`)
//!   capturing registry snapshots into a fixed-capacity downsampling ring
//!   for rates-over-time and `qcfz top`.
//! * [`journal`] — a per-chunk causal event journal (`QCF_JOURNAL`):
//!   bounded per-chunk rings of sequence-numbered lifecycle events behind
//!   every ledger requant/quarantine count.
//!
//! ## Cost when disabled
//!
//! Telemetry is on by default and disabled with `QCF_TELEMETRY=0` (or
//! [`set_enabled`]`(false)`). Disabled, every instrumentation point
//! reduces to one relaxed atomic load and a branch — no clock reads, no
//! locks, no allocation — so hot paths keep their measured throughput
//! (see `BENCH_telemetry.json` at the workspace root for numbers).
//!
//! Span and metric state is process-global. The span buffer is bounded
//! ([`span::MAX_SPAN_EVENTS`]); overflow increments a drop counter rather
//! than growing without bound.

pub mod export;
pub mod faults;
pub mod flight;
pub mod journal;
pub mod metrics;
pub mod slo;
pub mod span;
pub mod timeseries;

pub use export::{
    chrome_trace, metrics_json, metrics_tsv, ndjson_samples, prometheus_text, LaneEvent, StreamLane,
};
pub use flight::FlightFrame;
pub use metrics::{registry, Counter, FloatGauge, Gauge, GaugeTrack, Histogram, Registry};
pub use span::{SpanEvent, SpanGuard};

use std::sync::atomic::{AtomicU8, Ordering};

/// 0 = uninitialized, 1 = enabled, 2 = disabled.
static ENABLED: AtomicU8 = AtomicU8::new(0);

/// True when telemetry collection is active.
///
/// Initialized on first call from the `QCF_TELEMETRY` environment variable
/// (`0`, `false` or `off` disable; anything else — including unset —
/// enables). One relaxed atomic load on every later call.
#[inline]
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => init_enabled(),
    }
}

#[cold]
fn init_enabled() -> bool {
    let on = match std::env::var("QCF_TELEMETRY") {
        Ok(v) => {
            let v = v.trim();
            !(v == "0" || v.eq_ignore_ascii_case("false") || v.eq_ignore_ascii_case("off"))
        }
        Err(_) => true,
    };
    ENABLED.store(if on { 1 } else { 2 }, Ordering::Relaxed);
    on
}

/// Overrides the enabled state (CLIs forcing `--trace`, overhead benches).
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

/// Clears all recorded spans, metric values (counters, gauges and
/// histograms keep their registrations), time-series samples and journal
/// rings. For isolating runs in one process. The flight recorder ring is
/// deliberately *not* cleared — it is the cross-run post-mortem record.
pub fn reset() {
    span::reset();
    metrics::registry().reset_values();
    timeseries::reset();
    journal::reset();
    slo::reset_state();
}

/// Scoped run isolation: entering a `RunScope` clears the span buffer,
/// every metric value, the time-series ring and the chunk journal, so a
/// run that starts inside the scope reads zeros — consecutive subcommands
/// in one process (`qcfz report` runs `qaoa`, `state` and a quality sweep
/// back to back) no longer bleed `state.cache.*`, samples or chunk events
/// into each other's exports.
///
/// Entering also arms the time-series sampler when
/// `QCF_TELEMETRY_SAMPLE=<ms>` asks for one; [`RunScope::finish`] (and the
/// scope's drop, for CLIs that hold the scope to process exit) stops and
/// **joins** that sampler thread, so no sampler outlives its run.
///
/// [`RunScope::finish`] reads the scope's spans and metrics out and clears
/// them again, handing the caller an isolated per-run record.
#[derive(Debug)]
#[must_use = "entering the scope is what resets the registry"]
pub struct RunScope(());

impl RunScope {
    /// Starts an isolated run: spans, metric values, time series and
    /// journal reset to zero; the env-armed sampler (if any) starts.
    pub fn enter() -> Self {
        // A sampler left over from a previous scope must not write into
        // this scope's freshly-reset ring.
        timeseries::stop();
        reset();
        timeseries::arm_from_env();
        RunScope(())
    }

    /// Ends the run: stops and joins the sampler, then returns everything
    /// recorded since [`RunScope::enter`] and leaves the registry clean
    /// for the next scope.
    pub fn finish(self) -> (Vec<SpanEvent>, metrics::Snapshot) {
        timeseries::stop();
        let spans = span::snapshot();
        let snap = metrics::registry().drain();
        span::reset();
        (spans, snap)
    }
}

impl Drop for RunScope {
    fn drop(&mut self) {
        // `finish` already stopped the sampler; this covers scopes that
        // are simply dropped (the `qcfz` main holds one to process exit).
        timeseries::stop();
    }
}

/// Serializes tests that touch the process-global enabled flag / buffers.
#[cfg(test)]
pub(crate) fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_scopes_do_not_bleed() {
        let _g = test_guard();
        set_enabled(true);
        let scope = RunScope::enter();
        registry().counter("state.cache.hit").add(11);
        {
            let _s = span!("test.scope_one");
        }
        let (spans, snap) = scope.finish();
        assert_eq!(snap.counters.get("state.cache.hit"), Some(&11));
        assert!(spans.iter().any(|e| e.name == "test.scope_one"));

        // Second scope starts from zero: nothing from scope one leaks.
        let scope = RunScope::enter();
        registry().counter("state.cache.hit").add(2);
        let (spans, snap) = scope.finish();
        assert_eq!(
            snap.counters.get("state.cache.hit"),
            Some(&2),
            "previous run's counters must not bleed into this run"
        );
        assert!(!spans.iter().any(|e| e.name == "test.scope_one"));
    }

    #[test]
    fn run_scope_resets_timeseries_and_journal() {
        let _g = test_guard();
        set_enabled(true);
        journal::set_enabled(true);
        let scope = RunScope::enter();
        timeseries::capture();
        journal::record(3, journal::EventKind::Zero, 1.0);
        assert_eq!(timeseries::len(), 1);
        assert_eq!(journal::total_events(), 1);
        drop(scope.finish());

        // The next scope must start with empty series and journal.
        let scope = RunScope::enter();
        assert_eq!(timeseries::len(), 0, "samples bled between scopes");
        assert_eq!(journal::total_events(), 0, "events bled between scopes");
        assert!(journal::events(3).is_empty());
        drop(scope.finish());
        journal::set_enabled(false);
    }

    #[test]
    fn run_scope_joins_a_programmatic_sampler() {
        let _g = test_guard();
        set_enabled(true);
        let scope = RunScope::enter();
        timeseries::start(1);
        assert!(timeseries::is_running());
        std::thread::sleep(std::time::Duration::from_millis(10));
        let (_, _) = scope.finish();
        assert!(
            !timeseries::is_running(),
            "finish must stop and join the sampler"
        );
    }

    #[test]
    fn enabled_toggles() {
        let _g = test_guard();
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
        set_enabled(true);
    }
}
