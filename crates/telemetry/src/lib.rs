//! # qcf-telemetry — the workspace's measurement substrate
//!
//! Every crate in the workspace reports into this one layer, so the
//! questions the paper's evaluation asks — where does the time go per
//! kernel, what is the peak live footprint, what ratio does each stage
//! contribute — are answered from one place instead of per-crate ad-hoc
//! state:
//!
//! * [`span`] — lightweight hierarchical spans with thread-aware lanes.
//!   `span!("contract.pairwise")` returns an RAII guard; the category is
//!   the name's first dot-separated segment.
//! * [`metrics`] — a global registry of counters, gauges (with high-water
//!   marks), float gauges and fixed-bucket histograms.
//! * [`export`] — a Chrome-trace JSON exporter (`chrome://tracing` /
//!   `ui.perfetto.dev`-loadable; one lane per worker thread plus one
//!   virtual lane per simulated GPU stream) and flat JSON/TSV metrics
//!   dumps.
//! * [`faults`] — deterministic fault injection for chaos testing
//!   (`QCF_FAULTS`), gated on the same one-relaxed-load pattern as the
//!   enabled flag.
//!
//! ## Cost when disabled
//!
//! Telemetry is on by default and disabled with `QCF_TELEMETRY=0` (or
//! [`set_enabled`]`(false)`). Disabled, every instrumentation point
//! reduces to one relaxed atomic load and a branch — no clock reads, no
//! locks, no allocation — so hot paths keep their measured throughput
//! (see `BENCH_telemetry.json` at the workspace root for numbers).
//!
//! Span and metric state is process-global. The span buffer is bounded
//! ([`span::MAX_SPAN_EVENTS`]); overflow increments a drop counter rather
//! than growing without bound.

pub mod export;
pub mod faults;
pub mod flight;
pub mod metrics;
pub mod span;

pub use export::{chrome_trace, metrics_json, metrics_tsv, LaneEvent, StreamLane};
pub use flight::FlightFrame;
pub use metrics::{registry, Counter, FloatGauge, Gauge, GaugeTrack, Histogram, Registry};
pub use span::{SpanEvent, SpanGuard};

use std::sync::atomic::{AtomicU8, Ordering};

/// 0 = uninitialized, 1 = enabled, 2 = disabled.
static ENABLED: AtomicU8 = AtomicU8::new(0);

/// True when telemetry collection is active.
///
/// Initialized on first call from the `QCF_TELEMETRY` environment variable
/// (`0`, `false` or `off` disable; anything else — including unset —
/// enables). One relaxed atomic load on every later call.
#[inline]
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => init_enabled(),
    }
}

#[cold]
fn init_enabled() -> bool {
    let on = match std::env::var("QCF_TELEMETRY") {
        Ok(v) => {
            let v = v.trim();
            !(v == "0" || v.eq_ignore_ascii_case("false") || v.eq_ignore_ascii_case("off"))
        }
        Err(_) => true,
    };
    ENABLED.store(if on { 1 } else { 2 }, Ordering::Relaxed);
    on
}

/// Overrides the enabled state (CLIs forcing `--trace`, overhead benches).
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

/// Clears all recorded spans and metric values (counters, gauges and
/// histograms keep their registrations). For isolating runs in one process.
/// The flight recorder ring is deliberately *not* cleared — it is the
/// cross-run post-mortem record.
pub fn reset() {
    span::reset();
    metrics::registry().reset_values();
}

/// Scoped run isolation: entering a `RunScope` clears the span buffer and
/// every metric value, so a run that starts inside the scope reads zeros —
/// consecutive subcommands in one process (`qcfz report` runs `qaoa`,
/// `state` and a quality sweep back to back) no longer bleed `state.cache.*`
/// and friends into each other's exports.
///
/// [`RunScope::finish`] reads the scope's spans and metrics out and clears
/// them again, handing the caller an isolated per-run record.
#[derive(Debug)]
#[must_use = "entering the scope is what resets the registry"]
pub struct RunScope(());

impl RunScope {
    /// Starts an isolated run: spans and metric values reset to zero.
    pub fn enter() -> Self {
        reset();
        RunScope(())
    }

    /// Ends the run: returns everything recorded since [`RunScope::enter`]
    /// and leaves the registry clean for the next scope.
    pub fn finish(self) -> (Vec<SpanEvent>, metrics::Snapshot) {
        let spans = span::snapshot();
        let snap = metrics::registry().drain();
        span::reset();
        (spans, snap)
    }
}

/// Serializes tests that touch the process-global enabled flag / buffers.
#[cfg(test)]
pub(crate) fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_scopes_do_not_bleed() {
        let _g = test_guard();
        set_enabled(true);
        let scope = RunScope::enter();
        registry().counter("state.cache.hit").add(11);
        {
            let _s = span!("test.scope_one");
        }
        let (spans, snap) = scope.finish();
        assert_eq!(snap.counters.get("state.cache.hit"), Some(&11));
        assert!(spans.iter().any(|e| e.name == "test.scope_one"));

        // Second scope starts from zero: nothing from scope one leaks.
        let scope = RunScope::enter();
        registry().counter("state.cache.hit").add(2);
        let (spans, snap) = scope.finish();
        assert_eq!(
            snap.counters.get("state.cache.hit"),
            Some(&2),
            "previous run's counters must not bleed into this run"
        );
        assert!(!spans.iter().any(|e| e.name == "test.scope_one"));
    }

    #[test]
    fn enabled_toggles() {
        let _g = test_guard();
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
        set_enabled(true);
    }
}
