//! Declarative SLO evaluation over the live instruments (`QCF_SLO`).
//!
//! The registry, sampler, ledger mirrors and latency sketches measure
//! everything but judge nothing. This module closes the loop: an
//! [`SloSpec`] declares *objectives* — named inequalities over registry
//! keys and derived signals — and a multi-window burn-rate evaluator
//! checks them against the [`crate::timeseries`] ring, driving each
//! objective through a deterministic `Ok → Pending → Firing → Resolved`
//! alert lifecycle.
//!
//! ## Spec grammar
//!
//! `QCF_SLO` is either inline rules or `@<path>` / a readable file path
//! whose contents are the rules. Clauses are separated by `;` or
//! newlines; `#` starts a comment. Directive clauses:
//!
//! * `windows=F/S` — fast/slow evaluation windows in *samples*
//!   (defaults 6/24; wall time is `samples · interval · stride`);
//! * `pending=N` — consecutive breaching ticks before a pending alert
//!   fires (default 2);
//! * `resolve=N` — consecutive clean ticks before a firing alert
//!   resolves (default 3).
//!
//! Objective clauses are `NAME: EXPR <= VALUE` or `NAME: EXPR >= VALUE`
//! where `VALUE` is a float with an optional `k`/`m`/`g` binary suffix
//! and `EXPR` is one of:
//!
//! * `KEY` — level signal: mean over the window of the key's sampled
//!   value (counter, gauge, float gauge, or histogram count);
//! * `p50(KEY)` / `p90(KEY)` / `p95(KEY)` / `p99(KEY)` — latency
//!   quantile of histogram `KEY` over the window (bucket *deltas*, so a
//!   quiet window is judged on its own events, not the whole run);
//! * `rate(KEY)` — counter increase per second over the window;
//! * `hitrate(A, B)` — `ΔA / (ΔA + ΔB)` over the window (cache and
//!   prefetch hit rates).
//!
//! ```text
//! QCF_SLO="latency.stall: rate(state.prefetch.stall_us) <= 100000; \
//!          fidelity.quarantine: state.ledger.quarantines <= 0"
//! ```
//!
//! A signal with no data in the window (key never sampled, zero
//! denominator, empty quantile window) is a *hold*: the tick neither
//! breaches nor clears, so alerts never resolve merely because the
//! signal went dark.
//!
//! ## Burn-rate evaluation and lifecycle
//!
//! Each tick evaluates every objective over both windows; a tick
//! *breaches* only when **both** the fast and the slow window violate
//! the inequality — the fast window catches a fresh burn quickly, the
//! slow window keeps one spiky sample from flapping an alert. The
//! lifecycle applies deterministic hysteresis on top:
//!
//! * `Ok`/`Resolved` + breach → `Pending` (straight to `Firing` when
//!   `pending=1`);
//! * `Pending` + `pending` consecutive breaches → `Firing`; a single
//!   clean tick demotes `Pending` back to `Ok`;
//! * `Firing` + `resolve` consecutive clean ticks → `Resolved`.
//!
//! Transitions append to a bounded log, become [`crate::journal`] events
//! (kind [`crate::journal::EventKind::Slo`], chunk id
//! [`JOURNAL_BASE`]` + objective index`) and flight-recorder
//! checkpoints, and the engine maintains exact `slo.*` registry
//! counters/gauges — which therefore flow through the Prometheus and
//! NDJSON exporters like every other instrument.
//!
//! ## Arming and cost
//!
//! Exactly the `QCF_FAULTS` pattern: disarmed (the default when
//! `QCF_SLO` is unset), [`tick`] is one relaxed atomic load. Armed, the
//! sampler drives [`tick`] once per retained sample; engine hot paths
//! never call into this module. [`evaluate_ring`] is the pure replay of
//! the same machine over a finished ring — `qcfz slo` and tests use it
//! for fully deterministic verdicts.

use crate::metrics::{quantile_from_buckets, Snapshot};
use crate::timeseries::Sample;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// 0 = uninitialized, 1 = armed, 2 = disarmed.
static ARMED: AtomicU8 = AtomicU8::new(0);

/// Transitions retained in the log; older ones are dropped and counted.
pub const TRANSITION_LOG: usize = 256;

/// Journal chunk-id base for SLO alert events: objective `i` journals to
/// chunk `JOURNAL_BASE + i`, far above any real chunk index, so alert
/// chains and chunk chains share one sequence-ordered journal without
/// id collisions.
pub const JOURNAL_BASE: u64 = 1 << 62;

/// Comparison direction of an objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Signal must stay `<= threshold` (budgets, latency ceilings).
    Le,
    /// Signal must stay `>= threshold` (hit rates, throughput floors).
    Ge,
}

impl Op {
    /// Exact spec-grammar token.
    pub fn label(self) -> &'static str {
        match self {
            Op::Le => "<=",
            Op::Ge => ">=",
        }
    }

    /// True when `value` breaks the objective (NaN compares as a break:
    /// a signal that answers garbage is not meeting its service level).
    pub fn violated(self, value: f64, threshold: f64) -> bool {
        if value.is_nan() {
            return true;
        }
        match self {
            Op::Le => value > threshold,
            Op::Ge => value < threshold,
        }
    }
}

/// A derived signal expression (see the module docs for the grammar).
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Mean of the key's sampled value over the window.
    Level(String),
    /// Histogram quantile over the window's bucket deltas.
    Quantile(String, f64),
    /// Counter increase per second over the window.
    Rate(String),
    /// `Δhits / (Δhits + Δmisses)` over the window.
    HitRate(String, String),
}

impl Expr {
    /// The expression in spec-grammar form (round-trips through
    /// [`SloSpec::parse`]).
    pub fn to_text(&self) -> String {
        match self {
            Expr::Level(k) => k.clone(),
            Expr::Quantile(k, q) => format!("p{:.0}({k})", q * 100.0),
            Expr::Rate(k) => format!("rate({k})"),
            Expr::HitRate(a, b) => format!("hitrate({a}, {b})"),
        }
    }
}

/// One declared objective: `name: expr op threshold`.
#[derive(Debug, Clone, PartialEq)]
pub struct Objective {
    /// Dotted name (`dimension.detail`), also the alert name.
    pub name: String,
    /// The signal under judgment.
    pub expr: Expr,
    /// Comparison direction.
    pub op: Op,
    /// The service-level target.
    pub threshold: f64,
}

impl Objective {
    /// The objective as one spec-grammar clause.
    pub fn to_text(&self) -> String {
        format!(
            "{}: {} {} {}",
            self.name,
            self.expr.to_text(),
            self.op.label(),
            fmt_threshold(self.threshold)
        )
    }
}

/// A parsed SLO specification: evaluation parameters plus objectives.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSpec {
    /// Fast window length in samples.
    pub fast: usize,
    /// Slow window length in samples (≥ fast).
    pub slow: usize,
    /// Consecutive breaching ticks before `Pending` promotes to `Firing`.
    pub pending_for: u32,
    /// Consecutive clean ticks before `Firing` demotes to `Resolved`.
    pub resolve_after: u32,
    /// Declared objectives, spec order.
    pub objectives: Vec<Objective>,
}

impl Default for SloSpec {
    fn default() -> Self {
        SloSpec {
            fast: 6,
            slow: 24,
            pending_for: 2,
            resolve_after: 3,
            objectives: Vec::new(),
        }
    }
}

impl SloSpec {
    /// The built-in objectives: the paper's viability claims restated as
    /// service levels. Thresholds are deliberately forgiving — a clean
    /// in-core run must stay green; they exist to catch fault storms,
    /// budget blowouts and pathological device latency, not jitter.
    /// `QCF_MEM_BUDGET` (when set) tightens the capacity envelope to
    /// 1.5× the declared budget.
    pub fn defaults() -> Self {
        let mut spec = SloSpec::default();
        let resident_cap = match env_budget_bytes() {
            // Enforcement keeps residency at or under budget; 1.5×
            // headroom means only a broken enforcer fires this.
            Some(b) => (b as f64) * 1.5,
            None => 2.0 * 1024.0 * 1024.0 * 1024.0,
        };
        let mut obj = |name: &str, expr: Expr, op: Op, threshold: f64| {
            spec.objectives.push(Objective {
                name: name.to_string(),
                expr,
                op,
                threshold,
            });
        };
        obj(
            "fidelity.quarantine",
            Expr::Level("state.ledger.quarantines".into()),
            Op::Le,
            0.0,
        );
        obj(
            "fidelity.bound",
            Expr::Level("state.ledger.accumulated_rss".into()),
            Op::Le,
            1e-2,
        );
        obj(
            "latency.apply_p99",
            Expr::Quantile("state.apply_us".into(), 0.99),
            Op::Le,
            100_000.0,
        );
        obj(
            "latency.decode_p95",
            Expr::Quantile("state.decode_us".into(), 0.95),
            Op::Le,
            100_000.0,
        );
        obj(
            "latency.stall",
            Expr::Rate("state.prefetch.stall_us".into()),
            Op::Le,
            200_000.0,
        );
        // Deliberately the *prefetch* hit rate, not the cache's: tiny
        // demo instances (and the report's out-of-core phase) pin small
        // caches to exercise eviction, so a cache-hit floor would flag
        // behaviour the run asked for. The schedule-aware prefetcher has
        // no such excuse — CI already demands it cover half the fetches —
        // and the signal simply holds when nothing ever spills. A cache
        // floor remains one `QCF_SLO` clause away for resident workloads.
        obj(
            "efficiency.prefetch",
            Expr::HitRate("state.prefetch.hits".into(), "state.prefetch.misses".into()),
            Op::Ge,
            0.5,
        );
        obj(
            "capacity.resident",
            Expr::Level("state.resident_bytes".into()),
            Op::Le,
            resident_cap,
        );
        // Compaction keeps the spill log's dead space churn-proportional
        // (at most ~4x the live payload plus the 4 KiB floor); a log that
        // accumulates a megabyte of dead records means the compactor
        // stopped running and a long-lived session is leaking disk.
        obj(
            "capacity.spill_dead",
            Expr::Level("state.spill.dead_bytes".into()),
            Op::Le,
            1e6,
        );
        spec
    }

    /// The spec the process should run: `QCF_SLO` when set (inline rules,
    /// or `@path`/path to a rules file), the built-in defaults otherwise.
    /// A malformed env spec is reported once on stderr and ignored.
    pub fn active() -> Self {
        match std::env::var("QCF_SLO") {
            Ok(raw) if !raw.trim().is_empty() => match Self::from_env_value(&raw) {
                Ok(spec) => spec,
                Err(e) => {
                    eprintln!("QCF_SLO ignored: {e}");
                    Self::defaults()
                }
            },
            _ => Self::defaults(),
        }
    }

    /// Parses an env-style value: `@path` or a readable file path loads
    /// the file, anything else parses inline.
    pub fn from_env_value(raw: &str) -> Result<Self, String> {
        let raw = raw.trim();
        let text = if let Some(path) = raw.strip_prefix('@') {
            std::fs::read_to_string(path.trim())
                .map_err(|e| format!("cannot read SLO file {path:?}: {e}"))?
        } else if !raw.contains([':', ';', '\n', '=']) && std::path::Path::new(raw).is_file() {
            std::fs::read_to_string(raw)
                .map_err(|e| format!("cannot read SLO file {raw:?}: {e}"))?
        } else {
            raw.to_string()
        };
        Self::parse(&text)
    }

    /// Parses rules text (see the module docs for the grammar).
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut spec = SloSpec::default();
        for clause in text.split([';', '\n']) {
            let clause = clause.split('#').next().unwrap_or("").trim();
            if clause.is_empty() {
                continue;
            }
            if let Some(v) = clause.strip_prefix("windows=") {
                let (f, s) = v
                    .split_once('/')
                    .ok_or_else(|| format!("windows wants F/S in {clause:?}"))?;
                spec.fast = f
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad fast window in {clause:?}"))?;
                spec.slow = s
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad slow window in {clause:?}"))?;
                if spec.fast == 0 || spec.slow < spec.fast {
                    return Err(format!("need 0 < fast <= slow in {clause:?}"));
                }
                continue;
            }
            if let Some(v) = clause.strip_prefix("pending=") {
                spec.pending_for = parse_positive(v, clause)?;
                continue;
            }
            if let Some(v) = clause.strip_prefix("resolve=") {
                spec.resolve_after = parse_positive(v, clause)?;
                continue;
            }
            let (name, rest) = clause
                .split_once(':')
                .ok_or_else(|| format!("expected NAME: EXPR OP VALUE in {clause:?}"))?;
            let name = name.trim();
            if name.is_empty()
                || !name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
            {
                return Err(format!("bad objective name {name:?}"));
            }
            if spec.objectives.iter().any(|o| o.name == name) {
                return Err(format!("duplicate objective {name:?}"));
            }
            let (expr_txt, op, thr_txt) = if let Some((e, t)) = rest.split_once("<=") {
                (e, Op::Le, t)
            } else if let Some((e, t)) = rest.split_once(">=") {
                (e, Op::Ge, t)
            } else {
                return Err(format!("expected <= or >= in {clause:?}"));
            };
            let threshold = parse_threshold(thr_txt.trim())
                .ok_or_else(|| format!("bad threshold {:?} in {clause:?}", thr_txt.trim()))?;
            spec.objectives.push(Objective {
                name: name.to_string(),
                expr: parse_expr(expr_txt.trim())?,
                op,
                threshold,
            });
        }
        if spec.objectives.is_empty() {
            return Err("no objectives in SLO spec".into());
        }
        Ok(spec)
    }

    /// The spec as rules text ([`SloSpec::parse`] round-trips it).
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "windows={}/{}; pending={}; resolve={}\n",
            self.fast, self.slow, self.pending_for, self.resolve_after
        );
        for o in &self.objectives {
            out.push_str(&o.to_text());
            out.push('\n');
        }
        out
    }
}

fn parse_positive(v: &str, clause: &str) -> Result<u32, String> {
    match v.trim().parse::<u32>() {
        Ok(n) if n > 0 => Ok(n),
        _ => Err(format!("expected a positive integer in {clause:?}")),
    }
}

/// Threshold literal: float with optional binary `k`/`m`/`g` suffix.
fn parse_threshold(t: &str) -> Option<f64> {
    let lower = t.to_ascii_lowercase();
    let (digits, mul) = if let Some(d) = lower.strip_suffix('k') {
        (d, 1024.0)
    } else if let Some(d) = lower.strip_suffix('m') {
        (d, 1024.0 * 1024.0)
    } else if let Some(d) = lower.strip_suffix('g') {
        (d, 1024.0 * 1024.0 * 1024.0)
    } else {
        (lower.as_str(), 1.0)
    };
    let v: f64 = digits.trim().parse().ok()?;
    v.is_finite().then_some(v * mul)
}

fn fmt_threshold(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v}")
    } else {
        format!("{v:e}")
    }
}

fn parse_expr(e: &str) -> Result<Expr, String> {
    let func = |name: &str| -> Option<&str> {
        e.strip_prefix(name)
            .and_then(|r| r.trim().strip_prefix('('))
            .and_then(|r| r.trim_end().strip_suffix(')'))
    };
    for (prefix, q) in [("p50", 0.50), ("p90", 0.90), ("p95", 0.95), ("p99", 0.99)] {
        if let Some(inner) = func(prefix) {
            return Ok(Expr::Quantile(parse_key(inner)?, q));
        }
    }
    if let Some(inner) = func("rate") {
        return Ok(Expr::Rate(parse_key(inner)?));
    }
    if let Some(inner) = func("hitrate") {
        let (a, b) = inner
            .split_once(',')
            .ok_or_else(|| format!("hitrate wants two keys in {e:?}"))?;
        return Ok(Expr::HitRate(parse_key(a)?, parse_key(b)?));
    }
    Ok(Expr::Level(parse_key(e)?))
}

fn parse_key(k: &str) -> Result<String, String> {
    let k = k.trim();
    if k.is_empty()
        || !k
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
    {
        return Err(format!("bad metric key {k:?}"));
    }
    Ok(k.to_string())
}

/// `QCF_MEM_BUDGET` in bytes when set and parsable (same `k`/`m`/`g`
/// binary suffixes as the spill tier's parser).
fn env_budget_bytes() -> Option<u64> {
    let raw = std::env::var("QCF_MEM_BUDGET").ok()?;
    let v = parse_threshold(raw.trim())?;
    (v >= 0.0 && v == v.trunc()).then_some(v as u64)
}

// ---------------------------------------------------------------------------
// Signal evaluation
// ---------------------------------------------------------------------------

/// The key's level value in one snapshot: counter value, gauge value,
/// float-gauge value, or histogram event count.
fn level_in(s: &Snapshot, key: &str) -> Option<f64> {
    if let Some(v) = s.counters.get(key) {
        return Some(*v as f64);
    }
    if let Some((v, _)) = s.gauges.get(key) {
        return Some(*v as f64);
    }
    if let Some(v) = s.float_gauges.get(key) {
        return Some(*v);
    }
    s.histograms.get(key).map(|h| h.count as f64)
}

/// Monotone count for rate/hitrate signals: a counter, or a histogram's
/// event count.
fn count_in(s: &Snapshot, key: &str) -> Option<u64> {
    if let Some(v) = s.counters.get(key) {
        return Some(*v);
    }
    s.histograms.get(key).map(|h| h.count)
}

/// Evaluates `expr` over a window of samples (oldest first). `None`
/// means the window carries no signal (hold — neither breach nor clean).
pub fn eval_window(expr: &Expr, window: &[Sample]) -> Option<f64> {
    if window.is_empty() {
        return None;
    }
    match expr {
        Expr::Level(key) => {
            let mut sum = 0.0;
            let mut n = 0u64;
            for s in window {
                if let Some(v) = level_in(&s.metrics, key) {
                    sum += v;
                    n += 1;
                }
            }
            (n > 0).then(|| sum / n as f64)
        }
        Expr::Rate(key) => {
            let (first, last) = (window.first()?, window.last()?);
            let dt_us = last.t_us.saturating_sub(first.t_us);
            if dt_us == 0 {
                return None;
            }
            let a = count_in(&first.metrics, key)?;
            let b = count_in(&last.metrics, key)?;
            Some(b.saturating_sub(a) as f64 * 1e6 / dt_us as f64)
        }
        Expr::HitRate(hit_key, miss_key) => {
            let (first, last) = (window.first()?, window.last()?);
            // A key absent at window start (registered mid-window) reads
            // as zero so the first real events still count.
            let d = |key: &str| -> u64 {
                let a = count_in(&first.metrics, key).unwrap_or(0);
                let b = count_in(&last.metrics, key).unwrap_or(0);
                b.saturating_sub(a)
            };
            let (hits, misses) = (d(hit_key), d(miss_key));
            let total = hits + misses;
            (total > 0).then(|| hits as f64 / total as f64)
        }
        Expr::Quantile(key, q) => {
            let last = window.last()?.metrics.histograms.get(key)?;
            let delta_count;
            let delta_buckets: Vec<(f64, u64)>;
            match window.first().and_then(|s| s.metrics.histograms.get(key)) {
                Some(first) if first.buckets.len() == last.buckets.len() => {
                    delta_count = last.count.saturating_sub(first.count);
                    delta_buckets = last
                        .buckets
                        .iter()
                        .zip(&first.buckets)
                        .map(|(&(bound, b), &(_, a))| (bound, b.saturating_sub(a)))
                        .collect();
                }
                _ => {
                    delta_count = last.count;
                    delta_buckets = last.buckets.clone();
                }
            }
            if delta_count == 0 {
                return None;
            }
            let v = quantile_from_buckets(&delta_buckets, delta_count, *q);
            if v.is_nan() {
                None
            } else {
                Some(v)
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Alert lifecycle
// ---------------------------------------------------------------------------

/// Lifecycle state of one objective's alert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertState {
    /// No sustained breach observed.
    Ok,
    /// Breaching, not yet long enough to fire.
    Pending,
    /// Sustained breach — the objective is being violated.
    Firing,
    /// Was firing; the breach has cleared.
    Resolved,
}

impl AlertState {
    /// Display / export label.
    pub fn label(self) -> &'static str {
        match self {
            AlertState::Ok => "ok",
            AlertState::Pending => "pending",
            AlertState::Firing => "firing",
            AlertState::Resolved => "resolved",
        }
    }

    /// Stable numeric code for the `slo.state.<name>` gauges.
    pub fn code(self) -> i64 {
        match self {
            AlertState::Ok => 0,
            AlertState::Pending => 1,
            AlertState::Firing => 2,
            AlertState::Resolved => 3,
        }
    }
}

/// One recorded lifecycle transition.
#[derive(Debug, Clone, PartialEq)]
pub struct Transition {
    /// Evaluation tick index (0-based) that caused the transition.
    pub tick: u64,
    /// Timestamp of the sample that closed the window.
    pub t_us: u64,
    /// Objective / alert name.
    pub name: String,
    /// State before.
    pub from: AlertState,
    /// State after.
    pub to: AlertState,
    /// Fast-window signal value at the transition (`NaN` when held).
    pub fast: f64,
    /// Slow-window signal value at the transition (`NaN` when held).
    pub slow: f64,
}

/// One objective's lifecycle machine.
#[derive(Debug, Clone, Default)]
struct Machine {
    state: Option<AlertState>, // None until first tick
    breach_streak: u32,
    clean_streak: u32,
    breach_ticks: u64,
    transitions: u64,
    last_fast: f64,
    last_slow: f64,
}

impl Machine {
    fn state(&self) -> AlertState {
        self.state.unwrap_or(AlertState::Ok)
    }

    /// Advances one tick. `breach` is `None` on hold. Returns the
    /// transition, if any.
    fn step(&mut self, breach: Option<bool>, spec: &SloSpec) -> Option<(AlertState, AlertState)> {
        let from = self.state();
        self.state = Some(from);
        let to = match breach {
            None => from, // hold: no signal, no movement
            Some(true) => {
                self.breach_ticks += 1;
                self.clean_streak = 0;
                self.breach_streak += 1;
                match from {
                    AlertState::Ok | AlertState::Resolved => {
                        self.breach_streak = 1;
                        if spec.pending_for <= 1 {
                            AlertState::Firing
                        } else {
                            AlertState::Pending
                        }
                    }
                    AlertState::Pending if self.breach_streak >= spec.pending_for => {
                        AlertState::Firing
                    }
                    other => other,
                }
            }
            Some(false) => {
                self.breach_streak = 0;
                match from {
                    AlertState::Pending => AlertState::Ok,
                    AlertState::Firing => {
                        self.clean_streak += 1;
                        if self.clean_streak >= spec.resolve_after {
                            AlertState::Resolved
                        } else {
                            AlertState::Firing
                        }
                    }
                    other => {
                        self.clean_streak = 0;
                        other
                    }
                }
            }
        };
        self.state = Some(to);
        if to != from {
            self.transitions += 1;
            Some((from, to))
        } else {
            None
        }
    }
}

/// Point-in-time view of one alert (from [`alerts`] or a replay report).
#[derive(Debug, Clone, PartialEq)]
pub struct AlertSnapshot {
    /// The objective (name, expression, target).
    pub objective: Objective,
    /// Current lifecycle state.
    pub state: AlertState,
    /// Most recent fast-window value (`NaN` before any signal).
    pub fast: f64,
    /// Most recent slow-window value (`NaN` before any signal).
    pub slow: f64,
    /// Ticks on which this objective breached (exact, lifetime).
    pub breach_ticks: u64,
    /// Lifecycle transitions taken (exact, lifetime).
    pub transitions: u64,
}

/// A full deterministic evaluation of a spec over a sample ring.
#[derive(Debug, Clone, PartialEq)]
pub struct SloReport {
    /// The spec that was evaluated.
    pub spec: SloSpec,
    /// Final per-objective alert snapshots, spec order.
    pub alerts: Vec<AlertSnapshot>,
    /// Evaluation ticks run (= samples in the ring).
    pub ticks: u64,
    /// Total (objective, tick) breaches.
    pub breaches: u64,
    /// Every lifecycle transition, in tick order.
    pub transitions: Vec<Transition>,
}

impl SloReport {
    /// Alerts currently in `state`.
    pub fn in_state(&self, state: AlertState) -> Vec<&AlertSnapshot> {
        self.alerts.iter().filter(|a| a.state == state).collect()
    }

    /// Exact-accounting self check: per-alert totals must reconcile with
    /// the report-level totals and the transition log. Returns a
    /// description of the first inconsistency.
    pub fn check_accounting(&self) -> Result<(), String> {
        let breach_sum: u64 = self.alerts.iter().map(|a| a.breach_ticks).sum();
        if breach_sum != self.breaches {
            return Err(format!(
                "breach sum {} != total {}",
                breach_sum, self.breaches
            ));
        }
        let trans_sum: u64 = self.alerts.iter().map(|a| a.transitions).sum();
        if trans_sum != self.transitions.len() as u64 {
            return Err(format!(
                "transition sum {} != log length {}",
                trans_sum,
                self.transitions.len()
            ));
        }
        for a in &self.alerts {
            if a.breach_ticks > self.ticks {
                return Err(format!(
                    "{}: {} breach ticks out of {} total",
                    a.objective.name, a.breach_ticks, self.ticks
                ));
            }
        }
        Ok(())
    }
}

/// Evaluates one tick of `spec` for objective `obj` over the ring prefix
/// ending at `end` (exclusive). Returns `(fast, slow, breach)`.
fn eval_tick(
    spec: &SloSpec,
    obj: &Objective,
    samples: &[Sample],
    end: usize,
) -> (f64, f64, Option<bool>) {
    let fast_window = &samples[end.saturating_sub(spec.fast)..end];
    let slow_window = &samples[end.saturating_sub(spec.slow)..end];
    let fast = eval_window(&obj.expr, fast_window);
    let slow = eval_window(&obj.expr, slow_window);
    let breach = match (fast, slow) {
        (Some(f), Some(s)) => {
            Some(obj.op.violated(f, obj.threshold) && obj.op.violated(s, obj.threshold))
        }
        _ => None,
    };
    (fast.unwrap_or(f64::NAN), slow.unwrap_or(f64::NAN), breach)
}

/// Replays the full lifecycle of `spec` over a finished ring: one tick
/// per sample, windows clamped to the available prefix. Pure — no
/// registry, journal or flight side effects — and deterministic for a
/// given ring, which makes it the verdict path for `qcfz slo`, `qcfz
/// report` and tests.
pub fn evaluate_ring(spec: &SloSpec, samples: &[Sample]) -> SloReport {
    let mut machines: Vec<Machine> = vec![Machine::default(); spec.objectives.len()];
    let mut transitions = Vec::new();
    let mut breaches = 0u64;
    for end in 1..=samples.len() {
        for (obj, m) in spec.objectives.iter().zip(machines.iter_mut()) {
            let (fast, slow, breach) = eval_tick(spec, obj, samples, end);
            m.last_fast = fast;
            m.last_slow = slow;
            if breach == Some(true) {
                breaches += 1;
            }
            if let Some((from, to)) = m.step(breach, spec) {
                transitions.push(Transition {
                    tick: (end - 1) as u64,
                    t_us: samples[end - 1].t_us,
                    name: obj.name.clone(),
                    from,
                    to,
                    fast,
                    slow,
                });
            }
        }
    }
    SloReport {
        spec: spec.clone(),
        alerts: spec
            .objectives
            .iter()
            .zip(&machines)
            .map(|(obj, m)| AlertSnapshot {
                objective: obj.clone(),
                state: m.state(),
                fast: m.last_fast,
                slow: m.last_slow,
                breach_ticks: m.breach_ticks,
                transitions: m.transitions,
            })
            .collect(),
        ticks: samples.len() as u64,
        breaches,
        transitions,
    }
}

// ---------------------------------------------------------------------------
// Live engine
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct Engine {
    spec: SloSpec,
    machines: Vec<Machine>,
    ticks: u64,
    log: VecDeque<Transition>,
    log_dropped: u64,
}

fn engine() -> &'static Mutex<Engine> {
    static ENGINE: OnceLock<Mutex<Engine>> = OnceLock::new();
    ENGINE.get_or_init(|| Mutex::new(Engine::default()))
}

fn lock_engine() -> MutexGuard<'static, Engine> {
    engine().lock().unwrap_or_else(|e| e.into_inner())
}

/// True when the live evaluator is armed. Initialized on first call from
/// `QCF_SLO` (unset ⇒ disarmed); one relaxed atomic load on every later
/// call — the entire disarmed cost of [`tick`].
#[inline]
pub fn armed() -> bool {
    match ARMED.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => init_armed(),
    }
}

#[cold]
fn init_armed() -> bool {
    let set = std::env::var("QCF_SLO").map(|v| !v.trim().is_empty()) == Ok(true);
    if !set {
        ARMED.store(2, Ordering::Relaxed);
        return false;
    }
    arm(SloSpec::active());
    true
}

/// Arms the live evaluator with `spec`, replacing any previous spec and
/// resetting all machines.
pub fn arm(spec: SloSpec) {
    let mut eng = lock_engine();
    eng.machines = vec![Machine::default(); spec.objectives.len()];
    eng.spec = spec;
    eng.ticks = 0;
    eng.log.clear();
    eng.log_dropped = 0;
    ARMED.store(1, Ordering::Relaxed);
}

/// Arms with the active spec (`QCF_SLO` or defaults) unless already
/// armed. `qcfz top` / `qcfz slo` call this so the live pane works with
/// no environment setup.
pub fn arm_active() {
    if !armed() {
        arm(SloSpec::active());
    }
}

/// Disarms the evaluator and clears all state.
pub fn disarm() {
    *lock_engine() = Engine::default();
    ARMED.store(2, Ordering::Relaxed);
}

/// Clears machines, tick counts and the transition log but keeps the
/// armed spec — run isolation ([`crate::reset`] calls this so `qcfz
/// report` phases judge only their own samples).
pub fn reset_state() {
    let mut eng = lock_engine();
    eng.machines = vec![Machine::default(); eng.spec.objectives.len()];
    eng.ticks = 0;
    eng.log.clear();
    eng.log_dropped = 0;
}

/// The armed spec, when armed.
pub fn active_spec() -> Option<SloSpec> {
    armed().then(|| lock_engine().spec.clone())
}

/// Live per-alert snapshots (empty when disarmed).
pub fn alerts() -> Vec<AlertSnapshot> {
    if !armed() {
        return Vec::new();
    }
    let eng = lock_engine();
    eng.spec
        .objectives
        .iter()
        .zip(&eng.machines)
        .map(|(obj, m)| AlertSnapshot {
            objective: obj.clone(),
            state: m.state(),
            fast: m.last_fast,
            slow: m.last_slow,
            breach_ticks: m.breach_ticks,
            transitions: m.transitions,
        })
        .collect()
}

/// The retained transition log, oldest first, plus the dropped count.
pub fn transitions() -> (Vec<Transition>, u64) {
    let eng = lock_engine();
    (eng.log.iter().cloned().collect(), eng.log_dropped)
}

/// Live evaluation ticks run so far.
pub fn ticks() -> u64 {
    lock_engine().ticks
}

/// One live evaluation tick over the current sampler ring. The sampler
/// calls this after each retained capture; disarmed it is exactly one
/// relaxed atomic load.
#[inline]
pub fn tick() {
    if !armed() {
        return;
    }
    tick_armed();
}

#[cold]
fn tick_armed() {
    let samples = crate::timeseries::samples();
    if samples.is_empty() {
        return;
    }
    let reg = crate::metrics::registry();
    let mut fired = Vec::new();
    {
        let mut eng = lock_engine();
        let end = samples.len();
        let tick_idx = eng.ticks;
        eng.ticks += 1;
        let spec = eng.spec.clone();
        let mut tick_breaches = 0u64;
        for (i, obj) in spec.objectives.iter().enumerate() {
            let (fast, slow, breach) = eval_tick(&spec, obj, &samples, end);
            let m = &mut eng.machines[i];
            m.last_fast = fast;
            m.last_slow = slow;
            if breach == Some(true) {
                tick_breaches += 1;
                reg.counter(&format!("slo.breach.{}", obj.name)).inc();
            }
            if let Some((from, to)) = m.step(breach, &spec) {
                let t = Transition {
                    tick: tick_idx,
                    t_us: samples[end - 1].t_us,
                    name: obj.name.clone(),
                    from,
                    to,
                    fast,
                    slow,
                };
                if eng.log.len() == TRANSITION_LOG {
                    eng.log.pop_front();
                    eng.log_dropped += 1;
                }
                eng.log.push_back(t.clone());
                fired.push((i as u64, t));
            }
            reg.gauge(&format!("slo.state.{}", obj.name))
                .set(eng.machines[i].state().code());
            if fast.is_finite() {
                reg.float_gauge(&format!("slo.value.{}", obj.name))
                    .set(fast);
            }
        }
        reg.counter("slo.ticks").inc();
        reg.counter("slo.breaches").add(tick_breaches);
        let pending = eng
            .machines
            .iter()
            .filter(|m| m.state() == AlertState::Pending)
            .count();
        let firing = eng
            .machines
            .iter()
            .filter(|m| m.state() == AlertState::Firing)
            .count();
        reg.gauge("slo.pending").set(pending as i64);
        reg.gauge("slo.firing").set(firing as i64);
        if !fired.is_empty() {
            reg.counter("slo.transitions").add(fired.len() as u64);
        }
    }
    // Journal + flight outside the engine lock: both take their own
    // locks and must never nest inside ours.
    for (idx, t) in fired {
        crate::journal::record(
            JOURNAL_BASE + idx,
            crate::journal::EventKind::Slo,
            t.to.code() as f64,
        );
        crate::flight::record(&format!(
            "slo:{}:{}->{}",
            t.name,
            t.from.label(),
            t.to.label()
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Snapshot;

    fn sample(t_us: u64, key: &str, value: u64) -> Sample {
        let mut s = Snapshot::default();
        s.counters.insert(key.to_string(), value);
        Sample { t_us, metrics: s }
    }

    #[test]
    fn parse_round_trips_and_rejects_garbage() {
        let text = "windows=4/16; pending=3; resolve=2\n\
                    lat.p99: p99(state.apply_us) <= 5000\n\
                    cache: hitrate(state.cache.hit, state.cache.miss) >= 0.5 # comment\n\
                    stall: rate(state.prefetch.stall_us) <= 2e5\n\
                    quarantine: state.ledger.quarantines <= 0";
        let spec = SloSpec::parse(text).unwrap();
        assert_eq!((spec.fast, spec.slow), (4, 16));
        assert_eq!((spec.pending_for, spec.resolve_after), (3, 2));
        assert_eq!(spec.objectives.len(), 4);
        assert_eq!(
            spec.objectives[0].expr,
            Expr::Quantile("state.apply_us".into(), 0.99)
        );
        assert_eq!(spec.objectives[1].op, Op::Ge);
        let round = SloSpec::parse(&spec.to_text()).unwrap();
        assert_eq!(round, spec);

        for bad in [
            "",
            "no colon here",
            "x: key < 5",           // only <= / >= exist
            "x: key <= banana",     // bad threshold
            "x: hitrate(a) >= 0.5", // one key
            "windows=0/4; x: k <= 1",
            "windows=8/4; x: k <= 1", // slow < fast
            "x: k <= 1; x: k <= 2",   // duplicate
            "pending=0; x: k <= 1",
            "x!: k <= 1", // bad name
        ] {
            assert!(SloSpec::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn threshold_suffixes_scale_binary() {
        assert_eq!(parse_threshold("64k"), Some(64.0 * 1024.0));
        assert_eq!(parse_threshold("2m"), Some(2.0 * 1024.0 * 1024.0));
        assert_eq!(
            parse_threshold("1.5g"),
            Some(1.5 * 1024.0 * 1024.0 * 1024.0)
        );
        assert_eq!(parse_threshold("1e-3"), Some(1e-3));
        assert_eq!(parse_threshold("inf"), None);
    }

    #[test]
    fn defaults_cover_all_four_dimensions() {
        let spec = SloSpec::defaults();
        for dim in ["fidelity.", "latency.", "efficiency.", "capacity."] {
            assert!(
                spec.objectives.iter().any(|o| o.name.starts_with(dim)),
                "missing {dim} objective"
            );
        }
        // Defaults must round-trip through the grammar too.
        assert_eq!(SloSpec::parse(&spec.to_text()).unwrap(), spec);
    }

    #[test]
    fn level_rate_and_hitrate_window_evaluation() {
        let ring: Vec<Sample> = (0..10u64)
            .map(|i| sample(i * 1_000_000, "c", i * 10))
            .collect();
        // Level = mean of the counter over the window.
        assert_eq!(
            eval_window(&Expr::Level("c".into()), &ring[..3]),
            Some(10.0)
        );
        // Rate = Δcount / Δt: 90 events over 9 s.
        assert_eq!(eval_window(&Expr::Rate("c".into()), &ring), Some(10.0));
        // Single-sample window has no rate.
        assert_eq!(eval_window(&Expr::Rate("c".into()), &ring[..1]), None);
        // Missing key holds.
        assert_eq!(eval_window(&Expr::Level("nope".into()), &ring), None);
        // Hitrate over deltas; zero denominator holds.
        let mut a = sample(0, "hit", 0);
        a.metrics.counters.insert("miss".into(), 0);
        let mut b = sample(1_000_000, "hit", 3);
        b.metrics.counters.insert("miss".into(), 1);
        let w = vec![a.clone(), b];
        assert_eq!(
            eval_window(&Expr::HitRate("hit".into(), "miss".into()), &w),
            Some(0.75)
        );
        assert_eq!(
            eval_window(&Expr::HitRate("hit".into(), "miss".into()), &[a.clone(), a]),
            None
        );
    }

    #[test]
    fn lifecycle_pending_firing_resolved_with_hysteresis() {
        let spec = SloSpec::parse("windows=2/4; pending=2; resolve=2; hot: c <= 5").unwrap();
        // 12 ticks: clean, then a sustained breach, then recovery.
        let values = [0u64, 0, 0, 0, 10, 10, 10, 10, 0, 0, 0, 0];
        let ring: Vec<Sample> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| sample((i as u64 + 1) * 1000, "c", v))
            .collect();
        let report = evaluate_ring(&spec, &ring);
        assert_eq!(report.ticks, 12);
        let a = &report.alerts[0];
        assert_eq!(a.state, AlertState::Resolved);
        let steps: Vec<(AlertState, AlertState)> =
            report.transitions.iter().map(|t| (t.from, t.to)).collect();
        assert_eq!(
            steps,
            vec![
                (AlertState::Ok, AlertState::Pending),
                (AlertState::Pending, AlertState::Firing),
                (AlertState::Firing, AlertState::Resolved),
            ]
        );
        // Exact tick indices pin the burn-rate arithmetic. The breach
        // starts when the slow (4-sample) mean first exceeds 5 — samples
        // (0,10,10,10) at tick 6 — fires one hysteresis tick later, and
        // recovery starts as soon as the fast window clears (mean 5 at
        // tick 8), resolving after two clean ticks at tick 9.
        assert_eq!(report.transitions[0].tick, 6);
        assert_eq!(report.transitions[1].tick, 7);
        assert_eq!(report.transitions[2].tick, 9);
        assert!(report.check_accounting().is_ok());
    }

    #[test]
    fn single_spike_never_fires_multiwindow() {
        // One breaching sample in an otherwise clean run: the fast window
        // flinches (30 > 10) but the slow window's mean absorbs it — no
        // transition at all.
        let spec = SloSpec::parse("windows=1/8; pending=1; resolve=1; hot: c <= 10").unwrap();
        let values = [0u64, 0, 0, 0, 30, 0, 0, 0, 0, 0, 0, 0];
        let ring: Vec<Sample> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| sample((i as u64 + 1) * 1000, "c", v))
            .collect();
        let report = evaluate_ring(&spec, &ring);
        assert_eq!(report.alerts[0].state, AlertState::Ok);
        assert!(report.transitions.is_empty());
        assert_eq!(report.breaches, 0);
    }

    #[test]
    fn pending_demotes_on_one_clean_tick() {
        let spec = SloSpec::parse("windows=1/1; pending=3; resolve=1; hot: c <= 5").unwrap();
        let values = [10u64, 10, 0, 10, 10, 10];
        let ring: Vec<Sample> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| sample((i as u64 + 1) * 1000, "c", v))
            .collect();
        let report = evaluate_ring(&spec, &ring);
        // Breach streak broken at tick 2 — firing needs 3 *consecutive*
        // breaches, reached only on the final tick.
        let steps: Vec<(AlertState, AlertState)> =
            report.transitions.iter().map(|t| (t.from, t.to)).collect();
        assert_eq!(
            steps,
            vec![
                (AlertState::Ok, AlertState::Pending),
                (AlertState::Pending, AlertState::Ok),
                (AlertState::Ok, AlertState::Pending),
                (AlertState::Pending, AlertState::Firing),
            ]
        );
        assert!(report.check_accounting().is_ok());
    }

    #[test]
    fn hold_freezes_firing_alerts() {
        // Signal disappears while firing: the alert must hold, not
        // resolve on missing data.
        let spec = SloSpec::parse("windows=1/1; pending=1; resolve=1; hot: c <= 5").unwrap();
        let mut ring: Vec<Sample> = (0..3).map(|i| sample((i + 1) * 1000, "c", 10)).collect();
        for i in 3..8u64 {
            ring.push(Sample {
                t_us: (i + 1) * 1000,
                metrics: Snapshot::default(), // key gone
            });
        }
        let report = evaluate_ring(&spec, &ring);
        assert_eq!(report.alerts[0].state, AlertState::Firing);
        assert_eq!(report.alerts[0].breach_ticks, 3);
    }

    #[test]
    fn live_tick_disarmed_is_inert_and_armed_accounts_exactly() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        crate::timeseries::reset();
        crate::metrics::registry().reset_values();
        disarm();
        tick(); // disarmed: no state, no registry writes
        assert_eq!(ticks(), 0);
        assert!(alerts().is_empty());

        arm(
            SloSpec::parse("windows=1/2; pending=2; resolve=2; hot: telemetry.slo.test <= 5")
                .unwrap(),
        );
        let c = crate::metrics::registry().counter("telemetry.slo.test");
        for i in 0..6 {
            if i >= 2 {
                c.add(10);
            }
            crate::timeseries::capture(); // capture drives tick()
        }
        let snap = crate::metrics::registry().snapshot();
        assert_eq!(snap.counters.get("slo.ticks"), Some(&6));
        let live = alerts();
        assert_eq!(live.len(), 1);
        assert_eq!(live[0].state, AlertState::Firing);
        assert_eq!(
            snap.gauges.get("slo.firing").map(|&(v, _)| v),
            Some(1),
            "firing gauge must track the machine"
        );
        assert_eq!(
            snap.counters.get("slo.breach.hot").copied().unwrap_or(0),
            live[0].breach_ticks,
            "per-alert breach counter must match the machine exactly"
        );
        let (log, dropped) = transitions();
        assert_eq!(dropped, 0);
        assert_eq!(log.len() as u64, live[0].transitions);
        assert_eq!(
            snap.counters.get("slo.transitions").copied().unwrap_or(0),
            log.len() as u64
        );
        // Replaying the finished ring reaches the same final state.
        let replay = evaluate_ring(&active_spec().unwrap(), &crate::timeseries::samples());
        assert_eq!(replay.alerts[0].state, AlertState::Firing);
        disarm();
        crate::timeseries::reset();
        crate::metrics::registry().reset_values();
    }

    #[test]
    fn transitions_become_journal_events_and_flight_frames() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        crate::journal::set_enabled(true);
        crate::journal::reset();
        crate::timeseries::reset();
        crate::metrics::registry().reset_values();
        arm(
            SloSpec::parse("windows=1/1; pending=1; resolve=1; hot: telemetry.slo.j <= 0").unwrap(),
        );
        let c = crate::metrics::registry().counter("telemetry.slo.j");
        c.add(3);
        crate::timeseries::capture();
        let ev = crate::journal::events(JOURNAL_BASE);
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].kind, crate::journal::EventKind::Slo);
        assert_eq!(ev[0].detail, AlertState::Firing.code() as f64);
        disarm();
        crate::journal::reset();
        crate::journal::set_enabled(false);
        crate::timeseries::reset();
        crate::metrics::registry().reset_values();
    }
}
