//! The flight recorder: a bounded ring of recent telemetry snapshots, so a
//! bad run can explain itself after the fact.
//!
//! Instrumented code (the `qcfz` subcommands, the report pipeline, any
//! library user) calls [`record`]`("label")` at interesting moments; each
//! call captures a [`FlightFrame`] — timestamp, label, the full metrics
//! registry snapshot, and the span-buffer fill level — into a fixed-size
//! ring ([`CAPACITY`] frames; older frames are overwritten and counted).
//! When a run fails, [`dump`] (or the `qcfz` error path) writes the ring
//! as one JSON document, so the operator sees the last N checkpoints of
//! registry state leading up to the failure without having re-run under a
//! debugger.
//!
//! ## Enabling
//!
//! The recorder is **off** unless `QCF_FLIGHT_RECORD` is set (to anything
//! except `0`/`false`/`off`) or [`set_enabled`]`(true)` is called. When the
//! variable's value looks like a file path (anything other than a bare
//! `1`/`true`/`on`), it doubles as the default dump destination
//! ([`dump_path`]); `qcfz` writes there on error *and* at normal exit, so
//! the ring is available on demand, not only post-mortem. Recording also
//! requires the telemetry layer itself to be enabled — a disabled process
//! pays one relaxed atomic load per [`record`] call and nothing else.

use crate::metrics::Snapshot;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Maximum frames retained; older frames are overwritten (and counted in
/// [`overwritten`]).
pub const CAPACITY: usize = 32;

/// One recorded checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightFrame {
    /// Microseconds since the telemetry epoch (same clock as span events).
    pub t_us: u64,
    /// Caller-provided checkpoint label (e.g. `qaoa.done`, `error: …`).
    pub label: String,
    /// Full metrics registry snapshot at the checkpoint.
    pub metrics: Snapshot,
    /// Span events buffered at the checkpoint.
    pub spans_buffered: usize,
    /// Span events dropped (buffer full) at the checkpoint.
    pub spans_dropped: u64,
}

#[derive(Debug, Default)]
struct Ring {
    frames: VecDeque<FlightFrame>,
    overwritten: u64,
}

fn ring() -> &'static Mutex<Ring> {
    static RING: OnceLock<Mutex<Ring>> = OnceLock::new();
    RING.get_or_init(|| Mutex::new(Ring::default()))
}

fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// 0 = uninitialized, 1 = enabled, 2 = disabled.
static ENABLED: AtomicU8 = AtomicU8::new(0);

fn env_value() -> Option<&'static str> {
    static VALUE: OnceLock<Option<String>> = OnceLock::new();
    VALUE
        .get_or_init(|| std::env::var("QCF_FLIGHT_RECORD").ok())
        .as_deref()
}

/// True when the flight recorder is armed (see module docs for the
/// `QCF_FLIGHT_RECORD` convention).
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => init_enabled(),
    }
}

#[cold]
fn init_enabled() -> bool {
    let on = match env_value() {
        Some(v) => {
            let v = v.trim();
            !(v.is_empty()
                || v == "0"
                || v.eq_ignore_ascii_case("false")
                || v.eq_ignore_ascii_case("off"))
        }
        None => false,
    };
    ENABLED.store(if on { 1 } else { 2 }, Ordering::Relaxed);
    on
}

/// Overrides the armed state (tests, CLIs with an explicit flag).
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

/// The dump destination implied by `QCF_FLIGHT_RECORD`, when its value is
/// a path rather than a bare on-switch.
pub fn dump_path() -> Option<&'static std::path::Path> {
    let v = env_value()?.trim();
    let bare = matches!(v, "0" | "1")
        || v.eq_ignore_ascii_case("true")
        || v.eq_ignore_ascii_case("false")
        || v.eq_ignore_ascii_case("on")
        || v.eq_ignore_ascii_case("off");
    if bare || v.is_empty() {
        None
    } else {
        Some(std::path::Path::new(v))
    }
}

/// Captures one frame labelled `label` into the ring. No-op unless both
/// the recorder and telemetry are enabled.
pub fn record(label: &str) {
    if !enabled() || !crate::enabled() {
        return;
    }
    let frame = FlightFrame {
        t_us: crate::span::now_us(),
        label: label.to_string(),
        metrics: crate::metrics::registry().snapshot(),
        spans_buffered: crate::span::buffered(),
        spans_dropped: crate::span::dropped(),
    };
    let mut ring = lock_unpoisoned(ring());
    if ring.frames.len() == CAPACITY {
        ring.frames.pop_front();
        ring.overwritten += 1;
    }
    ring.frames.push_back(frame);
}

/// All retained frames, oldest first.
pub fn frames() -> Vec<FlightFrame> {
    lock_unpoisoned(ring()).frames.iter().cloned().collect()
}

/// Frames displaced from the ring so far.
pub fn overwritten() -> u64 {
    lock_unpoisoned(ring()).overwritten
}

/// Clears the ring (tests, run isolation when a fresh recording is wanted).
pub fn reset() {
    let mut ring = lock_unpoisoned(ring());
    ring.frames.clear();
    ring.overwritten = 0;
}

/// Newest time-series samples embedded in every dump, so a post-mortem
/// carries the last seconds of the sampler's view alongside the frames.
pub const SAMPLER_TAIL: usize = 8;

/// Renders the ring as one JSON document:
/// `{"capacity":…,"overwritten":…,"frames":[{…}],"sampler_tail":[{…}]}`.
/// The `sampler_tail` array holds the newest [`SAMPLER_TAIL`] samples from
/// [`crate::timeseries`] (empty when the sampler never ran).
pub fn to_json() -> String {
    use std::fmt::Write as _;
    let frames = frames();
    let overwritten = overwritten();
    let mut out = String::with_capacity(256 + frames.len() * 512);
    let _ = write!(
        out,
        "{{\"capacity\":{CAPACITY},\"overwritten\":{overwritten},\"frames\":["
    );
    for (i, f) in frames.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"t_us\":{},\"label\":\"", f.t_us);
        crate::export::escape_into(&mut out, &f.label);
        let _ = write!(
            out,
            "\",\"spans_buffered\":{},\"spans_dropped\":{},\"metrics\":{}}}",
            f.spans_buffered,
            f.spans_dropped,
            crate::export::metrics_json(&f.metrics)
        );
    }
    out.push_str("],\"sampler_tail\":[");
    for (i, s) in crate::timeseries::tail(SAMPLER_TAIL).iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"t_us\":{},\"metrics\":{}}}",
            s.t_us,
            crate::export::metrics_json(&s.metrics)
        );
    }
    out.push_str("]}");
    out
}

/// Records one final frame labelled `label` and writes the ring to `path`
/// (or the `QCF_FLIGHT_RECORD` path, or `qcf-flight.json`). Returns the
/// path written, or `None` when the recorder is disarmed.
pub fn dump(
    label: &str,
    path: Option<&std::path::Path>,
) -> std::io::Result<Option<std::path::PathBuf>> {
    if !enabled() {
        return Ok(None);
    }
    record(label);
    let path = match path {
        Some(p) => p,
        None => dump_path().unwrap_or_else(|| std::path::Path::new("qcf-flight.json")),
    };
    std::fs::write(path, to_json())?;
    Ok(Some(path.to_path_buf()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_records_nothing() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        set_enabled(false);
        reset();
        record("ignored");
        assert!(frames().is_empty());
        assert_eq!(dump("x", None).unwrap(), None);
    }

    #[test]
    fn frames_capture_metrics_and_ring_is_bounded() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        set_enabled(true);
        reset();
        let c = crate::registry().counter("flight.test.events");
        for i in 0..(CAPACITY + 5) {
            c.inc();
            record(&format!("step {i}"));
        }
        let frames = frames();
        assert_eq!(frames.len(), CAPACITY, "ring must stay bounded");
        assert_eq!(overwritten(), 5);
        // Oldest retained frame is step 5; newest is the last step.
        assert_eq!(frames[0].label, "step 5");
        assert_eq!(
            frames.last().unwrap().label,
            format!("step {}", CAPACITY + 4)
        );
        // Each frame froze the registry at its moment: the counter grows
        // monotonically across frames.
        let counts: Vec<u64> = frames
            .iter()
            .map(|f| *f.metrics.counters.get("flight.test.events").unwrap())
            .collect();
        assert!(counts.windows(2).all(|w| w[0] < w[1]), "{counts:?}");
        reset();
        set_enabled(false);
    }

    #[test]
    fn json_dump_is_valid() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        set_enabled(true);
        reset();
        record("with \"quotes\" and\nnewlines");
        let doc = to_json();
        crate::export::validate_json(&doc).expect("flight JSON must be valid");
        assert!(doc.contains("\"capacity\""));
        assert!(doc.contains("quotes"));
        assert!(doc.contains("\"sampler_tail\""));
        reset();
        set_enabled(false);
    }

    #[test]
    fn dump_carries_the_sampler_tail() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        set_enabled(true);
        reset();
        crate::timeseries::reset();
        for _ in 0..(SAMPLER_TAIL + 4) {
            crate::timeseries::capture();
        }
        record("end");
        let doc = to_json();
        crate::export::validate_json(&doc).expect("flight JSON with tail must be valid");
        // Exactly SAMPLER_TAIL newest samples are embedded.
        let tail_count = doc.matches("{\"t_us\":").count() - frames().len();
        assert_eq!(tail_count, SAMPLER_TAIL, "{doc}");
        crate::timeseries::reset();
        reset();
        set_enabled(false);
    }

    #[test]
    fn telemetry_disabled_blocks_recording() {
        let _g = crate::test_guard();
        set_enabled(true);
        crate::set_enabled(false);
        reset();
        record("nope");
        assert!(frames().is_empty(), "telemetry off ⇒ no frames");
        crate::set_enabled(true);
        set_enabled(false);
    }
}
