//! The time-series sampler: a background thread that captures registry
//! snapshots into a fixed-capacity downsampling ring.
//!
//! Continuous telemetry needs *rates over time*, not just end-of-run
//! totals: a requant storm that lasts 200 ms looks identical to a steady
//! trickle in a final snapshot. The sampler closes that gap with the
//! cheapest possible mechanism — one background thread that calls
//! [`crate::metrics::Registry::snapshot`] every `interval_ms` and pushes
//! the result into a bounded ring.
//!
//! ## Downsampling ring
//!
//! The ring holds at most [`CAPACITY`] samples. When it fills, every other
//! retained sample is discarded and the keep-stride doubles, so a run of
//! any length is always covered end to end by ≤ `CAPACITY` samples at a
//! self-adjusting effective interval (`interval_ms · stride`). The newest
//! samples are always at full stride resolution — `tail(n)` is what the
//! flight recorder embeds in post-mortem dumps.
//!
//! ## Arming and lifecycle
//!
//! Off by default. `QCF_TELEMETRY_SAMPLE=<ms>` arms it for the process:
//! [`crate::RunScope::enter`] calls [`arm_from_env`] and
//! [`crate::RunScope::finish`] (or drop) stops and **joins** the thread,
//! so no sampler outlives its run and consecutive `qcfz report` phases
//! cannot interleave samples. Programmatic users (`qcfz top`) call
//! [`start`]/[`stop`] directly. The sampler sits on no hot path: engine
//! code never touches this module, so the disabled-telemetry cost of the
//! instrumented paths stays exactly one relaxed atomic load.

use crate::metrics::Snapshot;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

/// Maximum samples retained; on overflow the ring halves itself and
/// doubles its keep-stride (see module docs).
pub const CAPACITY: usize = 512;

/// One captured sample: the registry frozen at one instant.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Microseconds since the telemetry epoch (same clock as spans and
    /// flight frames).
    pub t_us: u64,
    /// Full metrics registry snapshot.
    pub metrics: Snapshot,
}

#[derive(Debug)]
struct Ring {
    samples: VecDeque<Sample>,
    /// Keep every `stride`-th offered capture (doubles on each fold).
    stride: u64,
    /// Captures offered since the last reset (kept or not).
    offered: u64,
    /// Times the ring downsampled itself.
    folds: u64,
}

impl Default for Ring {
    fn default() -> Self {
        Ring {
            samples: VecDeque::new(),
            stride: 1,
            offered: 0,
            folds: 0,
        }
    }
}

fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn ring() -> &'static Mutex<Ring> {
    static RING: OnceLock<Mutex<Ring>> = OnceLock::new();
    RING.get_or_init(|| Mutex::new(Ring::default()))
}

struct SamplerHandle {
    stop: Arc<AtomicBool>,
    thread: std::thread::JoinHandle<()>,
    interval_ms: u64,
}

fn sampler() -> &'static Mutex<Option<SamplerHandle>> {
    static SAMPLER: OnceLock<Mutex<Option<SamplerHandle>>> = OnceLock::new();
    SAMPLER.get_or_init(|| Mutex::new(None))
}

/// The sampling interval requested by `QCF_TELEMETRY_SAMPLE` (milliseconds,
/// must parse as a positive integer), or `None` when unset/unparsable.
pub fn env_interval_ms() -> Option<u64> {
    static VALUE: OnceLock<Option<u64>> = OnceLock::new();
    *VALUE.get_or_init(|| {
        std::env::var("QCF_TELEMETRY_SAMPLE")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .filter(|&ms| ms > 0)
    })
}

/// Starts the sampler when `QCF_TELEMETRY_SAMPLE` arms it; no-op (returns
/// `false`) otherwise or when a sampler is already running.
pub fn arm_from_env() -> bool {
    match env_interval_ms() {
        Some(ms) => start(ms),
        None => false,
    }
}

/// Captures one sample into the ring immediately (the sampler thread's
/// tick body; also used by `qcfz top --once` to guarantee a frame without
/// waiting out an interval). No-op while telemetry is disabled. A
/// retained capture also drives one SLO evaluation tick — a relaxed
/// atomic load and nothing more while [`crate::slo`] is disarmed.
pub fn capture() {
    if !crate::enabled() {
        return;
    }
    let sample = Sample {
        t_us: crate::span::now_us(),
        metrics: crate::metrics::registry().snapshot(),
    };
    if offer(sample) {
        crate::slo::tick();
    }
}

/// Offers one sample to the ring, returning whether it was retained
/// (between-stride offers after a fold are dropped). Timestamps are
/// forced **strictly** monotonic on admission: `now_us` can tie across
/// adjacent captures (sub-microsecond ticks) and a tie that survives a
/// fold would leave two retained samples claiming the same instant —
/// rate and span math over the downsampled ring then divides by zero.
/// Ties are bumped forward by 1 µs instead.
pub fn offer(mut sample: Sample) -> bool {
    let mut ring = lock_unpoisoned(ring());
    ring.offered += 1;
    if !(ring.offered - 1).is_multiple_of(ring.stride) {
        return false; // between strides after a fold
    }
    if ring.samples.len() == CAPACITY {
        // Fold: keep every other sample (newest half-resolution), double
        // the stride so future captures match the retained density. Index
        // 0 is always kept, so the series still spans the whole run.
        let kept: VecDeque<Sample> = ring
            .samples
            .drain(..)
            .enumerate()
            .filter_map(|(i, s)| (i % 2 == 0).then_some(s))
            .collect();
        ring.samples = kept;
        ring.stride *= 2;
        ring.folds += 1;
    }
    if let Some(last) = ring.samples.back() {
        if sample.t_us <= last.t_us {
            sample.t_us = last.t_us + 1;
        }
    }
    ring.samples.push_back(sample);
    true
}

/// Starts a background sampler capturing every `interval_ms` milliseconds.
/// Returns `false` (and changes nothing) when one is already running or
/// `interval_ms` is zero.
pub fn start(interval_ms: u64) -> bool {
    if interval_ms == 0 {
        return false;
    }
    let mut slot = lock_unpoisoned(sampler());
    if slot.is_some() {
        return false;
    }
    let stop = Arc::new(AtomicBool::new(false));
    let thread_stop = Arc::clone(&stop);
    let thread = std::thread::Builder::new()
        .name("qcf-sampler".into())
        .spawn(move || {
            capture(); // t=0 sample so even short runs have a series
            while !thread_stop.load(Ordering::Relaxed) {
                // Sleep in small slices so stop() joins promptly even at
                // long intervals.
                let mut left = interval_ms;
                while left > 0 && !thread_stop.load(Ordering::Relaxed) {
                    let slice = left.min(20);
                    std::thread::sleep(Duration::from_millis(slice));
                    left -= slice;
                }
                if thread_stop.load(Ordering::Relaxed) {
                    break;
                }
                capture();
            }
        })
        .expect("spawn sampler thread");
    *slot = Some(SamplerHandle {
        stop,
        thread,
        interval_ms,
    });
    true
}

/// Stops and joins the sampler thread, capturing one final sample so the
/// series always covers the end of the run. Returns `true` when a sampler
/// was actually running. Idempotent.
pub fn stop() -> bool {
    let handle = lock_unpoisoned(sampler()).take();
    match handle {
        Some(h) => {
            h.stop.store(true, Ordering::Relaxed);
            let _ = h.thread.join();
            capture();
            true
        }
        None => false,
    }
}

/// True while a sampler thread is running.
pub fn is_running() -> bool {
    lock_unpoisoned(sampler()).is_some()
}

/// The running sampler's interval, when one is active.
pub fn interval_ms() -> Option<u64> {
    lock_unpoisoned(sampler()).as_ref().map(|h| h.interval_ms)
}

/// All retained samples, oldest first.
pub fn samples() -> Vec<Sample> {
    lock_unpoisoned(ring()).samples.iter().cloned().collect()
}

/// The newest retained sample.
pub fn latest() -> Option<Sample> {
    lock_unpoisoned(ring()).samples.back().cloned()
}

/// The newest `n` samples, oldest first (the flight recorder's tail).
pub fn tail(n: usize) -> Vec<Sample> {
    let ring = lock_unpoisoned(ring());
    let skip = ring.samples.len().saturating_sub(n);
    ring.samples.iter().skip(skip).cloned().collect()
}

/// Retained sample count.
pub fn len() -> usize {
    lock_unpoisoned(ring()).samples.len()
}

/// True when no samples are retained.
pub fn is_empty() -> bool {
    len() == 0
}

/// Current keep-stride (1 until the first fold, then doubling).
pub fn stride() -> u64 {
    lock_unpoisoned(ring()).stride
}

/// Times the ring has downsampled itself.
pub fn folds() -> u64 {
    lock_unpoisoned(ring()).folds
}

/// Clears the ring and resets the stride. Does not touch a running
/// sampler thread; `RunScope` stops the thread separately.
pub fn reset() {
    *lock_unpoisoned(ring()) = Ring::default();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_fills_ring_and_folds_at_capacity() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        reset();
        for _ in 0..CAPACITY {
            capture();
        }
        assert_eq!(len(), CAPACITY);
        assert_eq!(stride(), 1);
        // One more capture folds the ring to half and doubles the stride.
        capture();
        assert_eq!(len(), CAPACITY / 2 + 1);
        assert_eq!(stride(), 2);
        assert_eq!(folds(), 1);
        // Timestamps stay monotone through the fold.
        let s = samples();
        assert!(s.windows(2).all(|w| w[0].t_us <= w[1].t_us));
        reset();
    }

    #[test]
    fn strided_captures_keep_every_other() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        reset();
        for _ in 0..=CAPACITY {
            capture(); // forces one fold → stride 2
        }
        let before = len();
        capture(); // off-stride: skipped
        assert_eq!(len(), before);
        capture(); // on-stride: kept
        assert_eq!(len(), before + 1);
        reset();
    }

    #[test]
    fn sampler_thread_runs_and_joins() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        reset();
        assert!(start(1));
        assert!(is_running());
        assert_eq!(interval_ms(), Some(1));
        assert!(!start(5), "second start is a no-op while running");
        std::thread::sleep(Duration::from_millis(30));
        assert!(stop());
        assert!(!is_running());
        assert!(!stop(), "stop is idempotent");
        assert!(len() >= 2, "expected several samples, got {}", len());
        let s = samples();
        assert!(s.windows(2).all(|w| w[0].t_us <= w[1].t_us));
        reset();
    }

    #[test]
    fn disabled_telemetry_captures_nothing() {
        let _g = crate::test_guard();
        crate::set_enabled(false);
        reset();
        capture();
        assert_eq!(len(), 0);
        crate::set_enabled(true);
    }

    #[test]
    fn tail_returns_newest() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        reset();
        for _ in 0..10 {
            capture();
        }
        let t = tail(3);
        assert_eq!(t.len(), 3);
        let all = samples();
        assert_eq!(t.last(), all.last());
        assert_eq!(tail(100).len(), 10, "tail larger than ring is clamped");
        reset();
    }
}
