//! Hierarchical RAII spans with thread-aware lanes.
//!
//! A span measures one region of host work: creation timestamps the start,
//! dropping the guard records a [`SpanEvent`] into a bounded global buffer.
//! Spans nest naturally (inner guards drop first), and every thread gets a
//! stable small integer *lane* id, so block-parallel work under
//! `QCF_WORKERS>1` attributes to the worker that actually ran it — the
//! Chrome-trace exporter renders one timeline lane per worker.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Upper bound on buffered span events; beyond it events are counted as
/// dropped instead of stored, bounding memory for long processes.
pub const MAX_SPAN_EVENTS: usize = 1 << 16;

/// One completed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Span name, e.g. `contract.pairwise`.
    pub name: &'static str,
    /// Category: the name's first dot-separated segment (`contract`).
    pub cat: &'static str,
    /// Lane (thread) id the span ran on.
    pub lane: u32,
    /// Microseconds since the process epoch (first telemetry use).
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Nesting depth on this lane at the time the span started (0 = root).
    pub depth: u32,
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn buffer() -> &'static Mutex<Vec<SpanEvent>> {
    static BUF: OnceLock<Mutex<Vec<SpanEvent>>> = OnceLock::new();
    BUF.get_or_init(|| Mutex::new(Vec::new()))
}

static DROPPED: AtomicU64 = AtomicU64::new(0);
static NEXT_LANE: AtomicU32 = AtomicU32::new(0);

thread_local! {
    static LANE: u32 = NEXT_LANE.fetch_add(1, Ordering::Relaxed);
    static DEPTH: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
}

/// This thread's stable lane id (assigned on first use, in thread-start
/// order).
pub fn lane_id() -> u32 {
    LANE.with(|l| *l)
}

/// Microseconds since the process telemetry epoch (first telemetry use) —
/// the same clock span events timestamp with, so flight-recorder frames
/// line up with the trace.
pub fn now_us() -> u64 {
    epoch().elapsed().as_micros() as u64
}

/// Number of span events currently buffered.
pub fn buffered() -> usize {
    lock_unpoisoned(buffer()).len()
}

/// Splits a span name into its category (the segment before the first `.`,
/// or the whole name when there is no dot).
pub fn category_of(name: &'static str) -> &'static str {
    match name.find('.') {
        Some(i) => &name[..i],
        None => name,
    }
}

/// RAII guard: records a [`SpanEvent`] when dropped. Created by [`enter`]
/// or the [`span!`](crate::span!) macro. When telemetry is disabled the
/// guard holds nothing and drop is free.
#[derive(Debug)]
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

#[derive(Debug)]
struct ActiveSpan {
    name: &'static str,
    start: Instant,
    start_us: u64,
    depth: u32,
}

/// Starts a span named `name`. Near-free when telemetry is disabled.
pub fn enter(name: &'static str) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard { active: None };
    }
    let start = Instant::now();
    let start_us = start.duration_since(epoch()).as_micros() as u64;
    let depth = DEPTH.with(|d| {
        let v = d.get();
        d.set(v + 1);
        v
    });
    SpanGuard {
        active: Some(ActiveSpan {
            name,
            start,
            start_us,
            depth,
        }),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(span) = self.active.take() else {
            return;
        };
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        let dur_us = span.start.elapsed().as_micros() as u64;
        let event = SpanEvent {
            name: span.name,
            cat: category_of(span.name),
            lane: lane_id(),
            start_us: span.start_us,
            dur_us,
            depth: span.depth,
        };
        let mut buf = lock_unpoisoned(buffer());
        if buf.len() < MAX_SPAN_EVENTS {
            buf.push(event);
        } else {
            DROPPED.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Starts an RAII span: `let _g = span!("contract.pairwise");`.
///
/// The guard records the span when it goes out of scope; bind it to a
/// named variable (not `_`) so it lives to the end of the block.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::enter($name)
    };
}

/// Snapshot of all buffered span events (production order per lane).
pub fn snapshot() -> Vec<SpanEvent> {
    lock_unpoisoned(buffer()).clone()
}

/// Number of span events dropped due to the buffer bound.
pub fn dropped() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

/// Clears the span buffer and drop counter.
pub fn reset() {
    lock_unpoisoned(buffer()).clear();
    DROPPED.store(0, Ordering::Relaxed);
}

/// Aggregates spans by name: `(name, cat, count, total_us)`, largest total
/// first. The per-phase summary the bench harness renders.
pub fn aggregate(events: &[SpanEvent]) -> Vec<(&'static str, &'static str, u64, u64)> {
    let mut by_name: std::collections::BTreeMap<&'static str, (&'static str, u64, u64)> =
        std::collections::BTreeMap::new();
    for e in events {
        let entry = by_name.entry(e.name).or_insert((e.cat, 0, 0));
        entry.1 += 1;
        entry.2 += e.dur_us;
    }
    let mut rows: Vec<_> = by_name
        .into_iter()
        .map(|(n, (c, count, total))| (n, c, count, total))
        .collect();
    rows.sort_by(|a, b| b.3.cmp(&a.3).then(a.0.cmp(b.0)));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_and_nest() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        reset();
        {
            let _outer = crate::span!("test.outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = crate::span!("test.inner");
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
        let events = snapshot();
        let outer = events
            .iter()
            .find(|e| e.name == "test.outer")
            .expect("outer recorded");
        let inner = events
            .iter()
            .find(|e| e.name == "test.inner")
            .expect("inner recorded");
        assert_eq!(outer.cat, "test");
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.depth, 1);
        assert!(outer.dur_us >= inner.dur_us, "outer contains inner");
        assert!(inner.start_us >= outer.start_us);
        reset();
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _g = crate::test_guard();
        crate::set_enabled(false);
        let before = snapshot().len();
        {
            let _g = crate::span!("test.disabled");
        }
        assert_eq!(snapshot().len(), before);
        crate::set_enabled(true);
    }

    #[test]
    fn lanes_distinguish_threads() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        reset();
        let main_lane = lane_id();
        let other = std::thread::spawn(|| {
            let _g = crate::span!("test.worker");
            lane_id()
        })
        .join()
        .unwrap();
        assert_ne!(main_lane, other, "each thread gets its own lane");
        let events = snapshot();
        let worker = events.iter().find(|e| e.name == "test.worker").unwrap();
        assert_eq!(worker.lane, other);
        reset();
    }

    #[test]
    fn category_splits_on_first_dot() {
        assert_eq!(category_of("contract.pairwise"), "contract");
        assert_eq!(category_of("stage.dict.emit"), "stage");
        assert_eq!(category_of("plain"), "plain");
    }

    #[test]
    fn aggregate_sums_by_name() {
        let events = vec![
            SpanEvent {
                name: "a.x",
                cat: "a",
                lane: 0,
                start_us: 0,
                dur_us: 5,
                depth: 0,
            },
            SpanEvent {
                name: "a.x",
                cat: "a",
                lane: 1,
                start_us: 2,
                dur_us: 7,
                depth: 0,
            },
            SpanEvent {
                name: "b.y",
                cat: "b",
                lane: 0,
                start_us: 9,
                dur_us: 100,
                depth: 0,
            },
        ];
        let rows = aggregate(&events);
        assert_eq!(rows[0], ("b.y", "b", 1, 100));
        assert_eq!(rows[1], ("a.x", "a", 2, 12));
    }
}
