//! Exporters: Chrome-trace JSON (loadable in `chrome://tracing` or
//! `ui.perfetto.dev`) and flat JSON/TSV metrics dumps.
//!
//! ## Chrome-trace lane mapping
//!
//! * `pid 1` — "qcf host": one `tid` per worker thread (span lane ids from
//!   [`crate::span::lane_id`]), events are the recorded [`SpanEvent`]s.
//! * `pid 2` — "qcf streams": one `tid` per simulated GPU [`StreamLane`],
//!   events sourced from the stream's `KernelEvent` log with the virtual
//!   clock scaled to microseconds.
//!
//! All events use the `"X"` (complete) phase with `ts`/`dur` in
//! microseconds; `"M"` metadata events name the processes and threads.

use crate::metrics::Snapshot;
use crate::span::SpanEvent;
use std::fmt::Write as _;

/// One event on a simulated GPU stream's virtual timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct LaneEvent {
    /// Kernel or transfer name.
    pub name: String,
    /// Category rendered in the trace (e.g. `kernel`).
    pub cat: String,
    /// Start, microseconds of virtual stream time.
    pub start_us: u64,
    /// Duration in microseconds (clamped to ≥ 1 so zero-cost events stay
    /// visible).
    pub dur_us: u64,
    /// Bytes moved by the event (shown in the args pane).
    pub bytes: usize,
}

/// A named virtual lane: one simulated `Stream`'s event log.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StreamLane {
    /// Lane label, e.g. `A100 stream 0`.
    pub name: String,
    /// Events in submission order.
    pub events: Vec<LaneEvent>,
}

pub(crate) fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

pub(crate) fn json_num(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `{}` on f64 never prints exponents for typical metric ranges and
        // always round-trips; "inf"/"NaN" are not valid JSON, handled above.
        s
    } else if v.is_sign_positive() {
        "1e308".to_string()
    } else {
        "-1e308".to_string()
    }
}

const HOST_PID: u32 = 1;
const STREAM_PID: u32 = 2;

fn push_meta(out: &mut String, pid: u32, tid: u32, key: &str, name: &str) {
    let _ = write!(
        out,
        "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"{key}\",\"args\":{{\"name\":\""
    );
    escape_into(out, name);
    out.push_str("\"}}");
}

/// Renders spans plus stream lanes as a Chrome-trace JSON document.
pub fn chrome_trace(spans: &[SpanEvent], lanes: &[StreamLane]) -> String {
    let mut out = String::with_capacity(256 + spans.len() * 96 + lanes.len() * 128);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if !std::mem::take(&mut first) {
            out.push(',');
        }
    };

    sep(&mut out);
    push_meta(&mut out, HOST_PID, 0, "process_name", "qcf host");
    let mut host_lanes: Vec<u32> = spans.iter().map(|e| e.lane).collect();
    host_lanes.sort_unstable();
    host_lanes.dedup();
    for &lane in &host_lanes {
        sep(&mut out);
        push_meta(
            &mut out,
            HOST_PID,
            lane,
            "thread_name",
            &format!("worker {lane}"),
        );
    }
    for e in spans {
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"ph\":\"X\",\"pid\":{},\"tid\":{},\"ts\":{},\"dur\":{},\"cat\":\"{}\",\"name\":\"",
            HOST_PID,
            e.lane,
            e.start_us,
            e.dur_us.max(1),
            e.cat
        );
        escape_into(&mut out, e.name);
        let _ = write!(&mut out, "\",\"args\":{{\"depth\":{}}}}}", e.depth);
    }

    if !lanes.is_empty() {
        sep(&mut out);
        push_meta(&mut out, STREAM_PID, 0, "process_name", "qcf streams");
    }
    for (tid, lane) in lanes.iter().enumerate() {
        let tid = tid as u32;
        sep(&mut out);
        push_meta(&mut out, STREAM_PID, tid, "thread_name", &lane.name);
        for e in &lane.events {
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"ph\":\"X\",\"pid\":{},\"tid\":{},\"ts\":{},\"dur\":{},\"cat\":\"",
                STREAM_PID,
                tid,
                e.start_us,
                e.dur_us.max(1)
            );
            escape_into(&mut out, &e.cat);
            out.push_str("\",\"name\":\"");
            escape_into(&mut out, &e.name);
            let _ = write!(&mut out, "\",\"args\":{{\"bytes\":{}}}}}", e.bytes);
        }
    }

    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// Renders a registry snapshot as a flat JSON object:
/// `{"counters":{...},"gauges":{name:{"value":v,"high_water":h}},
///   "float_gauges":{...},"histograms":{name:{"count":..,"sum":..,
///   "mean":..,"buckets":[[bound,count],...]}}}`.
pub fn metrics_json(snap: &Snapshot) -> String {
    let mut out = String::from("{");
    out.push_str("\"counters\":{");
    for (i, (k, v)) in snap.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_into(&mut out, k);
        let _ = write!(&mut out, "\":{v}");
    }
    out.push_str("},\"gauges\":{");
    for (i, (k, (v, hw))) in snap.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_into(&mut out, k);
        let _ = write!(&mut out, "\":{{\"value\":{v},\"high_water\":{hw}}}");
    }
    out.push_str("},\"float_gauges\":{");
    for (i, (k, v)) in snap.float_gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_into(&mut out, k);
        let _ = write!(&mut out, "\":{}", json_num(*v));
    }
    out.push_str("},\"histograms\":{");
    for (i, (k, h)) in snap.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_into(&mut out, k);
        let _ = write!(
            &mut out,
            "\":{{\"count\":{},\"dropped\":{},\"sum\":{},\"mean\":{},\"buckets\":[",
            h.count,
            h.dropped,
            json_num(h.sum),
            json_num(h.mean)
        );
        for (j, (bound, count)) in h.buckets.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let bound = if bound.is_finite() {
                json_num(*bound)
            } else {
                "1e308".to_string()
            };
            let _ = write!(&mut out, "[{bound},{count}]");
        }
        out.push_str("]}");
    }
    out.push_str("}}");
    out
}

/// Renders a registry snapshot as TSV: `kind\tname\tvalue\textra` rows,
/// name-sorted within each kind. Gauges put the high-water mark in
/// `extra`; histograms dump `count` as value and `sum=..;mean=..` as
/// extra.
pub fn metrics_tsv(snap: &Snapshot) -> String {
    let mut out = String::from("kind\tname\tvalue\textra\n");
    for (k, v) in &snap.counters {
        let _ = writeln!(&mut out, "counter\t{k}\t{v}\t");
    }
    for (k, (v, hw)) in &snap.gauges {
        let _ = writeln!(&mut out, "gauge\t{k}\t{v}\thigh_water={hw}");
    }
    for (k, v) in &snap.float_gauges {
        let _ = writeln!(&mut out, "float_gauge\t{k}\t{v}\t");
    }
    for (k, h) in &snap.histograms {
        let _ = writeln!(
            &mut out,
            "histogram\t{k}\t{}\tsum={};mean={};dropped={}",
            h.count, h.sum, h.mean, h.dropped
        );
    }
    out
}

/// Maps a registry metric name onto the Prometheus charset: `qcf_` prefix,
/// every byte outside `[a-zA-Z0-9_:]` replaced with `_`.
pub fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str("qcf_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

fn prom_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else if v.is_nan() {
        "NaN".to_string()
    } else if v.is_sign_positive() {
        "+Inf".to_string()
    } else {
        "-Inf".to_string()
    }
}

/// Renders a registry snapshot as Prometheus text exposition (version
/// 0.0.4): counters and gauges as single samples (gauge high-water marks
/// as a separate `<name>_high_water` gauge), histograms as cumulative
/// `<name>_bucket{le="..."}` series closed by `le="+Inf"`, plus `_sum` and
/// `_count`. Metric names are mapped via [`prometheus_name`]. The output
/// round-trips through [`validate_prometheus`] — the ci gate for
/// `qcfz top`'s live endpoint format.
pub fn prometheus_text(snap: &Snapshot) -> String {
    let mut out = String::with_capacity(1024);
    for (name, value) in &snap.counters {
        let p = prometheus_name(name);
        let _ = writeln!(out, "# TYPE {p} counter");
        let _ = writeln!(out, "{p} {value}");
    }
    for (name, (value, high)) in &snap.gauges {
        let p = prometheus_name(name);
        let _ = writeln!(out, "# TYPE {p} gauge");
        let _ = writeln!(out, "{p} {value}");
        let _ = writeln!(out, "# TYPE {p}_high_water gauge");
        let _ = writeln!(out, "{p}_high_water {high}");
    }
    for (name, value) in &snap.float_gauges {
        let p = prometheus_name(name);
        let _ = writeln!(out, "# TYPE {p} gauge");
        let _ = writeln!(out, "{p} {}", prom_num(*value));
    }
    for (name, h) in &snap.histograms {
        let p = prometheus_name(name);
        let _ = writeln!(out, "# TYPE {p} histogram");
        let mut cumulative = 0u64;
        for (bound, count) in &h.buckets {
            cumulative += count;
            let _ = writeln!(
                out,
                "{p}_bucket{{le=\"{}\"}} {cumulative}",
                prom_num(*bound)
            );
        }
        let _ = writeln!(out, "{p}_sum {}", prom_num(h.sum));
        // `_count` from the bucket sum, not `h.count`: a snapshot racing a
        // concurrent observe can skew the two by one, and the exposition
        // must stay self-consistent (`+Inf` bucket == `_count`).
        let _ = writeln!(out, "{p}_count {cumulative}");
    }
    out
}

/// What [`validate_prometheus`] counted while parsing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PromStats {
    /// Sample lines parsed.
    pub samples: usize,
    /// `# TYPE` declarations seen.
    pub types: usize,
    /// Histograms fully checked (buckets cumulative, `+Inf` == `_count`).
    pub histograms: usize,
}

/// Hand-rolled Prometheus text-format parser/validator (this workspace
/// takes no dependencies). Checks, line by line: comment lines are `# TYPE
/// <name> <counter|gauge|histogram|summary|untyped>` or `# HELP …`; sample
/// lines are `<name>[{labels}] <value>` with a legal metric name, balanced
/// quoted labels, and a parsable value. For every declared histogram it
/// additionally requires at least one `_bucket` sample with an `le` label,
/// cumulative bucket counts that never decrease, a closing `le="+Inf"`
/// bucket, and agreement between that bucket and `_count`.
/// Per-histogram validation state: buckets seen in order, the `+Inf`
/// bucket's count, and the `_count` sample.
type HistState = (Vec<u64>, Option<u64>, Option<u64>);

pub fn validate_prometheus(text: &str) -> Result<PromStats, String> {
    let mut stats = PromStats::default();
    let mut declared: Vec<(String, String)> = Vec::new(); // (name, type)
    let mut hist_state: std::collections::BTreeMap<String, HistState> =
        std::collections::BTreeMap::new();

    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        let err = |msg: &str| format!("line {}: {msg}: {line:?}", lineno + 1);
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim_start();
            if let Some(decl) = rest.strip_prefix("TYPE ") {
                let mut parts = decl.split_whitespace();
                let name = parts.next().ok_or_else(|| err("TYPE without name"))?;
                let ty = parts.next().ok_or_else(|| err("TYPE without type"))?;
                if parts.next().is_some() {
                    return Err(err("trailing tokens after TYPE"));
                }
                if !matches!(
                    ty,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ) {
                    return Err(err("unknown metric type"));
                }
                validate_prom_name(name).map_err(|m| err(&m))?;
                declared.push((name.to_string(), ty.to_string()));
                if ty == "histogram" {
                    hist_state.insert(name.to_string(), (Vec::new(), None, None));
                }
                stats.types += 1;
                continue;
            }
            if rest.starts_with("HELP ") {
                continue;
            }
            continue; // bare comment
        }

        // Sample line: name[{labels}] value [timestamp]
        let (name, after_name) = split_prom_name(line).map_err(|m| err(&m))?;
        let (labels, after_labels) = if after_name.starts_with('{') {
            parse_prom_labels(after_name).map_err(|m| err(&m))?
        } else {
            (Vec::new(), after_name)
        };
        let mut tokens = after_labels.split_whitespace();
        let value_tok = tokens.next().ok_or_else(|| err("sample without value"))?;
        let value = parse_prom_value(value_tok).map_err(|m| err(&m))?;
        if let Some(ts) = tokens.next() {
            if ts.parse::<i64>().is_err() {
                return Err(err("bad timestamp"));
            }
        }
        if tokens.next().is_some() {
            return Err(err("trailing tokens after sample"));
        }
        stats.samples += 1;

        // Histogram series bookkeeping keyed by the declared base name.
        if let Some(base) = name.strip_suffix("_bucket") {
            if let Some((buckets, inf, _)) = hist_state.get_mut(base) {
                let le = labels
                    .iter()
                    .find(|(k, _)| k == "le")
                    .map(|(_, v)| v.clone())
                    .ok_or_else(|| err("histogram bucket without le label"))?;
                if !value.is_finite() || value < 0.0 || value.fract() != 0.0 {
                    return Err(err("bucket count must be a non-negative integer"));
                }
                let count = value as u64;
                if let Some(&prev) = buckets.last() {
                    if count < prev {
                        return Err(err("bucket counts must be cumulative"));
                    }
                }
                buckets.push(count);
                if le == "+Inf" {
                    *inf = Some(count);
                }
            }
        } else if let Some(base) = name.strip_suffix("_count") {
            if let Some((_, _, count)) = hist_state.get_mut(base) {
                *count = Some(value as u64);
            }
        }
    }

    for (name, (buckets, inf, count)) in &hist_state {
        if buckets.is_empty() {
            return Err(format!("histogram {name} has no _bucket samples"));
        }
        let inf = inf.ok_or_else(|| format!("histogram {name} missing le=\"+Inf\" bucket"))?;
        let count = count.ok_or_else(|| format!("histogram {name} missing _count"))?;
        if inf != count {
            return Err(format!(
                "histogram {name}: +Inf bucket {inf} != _count {count}"
            ));
        }
        stats.histograms += 1;
    }
    Ok(stats)
}

fn validate_prom_name(name: &str) -> Result<(), String> {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return Err(format!("bad metric name start in {name:?}")),
    }
    if chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':') {
        Ok(())
    } else {
        Err(format!("bad metric name char in {name:?}"))
    }
}

fn split_prom_name(line: &str) -> Result<(&str, &str), String> {
    let end = line
        .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_' || c == ':'))
        .unwrap_or(line.len());
    let (name, rest) = line.split_at(end);
    validate_prom_name(name)?;
    Ok((name, rest))
}

#[allow(clippy::type_complexity)]
fn parse_prom_labels(s: &str) -> Result<(Vec<(String, String)>, &str), String> {
    let mut labels = Vec::new();
    let bytes = s.as_bytes();
    let mut pos = 1; // '{'
    loop {
        while pos < bytes.len() && bytes[pos] == b' ' {
            pos += 1;
        }
        if pos < bytes.len() && bytes[pos] == b'}' {
            return Ok((labels, &s[pos + 1..]));
        }
        let key_start = pos;
        while pos < bytes.len() && bytes[pos] != b'=' {
            pos += 1;
        }
        if pos >= bytes.len() {
            return Err("unterminated label".into());
        }
        let key = s[key_start..pos].trim().to_string();
        validate_prom_name(&key)?;
        pos += 1; // '='
        if pos >= bytes.len() || bytes[pos] != b'"' {
            return Err("label value must be quoted".into());
        }
        pos += 1;
        let mut value = String::new();
        loop {
            match bytes.get(pos) {
                Some(b'"') => {
                    pos += 1;
                    break;
                }
                Some(b'\\') => {
                    match bytes.get(pos + 1) {
                        Some(b'"') => value.push('"'),
                        Some(b'\\') => value.push('\\'),
                        Some(b'n') => value.push('\n'),
                        _ => return Err("bad escape in label value".into()),
                    }
                    pos += 2;
                }
                Some(&c) => {
                    value.push(c as char);
                    pos += 1;
                }
                None => return Err("unterminated label value".into()),
            }
        }
        labels.push((key, value));
        match bytes.get(pos) {
            Some(b',') => pos += 1,
            Some(b'}') => {
                return Ok((labels, &s[pos + 1..]));
            }
            _ => return Err("expected ',' or '}' after label".into()),
        }
    }
}

fn parse_prom_value(tok: &str) -> Result<f64, String> {
    match tok {
        "+Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        "NaN" => Ok(f64::NAN),
        _ => tok
            .parse::<f64>()
            .map_err(|_| format!("bad sample value {tok:?}")),
    }
}

/// Quantile value as a JSON token: `NaN` (empty histogram) becomes `null`
/// rather than a fake magnitude.
fn json_quantile(v: f64) -> String {
    if v.is_nan() {
        "null".to_string()
    } else {
        json_num(v)
    }
}

/// Schema identifier stamped on the first line of every NDJSON feed.
/// Consumers version-detect on the `qcf.samples.` prefix and reject
/// major versions they do not understand.
pub const NDJSON_SCHEMA: &str = "qcf.samples.v1";

/// Renders time-series samples as streaming NDJSON. The first line is a
/// schema header — `{"schema":"qcf.samples.v1","samples":N}` — so a
/// downstream scraper can version-detect the feed before parsing data
/// lines. Every following line is one JSON object, ordered oldest
/// first, and compact — timestamp, every counter/gauge/float-gauge
/// value, and per-histogram `count`/`mean` plus the p50/p95/p99 sketch —
/// so a feed consumer (or `qcfz top`) gets rates and percentiles without
/// re-shipping full bucket arrays every tick.
pub fn ndjson_samples(samples: &[crate::timeseries::Sample]) -> String {
    let mut out = String::with_capacity(samples.len() * 256 + 64);
    let _ = writeln!(
        out,
        "{{\"schema\":\"{NDJSON_SCHEMA}\",\"samples\":{}}}",
        samples.len()
    );
    for s in samples {
        let _ = write!(out, "{{\"t_us\":{},\"counters\":{{", s.t_us);
        for (i, (k, v)) in s.metrics.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            escape_into(&mut out, k);
            let _ = write!(out, "\":{v}");
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, (v, _))) in s.metrics.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            escape_into(&mut out, k);
            let _ = write!(out, "\":{v}");
        }
        out.push_str("},\"float_gauges\":{");
        for (i, (k, v)) in s.metrics.float_gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            escape_into(&mut out, k);
            let _ = write!(out, "\":{}", json_num(*v));
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in s.metrics.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            escape_into(&mut out, k);
            let _ = write!(
                out,
                "\":{{\"count\":{},\"mean\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
                h.count,
                json_num(h.mean),
                json_quantile(h.quantile(0.5)),
                json_quantile(h.quantile(0.95)),
                json_quantile(h.quantile(0.99))
            );
        }
        out.push_str("}}\n");
    }
    out
}

/// What [`validate_ndjson`] learned about a feed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NdjsonStats {
    /// The schema string from the header line.
    pub schema: String,
    /// Data lines following the header.
    pub samples: usize,
}

/// Validates an NDJSON sample feed: the first line must be a schema
/// header whose `schema` value carries the `qcf.samples.` family prefix
/// (version detection — a `v2` feed is reported back to the caller, not
/// silently mis-parsed), and every following line must be one
/// well-formed JSON object with a `t_us` field.
pub fn validate_ndjson(feed: &str) -> Result<NdjsonStats, String> {
    let mut lines = feed.lines();
    let header = lines.next().ok_or("empty feed: no schema line")?;
    validate_json(header).map_err(|e| format!("schema line: {e}"))?;
    let schema = header
        .split("\"schema\"")
        .nth(1)
        .and_then(|rest| rest.split('"').nth(1))
        .ok_or("first line carries no \"schema\" key")?
        .to_string();
    if !schema.starts_with("qcf.samples.") {
        return Err(format!("unknown schema family {schema:?}"));
    }
    let mut samples = 0usize;
    for (i, line) in lines.enumerate() {
        validate_json(line).map_err(|e| format!("data line {}: {e}", i + 1))?;
        if !line.contains("\"t_us\"") {
            return Err(format!("data line {} has no t_us field", i + 1));
        }
        samples += 1;
    }
    Ok(NdjsonStats { schema, samples })
}

/// Minimal structural JSON validator (no std JSON parser in this
/// dependency-free workspace): checks the document parses as one JSON
/// value with balanced structure and valid tokens. Used by tests to
/// assert the exporters emit well-formed output.
pub fn validate_json(s: &str) -> Result<(), String> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    if *pos >= b.len() {
        return Err("unexpected end of input".into());
    }
    match b[*pos] {
        b'{' => parse_object(b, pos),
        b'[' => parse_array(b, pos),
        b'"' => parse_string(b, pos),
        b't' => parse_lit(b, pos, "true"),
        b'f' => parse_lit(b, pos, "false"),
        b'n' => parse_lit(b, pos, "null"),
        b'-' | b'0'..=b'9' => parse_number(b, pos),
        c => Err(format!("unexpected byte {c:#x} at {pos}", pos = *pos)),
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == b'}' {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        parse_string(b, pos)?;
        skip_ws(b, pos);
        if *pos >= b.len() || b[*pos] != b':' {
            return Err(format!("expected ':' at byte {}", *pos));
        }
        *pos += 1;
        skip_ws(b, pos);
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '['
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == b']' {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    if *pos >= b.len() || b[*pos] != b'"' {
        return Err(format!("expected string at byte {}", *pos));
    }
    *pos += 1;
    while *pos < b.len() {
        match b[*pos] {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        if *pos + 4 >= b.len()
                            || !b[*pos + 1..*pos + 5].iter().all(u8::is_ascii_hexdigit)
                        {
                            return Err(format!("bad \\u escape at byte {}", *pos));
                        }
                        *pos += 5;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
            }
            c if c < 0x20 => return Err(format!("raw control byte in string at {}", *pos)),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".into())
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b[*pos] == b'-' {
        *pos += 1;
    }
    while *pos < b.len() && b[*pos].is_ascii_digit() {
        *pos += 1;
    }
    if *pos < b.len() && b[*pos] == b'.' {
        *pos += 1;
        while *pos < b.len() && b[*pos].is_ascii_digit() {
            *pos += 1;
        }
    }
    if *pos < b.len() && matches!(b[*pos], b'e' | b'E') {
        *pos += 1;
        if *pos < b.len() && matches!(b[*pos], b'+' | b'-') {
            *pos += 1;
        }
        while *pos < b.len() && b[*pos].is_ascii_digit() {
            *pos += 1;
        }
    }
    if *pos == start || (*pos == start + 1 && b[start] == b'-') {
        return Err(format!("bad number at byte {start}"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{HistogramSnapshot, Snapshot};

    fn sample_snapshot() -> Snapshot {
        let mut snap = Snapshot::default();
        snap.counters.insert("gpu.kernel.launches".into(), 42);
        snap.gauges
            .insert("contract.live_bytes".into(), (0, 1 << 20));
        snap.float_gauges.insert("compressor.qoz.cr".into(), 17.25);
        snap.histograms.insert(
            "stage.dedup.ratio".into(),
            HistogramSnapshot {
                count: 3,
                dropped: 1,
                sum: 1.5,
                mean: 0.5,
                buckets: vec![(0.5, 2), (1.0, 1), (f64::INFINITY, 0)],
            },
        );
        snap
    }

    #[test]
    fn chrome_trace_is_valid_json_with_lanes() {
        let spans = vec![
            SpanEvent {
                name: "contract.network",
                cat: "contract",
                lane: 0,
                start_us: 0,
                dur_us: 100,
                depth: 0,
            },
            SpanEvent {
                name: "stage.dedup",
                cat: "stage",
                lane: 1,
                start_us: 10,
                dur_us: 20,
                depth: 1,
            },
        ];
        let lanes = vec![StreamLane {
            name: "A100 stream 0".into(),
            events: vec![LaneEvent {
                name: "gemm".into(),
                cat: "kernel".into(),
                start_us: 0,
                dur_us: 33,
                bytes: 4096,
            }],
        }];
        let doc = chrome_trace(&spans, &lanes);
        validate_json(&doc).expect("chrome trace must be valid JSON");
        assert!(doc.contains("\"traceEvents\""));
        assert!(doc.contains("contract.network"));
        assert!(doc.contains("A100 stream 0"));
        assert!(doc.contains("\"pid\":2"));
    }

    #[test]
    fn chrome_trace_empty_inputs() {
        let doc = chrome_trace(&[], &[]);
        validate_json(&doc).expect("empty trace still valid");
    }

    #[test]
    fn metrics_json_is_valid() {
        let doc = metrics_json(&sample_snapshot());
        validate_json(&doc).expect("metrics JSON must be valid");
        assert!(doc.contains("gpu.kernel.launches"));
        assert!(doc.contains("\"high_water\":1048576"));
        assert!(doc.contains("17.25"));
    }

    #[test]
    fn metrics_tsv_has_header_and_rows() {
        let tsv = metrics_tsv(&sample_snapshot());
        let lines: Vec<&str> = tsv.lines().collect();
        assert_eq!(lines[0], "kind\tname\tvalue\textra");
        assert_eq!(lines.len(), 5);
        assert!(lines
            .iter()
            .any(|l| l.starts_with("counter\tgpu.kernel.launches\t42")));
        assert!(lines.iter().any(|l| l.contains("high_water=1048576")));
        // every row has exactly 4 tab-separated fields
        for l in &lines {
            assert_eq!(l.split('\t').count(), 4, "row {l:?}");
        }
    }

    #[test]
    fn escaping_handles_quotes_and_controls() {
        let spans = vec![SpanEvent {
            name: "weird",
            cat: "weird",
            lane: 0,
            start_us: 0,
            dur_us: 1,
            depth: 0,
        }];
        let lanes = vec![StreamLane {
            name: "na\"me\\with\nstuff".into(),
            events: vec![],
        }];
        let doc = chrome_trace(&spans, &lanes);
        validate_json(&doc).expect("escaped trace valid");
    }

    #[test]
    fn prometheus_text_is_valid_and_complete() {
        let text = prometheus_text(&sample_snapshot());
        let stats = validate_prometheus(&text).expect("exposition must validate");
        // counter + gauge + gauge high-water + float gauge + histogram
        assert_eq!(stats.types, 5, "{text}");
        assert_eq!(stats.histograms, 1);
        assert!(text.contains("# TYPE qcf_gpu_kernel_launches counter"));
        assert!(text.contains("qcf_gpu_kernel_launches 42"));
        assert!(text.contains("qcf_contract_live_bytes_high_water 1048576"));
        assert!(text.contains("qcf_compressor_qoz_cr 17.25"));
        // Histogram buckets are cumulative and closed by +Inf == _count.
        assert!(text.contains("qcf_stage_dedup_ratio_bucket{le=\"0.5\"} 2"));
        assert!(text.contains("qcf_stage_dedup_ratio_bucket{le=\"1\"} 3"));
        assert!(text.contains("qcf_stage_dedup_ratio_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("qcf_stage_dedup_ratio_count 3"));
    }

    #[test]
    fn prometheus_name_sanitizes() {
        assert_eq!(prometheus_name("state.cache.hit"), "qcf_state_cache_hit");
        assert_eq!(
            prometheus_name("compressor.QCF-ratio.cr"),
            "qcf_compressor_QCF_ratio_cr"
        );
    }

    #[test]
    fn prometheus_validator_rejects_malformed() {
        assert!(validate_prometheus("# TYPE x bogus\n").is_err());
        assert!(validate_prometheus("9bad_name 1\n").is_err());
        assert!(validate_prometheus("x \n").is_err(), "missing value");
        assert!(validate_prometheus("x notanumber\n").is_err());
        assert!(
            validate_prometheus("x{le=\"1\" 1\n").is_err(),
            "unclosed labels"
        );
        // Histogram with decreasing buckets.
        let bad = "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n";
        assert!(validate_prometheus(bad).is_err());
        // Histogram whose +Inf disagrees with _count.
        let bad = "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 4\n";
        assert!(validate_prometheus(bad).is_err());
        // Histogram with no +Inf bucket.
        let bad = "# TYPE h histogram\nh_bucket{le=\"1\"} 3\nh_sum 1\nh_count 3\n";
        assert!(validate_prometheus(bad).is_err());
        // A correct tiny document passes.
        let ok = "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 3\nh_sum 5\nh_count 3\n";
        let stats = validate_prometheus(ok).unwrap();
        assert_eq!(stats.histograms, 1);
        assert_eq!(stats.samples, 4);
    }

    #[test]
    fn ndjson_feed_lines_are_each_valid_json() {
        let samples = vec![
            crate::timeseries::Sample {
                t_us: 10,
                metrics: sample_snapshot(),
            },
            crate::timeseries::Sample {
                t_us: 20,
                metrics: sample_snapshot(),
            },
        ];
        let feed = ndjson_samples(&samples);
        let lines: Vec<&str> = feed.lines().collect();
        assert_eq!(lines.len(), 3, "schema header + one line per sample");
        for line in &lines {
            validate_json(line).expect("each NDJSON line must be valid JSON");
        }
        assert!(lines[0].contains("\"schema\":\"qcf.samples.v1\""));
        assert!(lines[0].contains("\"samples\":2"));
        assert!(lines[1].contains("\"t_us\":10"));
        assert!(lines[2].contains("\"t_us\":20"));
        assert!(lines[1].contains("\"p95\":"));
        assert!(lines[1].contains("gpu.kernel.launches"));
    }

    #[test]
    fn ndjson_validator_version_detects_the_feed() {
        let samples = vec![crate::timeseries::Sample {
            t_us: 10,
            metrics: sample_snapshot(),
        }];
        let stats = validate_ndjson(&ndjson_samples(&samples)).unwrap();
        assert_eq!(stats.schema, NDJSON_SCHEMA);
        assert_eq!(stats.samples, 1);
        // An empty run still has a detectable schema.
        let stats = validate_ndjson(&ndjson_samples(&[])).unwrap();
        assert_eq!(stats.samples, 0);
        // Future versions in the family are surfaced, not mis-parsed.
        let v2 = "{\"schema\":\"qcf.samples.v2\",\"samples\":0}\n";
        assert_eq!(validate_ndjson(v2).unwrap().schema, "qcf.samples.v2");
        // Foreign or missing schemas are refused.
        assert!(validate_ndjson("{\"schema\":\"other.v1\"}\n").is_err());
        assert!(validate_ndjson("{\"t_us\":1}\n").is_err());
        assert!(validate_ndjson("").is_err());
        // A corrupt data line is pinpointed.
        let bad = format!("{}{{broken\n", ndjson_samples(&samples));
        assert!(validate_ndjson(&bad).unwrap_err().contains("data line 2"));
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(validate_json("{").is_err());
        assert!(validate_json("{\"a\":}").is_err());
        assert!(validate_json("[1,2,]").is_err());
        assert!(validate_json("{\"a\":1} extra").is_err());
        assert!(validate_json("{\"a\":1}").is_ok());
        assert!(validate_json("[1,-2.5e3,\"x\",true,null]").is_ok());
    }
}
