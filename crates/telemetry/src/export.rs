//! Exporters: Chrome-trace JSON (loadable in `chrome://tracing` or
//! `ui.perfetto.dev`) and flat JSON/TSV metrics dumps.
//!
//! ## Chrome-trace lane mapping
//!
//! * `pid 1` — "qcf host": one `tid` per worker thread (span lane ids from
//!   [`crate::span::lane_id`]), events are the recorded [`SpanEvent`]s.
//! * `pid 2` — "qcf streams": one `tid` per simulated GPU [`StreamLane`],
//!   events sourced from the stream's `KernelEvent` log with the virtual
//!   clock scaled to microseconds.
//!
//! All events use the `"X"` (complete) phase with `ts`/`dur` in
//! microseconds; `"M"` metadata events name the processes and threads.

use crate::metrics::Snapshot;
use crate::span::SpanEvent;
use std::fmt::Write as _;

/// One event on a simulated GPU stream's virtual timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct LaneEvent {
    /// Kernel or transfer name.
    pub name: String,
    /// Category rendered in the trace (e.g. `kernel`).
    pub cat: String,
    /// Start, microseconds of virtual stream time.
    pub start_us: u64,
    /// Duration in microseconds (clamped to ≥ 1 so zero-cost events stay
    /// visible).
    pub dur_us: u64,
    /// Bytes moved by the event (shown in the args pane).
    pub bytes: usize,
}

/// A named virtual lane: one simulated `Stream`'s event log.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StreamLane {
    /// Lane label, e.g. `A100 stream 0`.
    pub name: String,
    /// Events in submission order.
    pub events: Vec<LaneEvent>,
}

pub(crate) fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

pub(crate) fn json_num(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `{}` on f64 never prints exponents for typical metric ranges and
        // always round-trips; "inf"/"NaN" are not valid JSON, handled above.
        s
    } else if v.is_sign_positive() {
        "1e308".to_string()
    } else {
        "-1e308".to_string()
    }
}

const HOST_PID: u32 = 1;
const STREAM_PID: u32 = 2;

fn push_meta(out: &mut String, pid: u32, tid: u32, key: &str, name: &str) {
    let _ = write!(
        out,
        "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"{key}\",\"args\":{{\"name\":\""
    );
    escape_into(out, name);
    out.push_str("\"}}");
}

/// Renders spans plus stream lanes as a Chrome-trace JSON document.
pub fn chrome_trace(spans: &[SpanEvent], lanes: &[StreamLane]) -> String {
    let mut out = String::with_capacity(256 + spans.len() * 96 + lanes.len() * 128);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if !std::mem::take(&mut first) {
            out.push(',');
        }
    };

    sep(&mut out);
    push_meta(&mut out, HOST_PID, 0, "process_name", "qcf host");
    let mut host_lanes: Vec<u32> = spans.iter().map(|e| e.lane).collect();
    host_lanes.sort_unstable();
    host_lanes.dedup();
    for &lane in &host_lanes {
        sep(&mut out);
        push_meta(
            &mut out,
            HOST_PID,
            lane,
            "thread_name",
            &format!("worker {lane}"),
        );
    }
    for e in spans {
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"ph\":\"X\",\"pid\":{},\"tid\":{},\"ts\":{},\"dur\":{},\"cat\":\"{}\",\"name\":\"",
            HOST_PID,
            e.lane,
            e.start_us,
            e.dur_us.max(1),
            e.cat
        );
        escape_into(&mut out, e.name);
        let _ = write!(&mut out, "\",\"args\":{{\"depth\":{}}}}}", e.depth);
    }

    if !lanes.is_empty() {
        sep(&mut out);
        push_meta(&mut out, STREAM_PID, 0, "process_name", "qcf streams");
    }
    for (tid, lane) in lanes.iter().enumerate() {
        let tid = tid as u32;
        sep(&mut out);
        push_meta(&mut out, STREAM_PID, tid, "thread_name", &lane.name);
        for e in &lane.events {
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"ph\":\"X\",\"pid\":{},\"tid\":{},\"ts\":{},\"dur\":{},\"cat\":\"",
                STREAM_PID,
                tid,
                e.start_us,
                e.dur_us.max(1)
            );
            escape_into(&mut out, &e.cat);
            out.push_str("\",\"name\":\"");
            escape_into(&mut out, &e.name);
            let _ = write!(&mut out, "\",\"args\":{{\"bytes\":{}}}}}", e.bytes);
        }
    }

    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// Renders a registry snapshot as a flat JSON object:
/// `{"counters":{...},"gauges":{name:{"value":v,"high_water":h}},
///   "float_gauges":{...},"histograms":{name:{"count":..,"sum":..,
///   "mean":..,"buckets":[[bound,count],...]}}}`.
pub fn metrics_json(snap: &Snapshot) -> String {
    let mut out = String::from("{");
    out.push_str("\"counters\":{");
    for (i, (k, v)) in snap.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_into(&mut out, k);
        let _ = write!(&mut out, "\":{v}");
    }
    out.push_str("},\"gauges\":{");
    for (i, (k, (v, hw))) in snap.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_into(&mut out, k);
        let _ = write!(&mut out, "\":{{\"value\":{v},\"high_water\":{hw}}}");
    }
    out.push_str("},\"float_gauges\":{");
    for (i, (k, v)) in snap.float_gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_into(&mut out, k);
        let _ = write!(&mut out, "\":{}", json_num(*v));
    }
    out.push_str("},\"histograms\":{");
    for (i, (k, h)) in snap.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_into(&mut out, k);
        let _ = write!(
            &mut out,
            "\":{{\"count\":{},\"dropped\":{},\"sum\":{},\"mean\":{},\"buckets\":[",
            h.count,
            h.dropped,
            json_num(h.sum),
            json_num(h.mean)
        );
        for (j, (bound, count)) in h.buckets.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let bound = if bound.is_finite() {
                json_num(*bound)
            } else {
                "1e308".to_string()
            };
            let _ = write!(&mut out, "[{bound},{count}]");
        }
        out.push_str("]}");
    }
    out.push_str("}}");
    out
}

/// Renders a registry snapshot as TSV: `kind\tname\tvalue\textra` rows,
/// name-sorted within each kind. Gauges put the high-water mark in
/// `extra`; histograms dump `count` as value and `sum=..;mean=..` as
/// extra.
pub fn metrics_tsv(snap: &Snapshot) -> String {
    let mut out = String::from("kind\tname\tvalue\textra\n");
    for (k, v) in &snap.counters {
        let _ = writeln!(&mut out, "counter\t{k}\t{v}\t");
    }
    for (k, (v, hw)) in &snap.gauges {
        let _ = writeln!(&mut out, "gauge\t{k}\t{v}\thigh_water={hw}");
    }
    for (k, v) in &snap.float_gauges {
        let _ = writeln!(&mut out, "float_gauge\t{k}\t{v}\t");
    }
    for (k, h) in &snap.histograms {
        let _ = writeln!(
            &mut out,
            "histogram\t{k}\t{}\tsum={};mean={};dropped={}",
            h.count, h.sum, h.mean, h.dropped
        );
    }
    out
}

/// Minimal structural JSON validator (no std JSON parser in this
/// dependency-free workspace): checks the document parses as one JSON
/// value with balanced structure and valid tokens. Used by tests to
/// assert the exporters emit well-formed output.
pub fn validate_json(s: &str) -> Result<(), String> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    if *pos >= b.len() {
        return Err("unexpected end of input".into());
    }
    match b[*pos] {
        b'{' => parse_object(b, pos),
        b'[' => parse_array(b, pos),
        b'"' => parse_string(b, pos),
        b't' => parse_lit(b, pos, "true"),
        b'f' => parse_lit(b, pos, "false"),
        b'n' => parse_lit(b, pos, "null"),
        b'-' | b'0'..=b'9' => parse_number(b, pos),
        c => Err(format!("unexpected byte {c:#x} at {pos}", pos = *pos)),
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == b'}' {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        parse_string(b, pos)?;
        skip_ws(b, pos);
        if *pos >= b.len() || b[*pos] != b':' {
            return Err(format!("expected ':' at byte {}", *pos));
        }
        *pos += 1;
        skip_ws(b, pos);
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '['
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == b']' {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    if *pos >= b.len() || b[*pos] != b'"' {
        return Err(format!("expected string at byte {}", *pos));
    }
    *pos += 1;
    while *pos < b.len() {
        match b[*pos] {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        if *pos + 4 >= b.len()
                            || !b[*pos + 1..*pos + 5].iter().all(u8::is_ascii_hexdigit)
                        {
                            return Err(format!("bad \\u escape at byte {}", *pos));
                        }
                        *pos += 5;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
            }
            c if c < 0x20 => return Err(format!("raw control byte in string at {}", *pos)),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".into())
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b[*pos] == b'-' {
        *pos += 1;
    }
    while *pos < b.len() && b[*pos].is_ascii_digit() {
        *pos += 1;
    }
    if *pos < b.len() && b[*pos] == b'.' {
        *pos += 1;
        while *pos < b.len() && b[*pos].is_ascii_digit() {
            *pos += 1;
        }
    }
    if *pos < b.len() && matches!(b[*pos], b'e' | b'E') {
        *pos += 1;
        if *pos < b.len() && matches!(b[*pos], b'+' | b'-') {
            *pos += 1;
        }
        while *pos < b.len() && b[*pos].is_ascii_digit() {
            *pos += 1;
        }
    }
    if *pos == start || (*pos == start + 1 && b[start] == b'-') {
        return Err(format!("bad number at byte {start}"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{HistogramSnapshot, Snapshot};

    fn sample_snapshot() -> Snapshot {
        let mut snap = Snapshot::default();
        snap.counters.insert("gpu.kernel.launches".into(), 42);
        snap.gauges
            .insert("contract.live_bytes".into(), (0, 1 << 20));
        snap.float_gauges.insert("compressor.qoz.cr".into(), 17.25);
        snap.histograms.insert(
            "stage.dedup.ratio".into(),
            HistogramSnapshot {
                count: 3,
                dropped: 1,
                sum: 1.5,
                mean: 0.5,
                buckets: vec![(0.5, 2), (1.0, 1), (f64::INFINITY, 0)],
            },
        );
        snap
    }

    #[test]
    fn chrome_trace_is_valid_json_with_lanes() {
        let spans = vec![
            SpanEvent {
                name: "contract.network",
                cat: "contract",
                lane: 0,
                start_us: 0,
                dur_us: 100,
                depth: 0,
            },
            SpanEvent {
                name: "stage.dedup",
                cat: "stage",
                lane: 1,
                start_us: 10,
                dur_us: 20,
                depth: 1,
            },
        ];
        let lanes = vec![StreamLane {
            name: "A100 stream 0".into(),
            events: vec![LaneEvent {
                name: "gemm".into(),
                cat: "kernel".into(),
                start_us: 0,
                dur_us: 33,
                bytes: 4096,
            }],
        }];
        let doc = chrome_trace(&spans, &lanes);
        validate_json(&doc).expect("chrome trace must be valid JSON");
        assert!(doc.contains("\"traceEvents\""));
        assert!(doc.contains("contract.network"));
        assert!(doc.contains("A100 stream 0"));
        assert!(doc.contains("\"pid\":2"));
    }

    #[test]
    fn chrome_trace_empty_inputs() {
        let doc = chrome_trace(&[], &[]);
        validate_json(&doc).expect("empty trace still valid");
    }

    #[test]
    fn metrics_json_is_valid() {
        let doc = metrics_json(&sample_snapshot());
        validate_json(&doc).expect("metrics JSON must be valid");
        assert!(doc.contains("gpu.kernel.launches"));
        assert!(doc.contains("\"high_water\":1048576"));
        assert!(doc.contains("17.25"));
    }

    #[test]
    fn metrics_tsv_has_header_and_rows() {
        let tsv = metrics_tsv(&sample_snapshot());
        let lines: Vec<&str> = tsv.lines().collect();
        assert_eq!(lines[0], "kind\tname\tvalue\textra");
        assert_eq!(lines.len(), 5);
        assert!(lines
            .iter()
            .any(|l| l.starts_with("counter\tgpu.kernel.launches\t42")));
        assert!(lines.iter().any(|l| l.contains("high_water=1048576")));
        // every row has exactly 4 tab-separated fields
        for l in &lines {
            assert_eq!(l.split('\t').count(), 4, "row {l:?}");
        }
    }

    #[test]
    fn escaping_handles_quotes_and_controls() {
        let spans = vec![SpanEvent {
            name: "weird",
            cat: "weird",
            lane: 0,
            start_us: 0,
            dur_us: 1,
            depth: 0,
        }];
        let lanes = vec![StreamLane {
            name: "na\"me\\with\nstuff".into(),
            events: vec![],
        }];
        let doc = chrome_trace(&spans, &lanes);
        validate_json(&doc).expect("escaped trace valid");
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(validate_json("{").is_err());
        assert!(validate_json("{\"a\":}").is_err());
        assert!(validate_json("[1,2,]").is_err());
        assert!(validate_json("{\"a\":1} extra").is_err());
        assert!(validate_json("{\"a\":1}").is_ok());
        assert!(validate_json("[1,-2.5e3,\"x\",true,null]").is_ok());
    }
}
