//! Deterministic fault injection for chaos testing (`QCF_FAULTS`).
//!
//! Production code brackets its failure-prone operations with *named
//! sites* — `faults::inject("state.chunk.bitflip")` — and the module
//! decides, deterministically, whether that particular event fails. The
//! sites currently wired in:
//!
//! | site | effect at the call point |
//! |------|--------------------------|
//! | `codec.decode` | decompression returns an injected [`Corrupt`](`crate`) error |
//! | `codec.alloc` | the stream-header bomb guard reports an allocation-cap breach |
//! | `state.chunk.bitflip` | one stored chunk byte gets a bit flipped after write-back |
//! | `state.spill.bitflip` | one byte of a frame's *on-disk* copy gets a bit flipped as it spills |
//! | `exec.worker.panic` | a data-parallel worker block panics mid-kernel |
//!
//! ## Spec grammar
//!
//! `QCF_FAULTS` is a comma- or semicolon-separated list of clauses:
//!
//! * `seed=S` — seed for the deterministic rate hash (default 0);
//! * `SITE@N` — fire on the `N`-th event at `SITE` (1-based), exactly once;
//! * `SITE%R` — fire each event with deterministic pseudo-probability `R`
//!   (`0.0..=1.0`, a pure hash of seed, site and event index — reruns
//!   fire on the same events);
//! * `SITE` — fire on every event.
//!
//! `SITE` is an exact site name, or a prefix ending in `*`
//! (`state.*` matches every state site). Example:
//!
//! ```text
//! QCF_FAULTS="seed=7,state.chunk.bitflip@3,exec.worker.panic%0.01"
//! ```
//!
//! ## Cost when disarmed
//!
//! Exactly the telemetry pattern: one relaxed atomic load per site check,
//! no locks, no allocation. Armed, each event takes a short mutex-guarded
//! counter update — chaos runs are not benchmark runs.
//!
//! Tests arm the module programmatically with [`arm_from_spec`] /
//! [`disarm`]; the state is process-global, so concurrent tests in one
//! binary must serialize through [`chaos_guard`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// 0 = uninitialized, 1 = armed, 2 = disarmed.
static ARMED: AtomicU8 = AtomicU8::new(0);

/// How one rule decides whether an event fires.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Trigger {
    /// Fire on exactly the `n`-th event (1-based).
    Nth(u64),
    /// Fire with deterministic pseudo-probability `rate`.
    Rate(f64),
    /// Fire on every event.
    Always,
}

#[derive(Debug, Clone)]
struct Rule {
    /// Site name, or prefix when `prefix` is true.
    pattern: String,
    prefix: bool,
    trigger: Trigger,
}

impl Rule {
    fn matches(&self, site: &str) -> bool {
        if self.prefix {
            site.starts_with(&self.pattern)
        } else {
            site == self.pattern
        }
    }
}

#[derive(Debug, Default)]
struct Plan {
    seed: u64,
    rules: Vec<Rule>,
    /// Events seen per site (fired or not).
    seen: HashMap<String, u64>,
    /// Faults actually injected per site.
    injected: HashMap<String, u64>,
}

fn plan() -> &'static Mutex<Plan> {
    static PLAN: OnceLock<Mutex<Plan>> = OnceLock::new();
    PLAN.get_or_init(|| Mutex::new(Plan::default()))
}

fn lock_plan() -> MutexGuard<'static, Plan> {
    plan().lock().unwrap_or_else(|e| e.into_inner())
}

/// True when fault injection is armed. Initialized on first call from
/// `QCF_FAULTS` (unset or empty ⇒ disarmed); one relaxed atomic load on
/// every later call.
#[inline]
pub fn armed() -> bool {
    match ARMED.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => init_armed(),
    }
}

#[cold]
fn init_armed() -> bool {
    arm_from_env(&std::env::var("QCF_FAULTS").unwrap_or_default())
}

/// Arms from an environment-style spec: empty disarms quietly; a
/// malformed spec disarms *loudly*, recording the parse error where
/// [`spec_error`] finds it.
fn arm_from_env(spec: &str) -> bool {
    if spec.trim().is_empty() {
        ARMED.store(2, Ordering::Relaxed);
        return false;
    }
    match arm_from_spec(spec) {
        Ok(()) => true,
        Err(e) => {
            // A typo'd QCF_FAULTS must not silently turn a chaos drill
            // into a clean run: record the error for callers (qcfz exits
            // nonzero on it) and mirror it into the registry.
            eprintln!("QCF_FAULTS malformed (injection disarmed): {e}");
            *spec_error_slot().lock().unwrap_or_else(|p| p.into_inner()) = Some(e);
            if crate::enabled() {
                crate::registry().counter("faults.spec_error").inc();
            }
            ARMED.store(2, Ordering::Relaxed);
            false
        }
    }
}

fn spec_error_slot() -> &'static Mutex<Option<String>> {
    static SLOT: OnceLock<Mutex<Option<String>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

/// The parse error a malformed `QCF_FAULTS` spec produced at arming
/// time, if any. Drivers that run chaos drills check this after calling
/// [`armed`] and fail loudly instead of running clean.
pub fn spec_error() -> Option<String> {
    spec_error_slot()
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .clone()
}

/// Arms fault injection from a spec string (see the module docs for the
/// grammar). Replaces any previous plan and resets all event counters.
pub fn arm_from_spec(spec: &str) -> Result<(), String> {
    let mut new = Plan::default();
    for clause in spec.split([',', ';']) {
        let clause = clause.trim();
        if clause.is_empty() {
            continue;
        }
        if let Some(seed) = clause.strip_prefix("seed=") {
            new.seed = seed
                .trim()
                .parse()
                .map_err(|_| format!("bad seed in {clause:?}"))?;
            continue;
        }
        let (site, trigger) = if let Some((site, n)) = clause.split_once('@') {
            let n: u64 = n
                .trim()
                .parse()
                .map_err(|_| format!("bad @N in {clause:?}"))?;
            if n == 0 {
                return Err(format!("@N is 1-based in {clause:?}"));
            }
            (site, Trigger::Nth(n))
        } else if let Some((site, r)) = clause.split_once('%') {
            let r: f64 = r
                .trim()
                .parse()
                .map_err(|_| format!("bad %rate in {clause:?}"))?;
            if !(0.0..=1.0).contains(&r) {
                return Err(format!("rate outside 0..=1 in {clause:?}"));
            }
            (site, Trigger::Rate(r))
        } else {
            (clause, Trigger::Always)
        };
        let site = site.trim();
        if site.is_empty() {
            return Err(format!("empty site in {clause:?}"));
        }
        let (pattern, prefix) = match site.strip_suffix('*') {
            Some(p) => (p.to_string(), true),
            None => (site.to_string(), false),
        };
        new.rules.push(Rule {
            pattern,
            prefix,
            trigger,
        });
    }
    if new.rules.is_empty() {
        return Err("no fault rules in spec".into());
    }
    *lock_plan() = new;
    *spec_error_slot().lock().unwrap_or_else(|p| p.into_inner()) = None;
    ARMED.store(1, Ordering::Relaxed);
    Ok(())
}

/// Disarms fault injection and clears the plan and all counters.
pub fn disarm() {
    *lock_plan() = Plan::default();
    ARMED.store(2, Ordering::Relaxed);
}

/// SplitMix64 — the deterministic per-event hash behind `%rate` triggers
/// and injection payloads.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn site_hash(site: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in site.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Registers one event at `site` and decides whether to inject a fault
/// there. `None` ⇒ proceed normally. `Some(payload)` ⇒ the caller must
/// fail in its site-specific way; `payload` is a deterministic 64-bit
/// value derived from the seed, the site and the event index (callers use
/// it to pick *which* byte/bit to corrupt, so reruns corrupt the same
/// location).
///
/// Disarmed, this is a single relaxed atomic load.
#[inline]
pub fn inject(site: &str) -> Option<u64> {
    if !armed() {
        return None;
    }
    inject_armed(site)
}

#[cold]
fn inject_armed(site: &str) -> Option<u64> {
    let mut p = lock_plan();
    let count = p.seen.entry(site.to_string()).or_insert(0);
    *count += 1;
    let count = *count;
    let seed = p.seed;
    let fire = p.rules.iter().any(|r| {
        r.matches(site)
            && match r.trigger {
                Trigger::Nth(n) => count == n,
                Trigger::Always => true,
                Trigger::Rate(rate) => {
                    let h = splitmix64(seed ^ site_hash(site) ^ count);
                    ((h >> 11) as f64 / (1u64 << 53) as f64) < rate
                }
            }
    });
    if !fire {
        return None;
    }
    *p.injected.entry(site.to_string()).or_insert(0) += 1;
    drop(p);
    if crate::enabled() {
        crate::registry()
            .counter(&format!("faults.injected.{site}"))
            .inc();
    }
    Some(splitmix64(seed ^ site_hash(site).rotate_left(17) ^ count))
}

/// Faults injected so far at `site` (0 when disarmed or never fired).
pub fn injected_count(site: &str) -> u64 {
    if ARMED.load(Ordering::Relaxed) != 1 {
        return 0;
    }
    lock_plan().injected.get(site).copied().unwrap_or(0)
}

/// Total faults injected across all sites.
pub fn total_injected() -> u64 {
    if ARMED.load(Ordering::Relaxed) != 1 {
        return 0;
    }
    lock_plan().injected.values().sum()
}

/// Serializes chaos tests: the armed flag, plan and counters are
/// process-global, so any test that arms faults must hold this guard.
pub fn chaos_guard() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_is_inert() {
        let _g = chaos_guard();
        disarm();
        assert!(!armed());
        assert_eq!(inject("codec.decode"), None);
        assert_eq!(total_injected(), 0);
    }

    #[test]
    fn nth_event_fires_exactly_once() {
        let _g = chaos_guard();
        arm_from_spec("seed=1,codec.decode@3").unwrap();
        assert!(inject("codec.decode").is_none());
        assert!(inject("codec.decode").is_none());
        assert!(inject("codec.decode").is_some());
        assert!(inject("codec.decode").is_none());
        assert_eq!(injected_count("codec.decode"), 1);
        assert_eq!(injected_count("other.site"), 0);
        disarm();
    }

    #[test]
    fn prefix_patterns_and_always() {
        let _g = chaos_guard();
        arm_from_spec("state.*").unwrap();
        assert!(inject("state.chunk.bitflip").is_some());
        assert!(inject("state.alloc").is_some());
        assert!(inject("exec.worker.panic").is_none());
        assert_eq!(total_injected(), 2);
        disarm();
    }

    #[test]
    fn rate_is_deterministic_across_reruns() {
        let _g = chaos_guard();
        let run = || {
            arm_from_spec("seed=42,s%0.3").unwrap();
            let fired: Vec<bool> = (0..64).map(|_| inject("s").is_some()).collect();
            disarm();
            fired
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "rate triggers must be reproducible");
        let n = a.iter().filter(|&&f| f).count();
        assert!(n > 5 && n < 40, "rate 0.3 fired {n}/64 times");
    }

    #[test]
    fn payload_is_deterministic_and_varies_per_event() {
        let _g = chaos_guard();
        arm_from_spec("seed=9,s").unwrap();
        let p1 = inject("s").unwrap();
        let p2 = inject("s").unwrap();
        disarm();
        arm_from_spec("seed=9,s").unwrap();
        let q1 = inject("s").unwrap();
        let q2 = inject("s").unwrap();
        disarm();
        assert_eq!(p1, q1);
        assert_eq!(p2, q2);
        assert_ne!(p1, p2, "different events get different payloads");
    }

    #[test]
    fn malformed_env_spec_is_recorded_not_silently_swallowed() {
        let _g = chaos_guard();
        assert!(!arm_from_env("state.chunk.bitflip%banana"));
        assert!(!armed());
        let err = spec_error().expect("the parse error must be queryable");
        assert!(err.contains("rate") || err.contains("banana"), "{err}");
        // A later *valid* arming clears the recorded error.
        assert!(arm_from_env("seed=1,codec.decode@1"));
        assert!(spec_error().is_none());
        disarm();
        // Empty specs stay the quiet not-armed path, not an error.
        assert!(!arm_from_env("  "));
        assert!(spec_error().is_none());
    }

    #[test]
    fn bad_specs_are_rejected() {
        let _g = chaos_guard();
        assert!(arm_from_spec("").is_err());
        assert!(arm_from_spec("seed=7").is_err(), "seed alone has no rules");
        assert!(arm_from_spec("s@0").is_err(), "@N is 1-based");
        assert!(arm_from_spec("s%1.5").is_err());
        assert!(arm_from_spec("@3").is_err(), "empty site");
        assert!(arm_from_spec("seed=x,s@1").is_err());
        assert!(!armed() || injected_count("s") == 0);
        disarm();
    }
}
