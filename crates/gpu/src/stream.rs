//! Simulated CUDA streams: ordered kernel execution with a virtual clock.
//!
//! A [`Stream`] executes closures (the kernel bodies, real Rust code) while
//! charging simulated time from each kernel's [`KernelSpec`]. The event log
//! lets the bench harness break a compressor's runtime into kernels, which
//! is how the paper attributes cuSZ's cost to its Huffman stage.

use crate::device::{DeviceSpec, KernelSpec};
use qcf_telemetry::{Counter, LaneEvent, StreamLane};
use std::sync::{Arc, Mutex, OnceLock};

/// Workspace-wide kernel counters, cached so `charge` pays one atomic add
/// instead of a registry lookup per launch.
struct KernelCounters {
    launches: Arc<Counter>,
    launch_bytes: Arc<Counter>,
    transfers: Arc<Counter>,
    transfer_bytes: Arc<Counter>,
}

fn kernel_counters() -> &'static KernelCounters {
    static COUNTERS: OnceLock<KernelCounters> = OnceLock::new();
    COUNTERS.get_or_init(|| {
        let r = qcf_telemetry::registry();
        KernelCounters {
            launches: r.counter("gpu.kernel.launches"),
            launch_bytes: r.counter("gpu.kernel.bytes"),
            transfers: r.counter("gpu.transfer.count"),
            transfer_bytes: r.counter("gpu.transfer.bytes"),
        }
    })
}

/// One completed kernel launch.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelEvent {
    /// Kernel name.
    pub name: &'static str,
    /// Simulated start time (seconds since stream creation).
    pub start_s: f64,
    /// Simulated duration in seconds.
    pub duration_s: f64,
    /// Bytes moved (read + written).
    pub bytes: u64,
}

/// An in-order execution queue on a device, with a virtual clock.
///
/// Interior mutability (a `Mutex`) keeps the API `&self`, so a stream can
/// be shared by the parallel executor without plumbing `&mut`.
///
/// # Concurrency semantics
///
/// Kernels are charged **at submission**, under the state lock, before the
/// body runs. Concurrent `launch` calls therefore serialize their clock
/// updates in lock-acquisition order — exactly a CUDA stream's in-order
/// queue: start times are monotone non-decreasing per stream, each kernel
/// starts where the previous one ended, and the final elapsed time is the
/// sum of all charged durations regardless of how the host threads
/// interleave. Only the *event order* can vary run-to-run under
/// concurrency, never totals, breakdowns, or any compressed byte.
#[derive(Debug)]
pub struct Stream {
    device: DeviceSpec,
    state: Mutex<StreamState>,
}

#[derive(Debug, Default)]
struct StreamState {
    now_s: f64,
    events: Vec<KernelEvent>,
}

impl Stream {
    /// Creates a stream on `device` with the clock at zero.
    pub fn new(device: DeviceSpec) -> Self {
        Stream {
            device,
            state: Mutex::new(StreamState::default()),
        }
    }

    /// The device this stream runs on.
    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, StreamState> {
        // A panicking kernel body never holds this lock (charging happens
        // before the body runs), so poison only means a panic elsewhere;
        // the state itself is always consistent.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Charges `duration` seconds for `name` at submission time and
    /// returns the kernel's start time.
    fn charge(&self, name: &'static str, duration: f64, bytes: u64) -> f64 {
        let mut st = self.lock();
        let start = st.now_s;
        st.now_s += duration;
        st.events.push(KernelEvent {
            name,
            start_s: start,
            duration_s: duration,
            bytes,
        });
        start
    }

    /// Executes `body` as a kernel, charging `spec`'s simulated time.
    /// Returns the body's value.
    ///
    /// The charge lands when the launch is submitted (before the body
    /// runs), so concurrent launches from executor workers keep the
    /// virtual clock well-defined; see the type-level docs.
    pub fn launch<R>(&self, spec: &KernelSpec, body: impl FnOnce() -> R) -> R {
        let duration = spec.time_on(&self.device);
        let bytes = spec.bytes_read + spec.bytes_written;
        self.charge(spec.name, duration, bytes);
        if qcf_telemetry::enabled() {
            let c = kernel_counters();
            c.launches.inc();
            c.launch_bytes.add(bytes);
        }
        body()
    }

    /// Charges a host→device or device→host copy of `bytes`.
    pub fn transfer(&self, name: &'static str, bytes: u64) {
        let duration = bytes as f64 / self.device.pcie_bytes_per_sec;
        self.charge(name, duration, bytes);
        if qcf_telemetry::enabled() {
            let c = kernel_counters();
            c.transfers.inc();
            c.transfer_bytes.add(bytes);
        }
    }

    /// Current simulated time in seconds.
    pub fn elapsed_s(&self) -> f64 {
        self.lock().now_s
    }

    /// Snapshot of the event log.
    pub fn events(&self) -> Vec<KernelEvent> {
        self.lock().events.clone()
    }

    /// Simulated time spent in kernels whose name contains `needle`.
    pub fn time_in(&self, needle: &str) -> f64 {
        self.lock()
            .events
            .iter()
            .filter(|e| e.name.contains(needle))
            .map(|e| e.duration_s)
            .sum()
    }

    /// Resets the clock and event log (for reusing a stream across runs).
    pub fn reset(&self) {
        let mut st = self.lock();
        st.now_s = 0.0;
        st.events.clear();
    }

    /// Simulated aggregate throughput for `payload_bytes` processed since
    /// the last reset, in bytes/second. Returns infinity at time zero.
    pub fn throughput(&self, payload_bytes: u64) -> f64 {
        payload_bytes as f64 / self.elapsed_s()
    }

    /// Per-kernel time breakdown since the last reset: `(name, total
    /// seconds, share of elapsed)`, largest first. The simulated analogue
    /// of an `nsys` profile — how the paper attributes cuSZ's cost to its
    /// Huffman stage.
    pub fn breakdown(&self) -> Vec<(String, f64, f64)> {
        let st = self.lock();
        let total: f64 = st.now_s.max(f64::MIN_POSITIVE);
        let mut by_name: std::collections::BTreeMap<&'static str, f64> =
            std::collections::BTreeMap::new();
        for e in &st.events {
            *by_name.entry(e.name).or_insert(0.0) += e.duration_s;
        }
        let mut rows: Vec<(String, f64, f64)> = by_name
            .into_iter()
            .map(|(n, t)| (n.to_string(), t, t / total))
            .collect();
        rows.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite times"));
        rows
    }

    /// Converts the event log into a named virtual lane for the
    /// Chrome-trace exporter: simulated seconds scale to microseconds and
    /// every event is tagged with the `kernel` category.
    pub fn telemetry_lane(&self, name: impl Into<String>) -> StreamLane {
        let events = self
            .events()
            .into_iter()
            .map(|e| LaneEvent {
                name: e.name.to_string(),
                cat: "kernel".to_string(),
                start_us: (e.start_s * 1e6) as u64,
                dur_us: (e.duration_s * 1e6) as u64,
                bytes: e.bytes as usize,
            })
            .collect();
        StreamLane {
            name: name.into(),
            events,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::MemoryPattern;
    use crate::exec::par_for_blocks;

    #[test]
    fn clock_advances_per_launch() {
        let s = Stream::new(DeviceSpec::a100());
        let spec = KernelSpec::streaming("k1", 1 << 20, 1 << 20);
        let v = s.launch(&spec, || 42);
        assert_eq!(v, 42);
        let t1 = s.elapsed_s();
        assert!(t1 > 0.0);
        s.launch(&spec, || ());
        assert!((s.elapsed_s() - 2.0 * t1).abs() < 1e-12);
    }

    #[test]
    fn events_record_order_and_times() {
        let s = Stream::new(DeviceSpec::a100());
        s.launch(&KernelSpec::streaming("a", 1024, 0), || ());
        s.launch(&KernelSpec::streaming("b", 2048, 0), || ());
        let ev = s.events();
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].name, "a");
        assert!((ev[1].start_s - ev[0].duration_s).abs() < 1e-15);
    }

    #[test]
    fn charge_lands_at_submission() {
        // The clock must already show the kernel's cost while its body is
        // still running — that is what makes concurrent launches coherent.
        let s = Stream::new(DeviceSpec::a100());
        let spec = KernelSpec::streaming("probe", 1 << 24, 0);
        let elapsed_inside = s.launch(&spec, || s.elapsed_s());
        assert!(elapsed_inside > 0.0);
        assert_eq!(elapsed_inside, s.elapsed_s());
    }

    #[test]
    fn concurrent_launches_keep_clock_coherent() {
        let s = Stream::new(DeviceSpec::a100());
        let spec = KernelSpec::streaming("worker_kernel", 1 << 22, 1 << 22);
        let one = {
            let probe = Stream::new(DeviceSpec::a100());
            probe.launch(&spec, || ());
            probe.elapsed_s()
        };
        let n = 64;
        par_for_blocks(n, 16, |_, range| {
            for _ in range {
                s.launch(&spec, || ());
            }
        });
        let ev = s.events();
        assert_eq!(ev.len(), n);
        // Starts monotone, each kernel begins where the previous ended.
        for w in ev.windows(2) {
            assert!(w[1].start_s >= w[0].start_s, "starts must be monotone");
            assert!((w[1].start_s - (w[0].start_s + w[0].duration_s)).abs() < 1e-12);
        }
        // Total time is exactly the serial sum, independent of interleaving.
        assert!((s.elapsed_s() - one * n as f64).abs() < 1e-9 * one * n as f64);
    }

    #[test]
    fn time_in_filters_by_name() {
        let s = Stream::new(DeviceSpec::a100());
        s.launch(
            &KernelSpec::streaming("huffman_encode", 1 << 24, 1 << 22),
            || (),
        );
        s.launch(
            &KernelSpec::streaming("lorenzo_quant", 1 << 24, 1 << 24),
            || (),
        );
        assert!(s.time_in("huffman") > 0.0);
        assert!(s.time_in("nothing") == 0.0);
        assert!((s.time_in("huffman") + s.time_in("lorenzo") - s.elapsed_s()).abs() < 1e-12);
    }

    #[test]
    fn transfer_uses_pcie_bandwidth() {
        let s = Stream::new(DeviceSpec::a100());
        s.transfer("h2d", 26_000_000_000);
        assert!((s.elapsed_s() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn reset_clears() {
        let s = Stream::new(DeviceSpec::a100());
        s.launch(&KernelSpec::streaming("x", 1 << 20, 0), || ());
        s.reset();
        assert_eq!(s.elapsed_s(), 0.0);
        assert!(s.events().is_empty());
    }

    #[test]
    fn breakdown_attributes_time() {
        let s = Stream::new(DeviceSpec::a100());
        s.launch(&KernelSpec::streaming("big", 1 << 28, 0), || ());
        s.launch(&KernelSpec::streaming("small", 1 << 20, 0), || ());
        s.launch(&KernelSpec::streaming("big", 1 << 28, 0), || ());
        let rows = s.breakdown();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, "big");
        assert!(rows[0].2 > 0.9, "big share {}", rows[0].2);
        let share_sum: f64 = rows.iter().map(|r| r.2).sum();
        assert!((share_sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn concurrent_launches_never_lose_events() {
        // Four explicit threads (the QCF_WORKERS=4 shape regardless of the
        // env) hammering one stream: every launch must land in the log.
        let s = Stream::new(DeviceSpec::a100());
        let spec = KernelSpec::streaming("hammer", 1 << 16, 1 << 16);
        let per_thread = 250;
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..per_thread {
                        s.launch(&spec, || ());
                    }
                });
            }
        });
        let ev = s.events();
        assert_eq!(ev.len(), 4 * per_thread, "no launch may vanish");
        for w in ev.windows(2) {
            assert!(w[1].start_s >= w[0].start_s, "starts must stay monotone");
        }
    }

    #[test]
    fn reset_clears_after_concurrent_use() {
        let s = Stream::new(DeviceSpec::a100());
        let spec = KernelSpec::streaming("pre_reset", 1 << 18, 0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..10 {
                        s.launch(&spec, || ());
                    }
                });
            }
        });
        assert!(s.elapsed_s() > 0.0);
        s.reset();
        assert_eq!(s.elapsed_s(), 0.0, "reset must zero the clock");
        assert!(s.events().is_empty(), "reset must clear the event log");
        // The stream is fully reusable: the next launch starts at zero.
        s.launch(&spec, || ());
        assert_eq!(s.events()[0].start_s, 0.0);
    }

    #[test]
    fn telemetry_lane_scales_to_micros() {
        let s = Stream::new(DeviceSpec::a100());
        s.transfer("h2d", 26_000_000_000); // exactly 1 simulated second
        let lane = s.telemetry_lane("A100 stream 0");
        assert_eq!(lane.name, "A100 stream 0");
        assert_eq!(lane.events.len(), 1);
        assert_eq!(lane.events[0].name, "h2d");
        assert_eq!(lane.events[0].start_us, 0);
        assert_eq!(lane.events[0].dur_us, 1_000_000);
        assert_eq!(lane.events[0].bytes, 26_000_000_000);
    }

    #[test]
    fn launches_bridge_into_registry() {
        qcf_telemetry::set_enabled(true);
        let launches = qcf_telemetry::registry().counter("gpu.kernel.launches");
        let before = launches.get();
        let s = Stream::new(DeviceSpec::a100());
        s.launch(&KernelSpec::streaming("bridge_probe", 1 << 12, 0), || ());
        assert!(
            launches.get() > before,
            "launch must bump the registry counter"
        );
    }

    #[test]
    fn throughput_reflects_pattern() {
        let bytes = 1u64 << 28;
        let fast = Stream::new(DeviceSpec::a100());
        fast.launch(&KernelSpec::streaming("s", bytes, 0), || ());
        let slow = Stream::new(DeviceSpec::a100());
        slow.launch(
            &KernelSpec::streaming("r", bytes, 0).with_pattern(MemoryPattern::BitSerial),
            || (),
        );
        assert!(fast.throughput(bytes) > 5.0 * slow.throughput(bytes));
    }
}
