//! # gpu-model — a simulated GPU for compressor kernels
//!
//! The paper runs its compressors on an NVIDIA A100; this environment has no
//! GPU, so the device is modelled explicitly (DESIGN.md §2 documents the
//! substitution). Kernel bodies are real Rust executed on host threads;
//! *simulated* time is charged from a calibrated roofline over each kernel's
//! declared memory traffic, flops, access pattern and serial fraction.
//!
//! * [`DeviceSpec`] / [`KernelSpec`] — the cost model ([`DeviceSpec::a100`]).
//! * [`Stream`] — in-order launches, virtual clock, per-kernel event log.
//! * [`exec`] — scoped-thread grid/block execution of kernel bodies.
//! * [`MemoryPool`] / [`DeviceBuffer`] — device-memory footprint accounting.

pub mod buffer;
pub mod device;
pub mod exec;
pub mod stream;

pub use buffer::{
    thread_arena_stats, with_arena_phase, Arena, ArenaMark, ArenaStats, DeviceBuffer, MemoryPool,
    ScratchPool, Workspace, WorkspaceStats,
};
pub use device::{DeviceSpec, KernelSpec, MemoryPattern};
pub use stream::{KernelEvent, Stream};
