//! Data-parallel kernel-body execution on the host.
//!
//! Kernel bodies are real Rust code. This module runs them over index
//! ranges with std scoped threads — the same chunked grid/block shape a
//! CUDA kernel would use — so the implementations stay faithful to their
//! GPU formulation (independent blocks, no cross-block mutation) while the
//! simulated cost comes from the `device` module, not from wall time.
//!
//! # Execution contract
//!
//! Every helper here hands each block to exactly one worker, and blocks
//! never share mutable state. Combined with a fixed block decomposition
//! (blocks are split by index arithmetic, never by load), any kernel body
//! that is a pure function of its block is **deterministic**: the output is
//! identical whatever `worker_count()` returns, including 1. The hot paths
//! in `tensornet`, `qcf-core`, `compressors` and `codec-kit` rely on this
//! to keep parallel output bit-identical to serial output.

use std::any::Any;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

/// When set, `worker_count()` reports 1 regardless of the host — see
/// [`with_serial_workers`].
static FORCE_SERIAL: AtomicBool = AtomicBool::new(false);

/// Number of worker threads used for kernel bodies (the host's parallelism,
/// not the simulated GPU's).
///
/// Overridable with the `QCF_WORKERS` environment variable, which is read
/// once per process. This matters on single-core CI hosts: setting
/// `QCF_WORKERS=4` forces the multi-threaded code paths so the
/// determinism contract is actually exercised there.
pub fn worker_count() -> usize {
    if FORCE_SERIAL.load(Ordering::Relaxed) {
        return 1;
    }
    static WORKERS: OnceLock<usize> = OnceLock::new();
    *WORKERS.get_or_init(|| {
        if let Ok(v) = std::env::var("QCF_WORKERS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                return n.max(1);
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Runs `f` with `worker_count()` pinned to 1 — the serial baseline for
/// speedup measurements.
///
/// The executor's block decomposition is worker-count independent, so the
/// serial run computes bit-identical output; only the scheduling changes.
/// The pin is **process-global** (benches and the report's speedup probe
/// are single-threaded at the top level, which is the intended use); the
/// previous state is restored even if `f` panics.
pub fn with_serial_workers<R>(f: impl FnOnce() -> R) -> R {
    struct Restore(bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            FORCE_SERIAL.store(self.0, Ordering::Relaxed);
        }
    }
    let _restore = Restore(FORCE_SERIAL.swap(true, Ordering::Relaxed));
    f()
}

/// First panic payload captured across worker blocks.
///
/// Every block body runs under [`catch_unwind`](panic::catch_unwind), so a
/// poisoned block takes down neither its worker thread nor the blocks
/// queued behind it: the remaining blocks all execute, each panic bumps
/// the `exec.worker.panics` counter, and the caller re-raises the *first*
/// payload once after the join. Callers that can degrade gracefully (the
/// compressed-state chunk loop) catch that single panic and fail only the
/// affected chunk; everyone else keeps the old fail-fast behaviour.
struct PanicSlot(Mutex<Option<Box<dyn Any + Send>>>);

impl PanicSlot {
    fn new() -> Self {
        PanicSlot(Mutex::new(None))
    }

    /// Runs one block body under the unwind guard. The injected
    /// `exec.worker.panic` fault fires inside the guard so chaos runs
    /// exercise exactly the recovery path real kernel panics take.
    fn run(&self, b: usize, f: impl FnOnce()) {
        let caught = panic::catch_unwind(AssertUnwindSafe(|| {
            if qcf_telemetry::faults::inject("exec.worker.panic").is_some() {
                panic!("injected fault: exec.worker.panic at block {b}");
            }
            f()
        }));
        if let Err(payload) = caught {
            qcf_telemetry::registry()
                .counter("exec.worker.panics")
                .inc();
            let mut slot = self.0.lock().unwrap_or_else(|e| e.into_inner());
            slot.get_or_insert(payload);
        }
    }

    /// Re-raises the first captured panic, if any.
    fn resume(self) {
        if let Some(payload) = self.0.into_inner().unwrap_or_else(|e| e.into_inner()) {
            panic::resume_unwind(payload);
        }
    }
}

/// Block index range decomposition shared by all the helpers: `n_items`
/// split into `n_blocks` contiguous, disjoint, order-preserving ranges
/// (empty trailing ranges dropped).
fn block_ranges(n_items: usize, n_blocks: usize) -> Vec<(usize, std::ops::Range<usize>)> {
    assert!(n_blocks > 0, "need at least one block");
    let per = n_items.div_ceil(n_blocks);
    (0..n_blocks)
        .map(|b| (b, (b * per).min(n_items)..((b + 1) * per).min(n_items)))
        .filter(|(_, r)| !r.is_empty())
        .collect()
}

/// Runs `body(block_index, start..end)` over `n_items` split into
/// `n_blocks` contiguous blocks, in parallel when workers are available.
///
/// The body must be pure per block (no shared mutation) — identical to the
/// constraint CUDA thread blocks live under. Nested invocation is allowed
/// (scoped threads spawn freely; there is no fixed pool to deadlock). A
/// panic in any block is caught per block: every other block still runs,
/// and the first panic payload is re-raised to the caller after all
/// workers join (see [`PanicSlot`]).
pub fn par_for_blocks<F>(n_items: usize, n_blocks: usize, body: F)
where
    F: Fn(usize, std::ops::Range<usize>) + Sync,
{
    let blocks = block_ranges(n_items, n_blocks);
    let workers = worker_count().min(blocks.len()).max(1);
    let slot = PanicSlot::new();
    if workers == 1 {
        for (b, r) in blocks {
            slot.run(b, || body(b, r));
        }
        slot.resume();
        return;
    }
    // Split the block list over workers; each worker owns a disjoint chunk.
    let chunk = blocks.len().div_ceil(workers);
    let body = &body;
    let slot_ref = &slot;
    std::thread::scope(|s| {
        for w in blocks.chunks(chunk) {
            s.spawn(move || {
                for (b, r) in w {
                    slot_ref.run(*b, || body(*b, r.clone()));
                }
            });
        }
    });
    slot.resume();
}

/// Runs `body(block_index)` for blocks `0..n_blocks` serially on the
/// caller thread, under the same per-block panic guard — including the
/// `exec.worker.panic` fault point — as the parallel helpers.
///
/// Single-worker fast paths (e.g. a codec streaming every block into one
/// shared writer) use this so that chaos runs and panic accounting see the
/// exact same per-block events as the data-parallel path; a block panic is
/// still caught, counted, and re-raised after the remaining blocks run.
/// The body may mutate captured state (`FnMut`): on the serial path each
/// block finishes before the next starts, and after a panic the partial
/// state is discarded by the re-raise.
pub fn serial_for_blocks(n_blocks: usize, mut body: impl FnMut(usize)) {
    let slot = PanicSlot::new();
    for b in 0..n_blocks {
        slot.run(b, || body(b));
    }
    slot.resume();
}

/// Maps each block of `input` (chunks of `block_len`) to an output value,
/// in parallel; the result vector preserves block order.
pub fn par_map_blocks<T: Sync, R: Send + Default + Clone>(
    input: &[T],
    block_len: usize,
    f: impl Fn(usize, &[T]) -> R + Sync,
) -> Vec<R> {
    assert!(block_len > 0, "block length must be positive");
    if input.is_empty() {
        return Vec::new();
    }
    let n_blocks = input.len().div_ceil(block_len);
    let mut out = vec![R::default(); n_blocks];
    let out_ptr = SyncSlice(out.as_mut_ptr());
    par_for_blocks(n_blocks, n_blocks, |_, range| {
        for b in range {
            let lo = b * block_len;
            let hi = (lo + block_len).min(input.len());
            let val = f(b, &input[lo..hi]);
            // SAFETY: each block index b is visited exactly once across all
            // workers (par_for_blocks hands out disjoint ranges), so each
            // out[b] slot is written by exactly one thread.
            unsafe { *out_ptr.get().add(b) = val };
        }
    });
    out
}

/// Runs `f(block_index, chunk)` over disjoint mutable chunks of `data`
/// (`block_len` elements each, last one possibly shorter), in parallel.
///
/// This is the in-place mutation analogue of [`par_map_blocks`]: each
/// chunk is owned by exactly one worker, so kernels like zero-collapse or
/// a GEMM row loop can write their slice without synchronization.
pub fn par_chunks_mut<T: Send, F>(data: &mut [T], block_len: usize, f: F)
where
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(block_len > 0, "block length must be positive");
    let n_blocks = data.len().div_ceil(block_len.max(1)).max(1);
    let workers = worker_count().min(n_blocks);
    let slot = PanicSlot::new();
    if workers <= 1 {
        for (b, chunk) in data.chunks_mut(block_len).enumerate() {
            slot.run(b, || f(b, chunk));
        }
        slot.resume();
        return;
    }
    // Hand each worker a contiguous run of chunks, fully safely: the
    // borrow splitter peels per-worker sub-slices off the front.
    let chunks_per_worker = n_blocks.div_ceil(workers);
    let f = &f;
    let slot_ref = &slot;
    std::thread::scope(|s| {
        let mut rest = data;
        let mut next_block = 0usize;
        while !rest.is_empty() {
            let take = (chunks_per_worker * block_len).min(rest.len());
            let (mine, tail) = std::mem::take(&mut rest).split_at_mut(take);
            rest = tail;
            let first_block = next_block;
            next_block += mine.len().div_ceil(block_len);
            s.spawn(move || {
                for (i, chunk) in mine.chunks_mut(block_len).enumerate() {
                    slot_ref.run(first_block + i, || f(first_block + i, chunk));
                }
            });
        }
    });
    slot.resume();
}

/// Like [`par_chunks_mut`], but each block body also returns a value; the
/// result vector preserves block order.
///
/// This is the shape of a scatter-plus-reduce kernel: every block writes
/// its disjoint chunk of `data` in place and hands back a small per-block
/// summary (the vectorized dual-quant kernel writes symbols and returns
/// the block's outlier list).
pub fn par_map_chunks_mut<T: Send, R: Send + Default + Clone>(
    data: &mut [T],
    block_len: usize,
    f: impl Fn(usize, &mut [T]) -> R + Sync,
) -> Vec<R> {
    assert!(block_len > 0, "block length must be positive");
    if data.is_empty() {
        return Vec::new();
    }
    let n_blocks = data.len().div_ceil(block_len);
    let mut out = vec![R::default(); n_blocks];
    let out_ptr = SyncSlice(out.as_mut_ptr());
    par_chunks_mut(data, block_len, |b, chunk| {
        let val = f(b, chunk);
        // SAFETY: par_chunks_mut hands each block index b to exactly one
        // worker, so each out[b] slot is written by exactly one thread.
        unsafe { *out_ptr.get().add(b) = val };
    });
    out
}

/// Fills `out` block-by-block: `f(block_index, range, chunk)` writes each
/// `block_len`-sized chunk of `out`, where `range` is the index span of
/// the chunk in the full slice. Parallel over blocks.
///
/// A convenience over [`par_chunks_mut`] for gather-style kernels
/// (de-interleave, permutation) that need the absolute offset.
pub fn par_fill_blocks<T: Send, F>(out: &mut [T], block_len: usize, f: F)
where
    F: Fn(usize, std::ops::Range<usize>, &mut [T]) + Sync,
{
    par_chunks_mut(out, block_len, |b, chunk| {
        let lo = b * block_len;
        f(b, lo..lo + chunk.len(), chunk);
    });
}

/// Pointer wrapper asserting disjoint-write safety across threads. Accessed
/// only through [`SyncSlice::get`] so closures capture the whole wrapper
/// (edition-2021 disjoint capture would otherwise grab the bare pointer).
struct SyncSlice<R>(*mut R);

impl<R> SyncSlice<R> {
    fn get(&self) -> *mut R {
        self.0
    }
}

// SAFETY: the wrapper is only used with disjoint indices per thread.
unsafe impl<R> Sync for SyncSlice<R> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn covers_every_item_once() {
        let n = 10_001;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        par_for_blocks(n, 64, |_, range| {
            for i in range {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn handles_fewer_items_than_blocks() {
        let count = AtomicUsize::new(0);
        par_for_blocks(3, 16, |_, range| {
            count.fetch_add(range.len(), Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn zero_items_is_a_noop() {
        par_for_blocks(0, 8, |_, _| panic!("must not run"));
    }

    #[test]
    fn map_blocks_preserves_order() {
        let data: Vec<u32> = (0..1000).collect();
        let sums = par_map_blocks(&data, 100, |b, chunk| (b, chunk.iter().sum::<u32>()));
        assert_eq!(sums.len(), 10);
        for (b, (idx, _)) in sums.iter().enumerate() {
            assert_eq!(b, *idx);
        }
        let total: u32 = sums.iter().map(|(_, s)| s).sum();
        assert_eq!(total, 499_500);
    }

    #[test]
    fn map_blocks_empty_input() {
        let data: [u32; 0] = [];
        let out = par_map_blocks(&data, 8, |_, _| -> usize { panic!("must not run") });
        assert!(out.is_empty());
    }

    #[test]
    fn map_blocks_partial_tail() {
        let data = [1u32, 2, 3, 4, 5];
        let lens = par_map_blocks(&data, 2, |_, chunk| chunk.len());
        assert_eq!(lens, vec![2, 2, 1]);
    }

    #[test]
    fn chunks_mut_writes_every_chunk_once() {
        let mut data = vec![0u32; 10_007];
        par_chunks_mut(&mut data, 64, |b, chunk| {
            for v in chunk.iter_mut() {
                *v += 1 + b as u32;
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, 1 + (i / 64) as u32, "chunk of item {i}");
        }
    }

    #[test]
    fn chunks_mut_handles_empty_and_tiny() {
        let mut empty: Vec<u8> = vec![];
        par_chunks_mut(&mut empty, 8, |_, _| panic!("must not run"));
        let mut one = [7u8];
        par_chunks_mut(&mut one, 8, |b, chunk| {
            assert_eq!(b, 0);
            chunk[0] = 9;
        });
        assert_eq!(one, [9]);
    }

    #[test]
    fn map_chunks_mut_writes_and_returns_in_order() {
        let mut data = vec![1u32; 10_007];
        let sums = par_map_chunks_mut(&mut data, 64, |b, chunk| {
            for v in chunk.iter_mut() {
                *v += b as u32;
            }
            chunk.iter().map(|&v| v as usize).sum::<usize>()
        });
        assert_eq!(sums.len(), 10_007usize.div_ceil(64));
        for (b, s) in sums.iter().enumerate() {
            let len = 64.min(10_007 - b * 64);
            assert_eq!(*s, len * (1 + b), "block {b}");
        }
        let mut empty: Vec<u32> = vec![];
        let none = par_map_chunks_mut(&mut empty, 8, |_, _| -> usize { panic!("must not run") });
        assert!(none.is_empty());
    }

    #[test]
    fn fill_blocks_sees_absolute_ranges() {
        let mut out = vec![0usize; 1000];
        par_fill_blocks(&mut out, 96, |_, range, chunk| {
            for (i, v) in range.zip(chunk.iter_mut()) {
                *v = i * 3;
            }
        });
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 3);
        }
    }

    #[test]
    fn worker_panic_propagates() {
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            par_for_blocks(1024, 16, |b, _| {
                if b == 7 {
                    panic!("block 7 exploded");
                }
            });
        }));
        assert!(caught.is_err(), "panic in a worker must reach the caller");
    }

    #[test]
    fn other_blocks_complete_despite_one_panic() {
        // The unwind guard must isolate the poisoned block: all the others
        // run to completion before the panic reaches the caller.
        let hits: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            par_for_blocks(64, 64, |b, range| {
                if b == 3 {
                    panic!("block 3 exploded");
                }
                for i in range {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                }
            });
        }));
        assert!(caught.is_err());
        for (i, h) in hits.iter().enumerate() {
            let expect = usize::from(i != 3);
            assert_eq!(h.load(Ordering::Relaxed), expect, "block {i}");
        }
    }

    #[test]
    fn injected_worker_panic_fires() {
        let _g = qcf_telemetry::faults::chaos_guard();
        qcf_telemetry::faults::arm_from_spec("exec.worker.panic@2").unwrap();
        let done = AtomicUsize::new(0);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            par_for_blocks(8, 8, |_, range| {
                done.fetch_add(range.len(), Ordering::Relaxed);
            });
        }));
        qcf_telemetry::faults::disarm();
        assert!(caught.is_err(), "injected panic must surface to the caller");
        // Exactly one block was killed; the other seven completed.
        assert_eq!(done.load(Ordering::Relaxed), 7);
    }

    #[test]
    fn nested_invocations_lose_no_blocks() {
        // A fixed pool would deadlock here (outer blocks hold workers while
        // inner calls wait for them); scoped threads must not.
        let n_outer = 8;
        let n_inner = 100;
        let hits: Vec<AtomicUsize> = (0..n_outer * n_inner)
            .map(|_| AtomicUsize::new(0))
            .collect();
        par_for_blocks(n_outer, n_outer, |_, outer| {
            for o in outer {
                par_for_blocks(n_inner, 4, |_, inner| {
                    for i in inner {
                        hits[o * n_inner + i].fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn deterministic_against_serial_reference() {
        // Same decomposition arithmetic as the executor: results must not
        // depend on how blocks land on workers.
        let data: Vec<f64> = (0..4096).map(|i| (i as f64).sin()).collect();
        let serial: Vec<f64> = data.chunks(128).map(|c| c.iter().sum()).collect();
        let parallel = par_map_blocks(&data, 128, |_, c| c.iter().sum::<f64>());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
