//! Data-parallel kernel-body execution on the host.
//!
//! Kernel bodies are real Rust code. This module runs them over index
//! ranges with crossbeam scoped threads — the same chunked grid/block shape
//! a CUDA kernel would use — so the implementations stay faithful to their
//! GPU formulation (independent blocks, no cross-block mutation) while the
//! simulated cost comes from the `device` module, not from wall time.

use crossbeam::thread;

/// Number of worker threads used for kernel bodies (the host's parallelism,
/// not the simulated GPU's).
pub fn worker_count() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Runs `body(block_index, start..end)` over `n_items` split into
/// `n_blocks` contiguous blocks, in parallel when workers are available.
///
/// The body must be pure per block (no shared mutation) — identical to the
/// constraint CUDA thread blocks live under.
pub fn par_for_blocks<F>(n_items: usize, n_blocks: usize, body: F)
where
    F: Fn(usize, std::ops::Range<usize>) + Sync,
{
    assert!(n_blocks > 0, "need at least one block");
    let per = n_items.div_ceil(n_blocks);
    let blocks: Vec<(usize, std::ops::Range<usize>)> = (0..n_blocks)
        .map(|b| (b, (b * per).min(n_items)..((b + 1) * per).min(n_items)))
        .filter(|(_, r)| !r.is_empty())
        .collect();

    let workers = worker_count().min(blocks.len()).max(1);
    if workers == 1 {
        for (b, r) in blocks {
            body(b, r);
        }
        return;
    }
    // Split the block list over workers; each worker owns a disjoint chunk.
    let chunk = blocks.len().div_ceil(workers);
    let body = &body;
    thread::scope(|s| {
        for w in blocks.chunks(chunk) {
            s.spawn(move |_| {
                for (b, r) in w {
                    body(*b, r.clone());
                }
            });
        }
    })
    .expect("kernel worker panicked");
}

/// Maps each block of `input` (chunks of `block_len`) to an output value,
/// in parallel; the result vector preserves block order.
pub fn par_map_blocks<T: Sync, R: Send + Default + Clone>(
    input: &[T],
    block_len: usize,
    f: impl Fn(usize, &[T]) -> R + Sync,
) -> Vec<R> {
    assert!(block_len > 0, "block length must be positive");
    let n_blocks = input.len().div_ceil(block_len);
    let mut out = vec![R::default(); n_blocks];
    let out_ptr = SyncSlice(out.as_mut_ptr());
    par_for_blocks(n_blocks, n_blocks, |_, range| {
        for b in range {
            let lo = b * block_len;
            let hi = (lo + block_len).min(input.len());
            let val = f(b, &input[lo..hi]);
            // SAFETY: each block index b is visited exactly once across all
            // workers (par_for_blocks hands out disjoint ranges), so each
            // out[b] slot is written by exactly one thread.
            unsafe { *out_ptr.get().add(b) = val };
        }
    });
    out
}

/// Pointer wrapper asserting disjoint-write safety across threads. Accessed
/// only through [`SyncSlice::get`] so closures capture the whole wrapper
/// (edition-2021 disjoint capture would otherwise grab the bare pointer).
struct SyncSlice<R>(*mut R);

impl<R> SyncSlice<R> {
    fn get(&self) -> *mut R {
        self.0
    }
}

// SAFETY: the wrapper is only used with disjoint indices per thread.
unsafe impl<R> Sync for SyncSlice<R> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn covers_every_item_once() {
        let n = 10_001;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        par_for_blocks(n, 64, |_, range| {
            for i in range {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn handles_fewer_items_than_blocks() {
        let count = AtomicUsize::new(0);
        par_for_blocks(3, 16, |_, range| {
            count.fetch_add(range.len(), Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn zero_items_is_a_noop() {
        par_for_blocks(0, 8, |_, _| panic!("must not run"));
    }

    #[test]
    fn map_blocks_preserves_order() {
        let data: Vec<u32> = (0..1000).collect();
        let sums = par_map_blocks(&data, 100, |b, chunk| {
            (b, chunk.iter().sum::<u32>())
        });
        assert_eq!(sums.len(), 10);
        for (b, (idx, _)) in sums.iter().enumerate() {
            assert_eq!(b, *idx);
        }
        let total: u32 = sums.iter().map(|(_, s)| s).sum();
        assert_eq!(total, 499_500);
    }

    #[test]
    fn map_blocks_partial_tail() {
        let data = [1u32, 2, 3, 4, 5];
        let lens = par_map_blocks(&data, 2, |_, chunk| chunk.len());
        assert_eq!(lens, vec![2, 2, 1]);
    }
}
