//! Device specifications and the roofline cost model.
//!
//! The paper measures GPU compressors on an NVIDIA A100. Without CUDA
//! hardware, we model a device explicitly: a kernel declares how much memory
//! it moves, how many flops it performs, its dominant access pattern and its
//! serial fraction, and the model charges simulated time from a roofline:
//!
//! `t = launch_latency + max(bytes / (BW · eff), flops / (peak · eff_c))
//!      · (1 − s) + serial_term`
//!
//! The *relative* ordering of compressor throughputs (cuSZx ≫ cuSZ ≫
//! deflate-class) is produced by their pass structure and access patterns —
//! not hardcoded — while absolute GB/s land in the range published for the
//! A100 because the constants below are the A100's.

/// Dominant memory-access pattern of a kernel, mapped to a bandwidth
/// efficiency factor by the device spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoryPattern {
    /// Fully coalesced streaming loads/stores.
    Streaming,
    /// Mostly coalesced with some shuffling (block transposes, scans).
    Strided,
    /// Data-dependent scatter/gather or heavy atomics (histograms).
    Random,
    /// Bit-granular variable-length output (entropy-coder emission).
    BitSerial,
}

/// A simulated accelerator.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Marketing name, for reports.
    pub name: &'static str,
    /// Number of streaming multiprocessors.
    pub sm_count: u32,
    /// HBM bandwidth in bytes per second.
    pub hbm_bytes_per_sec: f64,
    /// Peak FP64 throughput in flop/s.
    pub fp64_flops: f64,
    /// Peak FP32/integer throughput in flop/s (integer ops are charged here).
    pub fp32_flops: f64,
    /// Fixed kernel-launch latency in seconds.
    pub launch_latency_s: f64,
    /// Host↔device copy bandwidth in bytes per second (PCIe 4.0 x16).
    pub pcie_bytes_per_sec: f64,
    /// Bandwidth efficiency for each [`MemoryPattern`], in [0, 1].
    pub eff_streaming: f64,
    /// See `eff_streaming`.
    pub eff_strided: f64,
    /// See `eff_streaming`.
    pub eff_random: f64,
    /// See `eff_streaming`.
    pub eff_bit_serial: f64,
}

impl DeviceSpec {
    /// NVIDIA A100-SXM4-40GB (the paper's testbed).
    pub fn a100() -> Self {
        DeviceSpec {
            name: "A100-SXM4-40GB (simulated)",
            sm_count: 108,
            hbm_bytes_per_sec: 1555.0e9,
            fp64_flops: 9.7e12,
            fp32_flops: 19.5e12,
            launch_latency_s: 4.0e-6,
            pcie_bytes_per_sec: 26.0e9,
            eff_streaming: 0.85,
            eff_strided: 0.55,
            eff_random: 0.14,
            eff_bit_serial: 0.06,
        }
    }

    /// NVIDIA V100 (an older point of comparison for scaling studies).
    pub fn v100() -> Self {
        DeviceSpec {
            name: "V100-SXM2-32GB (simulated)",
            sm_count: 80,
            hbm_bytes_per_sec: 900.0e9,
            fp64_flops: 7.8e12,
            fp32_flops: 15.7e12,
            launch_latency_s: 5.0e-6,
            pcie_bytes_per_sec: 13.0e9,
            eff_streaming: 0.82,
            eff_strided: 0.50,
            eff_random: 0.12,
            eff_bit_serial: 0.05,
        }
    }

    /// Bandwidth efficiency for a pattern.
    pub fn efficiency(&self, pattern: MemoryPattern) -> f64 {
        match pattern {
            MemoryPattern::Streaming => self.eff_streaming,
            MemoryPattern::Strided => self.eff_strided,
            MemoryPattern::Random => self.eff_random,
            MemoryPattern::BitSerial => self.eff_bit_serial,
        }
    }
}

/// Work declaration for one kernel launch.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelSpec {
    /// Kernel name, for the event log.
    pub name: &'static str,
    /// Bytes read from device memory.
    pub bytes_read: u64,
    /// Bytes written to device memory.
    pub bytes_written: u64,
    /// Floating-point (or heavy integer) operations performed.
    pub flops: u64,
    /// Dominant access pattern.
    pub pattern: MemoryPattern,
    /// Fraction of the kernel's work that serializes (Amdahl): e.g. a
    /// single-thread codebook construction inside an otherwise parallel
    /// kernel. 0 for fully parallel kernels.
    pub serial_fraction: f64,
}

impl KernelSpec {
    /// A fully parallel streaming kernel moving `bytes_read`/`bytes_written`.
    pub fn streaming(name: &'static str, bytes_read: u64, bytes_written: u64) -> Self {
        KernelSpec {
            name,
            bytes_read,
            bytes_written,
            flops: 0,
            pattern: MemoryPattern::Streaming,
            serial_fraction: 0.0,
        }
    }

    /// Builder: sets flops.
    pub fn with_flops(mut self, flops: u64) -> Self {
        self.flops = flops;
        self
    }

    /// Builder: sets the access pattern.
    pub fn with_pattern(mut self, pattern: MemoryPattern) -> Self {
        self.pattern = pattern;
        self
    }

    /// Builder: sets the serial fraction.
    ///
    /// # Panics
    /// Panics when outside [0, 1].
    pub fn with_serial_fraction(mut self, s: f64) -> Self {
        assert!((0.0..=1.0).contains(&s), "serial fraction must be in [0,1]");
        self.serial_fraction = s;
        self
    }

    /// Simulated execution time on `device`, in seconds.
    pub fn time_on(&self, device: &DeviceSpec) -> f64 {
        let eff = device.efficiency(self.pattern);
        let mem_t =
            (self.bytes_read + self.bytes_written) as f64 / (device.hbm_bytes_per_sec * eff);
        let cmp_t = self.flops as f64 / (device.fp64_flops * eff.max(0.25));
        let parallel_t = mem_t.max(cmp_t);
        // Amdahl: the serial share runs at single-SM speed.
        let serial_t = parallel_t * self.serial_fraction * (device.sm_count as f64 - 1.0);
        device.launch_latency_s + parallel_t + serial_t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_kernel_near_peak_bandwidth() {
        let dev = DeviceSpec::a100();
        let bytes = 1u64 << 30; // 1 GiB read + nothing written
        let k = KernelSpec::streaming("copy", bytes, bytes);
        let t = k.time_on(&dev);
        let gbps = (2 * bytes) as f64 / t / 1e9;
        assert!(gbps > 1000.0 && gbps < 1555.0, "achieved {gbps} GB/s");
    }

    #[test]
    fn random_pattern_is_much_slower() {
        let dev = DeviceSpec::a100();
        let bytes = 1u64 << 28;
        let stream = KernelSpec::streaming("s", bytes, 0).time_on(&dev);
        let random = KernelSpec::streaming("r", bytes, 0)
            .with_pattern(MemoryPattern::Random)
            .time_on(&dev);
        assert!(random > 4.0 * stream);
    }

    #[test]
    fn launch_latency_dominates_tiny_kernels() {
        let dev = DeviceSpec::a100();
        let k = KernelSpec::streaming("tiny", 64, 64);
        let t = k.time_on(&dev);
        assert!(t >= dev.launch_latency_s);
        assert!(t < 2.0 * dev.launch_latency_s);
    }

    #[test]
    fn serial_fraction_applies_amdahl() {
        let dev = DeviceSpec::a100();
        let bytes = 1u64 << 26;
        let par = KernelSpec::streaming("p", bytes, 0).time_on(&dev);
        let half_serial = KernelSpec::streaming("s", bytes, 0)
            .with_serial_fraction(0.5)
            .time_on(&dev);
        assert!(half_serial > 10.0 * par, "{half_serial} vs {par}");
    }

    #[test]
    fn compute_bound_kernel_charged_by_flops() {
        let dev = DeviceSpec::a100();
        let k = KernelSpec::streaming("fma", 1024, 1024).with_flops(1u64 << 40);
        let t = k.time_on(&dev);
        // 2^40 flops at <= 9.7 Tflop/s -> >= 0.1 s
        assert!(t > 0.1);
    }

    #[test]
    fn v100_is_slower_than_a100() {
        let bytes = 1u64 << 30;
        let k = KernelSpec::streaming("copy", bytes, bytes);
        assert!(k.time_on(&DeviceSpec::v100()) > k.time_on(&DeviceSpec::a100()));
    }

    #[test]
    #[should_panic(expected = "serial fraction")]
    fn bad_serial_fraction_panics() {
        KernelSpec::streaming("x", 1, 1).with_serial_fraction(1.5);
    }
}
