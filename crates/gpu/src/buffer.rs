//! Device memory accounting and scratch-buffer reuse.
//!
//! The whole point of the paper is shrinking device-memory footprint, so the
//! model tracks allocations explicitly: a [`MemoryPool`] counts live and
//! peak bytes, and [`DeviceBuffer`]s return their bytes on drop. The
//! end-to-end footprint experiment (E9) reads these counters.
//!
//! [`ScratchPool`] is the workspace-reuse half: hot loops (the contraction
//! loop's permute buffers, the plane encoders' byte buffers) check
//! same-typed `Vec`s back in after use instead of reallocating one per
//! intermediate, mirroring how the CUDA implementations keep one workspace
//! arena per stream.

use qcf_telemetry::Counter;
use std::sync::{Arc, Mutex, MutexGuard};

fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // Counters and free-lists stay consistent even if a holder panicked
    // mid-update elsewhere; recover rather than cascade the panic.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Shared allocation counters for one simulated device.
#[derive(Debug, Clone, Default)]
pub struct MemoryPool {
    inner: Arc<Mutex<PoolState>>,
}

#[derive(Debug, Default)]
struct PoolState {
    live_bytes: u64,
    peak_bytes: u64,
    allocations: u64,
}

impl MemoryPool {
    /// A fresh pool with zeroed counters.
    pub fn new() -> Self {
        MemoryPool::default()
    }

    /// Currently allocated bytes.
    pub fn live_bytes(&self) -> u64 {
        lock_unpoisoned(&self.inner).live_bytes
    }

    /// High-water mark of allocated bytes.
    pub fn peak_bytes(&self) -> u64 {
        lock_unpoisoned(&self.inner).peak_bytes
    }

    /// Total number of allocations performed.
    pub fn allocations(&self) -> u64 {
        lock_unpoisoned(&self.inner).allocations
    }

    fn charge(&self, bytes: u64) {
        let mut st = lock_unpoisoned(&self.inner);
        st.live_bytes += bytes;
        st.peak_bytes = st.peak_bytes.max(st.live_bytes);
        st.allocations += 1;
    }

    fn release(&self, bytes: u64) {
        let mut st = lock_unpoisoned(&self.inner);
        debug_assert!(st.live_bytes >= bytes, "double free in memory pool");
        st.live_bytes = st.live_bytes.saturating_sub(bytes);
    }
}

/// A typed device allocation charged against a [`MemoryPool`].
#[derive(Debug)]
pub struct DeviceBuffer<T> {
    data: Vec<T>,
    pool: MemoryPool,
}

impl<T: Clone + Default> DeviceBuffer<T> {
    /// Allocates `len` zero/default-initialized elements.
    pub fn zeroed(pool: &MemoryPool, len: usize) -> Self {
        let data = vec![T::default(); len];
        pool.charge((len * std::mem::size_of::<T>()) as u64);
        DeviceBuffer {
            data,
            pool: pool.clone(),
        }
    }

    /// Allocates a copy of host data ("H2D" without the timing; charge the
    /// transfer on a stream separately if it matters).
    pub fn from_host(pool: &MemoryPool, host: &[T]) -> Self {
        let data = host.to_vec();
        pool.charge(std::mem::size_of_val(host) as u64);
        DeviceBuffer {
            data,
            pool: pool.clone(),
        }
    }
}

impl<T> DeviceBuffer<T> {
    /// Element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read access.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Write access.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Copies back to host ("D2H").
    pub fn to_host(&self) -> Vec<T>
    where
        T: Clone,
    {
        self.data.clone()
    }
}

impl<T> Drop for DeviceBuffer<T> {
    fn drop(&mut self) {
        self.pool
            .release((self.data.len() * std::mem::size_of::<T>()) as u64);
    }
}

/// Maximum buffers a [`ScratchPool`] retains; beyond this, returned
/// buffers are simply dropped. Bounds worst-case memory held by the pool.
const SCRATCH_POOL_CAP: usize = 16;

/// A thread-safe free-list of reusable `Vec<T>` workspaces.
///
/// `take(len)` returns a vector of exactly `len` default-initialized
/// elements, reusing the capacity of a previously [`put`]-back buffer when
/// one is available; `put` checks a buffer back in. Clones share the
/// free-list.
///
/// The pool never hands the same buffer to two callers: `take` removes it
/// from the list and `put` re-inserts it, both under the lock, so pooled
/// buffers are safe to use from executor workers (each worker takes its
/// own). Contents of a reused buffer are always reset by `take`, so reuse
/// can never leak data across users — which also keeps pooled and
/// non-pooled runs bit-identical.
///
/// [`put`]: ScratchPool::put
#[derive(Debug, Default, Clone)]
pub struct ScratchPool<T> {
    inner: Arc<Mutex<ScratchState<T>>>,
    counters: Option<(Arc<Counter>, Arc<Counter>)>,
}

#[derive(Debug)]
struct ScratchState<T> {
    free: Vec<Vec<T>>,
    hits: u64,
    misses: u64,
}

impl<T> Default for ScratchState<T> {
    fn default() -> Self {
        ScratchState {
            free: Vec::new(),
            hits: 0,
            misses: 0,
        }
    }
}

impl<T: Clone + Default> ScratchPool<T> {
    /// A fresh, empty pool.
    pub fn new() -> Self {
        ScratchPool {
            inner: Arc::default(),
            counters: None,
        }
    }

    /// A fresh pool that mirrors hits/misses into the telemetry registry
    /// as `<prefix>.hits` / `<prefix>.misses` (counter handles are cached
    /// here, so `take` pays one atomic add, not a registry lookup).
    pub fn with_metrics(prefix: &str) -> Self {
        let r = qcf_telemetry::registry();
        ScratchPool {
            inner: Arc::default(),
            counters: Some((
                r.counter(&format!("{prefix}.hits")),
                r.counter(&format!("{prefix}.misses")),
            )),
        }
    }

    /// A vector of `len` default-initialized elements, reusing pooled
    /// capacity when possible.
    pub fn take(&self, len: usize) -> Vec<T> {
        self.take_reporting(len).0
    }

    /// Like [`take`](ScratchPool::take), but also reports whether the
    /// request was served from the free-list (`true`) or had to allocate
    /// (`false`). [`Workspace`] uses this to count bytes reused vs.
    /// allocated.
    pub fn take_reporting(&self, len: usize) -> (Vec<T>, bool) {
        let reused = {
            let mut st = lock_unpoisoned(&self.inner);
            // Prefer the buffer whose capacity fits best, to keep big
            // buffers available for big requests.
            let best = st
                .free
                .iter()
                .enumerate()
                .filter(|(_, b)| b.capacity() >= len)
                .min_by_key(|(_, b)| b.capacity())
                .map(|(i, _)| i);
            match best {
                Some(i) => {
                    st.hits += 1;
                    Some(st.free.swap_remove(i))
                }
                None => {
                    st.misses += 1;
                    None
                }
            }
        };
        if let Some((hits, misses)) = &self.counters {
            if reused.is_some() {
                hits.inc();
            } else {
                misses.inc();
            }
        }
        match reused {
            Some(mut buf) => {
                buf.clear();
                buf.resize(len, T::default());
                (buf, true)
            }
            None => (vec![T::default(); len], false),
        }
    }

    /// An **empty** vector with at least `cap` spare capacity, reusing
    /// pooled capacity when possible. For output buffers that grow by
    /// `push`/`extend` rather than being indexed up front.
    pub fn take_spare_reporting(&self, cap: usize) -> (Vec<T>, bool) {
        let reused = {
            let mut st = lock_unpoisoned(&self.inner);
            let best = st
                .free
                .iter()
                .enumerate()
                .filter(|(_, b)| b.capacity() >= cap)
                .min_by_key(|(_, b)| b.capacity())
                .map(|(i, _)| i);
            match best {
                Some(i) => {
                    st.hits += 1;
                    Some(st.free.swap_remove(i))
                }
                None => {
                    st.misses += 1;
                    None
                }
            }
        };
        if let Some((hits, misses)) = &self.counters {
            if reused.is_some() {
                hits.inc();
            } else {
                misses.inc();
            }
        }
        match reused {
            Some(mut buf) => {
                buf.clear();
                (buf, true)
            }
            None => (Vec::with_capacity(cap), false),
        }
    }

    /// Checks `buf` back in for reuse (dropped if the pool is full).
    pub fn put(&self, buf: Vec<T>) {
        if buf.capacity() == 0 {
            return;
        }
        let mut st = lock_unpoisoned(&self.inner);
        if st.free.len() < SCRATCH_POOL_CAP {
            st.free.push(buf);
        }
    }

    /// `(hits, misses)` of `take` against the free-list, for tests and
    /// footprint reports.
    pub fn stats(&self) -> (u64, u64) {
        let st = lock_unpoisoned(&self.inner);
        (st.hits, st.misses)
    }
}

/// A grown-once set of reusable scratch buffers for the compression
/// pipeline: one free-list per element type the stages traffic in — `f64`
/// value planes, `u8` byte streams, `u32` symbol/reference buffers.
///
/// `Workspace` generalizes [`ScratchPool`]: clones share the underlying
/// pools, so a workspace embedded in a compressor travels with it cheaply
/// and every user amortizes the same buffers. After a few round trips the
/// pools hold the high-water-mark capacities and `take_*` stops touching
/// the allocator entirely.
///
/// Reuse accounting is kept locally (always exact, telemetry on or off)
/// and mirrored into the registry counters `workspace.bytes_reused` /
/// `workspace.bytes_allocated` when telemetry is enabled.
#[derive(Debug, Clone)]
pub struct Workspace {
    f64s: ScratchPool<f64>,
    u8s: ScratchPool<u8>,
    u32s: ScratchPool<u32>,
    acct: Arc<WorkspaceAcct>,
}

#[derive(Debug)]
struct WorkspaceAcct {
    bytes_reused: std::sync::atomic::AtomicU64,
    bytes_allocated: std::sync::atomic::AtomicU64,
    reused_ctr: Arc<Counter>,
    allocated_ctr: Arc<Counter>,
}

/// Exact byte-level reuse accounting of one [`Workspace`] (and its clones).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkspaceStats {
    /// Bytes of `take_*` requests served from pooled capacity (no heap
    /// allocation performed).
    pub bytes_reused: u64,
    /// Bytes of `take_*` requests that had to allocate fresh capacity.
    pub bytes_allocated: u64,
}

impl Default for Workspace {
    fn default() -> Self {
        Workspace::new()
    }
}

impl Workspace {
    /// A fresh workspace with empty pools.
    pub fn new() -> Self {
        let r = qcf_telemetry::registry();
        Workspace {
            f64s: ScratchPool::new(),
            u8s: ScratchPool::new(),
            u32s: ScratchPool::new(),
            acct: Arc::new(WorkspaceAcct {
                bytes_reused: std::sync::atomic::AtomicU64::new(0),
                bytes_allocated: std::sync::atomic::AtomicU64::new(0),
                reused_ctr: r.counter("workspace.bytes_reused"),
                allocated_ctr: r.counter("workspace.bytes_allocated"),
            }),
        }
    }

    #[inline]
    fn account(&self, bytes: usize, reused: bool) {
        use std::sync::atomic::Ordering;
        if reused {
            self.acct
                .bytes_reused
                .fetch_add(bytes as u64, Ordering::Relaxed);
            self.acct.reused_ctr.add(bytes as u64);
        } else {
            self.acct
                .bytes_allocated
                .fetch_add(bytes as u64, Ordering::Relaxed);
            self.acct.allocated_ctr.add(bytes as u64);
        }
    }

    /// A zeroed `f64` buffer of `len`, reusing pooled capacity when possible.
    pub fn take_f64(&self, len: usize) -> Vec<f64> {
        let (buf, hit) = self.f64s.take_reporting(len);
        self.account(len * 8, hit);
        buf
    }

    /// Checks an `f64` buffer back in for reuse.
    pub fn put_f64(&self, buf: Vec<f64>) {
        self.f64s.put(buf);
    }

    /// A zeroed byte buffer of `len`, reusing pooled capacity when possible.
    pub fn take_u8(&self, len: usize) -> Vec<u8> {
        let (buf, hit) = self.u8s.take_reporting(len);
        self.account(len, hit);
        buf
    }

    /// An **empty** byte buffer with at least `cap` spare capacity, for
    /// streams assembled by `push`/`extend` (codec outputs, plane bodies).
    pub fn take_u8_spare(&self, cap: usize) -> Vec<u8> {
        let (buf, hit) = self.u8s.take_spare_reporting(cap);
        self.account(buf.capacity().max(cap), hit);
        buf
    }

    /// Checks a byte buffer back in for reuse.
    pub fn put_u8(&self, buf: Vec<u8>) {
        self.u8s.put(buf);
    }

    /// A zeroed `u32` buffer of `len`, reusing pooled capacity when possible.
    pub fn take_u32(&self, len: usize) -> Vec<u32> {
        let (buf, hit) = self.u32s.take_reporting(len);
        self.account(len * 4, hit);
        buf
    }

    /// An **empty** `u32` buffer with at least `cap` spare capacity (symbol
    /// streams assembled by `push`/`extend`).
    pub fn take_u32_spare(&self, cap: usize) -> Vec<u32> {
        let (buf, hit) = self.u32s.take_spare_reporting(cap);
        self.account((buf.capacity().max(cap)) * 4, hit);
        buf
    }

    /// An **empty** `f64` buffer with at least `cap` spare capacity (value
    /// streams assembled by `push`/`extend`).
    pub fn take_f64_spare(&self, cap: usize) -> Vec<f64> {
        let (buf, hit) = self.f64s.take_spare_reporting(cap);
        self.account((buf.capacity().max(cap)) * 8, hit);
        buf
    }

    /// Checks a `u32` buffer back in for reuse.
    pub fn put_u32(&self, buf: Vec<u32>) {
        self.u32s.put(buf);
    }

    /// Bytes served from pooled capacity vs. freshly allocated, across this
    /// workspace and all its clones.
    pub fn stats(&self) -> WorkspaceStats {
        use std::sync::atomic::Ordering;
        WorkspaceStats {
            bytes_reused: self.acct.bytes_reused.load(Ordering::Relaxed),
            bytes_allocated: self.acct.bytes_allocated.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_and_peak_track_alloc_free() {
        let pool = MemoryPool::new();
        {
            let a = DeviceBuffer::<f64>::zeroed(&pool, 100);
            assert_eq!(pool.live_bytes(), 800);
            let b = DeviceBuffer::<f64>::zeroed(&pool, 50);
            assert_eq!(pool.live_bytes(), 1200);
            assert_eq!(pool.peak_bytes(), 1200);
            drop(a);
            assert_eq!(pool.live_bytes(), 400);
            drop(b);
        }
        assert_eq!(pool.live_bytes(), 0);
        assert_eq!(pool.peak_bytes(), 1200);
        assert_eq!(pool.allocations(), 2);
    }

    #[test]
    fn from_host_copies() {
        let pool = MemoryPool::new();
        let buf = DeviceBuffer::from_host(&pool, &[1u32, 2, 3]);
        assert_eq!(buf.as_slice(), &[1, 2, 3]);
        assert_eq!(buf.to_host(), vec![1, 2, 3]);
        assert_eq!(pool.live_bytes(), 12);
    }

    #[test]
    fn mutation_through_slice() {
        let pool = MemoryPool::new();
        let mut buf = DeviceBuffer::<u8>::zeroed(&pool, 4);
        buf.as_mut_slice()[2] = 7;
        assert_eq!(buf.as_slice(), &[0, 0, 7, 0]);
    }

    #[test]
    fn scratch_reuses_capacity() {
        let pool = ScratchPool::<f64>::new();
        let mut a = pool.take(100);
        a[0] = 3.5;
        let cap = a.capacity();
        pool.put(a);
        let b = pool.take(80);
        assert_eq!(b.capacity(), cap, "must reuse the checked-in buffer");
        assert!(b.iter().all(|&v| v == 0.0), "reused buffer must be reset");
        assert_eq!(pool.stats(), (1, 1));
    }

    #[test]
    fn scratch_misses_when_too_small() {
        let pool = ScratchPool::<u8>::new();
        pool.put(Vec::with_capacity(10));
        let big = pool.take(1000);
        assert_eq!(big.len(), 1000);
        assert_eq!(pool.stats(), (0, 1));
    }

    #[test]
    fn scratch_prefers_tightest_fit() {
        let pool = ScratchPool::<u8>::new();
        pool.put(Vec::with_capacity(4096));
        pool.put(Vec::with_capacity(64));
        let buf = pool.take(50);
        assert!(buf.capacity() < 4096, "should pick the 64-cap buffer");
    }

    #[test]
    fn scratch_is_bounded() {
        let pool = ScratchPool::<u8>::new();
        for _ in 0..100 {
            pool.put(Vec::with_capacity(8));
        }
        let st = lock_unpoisoned(&pool.inner);
        assert!(st.free.len() <= SCRATCH_POOL_CAP);
    }

    #[test]
    fn scratch_shared_across_clones_and_threads() {
        let pool = ScratchPool::<f64>::new();
        let clone = pool.clone();
        std::thread::scope(|s| {
            s.spawn(|| {
                let buf = clone.take(32);
                clone.put(buf);
            });
        });
        let (_hits, misses) = pool.stats();
        assert_eq!(misses, 1);
        let buf = pool.take(16);
        assert_eq!(pool.stats().0, 1, "clone's buffer visible to original");
        pool.put(buf);
    }

    #[test]
    fn workspace_reuses_across_types_and_clones() {
        let ws = Workspace::new();
        let f = ws.take_f64(100);
        let b = ws.take_u8(64);
        let s = ws.take_u32(32);
        assert_eq!(f.len(), 100);
        assert!(f.iter().all(|&x| x == 0.0));
        let st = ws.stats();
        assert_eq!(st.bytes_reused, 0);
        assert_eq!(st.bytes_allocated, 100 * 8 + 64 + 32 * 4);

        let clone = ws.clone();
        clone.put_f64(f);
        clone.put_u8(b);
        clone.put_u32(s);

        // Smaller requests fit in the returned capacities: all reuse.
        let f2 = ws.take_f64(80);
        let b2 = ws.take_u8(64);
        let s2 = ws.take_u32(10);
        assert_eq!((f2.len(), b2.len(), s2.len()), (80, 64, 10));
        let st = ws.stats();
        assert_eq!(st.bytes_reused, 80 * 8 + 64 + 10 * 4);
        assert_eq!(st.bytes_allocated, 100 * 8 + 64 + 32 * 4, "unchanged");
    }
}
