//! Device memory accounting.
//!
//! The whole point of the paper is shrinking device-memory footprint, so the
//! model tracks allocations explicitly: a [`MemoryPool`] counts live and
//! peak bytes, and [`DeviceBuffer`]s return their bytes on drop. The
//! end-to-end footprint experiment (E9) reads these counters.

use parking_lot::Mutex;
use std::sync::Arc;

/// Shared allocation counters for one simulated device.
#[derive(Debug, Clone, Default)]
pub struct MemoryPool {
    inner: Arc<Mutex<PoolState>>,
}

#[derive(Debug, Default)]
struct PoolState {
    live_bytes: u64,
    peak_bytes: u64,
    allocations: u64,
}

impl MemoryPool {
    /// A fresh pool with zeroed counters.
    pub fn new() -> Self {
        MemoryPool::default()
    }

    /// Currently allocated bytes.
    pub fn live_bytes(&self) -> u64 {
        self.inner.lock().live_bytes
    }

    /// High-water mark of allocated bytes.
    pub fn peak_bytes(&self) -> u64 {
        self.inner.lock().peak_bytes
    }

    /// Total number of allocations performed.
    pub fn allocations(&self) -> u64 {
        self.inner.lock().allocations
    }

    fn charge(&self, bytes: u64) {
        let mut st = self.inner.lock();
        st.live_bytes += bytes;
        st.peak_bytes = st.peak_bytes.max(st.live_bytes);
        st.allocations += 1;
    }

    fn release(&self, bytes: u64) {
        let mut st = self.inner.lock();
        debug_assert!(st.live_bytes >= bytes, "double free in memory pool");
        st.live_bytes = st.live_bytes.saturating_sub(bytes);
    }
}

/// A typed device allocation charged against a [`MemoryPool`].
#[derive(Debug)]
pub struct DeviceBuffer<T> {
    data: Vec<T>,
    pool: MemoryPool,
}

impl<T: Clone + Default> DeviceBuffer<T> {
    /// Allocates `len` zero/default-initialized elements.
    pub fn zeroed(pool: &MemoryPool, len: usize) -> Self {
        let data = vec![T::default(); len];
        pool.charge((len * std::mem::size_of::<T>()) as u64);
        DeviceBuffer { data, pool: pool.clone() }
    }

    /// Allocates a copy of host data ("H2D" without the timing; charge the
    /// transfer on a stream separately if it matters).
    pub fn from_host(pool: &MemoryPool, host: &[T]) -> Self {
        let data = host.to_vec();
        pool.charge(std::mem::size_of_val(host) as u64);
        DeviceBuffer { data, pool: pool.clone() }
    }
}

impl<T> DeviceBuffer<T> {
    /// Element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read access.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Write access.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Copies back to host ("D2H").
    pub fn to_host(&self) -> Vec<T>
    where
        T: Clone,
    {
        self.data.clone()
    }
}

impl<T> Drop for DeviceBuffer<T> {
    fn drop(&mut self) {
        self.pool.release((self.data.len() * std::mem::size_of::<T>()) as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_and_peak_track_alloc_free() {
        let pool = MemoryPool::new();
        {
            let a = DeviceBuffer::<f64>::zeroed(&pool, 100);
            assert_eq!(pool.live_bytes(), 800);
            let b = DeviceBuffer::<f64>::zeroed(&pool, 50);
            assert_eq!(pool.live_bytes(), 1200);
            assert_eq!(pool.peak_bytes(), 1200);
            drop(a);
            assert_eq!(pool.live_bytes(), 400);
            drop(b);
        }
        assert_eq!(pool.live_bytes(), 0);
        assert_eq!(pool.peak_bytes(), 1200);
        assert_eq!(pool.allocations(), 2);
    }

    #[test]
    fn from_host_copies() {
        let pool = MemoryPool::new();
        let buf = DeviceBuffer::from_host(&pool, &[1u32, 2, 3]);
        assert_eq!(buf.as_slice(), &[1, 2, 3]);
        assert_eq!(buf.to_host(), vec![1, 2, 3]);
        assert_eq!(pool.live_bytes(), 12);
    }

    #[test]
    fn mutation_through_slice() {
        let pool = MemoryPool::new();
        let mut buf = DeviceBuffer::<u8>::zeroed(&pool, 4);
        buf.as_mut_slice()[2] = 7;
        assert_eq!(buf.as_slice(), &[0, 0, 7, 0]);
    }
}
