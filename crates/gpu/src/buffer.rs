//! Device memory accounting and scratch-buffer reuse.
//!
//! The whole point of the paper is shrinking device-memory footprint, so the
//! model tracks allocations explicitly: a [`MemoryPool`] counts live and
//! peak bytes, and [`DeviceBuffer`]s return their bytes on drop. The
//! end-to-end footprint experiment (E9) reads these counters.
//!
//! [`ScratchPool`] is the workspace-reuse half: hot loops (the contraction
//! loop's permute buffers, the plane encoders' byte buffers) check
//! same-typed `Vec`s back in after use instead of reallocating one per
//! intermediate, mirroring how the CUDA implementations keep one workspace
//! arena per stream.

use qcf_telemetry::Counter;
use std::sync::{Arc, Mutex, MutexGuard};

fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // Counters and free-lists stay consistent even if a holder panicked
    // mid-update elsewhere; recover rather than cascade the panic.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Shared allocation counters for one simulated device.
#[derive(Debug, Clone, Default)]
pub struct MemoryPool {
    inner: Arc<Mutex<PoolState>>,
}

#[derive(Debug, Default)]
struct PoolState {
    live_bytes: u64,
    peak_bytes: u64,
    allocations: u64,
}

impl MemoryPool {
    /// A fresh pool with zeroed counters.
    pub fn new() -> Self {
        MemoryPool::default()
    }

    /// Currently allocated bytes.
    pub fn live_bytes(&self) -> u64 {
        lock_unpoisoned(&self.inner).live_bytes
    }

    /// High-water mark of allocated bytes.
    pub fn peak_bytes(&self) -> u64 {
        lock_unpoisoned(&self.inner).peak_bytes
    }

    /// Total number of allocations performed.
    pub fn allocations(&self) -> u64 {
        lock_unpoisoned(&self.inner).allocations
    }

    fn charge(&self, bytes: u64) {
        let mut st = lock_unpoisoned(&self.inner);
        st.live_bytes += bytes;
        st.peak_bytes = st.peak_bytes.max(st.live_bytes);
        st.allocations += 1;
    }

    fn release(&self, bytes: u64) {
        let mut st = lock_unpoisoned(&self.inner);
        debug_assert!(st.live_bytes >= bytes, "double free in memory pool");
        st.live_bytes = st.live_bytes.saturating_sub(bytes);
    }
}

/// A typed device allocation charged against a [`MemoryPool`].
#[derive(Debug)]
pub struct DeviceBuffer<T> {
    data: Vec<T>,
    pool: MemoryPool,
}

impl<T: Clone + Default> DeviceBuffer<T> {
    /// Allocates `len` zero/default-initialized elements.
    pub fn zeroed(pool: &MemoryPool, len: usize) -> Self {
        let data = vec![T::default(); len];
        pool.charge((len * std::mem::size_of::<T>()) as u64);
        DeviceBuffer {
            data,
            pool: pool.clone(),
        }
    }

    /// Allocates a copy of host data ("H2D" without the timing; charge the
    /// transfer on a stream separately if it matters).
    pub fn from_host(pool: &MemoryPool, host: &[T]) -> Self {
        let data = host.to_vec();
        pool.charge(std::mem::size_of_val(host) as u64);
        DeviceBuffer {
            data,
            pool: pool.clone(),
        }
    }
}

impl<T> DeviceBuffer<T> {
    /// Element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read access.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Write access.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Copies back to host ("D2H").
    pub fn to_host(&self) -> Vec<T>
    where
        T: Clone,
    {
        self.data.clone()
    }
}

impl<T> Drop for DeviceBuffer<T> {
    fn drop(&mut self) {
        self.pool
            .release((self.data.len() * std::mem::size_of::<T>()) as u64);
    }
}

/// Maximum buffers a [`ScratchPool`] retains; beyond this, returned
/// buffers are simply dropped. Bounds worst-case memory held by the pool.
const SCRATCH_POOL_CAP: usize = 16;

/// A thread-safe free-list of reusable `Vec<T>` workspaces.
///
/// `take(len)` returns a vector of exactly `len` default-initialized
/// elements, reusing the capacity of a previously [`put`]-back buffer when
/// one is available; `put` checks a buffer back in. Clones share the
/// free-list.
///
/// The pool never hands the same buffer to two callers: `take` removes it
/// from the list and `put` re-inserts it, both under the lock, so pooled
/// buffers are safe to use from executor workers (each worker takes its
/// own). Contents of a reused buffer are always reset by `take`, so reuse
/// can never leak data across users — which also keeps pooled and
/// non-pooled runs bit-identical.
///
/// [`put`]: ScratchPool::put
#[derive(Debug, Default, Clone)]
pub struct ScratchPool<T> {
    inner: Arc<Mutex<ScratchState<T>>>,
    counters: Option<(Arc<Counter>, Arc<Counter>)>,
}

#[derive(Debug)]
struct ScratchState<T> {
    free: Vec<Vec<T>>,
    hits: u64,
    misses: u64,
}

impl<T> Default for ScratchState<T> {
    fn default() -> Self {
        ScratchState {
            free: Vec::new(),
            hits: 0,
            misses: 0,
        }
    }
}

impl<T: Clone + Default> ScratchPool<T> {
    /// A fresh, empty pool.
    pub fn new() -> Self {
        ScratchPool {
            inner: Arc::default(),
            counters: None,
        }
    }

    /// A fresh pool that mirrors hits/misses into the telemetry registry
    /// as `<prefix>.hits` / `<prefix>.misses` (counter handles are cached
    /// here, so `take` pays one atomic add, not a registry lookup).
    pub fn with_metrics(prefix: &str) -> Self {
        let r = qcf_telemetry::registry();
        ScratchPool {
            inner: Arc::default(),
            counters: Some((
                r.counter(&format!("{prefix}.hits")),
                r.counter(&format!("{prefix}.misses")),
            )),
        }
    }

    /// A vector of `len` default-initialized elements, reusing pooled
    /// capacity when possible.
    pub fn take(&self, len: usize) -> Vec<T> {
        self.take_reporting(len).0
    }

    /// Like [`take`](ScratchPool::take), but also reports whether the
    /// request was served from the free-list (`true`) or had to allocate
    /// (`false`). [`Workspace`] uses this to count bytes reused vs.
    /// allocated.
    pub fn take_reporting(&self, len: usize) -> (Vec<T>, bool) {
        let reused = {
            let mut st = lock_unpoisoned(&self.inner);
            // Prefer the buffer whose capacity fits best, to keep big
            // buffers available for big requests.
            let best = st
                .free
                .iter()
                .enumerate()
                .filter(|(_, b)| b.capacity() >= len)
                .min_by_key(|(_, b)| b.capacity())
                .map(|(i, _)| i);
            match best {
                Some(i) => {
                    st.hits += 1;
                    Some(st.free.swap_remove(i))
                }
                None => {
                    st.misses += 1;
                    None
                }
            }
        };
        if let Some((hits, misses)) = &self.counters {
            if reused.is_some() {
                hits.inc();
            } else {
                misses.inc();
            }
        }
        match reused {
            Some(mut buf) => {
                buf.clear();
                buf.resize(len, T::default());
                (buf, true)
            }
            None => (vec![T::default(); len], false),
        }
    }

    /// An **empty** vector with at least `cap` spare capacity, reusing
    /// pooled capacity when possible. For output buffers that grow by
    /// `push`/`extend` rather than being indexed up front.
    pub fn take_spare_reporting(&self, cap: usize) -> (Vec<T>, bool) {
        let reused = {
            let mut st = lock_unpoisoned(&self.inner);
            let best = st
                .free
                .iter()
                .enumerate()
                .filter(|(_, b)| b.capacity() >= cap)
                .min_by_key(|(_, b)| b.capacity())
                .map(|(i, _)| i);
            match best {
                Some(i) => {
                    st.hits += 1;
                    Some(st.free.swap_remove(i))
                }
                None => {
                    st.misses += 1;
                    None
                }
            }
        };
        if let Some((hits, misses)) = &self.counters {
            if reused.is_some() {
                hits.inc();
            } else {
                misses.inc();
            }
        }
        match reused {
            Some(mut buf) => {
                buf.clear();
                (buf, true)
            }
            None => (Vec::with_capacity(cap), false),
        }
    }

    /// Checks `buf` back in for reuse (dropped if the pool is full).
    pub fn put(&self, buf: Vec<T>) {
        if buf.capacity() == 0 {
            return;
        }
        let mut st = lock_unpoisoned(&self.inner);
        if st.free.len() < SCRATCH_POOL_CAP {
            st.free.push(buf);
        }
    }

    /// `(hits, misses)` of `take` against the free-list, for tests and
    /// footprint reports.
    pub fn stats(&self) -> (u64, u64) {
        let st = lock_unpoisoned(&self.inner);
        (st.hits, st.misses)
    }
}

/// A grown-once set of reusable scratch buffers for the compression
/// pipeline: one free-list per element type the stages traffic in — `f64`
/// value planes, `u8` byte streams, `u32` symbol/reference buffers.
///
/// `Workspace` generalizes [`ScratchPool`]: clones share the underlying
/// pools, so a workspace embedded in a compressor travels with it cheaply
/// and every user amortizes the same buffers. After a few round trips the
/// pools hold the high-water-mark capacities and `take_*` stops touching
/// the allocator entirely.
///
/// Reuse accounting is kept locally (always exact, telemetry on or off)
/// and mirrored into the registry counters `workspace.bytes_reused` /
/// `workspace.bytes_allocated` when telemetry is enabled.
#[derive(Debug, Clone)]
pub struct Workspace {
    f64s: ScratchPool<f64>,
    u8s: ScratchPool<u8>,
    u32s: ScratchPool<u32>,
    acct: Arc<WorkspaceAcct>,
}

#[derive(Debug)]
struct WorkspaceAcct {
    bytes_reused: std::sync::atomic::AtomicU64,
    bytes_allocated: std::sync::atomic::AtomicU64,
    reused_ctr: Arc<Counter>,
    allocated_ctr: Arc<Counter>,
}

/// Exact byte-level reuse accounting of one [`Workspace`] (and its clones).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkspaceStats {
    /// Bytes of `take_*` requests served from pooled capacity (no heap
    /// allocation performed).
    pub bytes_reused: u64,
    /// Bytes of `take_*` requests that had to allocate fresh capacity.
    pub bytes_allocated: u64,
}

impl Default for Workspace {
    fn default() -> Self {
        Workspace::new()
    }
}

impl Workspace {
    /// A fresh workspace with empty pools.
    pub fn new() -> Self {
        let r = qcf_telemetry::registry();
        Workspace {
            f64s: ScratchPool::new(),
            u8s: ScratchPool::new(),
            u32s: ScratchPool::new(),
            acct: Arc::new(WorkspaceAcct {
                bytes_reused: std::sync::atomic::AtomicU64::new(0),
                bytes_allocated: std::sync::atomic::AtomicU64::new(0),
                reused_ctr: r.counter("workspace.bytes_reused"),
                allocated_ctr: r.counter("workspace.bytes_allocated"),
            }),
        }
    }

    #[inline]
    fn account(&self, bytes: usize, reused: bool) {
        use std::sync::atomic::Ordering;
        if reused {
            self.acct
                .bytes_reused
                .fetch_add(bytes as u64, Ordering::Relaxed);
            self.acct.reused_ctr.add(bytes as u64);
        } else {
            self.acct
                .bytes_allocated
                .fetch_add(bytes as u64, Ordering::Relaxed);
            self.acct.allocated_ctr.add(bytes as u64);
        }
    }

    /// A zeroed `f64` buffer of `len`, reusing pooled capacity when possible.
    pub fn take_f64(&self, len: usize) -> Vec<f64> {
        let (buf, hit) = self.f64s.take_reporting(len);
        self.account(len * 8, hit);
        buf
    }

    /// Checks an `f64` buffer back in for reuse.
    pub fn put_f64(&self, buf: Vec<f64>) {
        self.f64s.put(buf);
    }

    /// A zeroed byte buffer of `len`, reusing pooled capacity when possible.
    pub fn take_u8(&self, len: usize) -> Vec<u8> {
        let (buf, hit) = self.u8s.take_reporting(len);
        self.account(len, hit);
        buf
    }

    /// An **empty** byte buffer with at least `cap` spare capacity, for
    /// streams assembled by `push`/`extend` (codec outputs, plane bodies).
    pub fn take_u8_spare(&self, cap: usize) -> Vec<u8> {
        let (buf, hit) = self.u8s.take_spare_reporting(cap);
        self.account(buf.capacity().max(cap), hit);
        buf
    }

    /// Checks a byte buffer back in for reuse.
    pub fn put_u8(&self, buf: Vec<u8>) {
        self.u8s.put(buf);
    }

    /// A zeroed `u32` buffer of `len`, reusing pooled capacity when possible.
    pub fn take_u32(&self, len: usize) -> Vec<u32> {
        let (buf, hit) = self.u32s.take_reporting(len);
        self.account(len * 4, hit);
        buf
    }

    /// An **empty** `u32` buffer with at least `cap` spare capacity (symbol
    /// streams assembled by `push`/`extend`).
    pub fn take_u32_spare(&self, cap: usize) -> Vec<u32> {
        let (buf, hit) = self.u32s.take_spare_reporting(cap);
        self.account((buf.capacity().max(cap)) * 4, hit);
        buf
    }

    /// An **empty** `f64` buffer with at least `cap` spare capacity (value
    /// streams assembled by `push`/`extend`).
    pub fn take_f64_spare(&self, cap: usize) -> Vec<f64> {
        let (buf, hit) = self.f64s.take_spare_reporting(cap);
        self.account((buf.capacity().max(cap)) * 8, hit);
        buf
    }

    /// Checks a `u32` buffer back in for reuse.
    pub fn put_u32(&self, buf: Vec<u32>) {
        self.u32s.put(buf);
    }

    /// Bytes served from pooled capacity vs. freshly allocated, across this
    /// workspace and all its clones.
    pub fn stats(&self) -> WorkspaceStats {
        use std::sync::atomic::Ordering;
        WorkspaceStats {
            bytes_reused: self.acct.bytes_reused.load(Ordering::Relaxed),
            bytes_allocated: self.acct.bytes_allocated.load(Ordering::Relaxed),
        }
    }
}

/// Minimum size of an [`Arena`] chunk. Small enough that idle threads cost
/// little, big enough that a typical codec phase fits in one chunk.
const ARENA_MIN_CHUNK: usize = 64 * 1024;

/// Alignment of every arena chunk and every bump allocation. Covers all
/// element types the pipeline traffics in (`u8`/`u32`/`u64`/`f64`) and
/// leaves headroom for 16-byte SIMD lanes.
const ARENA_ALIGN: usize = 16;

/// A bump allocator for phase-scoped codec scratch.
///
/// Where [`Workspace`] pools whole `Vec`s across calls, `Arena` hands out
/// borrowed slices carved from a few large chunks and releases them all at
/// once when the phase ends. Allocation is a cursor bump (no locks, no
/// free-list search), chunks double in size as the arena grows, and after
/// the first warm phase the largest chunk covers the whole working set —
/// so warm-path allocation count is zero and there is no grown-once
/// fragmentation: the same chunk bytes are reused verbatim every phase.
///
/// The intended entry point is [`with_arena_phase`], which runs a closure
/// against the calling thread's arena and rolls the cursor back when the
/// closure returns (or unwinds). Phases nest: an inner phase rolls back to
/// its own mark, leaving outer allocations intact. Returned slices are
/// zero-initialized, mirroring `Workspace::take_*` semantics.
///
/// `Arena` is deliberately `!Send`/`!Sync`: each OS thread owns one via a
/// thread-local, so the bump cursor needs no synchronization. Executor
/// worker closures should keep using per-block `Vec`s or `Workspace`
/// buffers — worker threads are ephemeral (spawned per `par_*` call), so a
/// thread-local arena there would be allocated and dropped every call.
pub struct Arena {
    chunks: std::cell::RefCell<Vec<ArenaChunk>>,
    /// Index of the chunk the bump cursor currently sits in.
    cursor_chunk: std::cell::Cell<usize>,
    /// Byte offset of the cursor within that chunk.
    cursor_off: std::cell::Cell<usize>,
    high_water: std::cell::Cell<usize>,
    resets: std::cell::Cell<u64>,
    /// Cached registry handles (`workspace.arena.*`); lookups happen once.
    gauge_in_use: Arc<qcf_telemetry::Gauge>,
    resets_ctr: Arc<Counter>,
}

struct ArenaChunk {
    ptr: std::ptr::NonNull<u8>,
    len: usize,
}

/// A saved cursor position; releasing to it frees everything allocated
/// after the mark was taken.
#[derive(Debug, Clone, Copy)]
pub struct ArenaMark {
    chunk: usize,
    off: usize,
}

/// Point-in-time usage figures of one [`Arena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ArenaStats {
    /// Bytes currently bumped (including alignment padding and skipped
    /// chunk tails).
    pub bytes_in_use: usize,
    /// Highest `bytes_in_use` ever observed.
    pub high_water: usize,
    /// Phase releases performed so far.
    pub resets: u64,
    /// Chunks currently backing the arena.
    pub chunks: usize,
}

impl Default for Arena {
    fn default() -> Self {
        Arena::new()
    }
}

impl Arena {
    /// A fresh arena with no chunks; the first allocation grows it.
    pub fn new() -> Self {
        let r = qcf_telemetry::registry();
        Arena {
            chunks: std::cell::RefCell::new(Vec::new()),
            cursor_chunk: std::cell::Cell::new(0),
            cursor_off: std::cell::Cell::new(0),
            high_water: std::cell::Cell::new(0),
            resets: std::cell::Cell::new(0),
            gauge_in_use: r.gauge("workspace.arena.bytes_in_use"),
            resets_ctr: r.counter("workspace.arena.resets"),
        }
    }

    /// A zeroed `u8` slice of `len`, valid until the enclosing phase ends.
    #[allow(clippy::mut_from_ref)]
    pub fn alloc_u8(&self, len: usize) -> &mut [u8] {
        self.alloc_slice(len)
    }

    /// A zeroed `u32` slice of `len`, valid until the enclosing phase ends.
    #[allow(clippy::mut_from_ref)]
    pub fn alloc_u32(&self, len: usize) -> &mut [u32] {
        self.alloc_slice(len)
    }

    /// A zeroed `u64` slice of `len`, valid until the enclosing phase ends.
    #[allow(clippy::mut_from_ref)]
    pub fn alloc_u64(&self, len: usize) -> &mut [u64] {
        self.alloc_slice(len)
    }

    /// A zeroed `f64` slice of `len`, valid until the enclosing phase ends.
    #[allow(clippy::mut_from_ref)]
    pub fn alloc_f64(&self, len: usize) -> &mut [f64] {
        self.alloc_slice(len)
    }

    /// The current cursor; pass to [`release_to`](Arena::release_to) to
    /// free everything allocated after this point.
    pub fn mark(&self) -> ArenaMark {
        ArenaMark {
            chunk: self.cursor_chunk.get(),
            off: self.cursor_off.get(),
        }
    }

    /// Rolls the cursor back to `mark`. Every slice handed out after the
    /// mark must be dead by now — [`with_arena_phase`] enforces this with
    /// closure lifetimes; direct callers must uphold it themselves (the
    /// borrow checker does it for them as long as slices from before the
    /// mark are not conflated with slices from after).
    pub fn release_to(&self, mark: ArenaMark) {
        self.cursor_chunk.set(mark.chunk);
        self.cursor_off.set(mark.off);
        self.resets.set(self.resets.get() + 1);
        self.resets_ctr.inc();
        self.gauge_in_use.set(self.bytes_in_use() as i64);
    }

    /// Current usage figures.
    pub fn stats(&self) -> ArenaStats {
        ArenaStats {
            bytes_in_use: self.bytes_in_use(),
            high_water: self.high_water.get(),
            resets: self.resets.get(),
            chunks: self.chunks.borrow().len(),
        }
    }

    fn bytes_in_use(&self) -> usize {
        let chunks = self.chunks.borrow();
        let full: usize = chunks
            .iter()
            .take(self.cursor_chunk.get().min(chunks.len()))
            .map(|c| c.len)
            .sum();
        full + self.cursor_off.get()
    }

    /// Carves a zeroed, `ARENA_ALIGN`-aligned `&mut [T]` off the bump
    /// cursor.
    ///
    /// Soundness: every call advances the cursor past the returned region,
    /// so two live slices never alias; the cursor only moves backwards in
    /// `release_to`, whose callers guarantee the freed slices are dead.
    #[allow(clippy::mut_from_ref)]
    fn alloc_slice<T>(&self, len: usize) -> &mut [T] {
        debug_assert!(std::mem::align_of::<T>() <= ARENA_ALIGN);
        if len == 0 {
            return &mut [];
        }
        let bytes = len
            .checked_mul(std::mem::size_of::<T>())
            .expect("arena allocation size overflows usize");
        let ptr = self.alloc_bytes(bytes);
        unsafe {
            std::ptr::write_bytes(ptr, 0, bytes);
            std::slice::from_raw_parts_mut(ptr.cast::<T>(), len)
        }
    }

    fn alloc_bytes(&self, need: usize) -> *mut u8 {
        loop {
            {
                let chunks = self.chunks.borrow();
                if let Some(c) = chunks.get(self.cursor_chunk.get()) {
                    let off = (self.cursor_off.get() + ARENA_ALIGN - 1) & !(ARENA_ALIGN - 1);
                    if let Some(end) = off.checked_add(need) {
                        if end <= c.len {
                            self.cursor_off.set(end);
                            let ptr = unsafe { c.ptr.as_ptr().add(off) };
                            drop(chunks);
                            self.note_usage();
                            return ptr;
                        }
                    }
                }
                // Cursor chunk exhausted (or none yet): move into the next
                // retained chunk if a nested-phase rollback left one, else
                // grow.
                if self.cursor_chunk.get() + 1 < chunks.len() {
                    self.cursor_chunk.set(self.cursor_chunk.get() + 1);
                    self.cursor_off.set(0);
                    continue;
                }
            }
            self.grow(need);
        }
    }

    #[cold]
    fn grow(&self, need: usize) {
        let last = self.chunks.borrow().last().map_or(0, |c| c.len);
        let size = need.max(last.saturating_mul(2)).max(ARENA_MIN_CHUNK);
        let size = size.checked_next_power_of_two().unwrap_or(size);
        let layout =
            std::alloc::Layout::from_size_align(size, ARENA_ALIGN).expect("arena chunk layout");
        let raw = unsafe { std::alloc::alloc(layout) };
        let Some(ptr) = std::ptr::NonNull::new(raw) else {
            std::alloc::handle_alloc_error(layout);
        };
        let mut chunks = self.chunks.borrow_mut();
        chunks.push(ArenaChunk { ptr, len: size });
        self.cursor_chunk.set(chunks.len() - 1);
        self.cursor_off.set(0);
    }

    fn note_usage(&self) {
        let used = self.bytes_in_use();
        if used > self.high_water.get() {
            self.high_water.set(used);
        }
        self.gauge_in_use.set(used as i64);
    }
}

impl Drop for Arena {
    fn drop(&mut self) {
        for c in self.chunks.get_mut().drain(..) {
            unsafe {
                std::alloc::dealloc(
                    c.ptr.as_ptr(),
                    std::alloc::Layout::from_size_align_unchecked(c.len, ARENA_ALIGN),
                );
            }
        }
    }
}

impl std::fmt::Debug for Arena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Arena")
            .field("stats", &self.stats())
            .finish()
    }
}

thread_local! {
    /// One arena per OS thread. Only caller-thread pipeline phases use it;
    /// ephemeral executor workers never touch it (see [`Arena`] docs).
    static THREAD_ARENA: Arena = Arena::new();
}

struct PhaseGuard<'a> {
    arena: &'a Arena,
    mark: ArenaMark,
}

impl Drop for PhaseGuard<'_> {
    fn drop(&mut self) {
        // Runs on unwind too, so a panicking phase still releases its
        // allocations instead of leaking cursor space forever.
        self.arena.release_to(self.mark);
    }
}

/// Runs `f` against the calling thread's [`Arena`], releasing everything
/// the phase allocated when `f` returns or unwinds.
///
/// The closure receives `&Arena` with a fresh lifetime, so slices it
/// allocates cannot escape through the return value — the same trick
/// `std::thread::scope` uses. Phases nest freely; an inner phase rolls
/// back to its own mark only.
pub fn with_arena_phase<R>(f: impl FnOnce(&Arena) -> R) -> R {
    THREAD_ARENA.with(|arena| {
        let guard = PhaseGuard {
            arena,
            mark: arena.mark(),
        };
        f(guard.arena)
    })
}

/// Usage figures of the calling thread's arena (tests, reports).
pub fn thread_arena_stats() -> ArenaStats {
    THREAD_ARENA.with(|a| a.stats())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_and_peak_track_alloc_free() {
        let pool = MemoryPool::new();
        {
            let a = DeviceBuffer::<f64>::zeroed(&pool, 100);
            assert_eq!(pool.live_bytes(), 800);
            let b = DeviceBuffer::<f64>::zeroed(&pool, 50);
            assert_eq!(pool.live_bytes(), 1200);
            assert_eq!(pool.peak_bytes(), 1200);
            drop(a);
            assert_eq!(pool.live_bytes(), 400);
            drop(b);
        }
        assert_eq!(pool.live_bytes(), 0);
        assert_eq!(pool.peak_bytes(), 1200);
        assert_eq!(pool.allocations(), 2);
    }

    #[test]
    fn from_host_copies() {
        let pool = MemoryPool::new();
        let buf = DeviceBuffer::from_host(&pool, &[1u32, 2, 3]);
        assert_eq!(buf.as_slice(), &[1, 2, 3]);
        assert_eq!(buf.to_host(), vec![1, 2, 3]);
        assert_eq!(pool.live_bytes(), 12);
    }

    #[test]
    fn mutation_through_slice() {
        let pool = MemoryPool::new();
        let mut buf = DeviceBuffer::<u8>::zeroed(&pool, 4);
        buf.as_mut_slice()[2] = 7;
        assert_eq!(buf.as_slice(), &[0, 0, 7, 0]);
    }

    #[test]
    fn scratch_reuses_capacity() {
        let pool = ScratchPool::<f64>::new();
        let mut a = pool.take(100);
        a[0] = 3.5;
        let cap = a.capacity();
        pool.put(a);
        let b = pool.take(80);
        assert_eq!(b.capacity(), cap, "must reuse the checked-in buffer");
        assert!(b.iter().all(|&v| v == 0.0), "reused buffer must be reset");
        assert_eq!(pool.stats(), (1, 1));
    }

    #[test]
    fn scratch_misses_when_too_small() {
        let pool = ScratchPool::<u8>::new();
        pool.put(Vec::with_capacity(10));
        let big = pool.take(1000);
        assert_eq!(big.len(), 1000);
        assert_eq!(pool.stats(), (0, 1));
    }

    #[test]
    fn scratch_prefers_tightest_fit() {
        let pool = ScratchPool::<u8>::new();
        pool.put(Vec::with_capacity(4096));
        pool.put(Vec::with_capacity(64));
        let buf = pool.take(50);
        assert!(buf.capacity() < 4096, "should pick the 64-cap buffer");
    }

    #[test]
    fn scratch_is_bounded() {
        let pool = ScratchPool::<u8>::new();
        for _ in 0..100 {
            pool.put(Vec::with_capacity(8));
        }
        let st = lock_unpoisoned(&pool.inner);
        assert!(st.free.len() <= SCRATCH_POOL_CAP);
    }

    #[test]
    fn scratch_shared_across_clones_and_threads() {
        let pool = ScratchPool::<f64>::new();
        let clone = pool.clone();
        std::thread::scope(|s| {
            s.spawn(|| {
                let buf = clone.take(32);
                clone.put(buf);
            });
        });
        let (_hits, misses) = pool.stats();
        assert_eq!(misses, 1);
        let buf = pool.take(16);
        assert_eq!(pool.stats().0, 1, "clone's buffer visible to original");
        pool.put(buf);
    }

    #[test]
    fn workspace_reuses_across_types_and_clones() {
        let ws = Workspace::new();
        let f = ws.take_f64(100);
        let b = ws.take_u8(64);
        let s = ws.take_u32(32);
        assert_eq!(f.len(), 100);
        assert!(f.iter().all(|&x| x == 0.0));
        let st = ws.stats();
        assert_eq!(st.bytes_reused, 0);
        assert_eq!(st.bytes_allocated, 100 * 8 + 64 + 32 * 4);

        let clone = ws.clone();
        clone.put_f64(f);
        clone.put_u8(b);
        clone.put_u32(s);

        // Smaller requests fit in the returned capacities: all reuse.
        let f2 = ws.take_f64(80);
        let b2 = ws.take_u8(64);
        let s2 = ws.take_u32(10);
        assert_eq!((f2.len(), b2.len(), s2.len()), (80, 64, 10));
        let st = ws.stats();
        assert_eq!(st.bytes_reused, 80 * 8 + 64 + 10 * 4);
        assert_eq!(st.bytes_allocated, 100 * 8 + 64 + 32 * 4, "unchanged");
    }

    #[test]
    fn arena_slices_are_zeroed_and_disjoint() {
        let arena = Arena::new();
        let mark = arena.mark();
        let a = arena.alloc_u32(100);
        let b = arena.alloc_u32(100);
        assert!(a.iter().all(|&v| v == 0));
        a.fill(7);
        b.fill(9);
        assert!(a.iter().all(|&v| v == 7), "b must not alias a");
        assert!(b.iter().all(|&v| v == 9));
        let f = arena.alloc_f64(3);
        assert_eq!(f, &[0.0; 3]);
        assert!(arena.stats().bytes_in_use >= 800 + 24);
        arena.release_to(mark);
        assert_eq!(arena.stats().bytes_in_use, 0);
        assert_eq!(arena.stats().resets, 1);
    }

    #[test]
    fn arena_phase_releases_and_reuses_chunks() {
        let warm = with_arena_phase(|a| {
            a.alloc_u64(1 << 12);
            a.alloc_u8(1 << 12);
            a.stats()
        });
        assert!(warm.chunks >= 1);
        // A second identical phase must not grow the arena further.
        let again = with_arena_phase(|a| {
            a.alloc_u64(1 << 12);
            a.alloc_u8(1 << 12);
            a.stats()
        });
        assert_eq!(again.chunks, warm.chunks, "warm phase must not grow");
        assert_eq!(again.high_water, warm.high_water);
        assert_eq!(thread_arena_stats().bytes_in_use, 0, "phase released");
    }

    #[test]
    fn arena_nested_phase_rolls_back_to_own_mark() {
        with_arena_phase(|a| {
            let outer = a.alloc_u32(16);
            outer.fill(5);
            let inner_stats = with_arena_phase(|b| {
                b.alloc_u32(1 << 16); // force growth past the outer chunk
                b.stats()
            });
            assert!(inner_stats.bytes_in_use > 16 * 4);
            // Inner released; outer allocation still live and intact.
            assert!(outer.iter().all(|&v| v == 5));
            let next = a.alloc_u32(8);
            next.fill(1);
            assert!(outer.iter().all(|&v| v == 5), "no aliasing after rollback");
        });
    }

    #[test]
    fn arena_phase_releases_on_panic() {
        let before = thread_arena_stats();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            with_arena_phase(|a| {
                a.alloc_u8(1024);
                panic!("boom");
            })
        }));
        assert!(r.is_err());
        let after = thread_arena_stats();
        assert_eq!(after.bytes_in_use, before.bytes_in_use);
        assert_eq!(after.resets, before.resets + 1);
    }

    #[test]
    fn arena_grows_doubling_chunks() {
        let arena = Arena::new();
        arena.alloc_u8(ARENA_MIN_CHUNK + 1); // bigger than the first chunk
        let st = arena.stats();
        assert_eq!(st.chunks, 1, "single oversized chunk, not two");
        arena.alloc_u8(ARENA_MIN_CHUNK * 4);
        assert_eq!(arena.stats().chunks, 2);
        assert!(arena.stats().high_water >= ARENA_MIN_CHUNK * 5);
    }
}
