//! Device memory accounting and scratch-buffer reuse.
//!
//! The whole point of the paper is shrinking device-memory footprint, so the
//! model tracks allocations explicitly: a [`MemoryPool`] counts live and
//! peak bytes, and [`DeviceBuffer`]s return their bytes on drop. The
//! end-to-end footprint experiment (E9) reads these counters.
//!
//! [`ScratchPool`] is the workspace-reuse half: hot loops (the contraction
//! loop's permute buffers, the plane encoders' byte buffers) check
//! same-typed `Vec`s back in after use instead of reallocating one per
//! intermediate, mirroring how the CUDA implementations keep one workspace
//! arena per stream.

use qcf_telemetry::Counter;
use std::sync::{Arc, Mutex, MutexGuard};

fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // Counters and free-lists stay consistent even if a holder panicked
    // mid-update elsewhere; recover rather than cascade the panic.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Shared allocation counters for one simulated device.
#[derive(Debug, Clone, Default)]
pub struct MemoryPool {
    inner: Arc<Mutex<PoolState>>,
}

#[derive(Debug, Default)]
struct PoolState {
    live_bytes: u64,
    peak_bytes: u64,
    allocations: u64,
}

impl MemoryPool {
    /// A fresh pool with zeroed counters.
    pub fn new() -> Self {
        MemoryPool::default()
    }

    /// Currently allocated bytes.
    pub fn live_bytes(&self) -> u64 {
        lock_unpoisoned(&self.inner).live_bytes
    }

    /// High-water mark of allocated bytes.
    pub fn peak_bytes(&self) -> u64 {
        lock_unpoisoned(&self.inner).peak_bytes
    }

    /// Total number of allocations performed.
    pub fn allocations(&self) -> u64 {
        lock_unpoisoned(&self.inner).allocations
    }

    fn charge(&self, bytes: u64) {
        let mut st = lock_unpoisoned(&self.inner);
        st.live_bytes += bytes;
        st.peak_bytes = st.peak_bytes.max(st.live_bytes);
        st.allocations += 1;
    }

    fn release(&self, bytes: u64) {
        let mut st = lock_unpoisoned(&self.inner);
        debug_assert!(st.live_bytes >= bytes, "double free in memory pool");
        st.live_bytes = st.live_bytes.saturating_sub(bytes);
    }
}

/// A typed device allocation charged against a [`MemoryPool`].
#[derive(Debug)]
pub struct DeviceBuffer<T> {
    data: Vec<T>,
    pool: MemoryPool,
}

impl<T: Clone + Default> DeviceBuffer<T> {
    /// Allocates `len` zero/default-initialized elements.
    pub fn zeroed(pool: &MemoryPool, len: usize) -> Self {
        let data = vec![T::default(); len];
        pool.charge((len * std::mem::size_of::<T>()) as u64);
        DeviceBuffer {
            data,
            pool: pool.clone(),
        }
    }

    /// Allocates a copy of host data ("H2D" without the timing; charge the
    /// transfer on a stream separately if it matters).
    pub fn from_host(pool: &MemoryPool, host: &[T]) -> Self {
        let data = host.to_vec();
        pool.charge(std::mem::size_of_val(host) as u64);
        DeviceBuffer {
            data,
            pool: pool.clone(),
        }
    }
}

impl<T> DeviceBuffer<T> {
    /// Element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read access.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Write access.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Copies back to host ("D2H").
    pub fn to_host(&self) -> Vec<T>
    where
        T: Clone,
    {
        self.data.clone()
    }
}

impl<T> Drop for DeviceBuffer<T> {
    fn drop(&mut self) {
        self.pool
            .release((self.data.len() * std::mem::size_of::<T>()) as u64);
    }
}

/// Maximum buffers a [`ScratchPool`] retains; beyond this, returned
/// buffers are simply dropped. Bounds worst-case memory held by the pool.
const SCRATCH_POOL_CAP: usize = 16;

/// A thread-safe free-list of reusable `Vec<T>` workspaces.
///
/// `take(len)` returns a vector of exactly `len` default-initialized
/// elements, reusing the capacity of a previously [`put`]-back buffer when
/// one is available; `put` checks a buffer back in. Clones share the
/// free-list.
///
/// The pool never hands the same buffer to two callers: `take` removes it
/// from the list and `put` re-inserts it, both under the lock, so pooled
/// buffers are safe to use from executor workers (each worker takes its
/// own). Contents of a reused buffer are always reset by `take`, so reuse
/// can never leak data across users — which also keeps pooled and
/// non-pooled runs bit-identical.
///
/// [`put`]: ScratchPool::put
#[derive(Debug, Default, Clone)]
pub struct ScratchPool<T> {
    inner: Arc<Mutex<ScratchState<T>>>,
    counters: Option<(Arc<Counter>, Arc<Counter>)>,
}

#[derive(Debug)]
struct ScratchState<T> {
    free: Vec<Vec<T>>,
    hits: u64,
    misses: u64,
}

impl<T> Default for ScratchState<T> {
    fn default() -> Self {
        ScratchState {
            free: Vec::new(),
            hits: 0,
            misses: 0,
        }
    }
}

impl<T: Clone + Default> ScratchPool<T> {
    /// A fresh, empty pool.
    pub fn new() -> Self {
        ScratchPool {
            inner: Arc::default(),
            counters: None,
        }
    }

    /// A fresh pool that mirrors hits/misses into the telemetry registry
    /// as `<prefix>.hits` / `<prefix>.misses` (counter handles are cached
    /// here, so `take` pays one atomic add, not a registry lookup).
    pub fn with_metrics(prefix: &str) -> Self {
        let r = qcf_telemetry::registry();
        ScratchPool {
            inner: Arc::default(),
            counters: Some((
                r.counter(&format!("{prefix}.hits")),
                r.counter(&format!("{prefix}.misses")),
            )),
        }
    }

    /// A vector of `len` default-initialized elements, reusing pooled
    /// capacity when possible.
    pub fn take(&self, len: usize) -> Vec<T> {
        let reused = {
            let mut st = lock_unpoisoned(&self.inner);
            // Prefer the buffer whose capacity fits best, to keep big
            // buffers available for big requests.
            let best = st
                .free
                .iter()
                .enumerate()
                .filter(|(_, b)| b.capacity() >= len)
                .min_by_key(|(_, b)| b.capacity())
                .map(|(i, _)| i);
            match best {
                Some(i) => {
                    st.hits += 1;
                    Some(st.free.swap_remove(i))
                }
                None => {
                    st.misses += 1;
                    None
                }
            }
        };
        if let Some((hits, misses)) = &self.counters {
            if reused.is_some() {
                hits.inc();
            } else {
                misses.inc();
            }
        }
        match reused {
            Some(mut buf) => {
                buf.clear();
                buf.resize(len, T::default());
                buf
            }
            None => vec![T::default(); len],
        }
    }

    /// Checks `buf` back in for reuse (dropped if the pool is full).
    pub fn put(&self, buf: Vec<T>) {
        if buf.capacity() == 0 {
            return;
        }
        let mut st = lock_unpoisoned(&self.inner);
        if st.free.len() < SCRATCH_POOL_CAP {
            st.free.push(buf);
        }
    }

    /// `(hits, misses)` of `take` against the free-list, for tests and
    /// footprint reports.
    pub fn stats(&self) -> (u64, u64) {
        let st = lock_unpoisoned(&self.inner);
        (st.hits, st.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_and_peak_track_alloc_free() {
        let pool = MemoryPool::new();
        {
            let a = DeviceBuffer::<f64>::zeroed(&pool, 100);
            assert_eq!(pool.live_bytes(), 800);
            let b = DeviceBuffer::<f64>::zeroed(&pool, 50);
            assert_eq!(pool.live_bytes(), 1200);
            assert_eq!(pool.peak_bytes(), 1200);
            drop(a);
            assert_eq!(pool.live_bytes(), 400);
            drop(b);
        }
        assert_eq!(pool.live_bytes(), 0);
        assert_eq!(pool.peak_bytes(), 1200);
        assert_eq!(pool.allocations(), 2);
    }

    #[test]
    fn from_host_copies() {
        let pool = MemoryPool::new();
        let buf = DeviceBuffer::from_host(&pool, &[1u32, 2, 3]);
        assert_eq!(buf.as_slice(), &[1, 2, 3]);
        assert_eq!(buf.to_host(), vec![1, 2, 3]);
        assert_eq!(pool.live_bytes(), 12);
    }

    #[test]
    fn mutation_through_slice() {
        let pool = MemoryPool::new();
        let mut buf = DeviceBuffer::<u8>::zeroed(&pool, 4);
        buf.as_mut_slice()[2] = 7;
        assert_eq!(buf.as_slice(), &[0, 0, 7, 0]);
    }

    #[test]
    fn scratch_reuses_capacity() {
        let pool = ScratchPool::<f64>::new();
        let mut a = pool.take(100);
        a[0] = 3.5;
        let cap = a.capacity();
        pool.put(a);
        let b = pool.take(80);
        assert_eq!(b.capacity(), cap, "must reuse the checked-in buffer");
        assert!(b.iter().all(|&v| v == 0.0), "reused buffer must be reset");
        assert_eq!(pool.stats(), (1, 1));
    }

    #[test]
    fn scratch_misses_when_too_small() {
        let pool = ScratchPool::<u8>::new();
        pool.put(Vec::with_capacity(10));
        let big = pool.take(1000);
        assert_eq!(big.len(), 1000);
        assert_eq!(pool.stats(), (0, 1));
    }

    #[test]
    fn scratch_prefers_tightest_fit() {
        let pool = ScratchPool::<u8>::new();
        pool.put(Vec::with_capacity(4096));
        pool.put(Vec::with_capacity(64));
        let buf = pool.take(50);
        assert!(buf.capacity() < 4096, "should pick the 64-cap buffer");
    }

    #[test]
    fn scratch_is_bounded() {
        let pool = ScratchPool::<u8>::new();
        for _ in 0..100 {
            pool.put(Vec::with_capacity(8));
        }
        let st = lock_unpoisoned(&pool.inner);
        assert!(st.free.len() <= SCRATCH_POOL_CAP);
    }

    #[test]
    fn scratch_shared_across_clones_and_threads() {
        let pool = ScratchPool::<f64>::new();
        let clone = pool.clone();
        std::thread::scope(|s| {
            s.spawn(|| {
                let buf = clone.take(32);
                clone.put(buf);
            });
        });
        let (_hits, misses) = pool.stats();
        assert_eq!(misses, 1);
        let buf = pool.take(16);
        assert_eq!(pool.stats().0, 1, "clone's buffer visible to original");
        pool.put(buf);
    }
}
