//! # codec-kit — coding primitives shared by every compressor
//!
//! One implementation each of the mechanisms the nine compressors are built
//! from, so format crates contain format logic only:
//!
//! * [`bitio`] — LSB-first bit writer/reader (DEFLATE convention).
//! * [`huffman`] — length-limited canonical Huffman with table decode.
//! * [`chunked`] — chunked Huffman with a gap array (GPU-parallel decode).
//! * [`lz77`] — hash-chain greedy match finder.
//! * [`rle`] — run-length + delta transforms (Cascaded's stages).
//! * [`bitpack`] — fixed-width integer packing (cuSZx/Bitcomp residuals).
//! * [`varint`] — LEB128 + zigzag.
//!
//! Decoders never panic on corrupt input; they return [`CodecError`].

pub mod bitio;
pub mod bitpack;
pub mod chunked;
pub mod error;
pub mod frame;
pub mod huffman;
pub mod lz77;
pub mod rle;
pub mod varint;

pub use bitio::{BitReader, BitWriter};
pub use error::CodecError;
pub use huffman::{HuffmanDecoder, HuffmanEncoder};
