//! LEB128 varints and zigzag signed mapping.
//!
//! Used for stream headers, match distances, and the Cascaded compressor's
//! delta stage (zigzag turns small signed deltas into small unsigned codes).

use crate::error::CodecError;

/// Appends `value` as an unsigned LEB128 varint.
pub fn write_uvarint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads an unsigned LEB128 varint, advancing `pos`.
pub fn read_uvarint(data: &[u8], pos: &mut usize) -> Result<u64, CodecError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *data.get(*pos).ok_or(CodecError::UnexpectedEof)?;
        *pos += 1;
        if shift == 63 && byte > 1 {
            return Err(CodecError::Corrupt("varint overflows u64"));
        }
        value |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
        if shift > 63 {
            return Err(CodecError::Corrupt("varint too long"));
        }
    }
}

/// Zigzag-maps a signed value to unsigned (`0, -1, 1, -2, …` → `0, 1, 2, 3, …`).
#[inline]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Appends a signed varint (zigzag + LEB128).
pub fn write_ivarint(out: &mut Vec<u8>, value: i64) {
    write_uvarint(out, zigzag(value));
}

/// Reads a signed varint.
pub fn read_ivarint(data: &[u8], pos: &mut usize) -> Result<i64, CodecError> {
    Ok(unzigzag(read_uvarint(data, pos)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uvarint_roundtrip_edge_values() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_uvarint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_uvarint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn small_values_take_one_byte() {
        let mut buf = Vec::new();
        write_uvarint(&mut buf, 127);
        assert_eq!(buf.len(), 1);
        buf.clear();
        write_uvarint(&mut buf, 128);
        assert_eq!(buf.len(), 2);
    }

    #[test]
    fn zigzag_mapping() {
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(-2), 3);
        for v in [-1_000_000i64, -1, 0, 1, 7, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn ivarint_roundtrip() {
        for v in [-5_000_000i64, -1, 0, 1, 42, i64::MAX, i64::MIN] {
            let mut buf = Vec::new();
            write_ivarint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_ivarint(&buf, &mut pos).unwrap(), v);
        }
    }

    #[test]
    fn truncated_varint_errors() {
        let buf = vec![0x80, 0x80];
        let mut pos = 0;
        assert_eq!(read_uvarint(&buf, &mut pos), Err(CodecError::UnexpectedEof));
    }

    #[test]
    fn overlong_varint_rejected() {
        let buf = vec![0x80; 11];
        let mut pos = 0;
        assert!(read_uvarint(&buf, &mut pos).is_err());
    }
}
