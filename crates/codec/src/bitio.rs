//! LSB-first bit-level I/O (the DEFLATE convention).
//!
//! The writer packs bits into a byte vector least-significant-bit first; the
//! reader mirrors it. Both are branch-light: the writer keeps a 64-bit
//! accumulator and spills whole bytes, which is what the bit-emission loops
//! of every entropy coder in this workspace sit on.

use crate::error::CodecError;

/// Accumulating LSB-first bit writer.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    out: Vec<u8>,
    acc: u64,
    nbits: u32,
}

impl BitWriter {
    /// A fresh writer.
    pub fn new() -> Self {
        BitWriter::default()
    }

    /// A writer with reserved output capacity (bytes).
    pub fn with_capacity(bytes: usize) -> Self {
        BitWriter {
            out: Vec::with_capacity(bytes),
            acc: 0,
            nbits: 0,
        }
    }

    /// A writer that emits into `buf`, which is cleared first but keeps its
    /// capacity — the allocation-reuse path: recover the vector with
    /// [`finish`](BitWriter::finish) and check it back into a pool.
    pub fn from_vec(mut buf: Vec<u8>) -> Self {
        buf.clear();
        BitWriter {
            out: buf,
            acc: 0,
            nbits: 0,
        }
    }

    /// Appends the low `n` bits of `value` (LSB first). `n` may be 0..=57
    /// per call (the accumulator spills eagerly, so 57 is always safe).
    #[inline]
    pub fn write_bits(&mut self, value: u64, n: u32) {
        debug_assert!(n <= 57, "write_bits limited to 57 bits per call");
        self.acc |= (value & mask(n)) << self.nbits;
        self.nbits += n;
        while self.nbits >= 8 {
            self.out.push((self.acc & 0xFF) as u8);
            self.acc >>= 8;
            self.nbits -= 8;
        }
    }

    /// Appends a single bit.
    #[inline]
    pub fn write_bit(&mut self, bit: bool) {
        self.write_bits(bit as u64, 1);
    }

    /// Appends a full 64-bit value (two calls under the 57-bit limit).
    #[inline]
    pub fn write_u64(&mut self, value: u64) {
        self.write_bits(value & 0xFFFF_FFFF, 32);
        self.write_bits(value >> 32, 32);
    }

    /// Appends every bit written to `other`, in order, with no alignment —
    /// the output is bit-for-bit what writing `other`'s sequence directly
    /// would have produced. This is what lets block encoders emit into
    /// private writers in parallel and concatenate deterministically.
    pub fn append(&mut self, other: &BitWriter) {
        if self.nbits == 0 {
            self.out.extend_from_slice(&other.out);
        } else {
            for &b in &other.out {
                self.write_bits(b as u64, 8);
            }
        }
        if other.nbits > 0 {
            // the accumulator always holds < 8 residual bits
            self.write_bits(other.acc, other.nbits);
        }
    }

    /// Pads with zero bits to a byte boundary.
    pub fn align_byte(&mut self) {
        if self.nbits > 0 {
            self.out.push((self.acc & 0xFF) as u8);
            self.acc = 0;
            self.nbits = 0;
        }
    }

    /// Total bits written so far.
    pub fn bit_len(&self) -> usize {
        self.out.len() * 8 + self.nbits as usize
    }

    /// Finishes (byte-aligning) and returns the bytes.
    pub fn finish(mut self) -> Vec<u8> {
        self.align_byte();
        self.out
    }
}

/// LSB-first bit reader over a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    data: &'a [u8],
    byte_pos: usize,
    acc: u64,
    nbits: u32,
}

impl<'a> BitReader<'a> {
    /// A reader positioned at the start of `data`.
    pub fn new(data: &'a [u8]) -> Self {
        BitReader {
            data,
            byte_pos: 0,
            acc: 0,
            nbits: 0,
        }
    }

    #[inline]
    fn refill(&mut self) {
        while self.nbits <= 56 && self.byte_pos < self.data.len() {
            self.acc |= (self.data[self.byte_pos] as u64) << self.nbits;
            self.byte_pos += 1;
            self.nbits += 8;
        }
    }

    /// Reads `n ≤ 57` bits; errors at end of input.
    #[inline]
    pub fn read_bits(&mut self, n: u32) -> Result<u64, CodecError> {
        debug_assert!(n <= 57);
        if self.nbits < n {
            self.refill();
            if self.nbits < n {
                return Err(CodecError::UnexpectedEof);
            }
        }
        let v = self.acc & mask(n);
        self.acc >>= n;
        self.nbits -= n;
        Ok(v)
    }

    /// Reads one bit.
    #[inline]
    pub fn read_bit(&mut self) -> Result<bool, CodecError> {
        Ok(self.read_bits(1)? == 1)
    }

    /// Reads a 64-bit value written by [`BitWriter::write_u64`].
    pub fn read_u64(&mut self) -> Result<u64, CodecError> {
        let lo = self.read_bits(32)?;
        let hi = self.read_bits(32)?;
        Ok(lo | (hi << 32))
    }

    /// Peeks up to `n ≤ 57` bits without consuming; missing tail bits read
    /// as zero (canonical-Huffman decoding relies on this).
    #[inline]
    pub fn peek_bits(&mut self, n: u32) -> u64 {
        debug_assert!(n <= 57);
        if self.nbits < n {
            self.refill();
        }
        self.acc & mask(n)
    }

    /// Consumes `n` bits previously peeked.
    ///
    /// # Panics
    /// Debug-panics when consuming more than is buffered.
    #[inline]
    pub fn consume(&mut self, n: u32) {
        debug_assert!(n <= self.nbits, "consume beyond buffered bits");
        self.acc >>= n;
        self.nbits -= n;
    }

    /// Number of bits still available (buffered + unread bytes).
    pub fn remaining_bits(&self) -> usize {
        self.nbits as usize + (self.data.len() - self.byte_pos) * 8
    }
}

#[inline(always)]
fn mask(n: u32) -> u64 {
    if n >= 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_clears_but_keeps_capacity() {
        let buf = vec![0xFFu8; 64];
        let cap = buf.capacity();
        let mut w = BitWriter::from_vec(buf);
        w.write_bits(0b1011, 4);
        let out = w.finish();
        assert_eq!(out, vec![0b1011]);
        assert!(out.capacity() >= cap, "capacity must be preserved");
    }

    #[test]
    fn roundtrip_mixed_widths() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0xFFFF, 16);
        w.write_bit(true);
        w.write_bits(42, 7);
        w.write_u64(0xDEAD_BEEF_CAFE_F00D);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3).unwrap(), 0b101);
        assert_eq!(r.read_bits(16).unwrap(), 0xFFFF);
        assert!(r.read_bit().unwrap());
        assert_eq!(r.read_bits(7).unwrap(), 42);
        assert_eq!(r.read_u64().unwrap(), 0xDEAD_BEEF_CAFE_F00D);
    }

    #[test]
    fn eof_detected() {
        let bytes = BitWriter::new().finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(1), Err(CodecError::UnexpectedEof));
        let mut w = BitWriter::new();
        w.write_bits(1, 4);
        let bytes = w.finish(); // one byte: 4 data bits + 4 pad bits
        let mut r = BitReader::new(&bytes);
        assert!(r.read_bits(8).is_ok());
        assert_eq!(r.read_bits(1), Err(CodecError::UnexpectedEof));
    }

    #[test]
    fn align_pads_with_zeros() {
        let mut w = BitWriter::new();
        w.write_bits(1, 1);
        w.align_byte();
        w.write_bits(0xAB, 8);
        let bytes = w.finish();
        assert_eq!(bytes, vec![0x01, 0xAB]);
    }

    #[test]
    fn bit_len_counts() {
        let mut w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        w.write_bits(0, 5);
        assert_eq!(w.bit_len(), 5);
        w.write_bits(0, 5);
        assert_eq!(w.bit_len(), 10);
    }

    #[test]
    fn peek_and_consume() {
        let mut w = BitWriter::new();
        w.write_bits(0b110_1011, 7);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.peek_bits(4), 0b1011);
        r.consume(4);
        assert_eq!(r.read_bits(3).unwrap(), 0b110);
    }

    #[test]
    fn peek_past_end_reads_zero() {
        let mut w = BitWriter::new();
        w.write_bits(0b1, 1);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        let v = r.peek_bits(20);
        assert_eq!(v & 0xFF, 0x01);
    }

    #[test]
    fn append_matches_direct_writes() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2);
        let items: Vec<(u64, u32)> = (0..2_000)
            .map(|_| {
                let n = rng.gen_range(1..=57u32);
                (rng.gen::<u64>() & ((1u64 << n) - 1), n)
            })
            .collect();
        // Direct: one writer sees the whole sequence.
        let mut direct = BitWriter::new();
        for &(v, n) in &items {
            direct.write_bits(v, n);
        }
        // Split: arbitrary segments written to private writers, appended.
        for split_at in [0, 1, 137, 1000, 1999, 2000] {
            let mut w = BitWriter::new();
            for part in [&items[..split_at], &items[split_at..]] {
                let mut sub = BitWriter::new();
                for &(v, n) in part {
                    sub.write_bits(v, n);
                }
                w.append(&sub);
            }
            assert_eq!(
                w.clone().finish(),
                direct.clone().finish(),
                "split {split_at}"
            );
        }
    }

    #[test]
    fn long_random_roundtrip() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        let items: Vec<(u64, u32)> = (0..10_000)
            .map(|_| {
                let n = rng.gen_range(0..=57u32);
                let v = rng.gen::<u64>() & (((1u64 << n.max(1)) - 1) * (n > 0) as u64);
                (v, n)
            })
            .collect();
        let mut w = BitWriter::new();
        for &(v, n) in &items {
            w.write_bits(v, n);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &(v, n) in &items {
            assert_eq!(r.read_bits(n).unwrap(), v);
        }
    }
}
