//! Fixed-width bit packing.
//!
//! cuSZx stores block residuals as `width`-bit integers and Bitcomp packs
//! deltas the same way; both sit on these two functions. Width 0 is legal
//! and encodes a run of zeros in zero bytes.

use crate::bitio::{BitReader, BitWriter};
use crate::error::CodecError;

/// Smallest width (bits) that can represent every value in `values`.
pub fn required_width(values: &[u64]) -> u32 {
    values
        .iter()
        .map(|&v| 64 - v.leading_zeros())
        .max()
        .unwrap_or(0)
}

/// Packs `values` at `width` bits each.
///
/// # Panics
/// Debug-panics when a value does not fit in `width` bits.
pub fn pack(values: &[u64], width: u32, w: &mut BitWriter) {
    debug_assert!(width <= 57);
    for &v in values {
        debug_assert!(width == 0 && v == 0 || width >= 64 - v.leading_zeros());
        w.write_bits(v, width);
    }
}

/// Unpacks `count` values of `width` bits each. Widths beyond the packer's
/// 57-bit limit are rejected (decoders read widths from untrusted headers).
pub fn unpack(r: &mut BitReader<'_>, width: u32, count: usize) -> Result<Vec<u64>, CodecError> {
    if width == 0 {
        return Ok(vec![0u64; count]);
    }
    if width > 57 {
        return Err(CodecError::Corrupt("pack width out of range"));
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        out.push(r.read_bits(width)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_detection() {
        assert_eq!(required_width(&[]), 0);
        assert_eq!(required_width(&[0, 0]), 0);
        assert_eq!(required_width(&[1]), 1);
        assert_eq!(required_width(&[255]), 8);
        assert_eq!(required_width(&[256]), 9);
        assert_eq!(required_width(&[0, 7, 3]), 3);
    }

    #[test]
    fn pack_unpack_roundtrip() {
        for width in [1u32, 3, 8, 13, 31, 57] {
            let maxv = if width == 57 {
                (1u64 << 57) - 1
            } else {
                (1u64 << width) - 1
            };
            let values: Vec<u64> = (0..100).map(|i| (i * 2654435761u64) & maxv).collect();
            let mut w = BitWriter::new();
            pack(&values, width, &mut w);
            let bytes = w.finish();
            assert_eq!(bytes.len(), (100 * width as usize).div_ceil(8));
            let mut r = BitReader::new(&bytes);
            assert_eq!(unpack(&mut r, width, 100).unwrap(), values);
        }
    }

    #[test]
    fn zero_width_is_free() {
        let mut w = BitWriter::new();
        pack(&[0; 1000], 0, &mut w);
        let bytes = w.finish();
        assert!(bytes.is_empty());
        let mut r = BitReader::new(&bytes);
        assert_eq!(unpack(&mut r, 0, 1000).unwrap(), vec![0u64; 1000]);
    }

    #[test]
    fn truncated_unpack_errors() {
        let mut w = BitWriter::new();
        pack(&[1, 2, 3], 8, &mut w);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes[..2]);
        assert!(unpack(&mut r, 8, 3).is_err());
    }
}
