//! Run-length encoding over `u32` words.
//!
//! Stage one of the Cascaded compressor (nvCOMP's integer pipeline): a
//! `(value, run)` stream, each varint-coded. Also provides a delta transform,
//! Cascaded's stage two.

use crate::error::CodecError;
use crate::varint::{read_uvarint, write_uvarint};

/// Encodes `values` as `(value, run_length)` pairs, varint-coded.
pub fn rle_encode(values: &[u32], out: &mut Vec<u8>) {
    write_uvarint(out, values.len() as u64);
    let mut i = 0usize;
    while i < values.len() {
        let v = values[i];
        let mut run = 1usize;
        while i + run < values.len() && values[i + run] == v {
            run += 1;
        }
        write_uvarint(out, v as u64);
        write_uvarint(out, run as u64);
        i += run;
    }
}

/// Decodes an [`rle_encode`] stream.
pub fn rle_decode(data: &[u8], pos: &mut usize) -> Result<Vec<u32>, CodecError> {
    let n = read_uvarint(data, pos)? as usize;
    if n > (1 << 31) {
        return Err(CodecError::Corrupt("absurd RLE element count"));
    }
    // Cap the up-front reservation: `n` is untrusted, and a forged header
    // must not reserve gigabytes before the first run is even read. Honest
    // long runs still land in `out` via `resize` growth.
    let mut out = Vec::with_capacity(n.min(1 << 20));
    while out.len() < n {
        let v = read_uvarint(data, pos)?;
        if v > u32::MAX as u64 {
            return Err(CodecError::Corrupt("RLE value exceeds u32"));
        }
        let run = read_uvarint(data, pos)? as usize;
        // compare without summing: a forged run near usize::MAX must not
        // overflow the addition
        if run == 0 || run > n - out.len() {
            return Err(CodecError::Corrupt("bad RLE run length"));
        }
        out.resize(out.len() + run, v as u32);
    }
    Ok(out)
}

/// Forward delta: `out[0] = in[0]`, `out[i] = in[i] - in[i-1]` (wrapping).
pub fn delta_encode(values: &mut [u32]) {
    for i in (1..values.len()).rev() {
        values[i] = values[i].wrapping_sub(values[i - 1]);
    }
}

/// Inverse of [`delta_encode`] (prefix sum, wrapping).
pub fn delta_decode(values: &mut [u32]) {
    for i in 1..values.len() {
        values[i] = values[i].wrapping_add(values[i - 1]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(values: &[u32]) -> usize {
        let mut buf = Vec::new();
        rle_encode(values, &mut buf);
        let mut pos = 0;
        assert_eq!(rle_decode(&buf, &mut pos).unwrap(), values);
        assert_eq!(pos, buf.len());
        buf.len()
    }

    #[test]
    fn runs_compress() {
        let mut v = vec![5u32; 1000];
        v.extend(vec![9u32; 500]);
        let bytes = roundtrip(&v);
        assert!(bytes < 16, "1500 words in {bytes} bytes");
    }

    #[test]
    fn empty_and_singleton() {
        roundtrip(&[]);
        roundtrip(&[42]);
    }

    #[test]
    fn alternating_worst_case_still_roundtrips() {
        let v: Vec<u32> = (0..100).map(|i| i % 2).collect();
        roundtrip(&v);
    }

    #[test]
    fn delta_roundtrip() {
        let orig: Vec<u32> = vec![10, 12, 12, 15, 100, 3, u32::MAX, 0];
        let mut v = orig.clone();
        delta_encode(&mut v);
        delta_decode(&mut v);
        assert_eq!(v, orig);
    }

    #[test]
    fn delta_then_rle_on_ramp() {
        // A linear ramp becomes constant after delta — ideal for RLE.
        let mut v: Vec<u32> = (0..1000u32).collect();
        delta_encode(&mut v);
        let bytes = roundtrip(&v);
        assert!(bytes < 20, "delta'd ramp took {bytes} bytes");
    }

    #[test]
    fn corrupt_run_rejected() {
        let mut buf = Vec::new();
        rle_encode(&[1, 1, 2], &mut buf);
        // Truncate mid-stream.
        let mut pos = 0;
        assert!(rle_decode(&buf[..buf.len() - 1], &mut pos).is_err());
    }
}
