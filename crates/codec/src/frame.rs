//! Versioned integrity frames around compressed streams (format v2).
//!
//! A bare (v1) stream is `[id][uvarint n][codec payload…]` with `id < 0x80`.
//! The sealed v2 frame wraps the whole v1 stream without touching it:
//!
//! ```text
//! [id | 0x80]  [version = 2]  [payload_len: u32 LE]  [payload = v1 stream]  [fnv1a32(payload): u32 LE]
//! ```
//!
//! * The high bit of the leading byte marks a frame — every assigned
//!   compressor id is `< 0x80`, so dispatch stays a one-byte read and
//!   legacy v1 streams remain decodable unchanged ([`unseal`] passes them
//!   through verbatim).
//! * `payload_len` is validated against the input size **before** any
//!   payload access or allocation (decompression-bomb guard at the frame
//!   layer); a frame must be exactly `payload_len + `[`FRAME_OVERHEAD`]
//!   bytes.
//! * The checksum is FNV-1a (32-bit) over the payload, so any flipped bit
//!   in storage or transport surfaces as [`CodecError::ChecksumMismatch`]
//!   instead of a garbage decode.

use crate::error::CodecError;

/// High bit of the leading byte: set ⇒ sealed v2 frame, clear ⇒ bare v1.
pub const FRAME_FLAG: u8 = 0x80;
/// Current frame format version.
pub const FRAME_VERSION: u8 = 2;
/// Bytes a frame adds around its payload (2-byte prologue + 4-byte length
/// + 4-byte checksum).
pub const FRAME_OVERHEAD: usize = 10;
/// Frame bytes preceding the payload.
const FRAME_PROLOGUE: usize = 6;

/// 32-bit FNV-1a over `bytes`.
pub fn fnv1a32(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// True when the leading byte carries the frame flag.
pub fn is_framed(bytes: &[u8]) -> bool {
    bytes.first().is_some_and(|b| b & FRAME_FLAG != 0)
}

/// The compressor id a stream's leading byte names, framed or not.
pub fn stream_id(bytes: &[u8]) -> Result<u8, CodecError> {
    let lead = *bytes.first().ok_or(CodecError::UnexpectedEof)?;
    Ok(lead & !FRAME_FLAG)
}

/// Seals `out` — which must hold a complete bare v1 stream — into a v2
/// frame in place: the payload is shifted up by the prologue (no scratch
/// buffer, capacity permitting no reallocation) and the checksum appended.
///
/// Empty buffers are left alone (nothing to protect, nothing to dispatch).
pub fn seal_in_place(out: &mut Vec<u8>) {
    let len = out.len();
    if len == 0 {
        return;
    }
    let id = out[0];
    debug_assert_eq!(id & FRAME_FLAG, 0, "v1 stream id must be < 0x80");
    debug_assert!(len <= u32::MAX as usize, "frame payload exceeds u32 range");
    out.resize(len + FRAME_OVERHEAD, 0);
    out.copy_within(0..len, FRAME_PROLOGUE);
    out[0] = id | FRAME_FLAG;
    out[1] = FRAME_VERSION;
    out[2..6].copy_from_slice(&(len as u32).to_le_bytes());
    let sum = fnv1a32(&out[FRAME_PROLOGUE..FRAME_PROLOGUE + len]);
    out[FRAME_PROLOGUE + len..].copy_from_slice(&sum.to_le_bytes());
}

/// Unwraps a v2 frame, returning the verified payload. Bare v1 streams
/// (no frame flag) pass through unchanged for backward compatibility.
///
/// Validation order is cheapest-first and allocation-free: flag, version,
/// declared length against actual input size, id consistency, checksum.
pub fn unseal(bytes: &[u8]) -> Result<&[u8], CodecError> {
    if !is_framed(bytes) {
        return Ok(bytes);
    }
    if bytes.len() < FRAME_OVERHEAD {
        return Err(CodecError::UnexpectedEof);
    }
    if bytes[1] != FRAME_VERSION {
        return Err(CodecError::Unsupported("unknown frame version"));
    }
    let declared = u32::from_le_bytes([bytes[2], bytes[3], bytes[4], bytes[5]]) as usize;
    // Bomb guard: the declared payload length must match the input exactly
    // — checked before the payload is touched, so a forged length can never
    // drive an oversized read or allocation.
    if declared != bytes.len() - FRAME_OVERHEAD {
        return Err(CodecError::Corrupt("frame length does not match input"));
    }
    let payload = &bytes[FRAME_PROLOGUE..FRAME_PROLOGUE + declared];
    // The inner stream must agree with the frame about who owns it.
    if payload.first().copied().unwrap_or(0) != bytes[0] & !FRAME_FLAG {
        return Err(CodecError::Corrupt("frame id does not match payload"));
    }
    let stored = u32::from_le_bytes([
        bytes[FRAME_PROLOGUE + declared],
        bytes[FRAME_PROLOGUE + declared + 1],
        bytes[FRAME_PROLOGUE + declared + 2],
        bytes[FRAME_PROLOGUE + declared + 3],
    ]);
    let actual = fnv1a32(payload);
    if stored != actual {
        return Err(CodecError::ChecksumMismatch {
            stored,
            computed: actual,
        });
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v1_stream() -> Vec<u8> {
        let mut s = vec![7u8]; // id
        crate::varint::write_uvarint(&mut s, 1234);
        s.extend_from_slice(&[0xde, 0xad, 0xbe, 0xef, 0x00, 0x42]);
        s
    }

    #[test]
    fn seal_unseal_roundtrip() {
        let raw = v1_stream();
        let mut framed = raw.clone();
        seal_in_place(&mut framed);
        assert_eq!(framed.len(), raw.len() + FRAME_OVERHEAD);
        assert_eq!(framed[0], 7 | FRAME_FLAG);
        assert_eq!(framed[1], FRAME_VERSION);
        assert!(is_framed(&framed));
        assert_eq!(stream_id(&framed).unwrap(), 7);
        assert_eq!(unseal(&framed).unwrap(), &raw[..]);
    }

    #[test]
    fn legacy_v1_passes_through() {
        let raw = v1_stream();
        assert!(!is_framed(&raw));
        assert_eq!(unseal(&raw).unwrap(), &raw[..]);
        assert_eq!(stream_id(&raw).unwrap(), 7);
    }

    #[test]
    fn every_single_bit_flip_is_rejected() {
        let mut framed = v1_stream();
        seal_in_place(&mut framed);
        for byte in 0..framed.len() {
            for bit in 0..8 {
                let mut bad = framed.clone();
                bad[byte] ^= 1 << bit;
                // Clearing the frame flag turns it into a "v1" stream that
                // passes through — every other flip must be caught here.
                if byte == 0 && bad[0] & FRAME_FLAG == 0 {
                    continue;
                }
                assert!(
                    unseal(&bad).is_err(),
                    "flip of byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn truncation_and_extension_are_rejected() {
        let mut framed = v1_stream();
        seal_in_place(&mut framed);
        for cut in 1..framed.len() {
            assert!(
                unseal(&framed[..cut]).is_err(),
                "accepted {cut}-byte prefix"
            );
        }
        let mut longer = framed.clone();
        longer.push(0);
        assert!(unseal(&longer).is_err(), "accepted trailing garbage");
    }

    #[test]
    fn forged_length_is_rejected_before_payload_access() {
        let mut framed = v1_stream();
        seal_in_place(&mut framed);
        framed[2..6].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            unseal(&framed).unwrap_err(),
            CodecError::Corrupt("frame length does not match input")
        );
    }

    #[test]
    fn unknown_version_is_unsupported() {
        let mut framed = v1_stream();
        seal_in_place(&mut framed);
        framed[1] = 3;
        assert_eq!(
            unseal(&framed).unwrap_err(),
            CodecError::Unsupported("unknown frame version")
        );
    }

    #[test]
    fn empty_input() {
        let mut empty = Vec::new();
        seal_in_place(&mut empty);
        assert!(empty.is_empty());
        assert_eq!(unseal(&[]).unwrap(), &[] as &[u8]);
        assert!(stream_id(&[]).is_err());
    }

    #[test]
    fn fnv_reference_vectors() {
        // Canonical FNV-1a 32-bit test vectors.
        assert_eq!(fnv1a32(b""), 0x811c_9dc5);
        assert_eq!(fnv1a32(b"a"), 0xe40c_292c);
        assert_eq!(fnv1a32(b"foobar"), 0xbf9c_f968);
    }
}
